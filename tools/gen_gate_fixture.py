#!/usr/bin/env python
"""Regenerate the CI regression-gate golden baseline fixtures.

Each fixture is a clean capture the warehouse gate treats as the
healthy reference distribution:

* ``llseek_clean_baseline.ospb`` — the §6.1 random-read scenario with
  one process, so the llseek profile shows no ``i_sem`` contention
  peak.  The two-process contended variant must breach (exit 3).
* ``ssd_gc_clean_baseline.ospb`` / ``raid0_stripe_clean_baseline.ospb``
  / ``throttled_iops_clean_baseline.ospb`` — the driver-layer profile
  of each clean device-model scenario from the registry
  (``osprof run --list-scenarios``).  The matching regression scenario
  (``ssd-gc-worn``, ``raid0-degraded``, ``throttled-iops-tight``) must
  breach.

Run after any simulator change that legitimately shifts a clean
distribution:

    PYTHONPATH=src python tools/gen_gate_fixture.py

and commit the result.  ``tests/integration/test_gate_fixture.py`` and
``tests/integration/test_scenario_gate.py`` fail loudly when a fixture
goes stale instead.
"""

from __future__ import annotations

from pathlib import Path
from typing import Dict, List

from repro.cli import main

FIXTURE_DIR = Path(__file__).resolve().parent.parent / "tests" / "fixtures"

OUT = FIXTURE_DIR / "llseek_clean_baseline.ospb"

#: One clean capture: the gate's reference distribution.  Seed and size
#: are pinned so the fixture regenerates reproducibly.
CAPTURE_ARGS = ["run", "randomread", "--processes", "1",
                "--iterations", "800", "--seed", "2006",
                "--format", "binary"]


def _scenario_args(name: str) -> List[str]:
    return ["run", "--scenario", name, "--seed", "2006",
            "--layer", "driver", "--format", "binary"]


#: Every committed gate fixture and the pinned command line producing it.
FIXTURES: Dict[str, List[str]] = {
    "llseek_clean_baseline.ospb": CAPTURE_ARGS,
    "ssd_gc_clean_baseline.ospb": _scenario_args("ssd-gc"),
    "raid0_stripe_clean_baseline.ospb": _scenario_args("raid0-stripe"),
    "throttled_iops_clean_baseline.ospb":
        _scenario_args("throttled-iops"),
}


def generate() -> List[Path]:
    FIXTURE_DIR.mkdir(parents=True, exist_ok=True)
    written = []
    for filename, args in FIXTURES.items():
        out = FIXTURE_DIR / filename
        rc = main(args + ["-o", str(out)])
        if rc != 0:
            raise SystemExit(rc)
        written.append(out)
    return written


if __name__ == "__main__":
    for path in generate():
        print(f"wrote {path} ({path.stat().st_size} bytes)")

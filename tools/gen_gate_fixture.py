#!/usr/bin/env python
"""Regenerate the CI regression-gate golden baseline fixture.

The fixture is a clean (uncontended) capture of the §6.1 random-read
scenario: one process doing llseek+read, so the llseek profile shows no
``i_sem`` contention peak.  CI saves it as a warehouse baseline and
gates fresh captures against it — an identical workload must pass, the
two-process contended variant must breach (exit 3).

Run after any simulator change that legitimately shifts the clean
distribution:

    PYTHONPATH=src python tools/gen_gate_fixture.py

and commit the result.  ``tests/integration/test_gate_fixture.py``
fails loudly when the fixture goes stale instead.
"""

from __future__ import annotations

from pathlib import Path

from repro.cli import main

OUT = (Path(__file__).resolve().parent.parent / "tests" / "fixtures"
       / "llseek_clean_baseline.ospb")

#: One clean capture: the gate's reference distribution.  Seed and size
#: are pinned so the fixture regenerates reproducibly.
CAPTURE_ARGS = ["run", "randomread", "--processes", "1",
                "--iterations", "800", "--seed", "2006",
                "--format", "binary"]


def generate() -> Path:
    OUT.parent.mkdir(parents=True, exist_ok=True)
    rc = main(CAPTURE_ARGS + ["-o", str(OUT)])
    if rc != 0:
        raise SystemExit(rc)
    return OUT


if __name__ == "__main__":
    path = generate()
    print(f"wrote {path} ({path.stat().st_size} bytes)")

#!/usr/bin/env python
"""Regenerate the wait-state sample digest pins.

Runs every sampled capture in ``tests/integration/pinning.py`` and
writes the sha256 of each resulting StateProfile's canonical encoding
to ``tests/integration/state_pins.json``.  Only rerun this when a
change *intends* to alter the sampled view (a new wait site, a
canonicalization change, new capture parameters); refactors of the
sampling plumbing must leave every digest untouched.

    PYTHONPATH=src python tools/gen_state_pins.py
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(ROOT / "tests" / "integration"))

from pinning import STATE_CAPTURES, state_digest  # noqa: E402

OUT = ROOT / "tests" / "integration" / "state_pins.json"


def main() -> int:
    pins = {}
    for name in sorted(STATE_CAPTURES):
        pins[name] = state_digest(STATE_CAPTURES[name]())
        print(f"{name}: {pins[name]}")
    OUT.write_text(json.dumps(pins, indent=2, sort_keys=True) + "\n")
    print(f"wrote {OUT}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())

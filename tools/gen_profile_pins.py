#!/usr/bin/env python
"""Regenerate the byte-identity pins for the capture pipeline.

Runs every capture in ``tests/integration/pinning.py`` and writes the
sha256 of each resulting ProfileSet's canonical binary encoding to
``tests/integration/profile_pins.json``.  Only rerun this when a change
*intends* to alter captured profiles (new workload parameters, a new
operation, a bucketing change); refactors of the capture plumbing must
leave every digest untouched — that is what the pins are for.

    PYTHONPATH=src python tools/gen_profile_pins.py
"""

from __future__ import annotations

import json
import sys
import time
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(ROOT / "tests" / "integration"))

from pinning import CAPTURES, digest  # noqa: E402

OUT = ROOT / "tests" / "integration" / "profile_pins.json"


def main() -> int:
    pins = {}
    for name, capture in sorted(CAPTURES.items()):
        t0 = time.time()
        pset = capture()
        pins[name] = digest(pset)
        print(f"{name:28s} {pins[name][:16]}  "
              f"({pset.total_ops()} ops, {time.time() - t0:.2f}s)")
    OUT.write_text(json.dumps(pins, indent=2, sort_keys=True) + "\n")
    print(f"wrote {len(pins)} pins to {OUT}")
    return 0


if __name__ == "__main__":
    sys.exit(main())

"""Figure 7: Ext2 readdir/readpage profiles under grep -r.

Paper: the readdir profile of a single grep run over the Linux source
tree shows four peaks — (1) reads past end-of-directory (buckets 6-7),
(2) page-cache hits (9-14), (3) drive segment-cache hits (16-17),
(4) media accesses with seeks/rotation (18-23) — and the number of
elements in peaks 3+4 equals the readpage operation count (each page
miss initiates exactly one page read).
"""

from conftest import run_once

from repro.analysis import CharacteristicTimes, find_peaks, render_profile
from repro.system import System
from repro.workloads import build_source_tree, run_grep

SCALE = 0.08


def test_fig7_grep(benchmark, artifacts):
    def experiment():
        system = System.build(fs_type="ext2", with_timer=False,
                              pagecache_pages=1 << 20)
        root, stats = build_source_tree(system, scale=SCALE)
        result = run_grep(system, root)
        return system, stats, result

    system, stats, result = run_once(benchmark, experiment)
    pset = system.fs_profiles()
    readdir = pset["readdir"]
    readpage = pset["readpage"]

    artifacts.add(
        "Figure 7 reproduction: grep -r over a "
        f"{stats.directories}-dir / {stats.files}-file tree")
    artifacts.add("--- READDIR ---\n" + render_profile(readdir))
    artifacts.add("--- READPAGE ---\n" + render_profile(readpage))

    counts = readdir.counts()
    peak1 = sum(c for b, c in counts.items() if b <= 8)
    peak2 = sum(c for b, c in counts.items() if 9 <= b <= 14)
    peak34 = sum(c for b, c in counts.items() if b >= 15)
    dir_pages = sum(max(1, i.num_pages())
                    for i in system.inodes._inodes.values() if i.is_dir)

    table = CharacteristicTimes()
    attribution = {
        peak.apex: [t.name for t in table.candidates(peak.apex, 1)]
        for peak in find_peaks(readdir, min_ops=5)}

    artifacts.add(
        f"peak populations: past-EOF={peak1} "
        f"(= {stats.directories} directories), cached={peak2}, "
        f"disk (peaks 3+4)={peak34}\n"
        f"readpage ops={readpage.total_ops} "
        f"(directory pages: {dir_pages}, file pages the rest)\n"
        f"peak attributions: {attribution}")

    benchmark.extra_info["peak1_eof"] = peak1
    benchmark.extra_info["peak2_cached"] = peak2
    benchmark.extra_info["peak34_disk"] = peak34
    benchmark.extra_info["readpage_ops"] = readpage.total_ops

    # Shape assertions.
    assert peak1 == stats.directories  # one past-EOF call per dir
    assert peak2 > 0 and peak34 > 0
    # Paper's cross-check: disk-peak readdir count equals the number of
    # directory-page readpage initiations.
    assert peak34 == dir_pages
    # readpage only initiates I/O: its latency stays in the low buckets
    # while readdir waits for the page.
    assert readpage.mean_latency() < 1.5e4
    lo, hi = readpage.histogram.span()
    assert hi <= 14
    # Four distinguishable readdir peak groups exist.
    peaks = find_peaks(readdir, min_ops=5)
    assert len(peaks) >= 3

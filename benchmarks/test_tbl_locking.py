"""Section 3.4: bucket-update strategies under real concurrency.

Paper: unlocked shared buckets lose <1% of updates in the worst case on
a 2-CPU machine (two threads timing an empty function into the same
bucket), and much less under real workloads; per-thread profiles lose
nothing on any CPU count.  Atomic increments were rejected as too
expensive.

Here the two strategies run under real Python threads.  CPython's GIL
scheduling makes the shared-bucket loss rate far larger and noisier
than the paper's C numbers (whole bursts of increments interleave), so
the *measured* rate is reported and only the structural claims are
asserted: the lossless strategy loses nothing and costs about the same,
while the lossy strategy undercounts.
"""

import time

from conftest import run_once

from repro.core.locking import (LossySharedBuckets, PerThreadBuckets,
                                locked_reference_count)

WORKERS = 4
UPDATES = 50_000


def test_tbl_locking(benchmark, artifacts):
    def experiment():
        shared = LossySharedBuckets()
        t0 = time.perf_counter()
        locked_reference_count(WORKERS, UPDATES,
                               lambda w, i: 100.0, shared)
        shared_time = time.perf_counter() - t0

        per_thread = PerThreadBuckets()
        t0 = time.perf_counter()
        locked_reference_count(WORKERS, UPDATES,
                               lambda w, i: 100.0, per_thread)
        per_thread_time = time.perf_counter() - t0
        return shared, shared_time, per_thread, per_thread_time

    shared, shared_time, per_thread, per_thread_time = \
        run_once(benchmark, experiment)

    attempted = WORKERS * UPDATES
    rows = ["Section 3.4 reproduction: concurrent bucket updates "
            f"({WORKERS} threads x {UPDATES} updates, same bucket)", "",
            f"strategy     recorded/attempted      lost    wall(s)",
            "-" * 56,
            f"lossy shared  {shared.recorded():7d}/{attempted}   "
            f"{shared.loss_rate():7.2%}   {shared_time:.3f}",
            f"per-thread    {per_thread.recorded():7d}/{attempted}   "
            f"{0:7.2%}   {per_thread_time:.3f}", "",
            "paper (C, 2 CPUs): lossy <1% lost in the worst case; "
            "CPython's coarser thread interleaving loses more, which "
            "is why the library defaults to per-thread profiles."]
    artifacts.add("\n".join(rows))

    benchmark.extra_info["lossy_loss_rate"] = round(
        shared.loss_rate(), 4)
    benchmark.extra_info["per_thread_lost"] = (
        attempted - per_thread.recorded())

    # Structural claims.
    assert per_thread.recorded() == attempted           # lossless
    assert per_thread.histogram().count(6) == attempted
    assert shared.recorded() <= attempted               # lossy is lossy
    assert shared.histogram().verify_checksum()

"""Figure 10: CIFS FindFirst/FindNext/read profiles on the client.

Paper: over a grep workload against a Windows CIFS server, the Windows
client's FindFirst and FindNext operations show peaks "farther to the
right than any other operation" (buckets 26-30), absent from the Linux
client's profiles, and alone accounting for ~12% of elapsed time.
Requests in bucket 18 and above involve the server; buckets to the left
are local to the client.
"""

from conftest import run_once

from repro.analysis import ProfileSelector, render_profile
from repro.net import build_cifs_mount
from repro.workloads import run_grep

SCALE = 0.03
STALL_BUCKET = 27  # >= ~80 ms: contains a delayed-ACK stall
SERVER_BUCKET = 18  # paper: >168us means server interaction


def run_client(flavor: str):
    mount = build_cifs_mount(scale=SCALE, flavor=flavor,
                             delayed_ack=True)
    run_grep(mount.client, mount.root)
    return mount


def test_fig10_cifs(benchmark, artifacts):
    def experiment():
        return run_client("windows"), run_client("linux")

    windows, linux = run_once(benchmark, experiment)
    wset = windows.client.fs_profiles()
    lset = linux.client.fs_profiles()

    artifacts.add("Figure 10 reproduction: CIFS client profiles under "
                  "grep (Windows client vs Linux client)")
    for op in ("FIND_FIRST", "FIND_NEXT", "read"):
        if wset.get(op):
            artifacts.add(f"--- {op} (Windows client) ---\n"
                          + render_profile(wset[op]))
    if lset.get("FIND_FIRST"):
        artifacts.add("--- FIND_FIRST (Linux client) ---\n"
                      + render_profile(lset["FIND_FIRST"]))

    # Elapsed-time share of the stalled FIND operations.
    stall_cycles = sum(
        wset[op].spec.mid(b) * c
        for op in ("FIND_FIRST", "FIND_NEXT") if wset.get(op)
        for b, c in wset[op].counts().items() if b >= STALL_BUCKET)
    elapsed_cycles = windows.client.kernel.now
    share = stall_cycles / elapsed_cycles

    selector = ProfileSelector()
    flagged = selector.interesting(lset, wset, limit=6)

    artifacts.add(
        f"Windows client elapsed: "
        f"{windows.client.elapsed_seconds():.2f}s; stalled FIND "
        f"transactions account for {share:.0%} of it (paper: 12%)\n"
        f"Linux client elapsed: {linux.client.elapsed_seconds():.2f}s\n"
        f"selector flags (Linux vs Windows): {flagged}")

    benchmark.extra_info["stall_share"] = round(share, 3)
    benchmark.extra_info["windows_elapsed_s"] = round(
        windows.client.elapsed_seconds(), 3)
    benchmark.extra_info["linux_elapsed_s"] = round(
        linux.client.elapsed_seconds(), 3)

    # Shape assertions.
    wff = wset["FIND_FIRST"]
    assert any(b >= STALL_BUCKET for b in wff.counts())
    assert all(b < STALL_BUCKET for b in lset["FIND_FIRST"].counts())
    # FIND transactions always involve the server (>= bucket 18); the
    # buffered FIND_NEXT continuations are local (< bucket 18).
    assert min(wff.counts()) >= SERVER_BUCKET
    wfn = wset.get("FIND_NEXT")
    if wfn is not None:
        assert any(b < SERVER_BUCKET for b in wfn.counts())
    # The pathology is a visible share of elapsed time, and the Windows
    # client is slower end to end.
    assert 0.03 < share < 0.5
    assert windows.client.elapsed_seconds() > \
        linux.client.elapsed_seconds()
    # The automated selector points at the FIND operations.
    assert "FIND_FIRST" in flagged

"""Performance of the continuous profiling service's ingest path.

The paper's profiles are "≈1 KB per operation" precisely so they are
cheap to ship and merge; these benches keep the service honest about
that budget: decode+merge cost of one pushed segment, end-to-end TCP
push round-trip throughput, rolling-store rotation, and the online
differential scoring of a closed segment.
"""

from repro.core.profileset import ProfileSet
from repro.service.alerts import DifferentialAlerter
from repro.service.client import ServiceClient
from repro.service.server import ProfileServer, ProfileService, ServiceConfig
from repro.service.store import SegmentStore


def realistic_segment(ops_per_profile: int = 1000,
                      operations: int = 12) -> ProfileSet:
    """A profile set shaped like one collector segment: ~12 ops, wide."""
    pset = ProfileSet(name="")
    for i in range(operations):
        name = f"op{i:02d}"
        for b in range(5, 30):
            pset.profile(name).histogram.add_to_bucket(
                b, (b * 37 + i * 11) % 97 + 1)
    return pset


def test_perf_ingest_decode_merge(benchmark):
    """Decode one binary segment payload and merge it into the store."""
    payload = realistic_segment().to_bytes()
    service = ProfileService(ServiceConfig(segment_seconds=3600.0,
                                           retention=16))

    result = benchmark(service.ingest_payload, payload)
    assert result.total_ops() > 0
    assert service.ingest_errors == 0


def test_perf_push_round_trip(benchmark):
    """Full TCP round trip: frame, send, decode, merge, ack."""
    server = ProfileServer(ProfileService(
        ServiceConfig(segment_seconds=3600.0, retention=16)))
    server.serve_in_thread()
    host, port = server.address
    pset = realistic_segment()
    try:
        with ServiceClient(host, port) as client:
            status = benchmark(client.push, pset)
        assert "ops" in status
    finally:
        server.shutdown()
        server.server_close()


def test_perf_store_rotation(benchmark):
    """Close + open a segment (the per-interval housekeeping cost)."""
    clock_value = [0.0]
    store = SegmentStore(1.0, retention=256, clock=lambda: clock_value[0])
    pset = realistic_segment()

    def rotate():
        store.ingest(pset)
        clock_value[0] += 1.0
        store.advance()

    benchmark(rotate)
    assert store.segments_closed > 0


def test_perf_differential_scoring(benchmark):
    """Score one closed segment against the rolling baseline."""
    alerter = DifferentialAlerter(min_ops=10, threshold=0.5)
    baseline = realistic_segment()
    for i in range(4):
        alerter.observe(i, baseline)
    segment = realistic_segment(operations=12)

    def score():
        return alerter.observe(99, segment)

    alerts = benchmark(score)
    assert isinstance(alerts, list)

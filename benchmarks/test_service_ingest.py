"""Performance of the continuous profiling service's ingest path.

The paper's profiles are "≈1 KB per operation" precisely so they are
cheap to ship and merge; these benches keep the service honest about
that budget: decode+merge cost of one pushed segment, end-to-end TCP
push round-trip throughput, rolling-store rotation, the online
differential scoring of a closed segment, and the transport showdown —
the asyncio event loop against the thread-per-connection server under
a concurrent pusher fleet (throughput and p99 push latency).
"""

import os
import threading
import time

from repro.core.profileset import ProfileSet
from repro.service.aio_server import AsyncProfileServer
from repro.service.alerts import DifferentialAlerter
from repro.service.client import ServiceClient
from repro.service.server import ProfileServer, ProfileService, ServiceConfig
from repro.service.store import SegmentStore


def realistic_segment(ops_per_profile: int = 1000,
                      operations: int = 12) -> ProfileSet:
    """A profile set shaped like one collector segment: ~12 ops, wide."""
    pset = ProfileSet(name="")
    for i in range(operations):
        name = f"op{i:02d}"
        for b in range(5, 30):
            pset.profile(name).histogram.add_to_bucket(
                b, (b * 37 + i * 11) % 97 + 1)
    return pset


def test_perf_ingest_decode_merge(benchmark):
    """Decode one binary segment payload and merge it into the store."""
    payload = realistic_segment().to_bytes()
    service = ProfileService(ServiceConfig(segment_seconds=3600.0,
                                           retention=16))

    result = benchmark(service.ingest_payload, payload)
    assert result.total_ops() > 0
    assert service.ingest_errors == 0


def test_perf_push_round_trip(benchmark):
    """Full TCP round trip: frame, send, decode, merge, ack."""
    server = ProfileServer(ProfileService(
        ServiceConfig(segment_seconds=3600.0, retention=16)))
    server.serve_in_thread()
    host, port = server.address
    pset = realistic_segment()
    try:
        with ServiceClient(host, port) as client:
            status = benchmark(client.push, pset)
        assert "ops" in status
    finally:
        server.shutdown()
        server.server_close()


def _drive_pushers(address, pushers, pushes_each, payload):
    """Concurrent pushers against one server; returns (wall, latencies)."""
    host, port = address
    latencies = [[] for _ in range(pushers)]
    barrier = threading.Barrier(pushers + 1)

    def pusher(slot):
        with ServiceClient(host, port) as client:
            barrier.wait()
            mine = latencies[slot]
            for _ in range(pushes_each):
                t0 = time.perf_counter()
                client.push_payload(payload)
                mine.append(time.perf_counter() - t0)

    threads = [threading.Thread(target=pusher, args=(i,))
               for i in range(pushers)]
    for thread in threads:
        thread.start()
    barrier.wait()
    t0 = time.perf_counter()
    for thread in threads:
        thread.join()
    wall = time.perf_counter() - t0
    flat = sorted(lat for slot in latencies for lat in slot)
    p99 = flat[int(len(flat) * 0.99) - 1]
    return wall, p99


def test_perf_async_vs_threaded_ingest(benchmark, artifacts):
    """The tentpole number: event loop vs thread-per-connection ingest.

    The same concurrent pusher fleet (256 connections — the regime the
    event loop exists for; thread-per-connection spends its budget on
    scheduler churn well before this) is thrown at both transports;
    throughput and p99 push latency land in the results artifact.  The
    async-beats-threaded assertion is enforced outside CI only (shared
    runners schedule threads too noisily to gate on).
    """
    pushers, pushes_each = 256, 8
    payload = realistic_segment(operations=4).to_bytes()
    results = {}

    def run_threaded():
        server = ProfileServer(ProfileService(
            ServiceConfig(segment_seconds=3600.0, retention=16,
                          max_pending=pushers * 2)))
        server.serve_in_thread()
        try:
            return _drive_pushers(server.address, pushers, pushes_each,
                                  payload)
        finally:
            server.shutdown()
            server.server_close()

    def run_async():
        server = AsyncProfileServer(ProfileService(
            ServiceConfig(segment_seconds=3600.0, retention=16,
                          max_pending=pushers * 2)))
        server.serve_in_thread()
        try:
            return _drive_pushers(server.address, pushers, pushes_each,
                                  payload)
        finally:
            server.server_close()

    run_async()  # warm both paths once before timing
    run_threaded()
    results["threaded"] = run_threaded()
    results["async"] = benchmark.pedantic(run_async, rounds=1,
                                          iterations=1)

    total = pushers * pushes_each
    lines = [f"{'engine':<10} {'pushes/s':>10} {'p99 ms':>8}"]
    rates = {}
    for engine in ("threaded", "async"):
        wall, p99 = results[engine]
        rates[engine] = total / wall
        lines.append(f"{engine:<10} {total / wall:>10.0f} "
                     f"{p99 * 1e3:>8.2f}")
    speedup = rates["async"] / rates["threaded"]
    lines.append(f"async/threaded throughput ratio: {speedup:.2f}x")
    artifacts.add(f"# service ingest: {pushers} concurrent pushers, "
                  f"{total} pushes of {len(payload)} B\n" +
                  "\n".join(lines))
    benchmark.extra_info["threaded_pushes_per_s"] = round(
        rates["threaded"])
    benchmark.extra_info["async_pushes_per_s"] = round(rates["async"])
    benchmark.extra_info["speedup"] = round(speedup, 3)
    if not os.environ.get("CI"):
        assert speedup > 1.0, (
            f"async ingest only {speedup:.2f}x of threaded "
            f"({rates['async']:.0f} vs {rates['threaded']:.0f} pushes/s)")


def test_perf_store_rotation(benchmark):
    """Close + open a segment (the per-interval housekeeping cost)."""
    clock_value = [0.0]
    store = SegmentStore(1.0, retention=256, clock=lambda: clock_value[0])
    pset = realistic_segment()

    def rotate():
        store.ingest(pset)
        clock_value[0] += 1.0
        store.advance()

    benchmark(rotate)
    assert store.segments_closed > 0


def test_perf_differential_scoring(benchmark):
    """Score one closed segment against the rolling baseline."""
    alerter = DifferentialAlerter(min_ops=10, threshold=0.5)
    baseline = realistic_segment()
    for i in range(4):
        alerter.observe(i, baseline)
    segment = realistic_segment(operations=12)

    def score():
        return alerter.observe(99, segment)

    alerts = benchmark(score)
    assert isinstance(alerts, list)

"""Section 5.1: memory footprint of the profiler.

Paper: the aggregation functions touch 231 bytes of cache; per-FS
instrumentation code adds <9 KB; "a profile occupies a fixed memory
area ... usually less than 1 KB" per operation.

Measures the Python-side equivalent: the serialized and in-memory size
of the profiles a full grep run accumulates, per operation, plus the
total for a complete profile set.  Python objects are fatter than C
arrays, so the bound asserted is the structural one: profile size is
fixed by the bucket count (~64 counters), independent of the number of
requests profiled.
"""

import sys

from conftest import run_once

from repro.system import System
from repro.workloads import build_source_tree, run_grep


def deep_size(hist) -> int:
    """Approximate in-memory bytes of one histogram's counters."""
    counts = hist.counts()
    return (sys.getsizeof(counts)
            + sum(sys.getsizeof(k) + sys.getsizeof(v)
                  for k, v in counts.items()))


def test_tbl_memory(benchmark, artifacts):
    def experiment():
        small = System.build(with_timer=False, seed=1)
        root, _ = build_source_tree(small, scale=0.01)
        run_grep(small, root)
        big = System.build(with_timer=False, seed=1)
        root, _ = build_source_tree(big, scale=0.05)
        run_grep(big, root)
        return small, big

    small, big = run_once(benchmark, experiment)

    rows = ["Section 5.1 reproduction: profile memory footprint", ""]
    rows.append("operation      requests   buckets   bytes   text-bytes")
    rows.append("-" * 58)
    for prof in big.fs_profiles().by_total_latency():
        hist = prof.histogram
        text = len("\n".join(f"{b} {c}"
                             for b, c in hist.counts().items()))
        rows.append(f"{prof.operation:14s} {hist.total_ops:8d}   "
                    f"{len(hist):7d}   {deep_size(hist):5d}   {text:6d}")

    total_small = sum(deep_size(p.histogram)
                      for p in small.fs_profiles())
    total_big = sum(deep_size(p.histogram) for p in big.fs_profiles())
    ratio_requests = (big.fs_profiles().total_ops()
                      / small.fs_profiles().total_ops())
    rows.append("")
    rows.append(f"5x workload = {ratio_requests:.1f}x requests, but "
                f"profile memory {total_small} -> {total_big} bytes "
                f"({total_big / total_small:.2f}x): size is fixed by "
                "bucket count, not request count (paper: <1 KB/op)")
    artifacts.add("\n".join(rows))

    benchmark.extra_info["bytes_per_op_max"] = max(
        deep_size(p.histogram) for p in big.fs_profiles())

    # Structural assertions.
    for prof in big.fs_profiles():
        assert len(prof.histogram) <= 64      # bounded bucket count
        # Text serialization (the /proc format) is well under 1 KB/op.
        text = len("\n".join(
            f"{b} {c}" for b, c in prof.counts().items()))
        assert text < 1024
    # Memory is ~flat in workload size (allow 2x slack for dict noise).
    assert total_big < 2 * total_small

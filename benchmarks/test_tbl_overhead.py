"""Section 5.2: profiler CPU-time overhead under Postmark.

Paper (1.7 GHz P4, Postmark 20k files / 200k transactions): system time
16.8% of elapsed on unmodified Ext2; full instrumentation adds 4.0%
system time, decomposed by building partial variants — empty hook
bodies +1.5%, hooks that read the TSC +2.0% (so 0.5% for the reads),
sorting/storing the rest (+2.0%); wait and user times unaffected.  The
in-profile overhead (between the two TSC reads) is ~40 cycles, flooring
profiles at bucket 5.

Reproduced at 1/10 scale with the same variant ladder; both the syscall
and FS layers carry hooks, as in the paper's instrumented Ext2.
"""

from conftest import run_once

from repro.system import System
from repro.workloads import PostmarkConfig, run_postmark

CONFIG = PostmarkConfig(files=800, transactions=8000)
VARIANTS = ("off", "empty", "tsc_only", "full")


def run_variant(variant: str):
    system = System.build(fs_type="ext2", with_timer=False,
                          instrumentation=variant, seed=2006)
    report = run_postmark(system, CONFIG)
    return system, report


def test_tbl_overhead(benchmark, artifacts):
    def experiment():
        return {v: run_variant(v) for v in VARIANTS}

    results = run_once(benchmark, experiment)
    base = results["off"][1]

    rows = ["Section 5.2 reproduction: Postmark "
            f"({CONFIG.files} files, {CONFIG.transactions} transactions)",
            "", "variant    elapsed(s)  system(s)  +system vs off",
            "-" * 50]
    overhead = {}
    for variant in VARIANTS:
        report = results[variant][1]
        delta = (report.system - base.system) / base.system
        overhead[variant] = delta
        rows.append(f"{variant:10s} {report.elapsed:9.3f}  "
                    f"{report.system:8.3f}   {delta:+.1%}")
    rows.append("")
    rows.append(f"paper: empty +1.5%, tsc +2.0%, full +4.0% system time")
    calls = overhead["empty"]
    tsc = overhead["tsc_only"] - overhead["empty"]
    store = overhead["full"] - overhead["tsc_only"]
    rows.append(f"ours : calls {calls:+.1%}, tsc reads {tsc:+.1%}, "
                f"sort/store {store:+.1%}, total {overhead['full']:+.1%}")

    # Wait/user time unaffected by instrumentation (within noise).
    wait_delta = abs(results["full"][1].wait - base.wait) \
        / max(base.wait, 1e-9)
    rows.append(f"wait-time change under full instrumentation: "
                f"{wait_delta:.1%} (paper: unaffected)")

    # The recorded floor: smallest bucket in any FS profile.
    full_system = results["full"][0]
    floors = [prof.histogram.span()[0]
              for prof in full_system.fs_profiles() if prof.total_ops]
    rows.append(f"smallest recorded bucket: {min(floors)} "
                f"(paper's 40-cycle hook floor put theirs at bucket 5; "
                f"our cheapest op body is ~40 cycles with jitter, so "
                f"bucket 4 +/- 1)")
    artifacts.add("\n".join(rows))

    benchmark.extra_info["overhead_full"] = round(overhead["full"], 4)
    benchmark.extra_info["overhead_empty"] = round(overhead["empty"], 4)
    benchmark.extra_info["overhead_tsc"] = round(
        overhead["tsc_only"], 4)

    # Shape assertions: the ladder is ordered, the total modest, and
    # the split roughly matches (calls < store, tsc smallest).
    assert 0 < overhead["empty"] < overhead["tsc_only"] \
        < overhead["full"]
    assert overhead["full"] < 0.12           # a few percent, not tens
    assert store > tsc                        # storing dominates reads
    assert wait_delta < 0.05
    assert min(floors) >= 3

    # The off variant is measured-zero at the hooked layers, not merely
    # cheap: disabled probes never emit, so the user and FS profile
    # sets gain no buckets at all.  (The driver layer sits outside the
    # paper's variant ladder and profiles under every variant.)
    off_system = results["off"][0]
    for pset in (off_system.user_profiles(), off_system.fs_profiles()):
        assert pset.total_ops() == 0
        assert all(not prof.histogram.counts() for prof in pset)

"""Columnar vs legacy warehouse engines on a 100+ segment directory.

Acceptance bar for the columnar refactor: multi-segment range queries
and the compaction merge phase must be at least 3x faster than the
legacy per-segment ``ProfileSet`` decode + dict-merge path, while
staying byte-identical to it.  The byte-identity half is always
asserted; the throughput ratios are recorded in extra_info and only
enforced outside CI (shared runners time too noisily to gate on).

Full ``compact()`` wall time is recorded too, but not gated: it is
dominated by the durable write path (encode + atomic rename per
output), which the engine deliberately leaves untouched.
"""

import os
import time

from repro.core.profileset import ProfileSet
from repro.warehouse import (CompactionPolicy, Warehouse,
                             merged_profile_set)
from repro.warehouse.tiers import plan_compactions

SEGMENTS = 120
QUERY_ROUNDS = 5
POLICY = CompactionPolicy(fanout=4, keep=(4, 4, 4))


def synthetic_segment(seed: int, operations: int = 10) -> ProfileSet:
    """One collector-shaped segment: ~10 ops, 40 busy buckets each."""
    pset = ProfileSet()
    for i in range(operations):
        hist = pset.profile(f"op{i:02d}").histogram
        for b in range(5, 45):
            hist.add_to_bucket(b, (b * 37 + i * 11 + seed * 7) % 97 + 1)
    return pset


def build_warehouse(root, engine="columnar"):
    wh = Warehouse(root, policy=POLICY, engine=engine)
    wh.ingest_many("bench",
                   [(synthetic_segment(e), e) for e in range(SEGMENTS)])
    return wh


def best_of(rounds, fn):
    elapsed = float("inf")
    result = None
    for _ in range(rounds):
        t0 = time.perf_counter()
        result = fn()
        elapsed = min(elapsed, time.perf_counter() - t0)
    return elapsed, result


def test_perf_warehouse_query_columnar_vs_legacy(benchmark, artifacts,
                                                 tmp_path):
    """Full-history query over 120 segments, both engines."""
    columnar = build_warehouse(tmp_path / "wh")
    legacy = Warehouse(tmp_path / "wh", policy=POLICY, engine="legacy")

    columnar.query("bench")  # decode once; repeat queries hit the cache
    legacy_elapsed, legacy_result = best_of(
        3, lambda: [legacy.query("bench")
                    for _ in range(QUERY_ROUNDS)][-1])
    columnar_elapsed, columnar_result = best_of(
        3, lambda: [columnar.query("bench")
                    for _ in range(QUERY_ROUNDS)][-1])
    benchmark.pedantic(lambda: columnar.query("bench"),
                       rounds=3, iterations=1)

    assert columnar_result.to_bytes() == legacy_result.to_bytes()
    speedup = legacy_elapsed / columnar_elapsed
    benchmark.extra_info["segments"] = SEGMENTS
    benchmark.extra_info["query_rounds"] = QUERY_ROUNDS
    benchmark.extra_info["legacy_seconds"] = round(legacy_elapsed, 4)
    benchmark.extra_info["columnar_seconds"] = round(columnar_elapsed, 4)
    benchmark.extra_info["speedup"] = round(speedup, 3)
    benchmark.extra_info["cache_hits"] = columnar.cache_hits_total
    artifacts.add(
        f"warehouse query, {SEGMENTS} segments x {QUERY_ROUNDS} rounds\n"
        f"  legacy:   {legacy_elapsed:.4f}s\n"
        f"  columnar: {columnar_elapsed:.4f}s  ({speedup:.1f}x)\n"
        f"  byte-identical: yes")
    if not os.environ.get("CI"):
        assert speedup >= 3.0, (
            f"columnar query only {speedup:.2f}x faster "
            f"({columnar_elapsed:.4f}s vs {legacy_elapsed:.4f}s)")


def test_perf_warehouse_compaction_columnar_vs_legacy(benchmark,
                                                      artifacts,
                                                      tmp_path):
    """The compaction merge phase over the planned tier-0 groups."""
    wh = build_warehouse(tmp_path / "wh")
    groups = plan_compactions(wh.index, "bench", wh.policy)
    assert sum(len(g.inputs) for g in groups) >= 100

    def legacy_merge():
        return [ProfileSet.merged([wh.load_segment(m) for m in g.inputs])
                for g in groups]

    def columnar_merge():
        return [merged_profile_set((wh.load_columns(m), dict(m.resid))
                                   for m in g.inputs)
                for g in groups]

    columnar_merge()  # warm the decoded-columns cache
    legacy_elapsed, legacy_result = best_of(3, legacy_merge)
    columnar_elapsed, columnar_result = best_of(3, columnar_merge)
    benchmark.pedantic(columnar_merge, rounds=3, iterations=1)

    assert all(a.to_bytes() == b.to_bytes()
               for a, b in zip(legacy_result, columnar_result))
    speedup = legacy_elapsed / columnar_elapsed

    # The unagated end-to-end numbers: compact() to a fixpoint on two
    # identical directories, one per engine (write path included).
    full = {}
    for engine in ("columnar", "legacy"):
        full_wh = build_warehouse(tmp_path / f"full-{engine}", engine)
        t0 = time.perf_counter()
        while full_wh.compact():
            pass
        full[engine] = time.perf_counter() - t0

    benchmark.extra_info["groups"] = len(groups)
    benchmark.extra_info["legacy_seconds"] = round(legacy_elapsed, 4)
    benchmark.extra_info["columnar_seconds"] = round(columnar_elapsed, 4)
    benchmark.extra_info["speedup"] = round(speedup, 3)
    benchmark.extra_info["full_compact_legacy_seconds"] = round(
        full["legacy"], 4)
    benchmark.extra_info["full_compact_columnar_seconds"] = round(
        full["columnar"], 4)
    artifacts.add(
        f"compaction merge phase, {len(groups)} groups "
        f"({SEGMENTS} input segments)\n"
        f"  legacy:   {legacy_elapsed:.4f}s\n"
        f"  columnar: {columnar_elapsed:.4f}s  ({speedup:.1f}x)\n"
        f"  full compact() incl. write path: "
        f"legacy {full['legacy']:.4f}s, "
        f"columnar {full['columnar']:.4f}s\n"
        f"  byte-identical: yes")
    if not os.environ.get("CI"):
        assert speedup >= 3.0, (
            f"columnar compaction merge only {speedup:.2f}x faster "
            f"({columnar_elapsed:.4f}s vs {legacy_elapsed:.4f}s)")

"""Shared infrastructure for the experiment benchmarks.

Every benchmark regenerates one of the paper's tables or figures.  The
``artifacts`` fixture gives each bench a place to write the rendered
ASCII figure / table rows (under ``benchmarks/results/``), so a run
leaves the full set of regenerated artifacts on disk, and
``benchmark.extra_info`` carries the headline numbers into
pytest-benchmark's report.
"""

import os

import pytest

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")


class ArtifactSink:
    """Writes one experiment's rendered output to benchmarks/results/."""

    def __init__(self, name: str):
        self.name = name
        self.path = os.path.join(RESULTS_DIR, f"{name}.txt")
        self._chunks = []

    def add(self, text: str) -> None:
        self._chunks.append(text)

    def flush(self) -> str:
        os.makedirs(RESULTS_DIR, exist_ok=True)
        body = "\n\n".join(self._chunks) + "\n"
        with open(self.path, "w") as f:
            f.write(body)
        return body


@pytest.fixture
def artifacts(request):
    sink = ArtifactSink(request.node.name.replace("test_", ""))
    yield sink
    if sink._chunks:
        sink.flush()


def run_once(benchmark, fn):
    """Run an experiment exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(fn, rounds=1, iterations=1)

"""Figure 3 + Equation 3: preemption effects on zero-byte reads.

Paper: two processes issue 2e8 zero-byte reads on a preemptive and a
non-preemptive Linux 2.6.11; only the preemptive kernel shows requests
in the quantum bucket (their 26th), and the count matches the Eq. 3
expectation within 33%.  Small timer-interrupt peaks appear in both.

Scaling substitution: simulating 2e8 requests is infeasible in Python,
so the quantum is shortened from 58 ms to 1 ms, which raises the
per-request preemption probability by the same factor and keeps the
expected quantum-bucket population in the tens at 4e5 requests.  The
theory check (measured vs expected) is unchanged.  The timer interrupt
keeps its 4 ms period and ~6 us cost (bucket-13 peak).
"""

from conftest import run_once

from repro.analysis import (forced_preemption_probability,
                            predict_preemption, quantum_bucket,
                            render_profile)
from repro.sim.engine import seconds
from repro.system import System
from repro.workloads import run_zero_byte_reads

QUANTUM = seconds(1e-3)
ITERATIONS = 150_000  # per process; 300k requests total


def run_reads(kernel_preemption: bool):
    system = System.build(num_cpus=1, quantum=QUANTUM,
                          kernel_preemption=kernel_preemption,
                          with_timer=True)
    run_zero_byte_reads(system, processes=2, iterations=ITERATIONS)
    return system


def test_fig3_preemption(benchmark, artifacts):
    def experiment():
        return run_reads(True), run_reads(False)

    preemptive, nonpreemptive = run_once(benchmark, experiment)
    prof_p = preemptive.user_profiles()["read"]
    prof_n = nonpreemptive.user_profiles()["read"]
    qb = quantum_bucket(QUANTUM)

    artifacts.add("Figure 3 reproduction: zero-byte read profiles\n"
                  f"(quantum scaled to 1 ms -> bucket {qb}; "
                  f"{2 * ITERATIONS} requests per kernel)")
    artifacts.add("--- preemptive kernel ---\n" + render_profile(prof_p))
    artifacts.add("--- non-preemptive kernel ---\n"
                  + render_profile(prof_n))

    preempted_p = sum(c for b, c in prof_p.counts().items() if b >= qb)
    preempted_n = sum(c for b, c in prof_n.counts().items() if b >= qb)
    pred = predict_preemption(prof_p, QUANTUM)
    timer_peak = sum(c for b, c in prof_p.counts().items()
                     if 12 <= b <= 14)

    artifacts.add(
        f"quantum-bucket population: preemptive={preempted_p}, "
        f"non-preemptive={preempted_n}\n"
        f"Eq.3 expectation: {pred.expected:.1f} "
        f"(measured {pred.measured}, error {pred.relative_error:.0%}; "
        f"paper matched within 33%)\n"
        f"timer-interrupt peak (buckets 12-14): {timer_peak} requests")

    benchmark.extra_info["preempted_preemptive"] = preempted_p
    benchmark.extra_info["preempted_nonpreemptive"] = preempted_n
    benchmark.extra_info["eq3_expected"] = round(pred.expected, 2)
    benchmark.extra_info["eq3_error"] = round(pred.relative_error, 3)

    # Shape assertions.
    assert preempted_p > 0
    assert preempted_n == 0
    assert timer_peak > 0
    # Theory check: generous 2x band (paper 33% at 670x our sample).
    assert pred.expected > 0
    assert 0.3 * pred.expected <= pred.measured <= 3.0 * pred.expected


def test_eq3_analytic(benchmark, artifacts):
    """Eq. 3 itself: Pr(fp) for the paper's parameter example."""

    def evaluate():
        return forced_preemption_probability(
            t_cpu=2 ** 10, t_period=2 ** 11, quantum=2 ** 26,
            yield_probability=0.01)

    pr = run_once(benchmark, evaluate)
    artifacts.add("Equation 3 at the paper's example parameters "
                  "(Y=0.01, t_cpu=2^10=t_period/2, Q=2^26):\n"
                  f"Pr(forced preemption) = {pr:.3e} "
                  "(paper prints 2.3e-280 using Q/t_cpu as the "
                  "exponent; either way: negligible)")
    benchmark.extra_info["pr_fp"] = pr
    assert pr < 1e-140

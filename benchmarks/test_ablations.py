"""Ablations of OSprof design choices called out in DESIGN.md.

* **Bucket resolution r** — Section 3: "r = 2 ... would double the
  profile resolution (bucket density) with a negligible increase in CPU
  overheads and doubled (yet small overall) memory overheads."
* **Disk elevator** — the substrate's request scheduler: the Figure 7
  fourth peak assumes an elevator; FIFO service inflates seek time.
* **Quantum size** — Equation 3: the expected preempted-request count
  scales inversely with Q.
"""

from conftest import run_once

from repro.core.buckets import BucketSpec
from repro.sim.engine import seconds
from repro.system import System
from repro.workloads import (RandomReadConfig, build_source_tree,
                             run_grep, run_random_read,
                             run_zero_byte_reads)


def test_abl_resolution(benchmark, artifacts):
    """r=2 doubles bucket density at ~no cost."""

    def experiment():
        out = {}
        for r in (1, 2):
            system = System.build(spec=BucketSpec(r), with_timer=False,
                                  seed=7)
            root, _ = build_source_tree(system, scale=0.02)
            run_grep(system, root)
            out[r] = system
        return out

    systems = run_once(benchmark, experiment)
    rows = ["Ablation: bucket resolution r", ""]
    buckets = {}
    for r, system in systems.items():
        prof = system.fs_profiles()["readdir"]
        buckets[r] = len(prof.histogram)
        rows.append(f"r={r}: readdir occupies {buckets[r]} buckets, "
                    f"{prof.total_ops} ops, span {prof.histogram.span()}")
    rows.append("")
    rows.append("density roughly doubles; total ops identical "
                "(same workload, same seed)")
    artifacts.add("\n".join(rows))

    p1 = systems[1].fs_profiles()["readdir"]
    p2 = systems[2].fs_profiles()["readdir"]
    assert p1.total_ops == p2.total_ops
    assert buckets[2] > buckets[1]
    # Same information when collapsed: r=2 bucket b covers r=1 bucket
    # b // 2.
    collapsed = {}
    for b, c in p2.counts().items():
        collapsed[b // 2] = collapsed.get(b // 2, 0) + c
    assert collapsed == p1.counts()


def test_abl_elevator(benchmark, artifacts):
    """Elevator scheduling beats FIFO on seek time under random I/O."""

    def experiment():
        from repro.workloads.randomread import random_read_body

        out = {}
        for elevator in (True, False):
            # Each process reads its own file, so requests from all
            # four actually queue at the disk concurrently (a shared
            # file would serialize them on i_sem instead).
            system = System.build(with_timer=False, seed=7, num_cpus=4)
            system.disk.elevator = elevator
            files = [system.tree.mkfile(system.root, f"f{i}", 64 << 20)
                     for i in range(4)]
            procs = [
                system.kernel.spawn(
                    lambda p, i=i: random_read_body(
                        system, p, files[i], 400, 512, str(i)),
                    f"reader{i}")
                for i in range(4)
            ]
            system.run(procs)
            out[elevator] = system
        return out

    systems = run_once(benchmark, experiment)
    seeks = {e: s.disk.total_seek_cycles / s.disk.requests_served
             for e, s in systems.items()}
    rows = ["Ablation: disk elevator vs FIFO "
            "(4 processes, random 512B direct reads)", ""]
    for e, s in systems.items():
        name = "elevator" if e else "fifo"
        rows.append(f"{name:9s} mean seek/request: "
                    f"{seeks[e] / 1.7e6:.3f} ms; elapsed "
                    f"{s.elapsed_seconds():.2f}s")
    artifacts.add("\n".join(rows))
    benchmark.extra_info["seek_ratio"] = round(
        seeks[False] / max(seeks[True], 1e-9), 2)
    assert seeks[True] < seeks[False]


def test_abl_readahead(benchmark, artifacts):
    """Sequential reads ride the drive's segment cache; random don't.

    The mechanism behind Figure 7's sharp third peak: after one media
    access the whole track is cached, so sequential I/O sees mostly
    ~45 us completions while random I/O pays seek + rotation.
    """

    def experiment():
        from repro.vfs.file import O_DIRECT, SEEK_SET

        out = {}
        for pattern in ("sequential", "random"):
            system = System.build(with_timer=False, seed=7)
            inode = system.tree.mkfile(system.root, "big", 32 << 20)
            rng = system.kernel.rng.fork("pattern")

            def body(proc, pattern=pattern, inode=inode, rng=rng):
                handle = system.vfs.open_inode(inode, flags=O_DIRECT)
                for i in range(600):
                    if pattern == "sequential":
                        pos = (i * 4096) % (inode.size - 4096)
                    else:
                        pos = rng.randint(0, inode.size - 4096)
                    yield from system.syscalls.invoke(
                        proc, "llseek",
                        system.vfs.llseek(proc, handle, pos, SEEK_SET))
                    yield from system.syscalls.invoke(
                        proc, "read",
                        system.vfs.read(proc, handle, 4096))

            proc = system.kernel.spawn(body, pattern)
            system.run([proc])
            out[pattern] = system
        return out

    systems = run_once(benchmark, experiment)
    rows = ["Ablation: drive readahead (segment cache) under "
            "sequential vs random direct reads", ""]
    hit_rates = {}
    for pattern, system in systems.items():
        hit_rates[pattern] = system.disk.cache.hit_rate()
        drv = system.driver_profiles()["disk_read"]
        rows.append(f"{pattern:11s} drive-cache hit rate "
                    f"{hit_rates[pattern]:6.1%}; mean disk read "
                    f"{drv.mean_latency() / 1.7e6:.3f} ms")
    artifacts.add("\n".join(rows))
    benchmark.extra_info.update(
        {f"hit_{k}": round(v, 3) for k, v in hit_rates.items()})
    assert hit_rates["sequential"] > 0.9
    # Random still hits ~50%: misaligned 4 KB reads span two blocks
    # and the second block's track was just cached by the first.
    assert hit_rates["random"] < 0.7
    assert hit_rates["sequential"] > hit_rates["random"] + 0.3


def test_abl_fragmentation(benchmark, artifacts):
    """Allocator fragmentation shifts the I/O peak right (aging).

    A fragmented layout breaks sequential block runs, so the drive's
    track cache stops absorbing reads and real seeks appear — the FS
    aging effect, visible purely in the latency profile.
    """

    def experiment():
        from repro.workloads import build_source_tree, run_grep

        out = {}
        for fragmentation in (0.0, 0.3):
            system = System.build(with_timer=False, seed=7)
            system.allocator.fragmentation = fragmentation
            system.fs.readahead = False  # isolate the layout effect
            root, _ = build_source_tree(system, scale=0.02, seed=7)
            run_grep(system, root)
            out[fragmentation] = system
        return out

    systems = run_once(benchmark, experiment)
    rows = ["Ablation: block-allocator fragmentation (FS aging) under "
            "grep", ""]
    seek_time = {}
    for fragmentation, system in systems.items():
        seek_time[fragmentation] = (system.disk.total_seek_cycles
                                    / max(1, system.disk.requests_served))
        drv = system.driver_profiles()["disk_read"]
        rows.append(f"fragmentation={fragmentation:.1f}: mean "
                    f"seek/request {seek_time[fragmentation] / 1.7e6:.4f} ms, "
                    f"drive-cache hit rate "
                    f"{system.disk.cache.hit_rate():.1%}, elapsed "
                    f"{system.elapsed_seconds():.3f} s")
    artifacts.add("\n".join(rows))
    benchmark.extra_info["seek_ratio"] = round(
        seek_time[0.3] / max(seek_time[0.0], 1e-9), 2)
    assert seek_time[0.3] > seek_time[0.0]
    assert systems[0.3].elapsed_seconds() > \
        systems[0.0].elapsed_seconds()


def test_abl_os_readahead(benchmark, artifacts):
    """OS readahead collapses the read profile's disk peak.

    With readahead a sequential consumer that does CPU work between
    reads finds its pages already resident/in flight: the disk peak of
    the read profile migrates into the cached peak — a latency-profile
    transformation OSprof makes directly visible.
    """

    def experiment():
        from repro.sim.process import CpuBurst

        out = {}
        for enabled in (True, False):
            system = System.build(with_timer=False, seed=7)
            system.fs.readahead = enabled
            inode = system.tree.mkfile(system.root, "big", 2 << 20)

            def body(proc, inode=inode, system=system):
                handle = system.vfs.open_inode(inode)
                while True:
                    n = yield from system.syscalls.invoke(
                        proc, "read",
                        system.vfs.read(proc, handle, 4096))
                    if n == 0:
                        return None
                    yield CpuBurst(200_000)  # process the page

            proc = system.kernel.spawn(body, "seq")
            system.run([proc])
            out[enabled] = system
        return out

    systems = run_once(benchmark, experiment)
    rows = ["Ablation: OS readahead under a sequential read+process "
            "loop", ""]
    slow_counts = {}
    for enabled, system in systems.items():
        prof = system.fs_profiles()["read"]
        slow_counts[enabled] = sum(
            c for b, c in prof.counts().items() if b >= 15)
        name = "readahead" if enabled else "none"
        rows.append(f"{name:10s} slow reads {slow_counts[enabled]:5d}"
                    f"/{prof.total_ops}; mean "
                    f"{prof.mean_latency():9.0f} cycles; elapsed "
                    f"{system.elapsed_seconds() * 1e3:6.1f} ms")
    artifacts.add("\n".join(rows))
    benchmark.extra_info["slow_with"] = slow_counts[True]
    benchmark.extra_info["slow_without"] = slow_counts[False]
    assert slow_counts[True] < slow_counts[False] / 20


def test_abl_quantum(benchmark, artifacts):
    """Preempted-request count scales ~inversely with the quantum."""

    def experiment():
        out = {}
        for ms in (0.5, 1.0, 2.0):
            system = System.build(num_cpus=1, kernel_preemption=True,
                                  quantum=seconds(ms * 1e-3),
                                  with_timer=False, seed=7)
            run_zero_byte_reads(system, processes=2, iterations=40_000)
            prof = system.user_profiles()["read"]
            from repro.analysis import quantum_bucket
            qb = quantum_bucket(seconds(ms * 1e-3))
            out[ms] = sum(c for b, c in prof.counts().items()
                          if b >= qb)
        return out

    preempted = run_once(benchmark, experiment)
    rows = ["Ablation: quantum size vs preempted requests "
            "(80k zero-byte reads, preemptive kernel)", ""]
    for ms, count in sorted(preempted.items()):
        rows.append(f"quantum {ms:.1f} ms: {count} requests in the "
                    "quantum bucket")
    rows.append("")
    rows.append("Eq. 3: halving Q doubles the expectation.")
    artifacts.add("\n".join(rows))
    benchmark.extra_info.update(
        {f"q_{ms}ms": c for ms, c in preempted.items()})
    assert preempted[0.5] > preempted[2.0]

"""Figure 6: llseek under random reads — i_sem contention and the fix.

Paper: with two processes randomly reading the same file via O_DIRECT,
the llseek profile grows a right peak "strikingly similar" to the read
profile (both wait on the inode semaphore held across the direct I/O);
the contention hits ~25% of llseeks; the patched kernel (lock only
directories) removes the peak and cuts the uncontended path from ~400
to ~120 cycles (~70%).
"""

from conftest import run_once

from repro.analysis import ProfileSelector, render_profile
from repro.system import System
from repro.workloads import RandomReadConfig, run_random_read

ITERATIONS = 2500
CONTENTION_BUCKET = 12  # above ~2.4us: waited on the semaphore


def run_workload(processes: int, patched: bool) -> System:
    system = System.build(fs_type="ext2", num_cpus=2,
                          patched_llseek=patched, with_timer=False)
    run_random_read(system, RandomReadConfig(processes=processes,
                                             iterations=ITERATIONS))
    return system


def test_fig6_llseek(benchmark, artifacts):
    def experiment():
        return (run_workload(1, False), run_workload(2, False),
                run_workload(2, True))

    single, double, patched = run_once(benchmark, experiment)
    p1 = single.fs_profiles()["llseek"]
    p2 = double.fs_profiles()["llseek"]
    read2 = double.fs_profiles()["read"]
    fixed = patched.fs_profiles()["llseek"]

    artifacts.add("Figure 6 reproduction: llseek under random reads")
    artifacts.add("--- READ (2 processes) ---\n" + render_profile(read2))
    artifacts.add("--- LLSEEK-UNPATCHED (2 processes) ---\n"
                  + render_profile(p2))
    artifacts.add("--- LLSEEK-UNPATCHED (1 process) ---\n"
                  + render_profile(p1))
    artifacts.add("--- LLSEEK-PATCHED (2 processes) ---\n"
                  + render_profile(fixed))

    contended = sum(c for b, c in p2.counts().items()
                    if b >= CONTENTION_BUCKET)
    rate = contended / p2.total_ops
    uncontended_mean = (
        sum(p2.spec.mid(b) * c for b, c in p2.counts().items()
            if b < CONTENTION_BUCKET)
        / max(1, sum(c for b, c in p2.counts().items()
                     if b < CONTENTION_BUCKET)))
    patched_mean = fixed.mean_latency()
    reduction = 1 - patched_mean / uncontended_mean

    selector = ProfileSelector()
    flagged = selector.interesting(single.fs_profiles(),
                                   double.fs_profiles(), limit=3)

    artifacts.add(
        f"contention rate (2 procs): {rate:.1%} (paper ~25%)\n"
        f"uncontended llseek: {uncontended_mean:.0f} cycles; "
        f"patched: {patched_mean:.0f} cycles "
        f"({reduction:.0%} reduction; paper 400->120, 70%)\n"
        f"automated selector flagged: {flagged}")

    benchmark.extra_info["contention_rate"] = round(rate, 3)
    benchmark.extra_info["unpatched_cycles"] = round(uncontended_mean)
    benchmark.extra_info["patched_cycles"] = round(patched_mean)
    benchmark.extra_info["reduction"] = round(reduction, 3)

    # Shape assertions.
    assert all(b < CONTENTION_BUCKET for b in p1.counts())
    assert 0.10 < rate < 0.45
    # The contended llseek peak overlaps the read peak's buckets.
    slow_llseek = {b for b, c in p2.counts().items() if b >= 18 and c}
    read_buckets = {b for b, c in read2.counts().items() if b >= 18 and c}
    assert slow_llseek & read_buckets
    # The patch removes contention entirely and cuts ~70%.
    assert all(b < CONTENTION_BUCKET for b in fixed.counts())
    assert 0.55 < reduction < 0.85
    # The automated tool would have pointed a human at llseek.
    assert "llseek" in flagged


def test_fig6_ntfs_control(benchmark, artifacts):
    """Section 6.1's closing check: NTFS shows no llseek contention.

    "We ran the same workload on a Windows NTFS file system and found
    no lock contention.  This is because keeping the current file
    position consistent is left to user-level applications on Windows."
    """

    def experiment():
        system = System.build(fs_type="ntfs", num_cpus=2,
                              with_timer=False)
        run_random_read(system, RandomReadConfig(processes=2,
                                                 iterations=ITERATIONS))
        return system

    system = run_once(benchmark, experiment)
    llseek = system.fs_profiles()["llseek"]
    artifacts.add("Section 6.1 NTFS control: llseek under the same "
                  "2-process random-read workload\n"
                  + render_profile(llseek))
    contended = sum(c for b, c in llseek.counts().items()
                    if b >= CONTENTION_BUCKET)
    artifacts.add(f"contended llseeks: {contended} (paper: none)")
    benchmark.extra_info["contended"] = contended
    assert contended == 0

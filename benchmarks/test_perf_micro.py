"""Microbenchmarks of the library's hot paths (multi-round timing).

Unlike the experiment benches (one-shot regenerations), these measure
the reproduction's own performance: the per-sample profiling cost (the
Python analogue of the paper's 200-cycle hook budget), histogram
comparison, and simulator event throughput.  pytest-benchmark runs them
with its normal calibration, so regressions show up in the timing
table.
"""

import os
import time

from repro.analysis.compare import earth_movers_distance
from repro.core.buckets import BucketSpec, LatencyBuckets
from repro.core.pipeline import Pipeline, wire_probe
from repro.core.profile import Layer
from repro.core.profiler import Profiler
from repro.core.profileset import ProfileSet
from repro.core.shard import collect_sharded
from repro.sim.engine import Engine
from repro.sim.process import CpuBurst, YieldCpu
from repro.sim.scheduler import Kernel


def test_perf_bucket_add(benchmark):
    """One histogram update: the FSPROF_POST hot path."""
    hist = LatencyBuckets()

    def add():
        hist.add(123_456.0)

    benchmark(add)
    assert hist.verify_checksum()


def test_perf_bucket_lookup(benchmark):
    """The pure log2 bucketing arithmetic."""
    spec = BucketSpec()
    benchmark(spec.bucket, 987_654.321)


def test_perf_profiler_request(benchmark):
    """A full begin/end pair against the wall-clock TSC."""
    profiler = Profiler(name="perf")

    def request():
        token = profiler.begin("op")
        profiler.end(token)

    benchmark(request)


def test_perf_emd(benchmark):
    """EMD over two realistic 30-bucket profiles."""
    a = LatencyBuckets.from_counts({b: (b * 37) % 101 + 1
                                    for b in range(5, 35)})
    b_hist = LatencyBuckets.from_counts({b: (b * 53) % 97 + 1
                                         for b in range(5, 35)})
    result = benchmark(earth_movers_distance, a, b_hist)
    assert result >= 0


def test_perf_engine_events(benchmark):
    """Engine throughput: schedule + dispatch of 1000 events."""

    def run_1000():
        engine = Engine()
        for i in range(1000):
            engine.schedule(float(i), lambda: None)
        engine.run()
        return engine.events_processed

    assert benchmark(run_1000) == 1000


def test_perf_binary_codec_roundtrip(benchmark):
    """Encode + decode of a realistic multi-operation profile set."""
    pset = ProfileSet(name="bench")
    for op in ("read", "write", "llseek", "readdir", "lookup"):
        for b in range(5, 35):
            pset.profile(op).histogram.add_to_bucket(b, (b * 37) % 101 + 1)

    def roundtrip():
        return ProfileSet.from_bytes(pset.to_bytes())

    decoded = benchmark(roundtrip)
    assert decoded == pset
    benchmark.extra_info["payload_bytes"] = len(pset.to_bytes())


def test_perf_shard_scaling(benchmark):
    """Shard scaling: parallel collection must match serial bucket-for-bucket.

    The correctness half of the acceptance criterion is asserted hard:
    the merged 4-shard profile collected by 2 worker processes is
    byte-identical to the same shard plan run serially.  The wall-clock
    half is asserted only where it can hold — process-level parallelism
    of a CPU-bound simulation cannot beat serial on a single-core box,
    so there the timings are recorded (extra_info) but not enforced.
    """
    kwargs = dict(shards=4, seed=17, iterations=2_000, processes=2)

    t0 = time.perf_counter()
    serial = collect_sharded("randomread", workers=1, **kwargs)
    serial_elapsed = time.perf_counter() - t0

    parallel = benchmark.pedantic(
        lambda: collect_sharded("randomread", workers=2, **kwargs),
        rounds=1, iterations=1)
    t0 = time.perf_counter()
    collect_sharded("randomread", workers=2, **kwargs)
    parallel_elapsed = time.perf_counter() - t0

    assert parallel == serial
    assert parallel.to_bytes() == serial.to_bytes()
    benchmark.extra_info["serial_seconds"] = round(serial_elapsed, 4)
    benchmark.extra_info["parallel_seconds"] = round(parallel_elapsed, 4)
    benchmark.extra_info["speedup"] = round(
        serial_elapsed / parallel_elapsed, 3)
    benchmark.extra_info["cpus"] = os.cpu_count()
    if (os.cpu_count() or 1) >= 2:
        assert parallel_elapsed < serial_elapsed


def test_perf_scheduler_switches(benchmark):
    """Kernel throughput: 2 processes x 200 yield cycles."""

    def run_switches():
        kernel = Kernel(num_cpus=1, context_switch_cost=0.0,
                        tsc_skew_seconds=0.0)

        def body(proc):
            for _ in range(200):
                yield CpuBurst(10)
                yield YieldCpu()

        procs = [kernel.spawn(body, f"p{i}") for i in range(2)]
        kernel.run_until_done(procs)
        return kernel.engine.events_processed

    assert benchmark(run_switches) > 0


def test_perf_record_path_batched_vs_per_sample(benchmark):
    """The pipeline's batched record path against the seed per-sample path.

    Acceptance bar for the probe/event refactor: routing samples through
    per-CPU batch buffers with ``add_many``'s ``bit_length`` bucketing
    must be at least 1.3x faster than the pre-refactor
    ``Profiler.record`` loop over the same latencies, while producing a
    byte-identical ProfileSet.  The byte-identity half is always
    asserted; the throughput ratio is recorded in extra_info and only
    enforced outside CI (shared runners time too noisily to gate on).
    """
    n = 100_000
    # Deterministic pseudo-random latencies spanning the bucket range.
    state = 0x9E3779B9
    latencies = []
    for _ in range(n):
        state = (state * 1103515245 + 12345) & 0x7FFFFFFF
        latencies.append(float(state % 10_000_000 + 1))
    operations = ("read", "write", "llseek")

    def per_sample():
        profiler = Profiler(name="seed", layer=Layer.USER)
        record = profiler.record
        for i, lat in enumerate(latencies):
            record(operations[i % 3], lat)
        return profiler.profile_set()

    def batched():
        pipeline = Pipeline()
        profiler = Profiler(name="seed", layer=Layer.USER)
        probe = wire_probe(pipeline, Layer.USER, profiler=profiler)
        record = probe.record
        for i, lat in enumerate(latencies):
            record(operations[i % 3], lat)
        return profiler.profile_set()

    # Best-of-3 interleaved timings: a single pair is at the mercy of
    # whatever else the box is doing, and the ratio is what's gated.
    per_sample_elapsed = batched_elapsed = float("inf")
    baseline_set = None
    for _ in range(3):
        t0 = time.perf_counter()
        baseline_set = per_sample()
        per_sample_elapsed = min(per_sample_elapsed,
                                 time.perf_counter() - t0)
        t0 = time.perf_counter()
        batched()
        batched_elapsed = min(batched_elapsed, time.perf_counter() - t0)

    batched_set = benchmark.pedantic(batched, rounds=3, iterations=1)
    assert batched_set.to_bytes() == baseline_set.to_bytes()
    speedup = per_sample_elapsed / batched_elapsed
    benchmark.extra_info["samples"] = n
    benchmark.extra_info["per_sample_seconds"] = round(per_sample_elapsed, 4)
    benchmark.extra_info["batched_seconds"] = round(batched_elapsed, 4)
    benchmark.extra_info["speedup"] = round(speedup, 3)
    if not os.environ.get("CI"):
        assert speedup >= 1.3, (
            f"batched record path only {speedup:.2f}x faster "
            f"({batched_elapsed:.3f}s vs {per_sample_elapsed:.3f}s)")

"""Microbenchmarks of the library's hot paths (multi-round timing).

Unlike the experiment benches (one-shot regenerations), these measure
the reproduction's own performance: the per-sample profiling cost (the
Python analogue of the paper's 200-cycle hook budget), histogram
comparison, and simulator event throughput.  pytest-benchmark runs them
with its normal calibration, so regressions show up in the timing
table.
"""

from repro.analysis.compare import earth_movers_distance
from repro.core.buckets import BucketSpec, LatencyBuckets
from repro.core.profiler import Profiler
from repro.sim.engine import Engine
from repro.sim.process import CpuBurst, YieldCpu
from repro.sim.scheduler import Kernel


def test_perf_bucket_add(benchmark):
    """One histogram update: the FSPROF_POST hot path."""
    hist = LatencyBuckets()

    def add():
        hist.add(123_456.0)

    benchmark(add)
    assert hist.verify_checksum()


def test_perf_bucket_lookup(benchmark):
    """The pure log2 bucketing arithmetic."""
    spec = BucketSpec()
    benchmark(spec.bucket, 987_654.321)


def test_perf_profiler_request(benchmark):
    """A full begin/end pair against the wall-clock TSC."""
    profiler = Profiler(name="perf")

    def request():
        token = profiler.begin("op")
        profiler.end(token)

    benchmark(request)


def test_perf_emd(benchmark):
    """EMD over two realistic 30-bucket profiles."""
    a = LatencyBuckets.from_counts({b: (b * 37) % 101 + 1
                                    for b in range(5, 35)})
    b_hist = LatencyBuckets.from_counts({b: (b * 53) % 97 + 1
                                         for b in range(5, 35)})
    result = benchmark(earth_movers_distance, a, b_hist)
    assert result >= 0


def test_perf_engine_events(benchmark):
    """Engine throughput: schedule + dispatch of 1000 events."""

    def run_1000():
        engine = Engine()
        for i in range(1000):
            engine.schedule(float(i), lambda: None)
        engine.run()
        return engine.events_processed

    assert benchmark(run_1000) == 1000


def test_perf_scheduler_switches(benchmark):
    """Kernel throughput: 2 processes x 200 yield cycles."""

    def run_switches():
        kernel = Kernel(num_cpus=1, context_switch_cost=0.0,
                        tsc_skew_seconds=0.0)

        def body(proc):
            for _ in range(200):
                yield CpuBurst(10)
                yield YieldCpu()

        procs = [kernel.spawn(body, f"p{i}") for i in range(2)]
        kernel.run_until_done(procs)
        return kernel.engine.events_processed

    assert benchmark(run_switches) > 0

"""Wait-state sampler overhead: observer-free bytes, bounded cost.

Two halves of the "always-on" claim:

* byte-identity — arming the sampler changes *nothing* measured: all
  three layer profiles of a sampled run are byte-identical to an
  unsampled run under the same seed (always asserted, CI included);
* bounded cost — the sampler's record path (one process-table walk per
  tick) stays under a documented multiple of the unsampled wall time
  at the default half-millisecond interval (threshold enforced only
  outside CI, like every timing gate in this suite).
"""

import os
import time

from conftest import run_once

from repro.workloads.runner import (collect_layer_profiles,
                                    collect_sampled_run)

SEED = 2006
ITERATIONS = 600
INTERVAL = 0.0005 * 1.7e9  # 0.5 ms of simulated time, in cycles

#: Documented bound: at a 0.5 ms sampling interval the sampler may add
#: at most 75% to the wall time of a randomread run.  (Measured ~55-65%
#: on an unloaded box — the tick walks the process table ~32k times for
#: this run; the slack absorbs shared-runner noise.  Halving the rate
#: to 1 ms roughly halves the cost.)
OVERHEAD_BOUND = 0.75


def run_plain():
    return collect_layer_profiles("randomread", seed=SEED, processes=2,
                                  iterations=ITERATIONS)


def run_sampled():
    return collect_sampled_run("randomread",
                               state_sample_interval=INTERVAL,
                               seed=SEED, processes=2,
                               iterations=ITERATIONS)


def test_sampling_overhead(benchmark, artifacts):
    def experiment():
        plain_start = time.perf_counter()
        plain = run_plain()
        plain_elapsed = time.perf_counter() - plain_start
        sampled_start = time.perf_counter()
        sampled_layers, sprof, metrics = run_sampled()
        sampled_elapsed = time.perf_counter() - sampled_start
        return (plain, plain_elapsed, sampled_layers, sampled_elapsed,
                sprof, metrics)

    (plain, plain_elapsed, sampled_layers, sampled_elapsed, sprof,
     metrics) = run_once(benchmark, experiment)

    # -- byte-identity: the sampler is a pure observer ------------------------
    for layer in ("user", "fs", "driver"):
        assert sampled_layers[layer].to_bytes() == \
            plain[layer].to_bytes(), (
            f"{layer} profile moved when the sampler was armed")

    overhead = sampled_elapsed / plain_elapsed - 1.0
    capture_ns = metrics["osprof_sampler_overhead_ns_total"]
    per_tick_ns = capture_ns / max(1, metrics[
        "osprof_sample_intervals_total"])

    artifacts.add(
        "Wait-state sampler overhead (randomread, 2 procs, "
        f"{ITERATIONS} iterations, 0.5 ms interval)\n\n"
        f"unsampled wall time : {plain_elapsed * 1e3:8.1f} ms\n"
        f"sampled wall time   : {sampled_elapsed * 1e3:8.1f} ms "
        f"({overhead:+.1%})\n"
        f"samples captured    : {sprof.total_samples()} over "
        f"{sprof.intervals} interval(s)\n"
        f"capture loop cost   : {capture_ns / 1e6:.2f} ms total, "
        f"{per_tick_ns:.0f} ns/tick\n"
        f"documented bound    : +{OVERHEAD_BOUND:.0%} wall time\n"
        f"measured profiles   : byte-identical sampler on vs off")

    benchmark.extra_info["overhead"] = round(overhead, 4)
    benchmark.extra_info["per_tick_ns"] = round(per_tick_ns)
    benchmark.extra_info["samples"] = sprof.total_samples()

    # The sampler actually sampled (the run wasn't trivially short)...
    assert sprof.total_samples() > 100
    # ...its self-reported capture cost is consistent (captures cannot
    # have cost more than the whole sampled run)...
    assert 0 <= capture_ns <= sampled_elapsed * 1e9
    # ...and the wall-time cost stays within the documented bound
    # (outside CI: shared runners time too noisily to gate on).
    if not os.environ.get("CI"):
        assert overhead < OVERHEAD_BOUND, (
            f"sampler overhead {overhead:.1%} exceeds the documented "
            f"+{OVERHEAD_BOUND:.0%} bound")

"""Figure 8: direct correlation of readdir_past_EOF with the first peak.

Paper: the profiling macros were modified so that, instead of bucketing
the latency, each readdir call computes ``readdir_past_EOF`` (1 if the
file position is at/after the end of the directory) and the value
(times 1024, to be visible on a log axis) is bucketed into one value
profile if the call's latency fell in the first peak and another
otherwise.  The resulting histograms prove the first peak is exactly
the past-EOF calls.

The experiment here does the same live: a traversal whose readdir calls
are timed and fed, together with the flag, into a ValueCorrelator.
"""

from conftest import run_once

from repro.core import PeakRange, ValueCorrelator
from repro.system import System
from repro.workloads import build_source_tree

SCALE = 0.05
FIRST_PEAK = PeakRange("first_peak", 5, 8)


def traverse_with_correlation(system, root, correlator):
    """grep-style directory walk with the modified profiling macro."""

    def body(proc):
        stack = [root]
        while stack:
            directory = stack.pop()
            handle = system.vfs.open_inode(directory)
            while True:
                past_eof = 1 if handle.pos >= directory.size else 0
                start = system.kernel.read_tsc(proc)
                entries = yield from system.vfs.readdir(proc, handle)
                latency = system.kernel.read_tsc(proc) - start
                correlator.record(latency, past_eof)
                if not entries:
                    break
                for entry in entries:
                    inode = system.inodes.get(entry.ino)
                    if inode.is_dir:
                        stack.append(inode)
        return None

    proc = system.kernel.spawn(body, "walker")
    system.run([proc])


def test_fig8_correlation(benchmark, artifacts):
    def experiment():
        system = System.build(fs_type="ext2", with_timer=False)
        root, stats = build_source_tree(system, scale=SCALE)
        correlator = ValueCorrelator([FIRST_PEAK], value_scale=1024)
        traverse_with_correlation(system, root, correlator)
        return system, stats, correlator

    system, stats, correlator = run_once(benchmark, experiment)

    first = correlator.histogram("first_peak")
    other = correlator.histogram(ValueCorrelator.OTHER)
    artifacts.add("Figure 8 reproduction: readdir_past_EOF x 1024, "
                  "split by latency peak")
    artifacts.add(
        "first-peak requests value buckets:  "
        f"{sorted(first.counts().items())}\n"
        "other requests value buckets:       "
        f"{sorted(other.counts().items())}\n"
        f"(bucket 10 = value 1024 = flag set; bucket 0 = flag clear)")
    discrimination = correlator.discrimination("first_peak")
    artifacts.add(f"discrimination: {discrimination:.2f} "
                  "(1.0 = the flag perfectly explains the peak)")

    benchmark.extra_info["first_peak_requests"] = first.total_ops
    benchmark.extra_info["discrimination"] = discrimination

    # The paper's conclusion: every first-peak request has the flag,
    # no other request does.
    assert first.total_ops == stats.directories
    assert first.counts() == {10: stats.directories}  # 1024 -> bucket 10
    assert all(b == 0 for b in other.counts())
    assert discrimination == 1.0

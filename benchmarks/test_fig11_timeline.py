"""Figure 11: packet timelines of a FindFirst transaction + the fix.

Paper: the sniffer shows the Windows server sending a 3-segment reply,
the Windows client delaying the ACK of the odd trailing segment by
~200 ms, and the server refusing to continue until it arrives; the
Linux client's immediate FindNext (carrying the ACK) avoids the stall.
Turning delayed ACKs off via the registry approximated the fix and
improved elapsed time by ~20%.
"""

from conftest import run_once

from repro.net import build_cifs_mount, render_timeline
from repro.sim.engine import CYCLES_PER_SECOND
from repro.workloads import run_grep

SCALE = 0.03


def run_client(flavor: str, delayed_ack: bool):
    mount = build_cifs_mount(scale=SCALE, flavor=flavor,
                             delayed_ack=delayed_ack)
    run_grep(mount.client, mount.root)
    return mount


def first_stall_window(mount, span=5):
    packets = sorted(mount.sniffer.packets, key=lambda p: p.time)
    for i, (a, b) in enumerate(zip(packets, packets[1:])):
        if (b.time - a.time) / CYCLES_PER_SECOND >= 0.15:
            return packets[max(0, i - span):i + span]
    return packets[:2 * span]


def test_fig11_timeline(benchmark, artifacts):
    def experiment():
        return (run_client("windows", True),
                run_client("linux", True),
                run_client("windows", False))

    windows, linux, fixed = run_once(benchmark, experiment)

    # Render the two timelines of Figure 11.
    from repro.net import Sniffer
    stall_view = Sniffer()
    stall_view.packets = first_stall_window(windows)
    artifacts.add("Figure 11 reproduction (left): Windows client - "
                  "Windows server, around the delayed-ACK stall")
    artifacts.add(render_timeline(stall_view, "client", "server"))

    linux_view = Sniffer()
    linux_view.packets = sorted(linux.sniffer.packets,
                                key=lambda p: p.time)[:10]
    artifacts.add("Figure 11 reproduction (right): Linux client - "
                  "Windows server, first transaction")
    artifacts.add(render_timeline(linux_view, "client", "server"))

    windows_stalls = windows.sniffer.stalls(0.15)
    linux_stalls = linux.sniffer.stalls(0.15)
    fixed_stalls = fixed.sniffer.stalls(0.15)
    improvement = 1 - (fixed.client.elapsed_seconds()
                       / windows.client.elapsed_seconds())

    artifacts.add(
        f"~200ms wire stalls: windows={len(windows_stalls)}, "
        f"linux={len(linux_stalls)}, registry-fix={len(fixed_stalls)}\n"
        f"elapsed: windows={windows.client.elapsed_seconds():.2f}s, "
        f"fix={fixed.client.elapsed_seconds():.2f}s "
        f"-> {improvement:.0%} improvement (paper: ~20%)")

    benchmark.extra_info["stalls_windows"] = len(windows_stalls)
    benchmark.extra_info["stalls_linux"] = len(linux_stalls)
    benchmark.extra_info["improvement"] = round(improvement, 3)

    # Shape assertions.
    assert windows_stalls
    assert all(0.18 < s < 0.25 for s in windows_stalls)  # ~200 ms each
    assert not linux_stalls
    assert not fixed_stalls
    assert 0.05 < improvement < 0.5
    # The client's delayed-ACK counter corroborates the sniffer.
    client_ep = windows.connection.a
    assert client_ep.delayed_acks_sent == len(windows_stalls)

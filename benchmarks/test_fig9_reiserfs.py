"""Figure 9: sampled (3-D) profiles of Reiserfs journal contention.

Paper: Reiserfs 3.6 on Linux 2.4.24 serializes reads behind
``write_super`` (the journal commit bdflush triggers every 5 seconds).
Sampling profiles at 2.5-second intervals shows the contention as
periodic activity in the write_super rows and far-right read stripes in
exactly those rows.
"""

from conftest import run_once

from repro.analysis import render_sampled
from repro.fs import make_flush_daemons
from repro.sim.engine import seconds
from repro.system import System
from repro.workloads import build_source_tree, grep_body

DURATION = seconds(12.0)
INTERVAL = seconds(2.5)
STALL_BUCKET = 24  # reads slower than ~10 ms waited for a commit


def test_fig9_reiserfs(benchmark, artifacts):
    def experiment():
        system = System.build(fs_type="reiserfs", with_timer=False,
                              sample_interval=INTERVAL,
                              pagecache_pages=512)
        root, stats = build_source_tree(system, scale=0.03)
        meta, data = make_flush_daemons(system.kernel, system.vfs)
        meta.start()
        data.start()

        def reader(proc):
            while True:
                yield from grep_body(system, proc, root)

        system.kernel.spawn(reader, "reader")
        system.run(until=DURATION)
        system.shutdown()
        return system, meta

    system, meta = run_once(benchmark, experiment)
    series = system.sampled.series()

    artifacts.add("Figure 9 reproduction: 2.5s-sampled profiles on "
                  "reiserfs (5s metadata flush period)")
    artifacts.add(render_sampled(series, "write_super",
                                 interval_seconds=2.5))
    artifacts.add(render_sampled(series, "read", interval_seconds=2.5))

    ws_rows = series.periodicity("write_super", 0, 64)
    stall_rows = series.periodicity("read", STALL_BUCKET, 64)
    artifacts.add(f"write_super per segment: {ws_rows}\n"
                  f"reads slower than ~10ms per segment: {stall_rows}")

    benchmark.extra_info["segments"] = len(series)
    benchmark.extra_info["commits"] = system.fs.commits
    benchmark.extra_info["write_super_rows"] = sum(
        1 for c in ws_rows if c)

    # Shape assertions.
    assert system.fs.commits >= 2          # the 5s cadence fired
    commit_segments = {i for i, c in enumerate(ws_rows) if c}
    assert commit_segments                 # write_super rows exist
    # The commit cadence is every other 2.5 s segment.
    gaps = sorted(commit_segments)
    if len(gaps) >= 2:
        assert gaps[1] - gaps[0] == 2
    # Read stalls co-occur with commit segments only.
    stall_segments = {i for i, c in enumerate(stall_rows) if c}
    assert stall_segments <= commit_segments
    assert stall_segments                  # and they do occur
    # Collapsing the segments reproduces the plain profile.
    collapsed = series.collapse()
    assert collapsed["write_super"].total_ops == system.fs.commits

"""Extension experiments beyond the paper's evaluation.

* **NFS contrast** — the paper's Figure 11 pathology is specific to the
  CIFS server's wait-for-ACK discipline; the same workload over an
  NFS mount (whose server streams replies) shows no stalls even with a
  delayed-ACK client.  This validates the *mechanism* the paper
  identified, not just the symptom.
* **Cluster outlier detection** — the paper's stated future work
  (Section 7): compact profiles from N nodes, leave-one-out EMD
  comparison, a silently failing disk found with no thresholds.
"""

from conftest import run_once

from repro.analysis import outlier_nodes
from repro.analysis.cluster import NodeProfiles
from repro.net import build_cifs_mount, build_nfs_mount
from repro.system import System
from repro.workloads import (RandomReadConfig, run_grep,
                             run_random_read)


def test_ext_nfs_contrast(benchmark, artifacts):
    def experiment():
        nfs = build_nfs_mount(scale=0.02, delayed_ack=True)
        run_grep(nfs.client, nfs.root)
        cifs = build_cifs_mount(scale=0.02, flavor="windows",
                                delayed_ack=True)
        run_grep(cifs.client, cifs.root)
        return nfs, cifs

    nfs, cifs = run_once(benchmark, experiment)
    nfs_stalls = nfs.sniffer.stalls(0.15)
    cifs_stalls = cifs.sniffer.stalls(0.15)
    rows = ["Extension: NFS vs CIFS under the same delayed-ACK client",
            "",
            f"protocol  elapsed(s)  ~200ms stalls",
            "-" * 40,
            f"NFS       {nfs.client.elapsed_seconds():9.2f}  "
            f"{len(nfs_stalls):4d}",
            f"CIFS      {cifs.client.elapsed_seconds():9.2f}  "
            f"{len(cifs_stalls):4d}",
            "",
            "The stall needs BOTH sides: the client's delayed ACK and "
            "a server that refuses to stream past unacknowledged data. "
            "NFS's server streams, so the client timer never matters."]
    artifacts.add("\n".join(rows))
    benchmark.extra_info["nfs_stalls"] = len(nfs_stalls)
    benchmark.extra_info["cifs_stalls"] = len(cifs_stalls)
    assert not nfs_stalls
    assert cifs_stalls
    assert nfs.client.elapsed_seconds() < cifs.client.elapsed_seconds()


def test_ext_anomaly_detection(benchmark, artifacts):
    """Change-point detection over sampled profiles (cf. Chen et al.).

    A steady random-read stream is sampled in 0.5 s segments; halfway
    through, the disk silently starts failing (media-error retries).
    Comparing each segment's latency distribution with its predecessor
    (EMD) flags exactly the degradation segment — no baselines, no
    thresholds configured.
    """
    from repro.analysis.anomaly import change_points
    from repro.sim.engine import seconds
    from repro.vfs.file import O_DIRECT, SEEK_SET

    DEGRADE_AT = seconds(3.0)
    INTERVAL = seconds(0.5)

    def experiment():
        system = System.build(with_timer=False, seed=11,
                              sample_interval=INTERVAL)
        inode = system.tree.mkfile(system.root, "data", 64 << 20)
        rng = system.kernel.rng.fork("anomaly")

        def reader(proc):
            handle = system.vfs.open_inode(inode, flags=O_DIRECT)
            while True:
                pos = rng.randint(0, inode.size - 512)
                yield from system.syscalls.invoke(
                    proc, "llseek",
                    system.vfs.llseek(proc, handle, pos, SEEK_SET))
                yield from system.syscalls.invoke(
                    proc, "read", system.vfs.read(proc, handle, 512))

        system.kernel.spawn(reader, "reader")

        def degrade():
            system.disk.error_rate = 0.6
            system.disk.max_retries = 6

        system.kernel.engine.schedule_at(DEGRADE_AT, degrade)
        system.run(until=seconds(6.0))
        system.shutdown()
        return system

    system = run_once(benchmark, experiment)
    series = system.sampled.series()
    points = change_points(series, "read", metric="emd", min_ops=20)
    degrade_segment = int(DEGRADE_AT / INTERVAL)
    rows = ["Extension: change-point detection over sampled profiles",
            "",
            f"disk degraded at segment {degrade_segment} "
            f"(t={DEGRADE_AT / 1.7e9:.1f}s of {len(series)} x 0.5s "
            "segments)",
            "flagged change points:"]
    for point in points:
        rows.append("  " + point.describe())
    artifacts.add("\n".join(rows))
    benchmark.extra_info["flagged"] = [p.segment for p in points]
    assert any(p.segment in (degrade_segment, degrade_segment + 1)
               for p in points)
    # No false alarms before the degradation.
    assert all(p.segment >= degrade_segment for p in points)


def test_ext_cluster_outliers(benchmark, artifacts):
    SICK = "node3"

    def experiment():
        nodes = []
        for i in range(5):
            name = f"node{i}"
            system = System.build(seed=i + 1, num_cpus=2,
                                  with_timer=False)
            if name == SICK:
                system.disk.error_rate = 0.6
                system.disk.max_retries = 6
            run_random_read(system, RandomReadConfig(processes=2,
                                                     iterations=1200))
            pset = system.fs_profiles()
            pset.name = name
            nodes.append(NodeProfiles(name, pset))
        return outlier_nodes(nodes, metric="emd", min_ops=200)

    report = run_once(benchmark, experiment)
    rows = ["Extension (paper future work): cluster outlier detection",
            "", "node/operation ranking by leave-one-out EMD:"]
    for finding in report.worst(6):
        rows.append("  " + finding.describe())
    rows.append("")
    rows.append(f"injected fault: {SICK} has a disk with 60% media "
                "errors (internal retries only — no error ever "
                "surfaces to software)")
    artifacts.add("\n".join(rows))
    top = report.findings[0]
    benchmark.extra_info["top_node"] = top.node
    benchmark.extra_info["top_score"] = round(top.score, 4)
    assert top.node == SICK

"""Sampling accuracy: the wait-state view against measured ground truth.

Three claims cap the sampled-system-view story:

* Section 6.1 reappears in the sampled view: the two-process random
  read shows its blocked samples split between the inode semaphore and
  the disk — including ``llseek`` itself blocked on ``i_sem``, the
  paper's smoking gun — while the one-process control shows no
  semaphore waits at all, exactly mirroring the measured profiles'
  contention peak (present at two processes, absent at one);
* the sampled distribution converges as the interval shrinks: each
  rung of a coarse-to-fine interval ladder lands closer (L1 distance
  over the blocked-cell distribution) to a 16x-finer reference run;
* device pathologies are distinguishable purely from the sampled view:
  SSD GC pauses surface as write-path waits (``fsync``/``io:write``),
  an IOPS throttle as read-path waits (``io:read``/``sem:i_sem``),
  with no latency histogram consulted.
"""

from conftest import run_once

from repro.scenarios import SCENARIOS
from repro.workloads.runner import collect_sampled_run

CONTENTION_BUCKET = 12  # above ~2.4us: the llseek i_sem wait (Fig. 6)


def seconds(s):
    return s * 1.7e9


def sampled(workload, interval, processes=2, iterations=800,
            scenario=None, **kwargs):
    if scenario is not None:
        row = SCENARIOS[scenario]
        kwargs.setdefault("fs_type", row.fs_type)
        kwargs.setdefault("scale", row.scale)
        iterations = min(row.iterations, iterations)
        processes = row.processes
        workload = row.workload
    return collect_sampled_run(
        workload, state_sample_interval=interval, seed=2006,
        processes=processes, iterations=iterations, scenario=scenario,
        **kwargs)


def blocked_distribution(sprof):
    """Blocked cells -> share of blocked samples (the sampled view)."""
    cells = {key: count for key, count in sprof
             if key[0] == "blocked"}
    total = sum(cells.values())
    return {key: count / total for key, count in cells.items()} \
        if total else {}


def l1_distance(left, right):
    keys = set(left) | set(right)
    return sum(abs(left.get(k, 0.0) - right.get(k, 0.0)) for k in keys)


def site_share(sprof, prefix):
    sites = sprof.wait_sites()
    total = sum(sites.values())
    hits = sum(count for site, count in sites.items()
               if site.startswith(prefix))
    return hits / total if total else 0.0


def test_fig_sampling_accuracy(benchmark, artifacts):
    """§6.1 in the sampled view, plus convergence with the interval."""

    def experiment():
        ladder = [seconds(s) for s in (0.008, 0.002, 0.0005)]
        reference_interval = ladder[-1] / 16
        return {
            "two": sampled("randomread", ladder[-1]),
            "one": sampled("randomread", ladder[-1], processes=1),
            "ladder": [sampled("randomread", iv) for iv in ladder],
            "reference": sampled("randomread", reference_interval),
            "ladder_intervals": ladder,
        }

    results = run_once(benchmark, experiment)
    layers2, two, _ = results["two"]
    layers1, one, _ = results["one"]

    # -- measured ground truth (Figure 6) -------------------------------------
    contended2 = sum(c for b, c in layers2["fs"]["llseek"].counts()
                     .items() if b >= CONTENTION_BUCKET)
    contended1 = sum(c for b, c in layers1["fs"]["llseek"].counts()
                     .items() if b >= CONTENTION_BUCKET)
    sem2 = site_share(two, "sem:i_sem:")
    sem1 = site_share(one, "sem:i_sem:")

    llseek_on_sem = sum(
        count for (state, _layer, op, site), count in two
        if state == "blocked" and op == "llseek"
        and site.startswith("sem:i_sem:"))

    rows = ["Sampled wait-state view vs measured ground truth "
            "(randomread, seed 2006)", "",
            "                        measured llseek   sampled blocked",
            "procs                   contended ops     on sem:i_sem",
            f"1 (control)             {contended1:12d}     {sem1:12.1%}",
            f"2 (Section 6.1)         {contended2:12d}     {sem2:12.1%}",
            "",
            f"llseek-blocked-on-i_sem samples (2 procs): {llseek_on_sem}"]

    # -- convergence as the interval shrinks ----------------------------------
    _l, reference, _m = results["reference"]
    ref_dist = blocked_distribution(reference)
    distances = []
    rows.append("")
    rows.append("interval(ms)  L1 distance to 16x-finer reference")
    for interval, (_layers, sprof, _metrics) in zip(
            results["ladder_intervals"], results["ladder"]):
        dist = l1_distance(blocked_distribution(sprof), ref_dist)
        distances.append(dist)
        rows.append(f"{interval / 1.7e9 * 1e3:11.3f}   {dist:.4f}")
    artifacts.add("\n".join(rows))

    benchmark.extra_info["sem_share_two_proc"] = round(sem2, 3)
    benchmark.extra_info["l1_coarse"] = round(distances[0], 4)
    benchmark.extra_info["l1_fine"] = round(distances[-1], 4)

    # The sampled view mirrors the measured presence/absence of
    # contention: two processes block on the semaphore (llseek
    # included), one process never does — matching the measured
    # profiles, where the contention buckets appear only at two procs.
    assert contended2 > 0 and contended1 == 0
    assert sem2 > 0.25
    assert sem1 == 0.0
    assert llseek_on_sem > 0
    # Convergence: every finer rung is at least as close to the
    # reference as the coarsest one, and the finest is strictly closer.
    assert distances[-1] < distances[0]
    assert max(distances[1:]) <= distances[0]


def test_fig_sampling_device_pathologies(benchmark, artifacts):
    """SSD GC vs IOPS throttle, told apart from samples alone."""

    def experiment():
        return {
            "ssd": sampled(None, seconds(0.0002), scenario="ssd-gc",
                           iterations=800),
            "throttled": sampled(None, seconds(0.0005),
                                 scenario="throttled-iops"),
        }

    results = run_once(benchmark, experiment)
    _l, ssd, _m = results["ssd"]
    _l, throttled, _m = results["throttled"]

    ssd_write = site_share(ssd, "io:write")
    ssd_read = site_share(ssd, "io:read")
    thr_write = site_share(throttled, "io:write")
    thr_read = (site_share(throttled, "io:read")
                + site_share(throttled, "sem:i_sem:"))

    rows = ["Device pathologies in the sampled view (no latency "
            "histograms consulted)", "",
            "scenario         io:write share   read-path share "
            "(io:read + i_sem)",
            f"ssd-gc           {ssd_write:14.1%}   {ssd_read:14.1%}",
            f"throttled-iops   {thr_write:14.1%}   {thr_read:14.1%}",
            "", "top sampled cells, ssd-gc:"]
    for cell, count in ssd.top(3):
        rows.append(f"  {count:8d}  {cell}")
    rows.append("top sampled cells, throttled-iops:")
    for cell, count in throttled.top(3):
        rows.append(f"  {count:8d}  {cell}")
    artifacts.add("\n".join(rows))

    benchmark.extra_info["ssd_write_share"] = round(ssd_write, 3)
    benchmark.extra_info["throttled_read_share"] = round(thr_read, 3)

    # GC pauses are write-path waits; the throttle starves the read
    # path.  The two signatures are disjoint enough to classify from
    # the sampled wait sites alone.
    assert ssd_write > 0.6
    assert thr_read > 0.6
    assert thr_write < 0.2
    assert ssd_read < 0.2

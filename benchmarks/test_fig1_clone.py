"""Figure 1: FreeBSD clone() under concurrency — bimodal lock profile.

Paper: four processes concurrently calling clone on a dual-CPU SMP
machine produce two peaks; the right peak is lock contention between
the processes and disappears with a single caller.

Regenerates both profiles (1 and 4 processes) and asserts the shape:
one peak alone, two peaks under concurrency, contended peak smaller
and several buckets to the right.
"""

from conftest import run_once

from repro.analysis import find_peaks, render_profile
from repro.system import System
from repro.workloads import CloneStress

ITERATIONS = 4000


def run_clone(processes: int):
    system = System.build(num_cpus=2, with_timer=False)
    stress = CloneStress(system)
    stress.run(processes=processes, iterations=ITERATIONS)
    return system.user_profiles()["clone"], stress


def test_fig1_clone(benchmark, artifacts):
    def experiment():
        return run_clone(1), run_clone(4)

    (single, _), (smp, stress) = run_once(benchmark, experiment)

    artifacts.add("Figure 1 reproduction: clone() latency profiles\n"
                  "(2 simulated CPUs; compare 4 processes vs 1)")
    artifacts.add("--- 1 process ---\n" + render_profile(single))
    artifacts.add("--- 4 processes ---\n" + render_profile(smp))

    single_peaks = find_peaks(single, min_ops=20)
    smp_peaks = find_peaks(smp, min_ops=20)
    artifacts.add(
        f"peaks: 1 process -> {len(single_peaks)}, "
        f"4 processes -> {len(smp_peaks)}\n"
        f"lock contention rate at 4 processes: "
        f"{stress.proc_table_lock.contention_rate():.1%}")

    benchmark.extra_info["peaks_single"] = len(single_peaks)
    benchmark.extra_info["peaks_smp"] = len(smp_peaks)
    benchmark.extra_info["contention_rate"] = round(
        stress.proc_table_lock.contention_rate(), 4)

    # Shape assertions (the paper's qualitative claims).
    assert len(single_peaks) == 1
    assert len(smp_peaks) == 2
    left, right = smp_peaks
    assert right.apex >= left.apex + 2      # well-separated
    assert right.ops < left.ops             # contended path is rarer
    assert single_peaks[0].apex == left.apex  # fast path unchanged

"""Section 5.3: automated profile-comparison accuracy.

Paper: three graduate students labelled 250+ profile pairs; against
that ground truth the chi-square method produced 5% false
classifications, total operation counts 4%, total latency 3%, and the
Earth Mover's Distance the best rate of 2%.

The human study is replaced by a generator of labelled pairs whose
"important" changes are the structural ones the paper's examples show
(new contention peak, migrated I/O mode, mass shift) and whose
"unimportant" pairs carry realistic run-to-run noise.  250 evaluation
pairs, thresholds calibrated on a disjoint 120-pair set.
"""

from conftest import run_once

from repro.analysis import PairGenerator, evaluate_methods

METHODS = ("emd", "total_latency", "total_ops", "chi_squared",
           "jeffrey", "kullback_leibler", "intersection", "minkowski")
PAPER_RATES = {"chi_squared": 0.05, "total_ops": 0.04,
               "total_latency": 0.03, "emd": 0.02}


def test_tbl_accuracy(benchmark, artifacts):
    def experiment():
        generator = PairGenerator(seed=2006, ops=8000)
        calibration = generator.pairs(120)
        evaluation = generator.pairs(250)
        return evaluate_methods(evaluation, calibration,
                                methods=METHODS)

    results = run_once(benchmark, experiment)

    rows = ["Section 5.3 reproduction: false-classification rates on "
            "250 labelled profile pairs", "",
            "method            rate     fp  fn   paper",
            "-" * 46]
    ranked = sorted(results.items(), key=lambda kv: kv[1].false_rate)
    for name, acc in ranked:
        paper = PAPER_RATES.get(name)
        paper_s = f"{paper:.0%}" if paper is not None else "  -"
        rows.append(f"{name:16s} {acc.false_rate:6.1%}  {acc.false_positives:4d} "
                    f"{acc.false_negatives:3d}   {paper_s}")
    rows.append("")
    rows.append("paper's headline: among its four reported methods "
                "(chi-squared, op counts, total latency, EMD), EMD is "
                "the most accurate at 2%; reproduced — EMD beats all "
                "three here, at a comparable rate.")
    artifacts.add("\n".join(rows))

    for name, acc in results.items():
        benchmark.extra_info[name] = round(acc.false_rate, 4)

    emd = results["emd"].false_rate
    # Headline claims: EMD best among the paper's reported methods and
    # in the paper's ~2% band.
    for name in ("chi_squared", "total_ops", "total_latency"):
        assert emd <= results[name].false_rate
    assert emd <= 0.04
    # All of the paper's reported methods remain usable tools.
    for name in PAPER_RATES:
        assert results[name].false_rate < 0.25

#!/usr/bin/env python
"""Quickstart: profile a simulated OS with OSprof.

Builds a one-CPU machine with an ext2-like file system, runs a small
recursive grep over a synthetic source tree, and prints the resulting
latency profiles — the same log-log histograms as the paper's figures —
captured simultaneously at the user, file-system, and driver layers.

Run:  python examples/quickstart.py
"""

from repro import System
from repro.analysis import (CharacteristicTimes, find_peaks,
                            render_profile, top_contributors)
from repro.workloads import build_source_tree, run_grep


def main() -> None:
    # 1. Build the machine: 1.7 GHz CPU, 58 ms quantum, 15 kRPM disk,
    #    OSprof instrumentation at every layer.
    system = System.build(fs_type="ext2", num_cpus=1)

    # 2. Lay out a kernel-source-like tree on the simulated disk.
    root, stats = build_source_tree(system, scale=0.02)
    print(f"Built {stats.directories} directories / {stats.files} files "
          f"({stats.total_bytes / 1e6:.1f} MB)\n")

    # 3. Run the workload: grep -r <nonexistent> over the tree.
    result = run_grep(system, root)
    print(f"grep scanned {result.bytes_scanned / 1e6:.1f} MB with "
          f"{result.readdir_calls} readdir and {result.read_calls} read "
          f"calls in {system.elapsed_seconds():.2f} simulated seconds\n")

    # 4. Look at the profiles.  Start where the latency is.
    fs_profiles = system.fs_profiles()
    print("Top latency contributors (file-system layer):")
    for prof in top_contributors(fs_profiles, fraction=0.95):
        print(f"  {prof.operation:10s} ops={prof.total_ops:7d} "
              f"total={prof.total_latency / 1.7e9:8.4f}s")
    print()

    readdir = fs_profiles["readdir"]
    print(render_profile(readdir))
    print()

    # 5. Identify the peaks and hypothesize causes from characteristic
    #    times (prior-knowledge analysis, Section 3.1 of the paper).
    table = CharacteristicTimes()
    print("Peaks and candidate explanations:")
    for peak in find_peaks(readdir, min_ops=5):
        names = [t.name for t in table.candidates(peak.apex, tolerance=1)]
        label = ", ".join(names) if names else "(cached / fast path)"
        print(f"  buckets {peak.low:2d}-{peak.high:2d} "
              f"({peak.ops:6d} ops): {label}")

    # 6. Profiles serialize to the paper's /proc-style text format.
    print("\nFirst lines of the serialized profile set:")
    print("\n".join(fs_profiles.dumps().splitlines()[:8]))


if __name__ == "__main__":
    main()

#!/usr/bin/env python
"""The Section 6.1 investigation, end to end: find and fix a semaphore.

Reproduces the paper's llseek case study as an analysis *workflow*:

1. run the random-read workload with one and with two processes,
2. let the automated profile selector flag the operations whose
   profiles changed (differential analysis),
3. observe that the llseek right peak mirrors the read profile —
   evidence that llseek waits on something the other process's read
   holds (the inode semaphore),
4. apply the patch (lock only directories) and verify: the contended
   peak disappears and the uncontended path gets ~70% cheaper.

Run:  python examples/find_lock_contention.py
"""

from repro import System
from repro.analysis import ProfileSelector, find_peaks, render_profile
from repro.workloads import RandomReadConfig, run_random_read

ITERATIONS = 1500


def run_workload(processes: int, patched: bool) -> System:
    system = System.build(fs_type="ext2", num_cpus=2,
                          patched_llseek=patched, with_timer=False)
    run_random_read(system, RandomReadConfig(processes=processes,
                                             iterations=ITERATIONS))
    return system


def main() -> None:
    print("=== Step 1: capture profiles with 1 and 2 processes ===\n")
    single = run_workload(processes=1, patched=False)
    double = run_workload(processes=2, patched=False)

    print("=== Step 2: automated selection of interesting profiles ===\n")
    selector = ProfileSelector()
    reports = selector.select(single.fs_profiles(), double.fs_profiles())
    for report in reports:
        print(" ", report.describe())
    print()

    print("=== Step 3: examine llseek vs read (2 processes) ===\n")
    pset = double.fs_profiles()
    print(render_profile(pset["llseek"]))
    print()
    print(render_profile(pset["read"]))
    print()
    llseek_peaks = find_peaks(pset["llseek"], min_ops=5)
    read_peaks = find_peaks(pset["read"], min_ops=5)
    right_llseek = llseek_peaks[-1]
    right_read = read_peaks[-1]
    print(f"llseek right peak apex: bucket {right_llseek.apex}; "
          f"read peak apex: bucket {right_read.apex}")
    print("-> llseek is waiting for the other process's read: the "
          "inode semaphore taken by generic_file_llseek.\n")
    contended = sum(c for b, c in pset["llseek"].counts().items()
                    if b >= 12)
    print(f"Contention rate: {contended / pset['llseek'].total_ops:.0%} "
          f"(paper observed ~25%)\n")

    print("=== Step 4: apply the patch and re-profile ===\n")
    patched = run_workload(processes=2, patched=True)
    fixed = patched.fs_profiles()["llseek"]
    print(render_profile(fixed))
    before = pset["llseek"]
    uncontended_before = [
        before.spec.mid(b) * c
        for b, c in before.counts().items() if b < 12]
    mean_before = sum(uncontended_before) / max(
        1, sum(c for b, c in before.counts().items() if b < 12))
    mean_after = fixed.mean_latency()
    print(f"\nUncontended llseek: {mean_before:.0f} -> "
          f"{mean_after:.0f} cycles "
          f"({1 - mean_after / mean_before:.0%} reduction; "
          f"paper: 400 -> 120, 70%)")
    assert all(b < 12 for b in fixed.counts()), "contention is gone"


if __name__ == "__main__":
    main()

#!/usr/bin/env python
"""The Section 6.4 CIFS investigation: delayed ACKs vs FindFirst.

Profiles a grep workload over a CIFS mount with three client
configurations:

* a Windows-like client (standard delayed ACKs),
* the same client with delayed ACKs disabled (the registry change the
  paper tried), and
* a Linux smbfs-like client (requests piggyback ACKs).

Shows the FIND_FIRST/FIND_NEXT profiles (rightmost peaks only on the
delayed-ACK client), the packet-sniffer timeline of one stalled
transaction, and the elapsed-time improvement of the fix.

Run:  python examples/network_profiling.py
"""

from repro.analysis import render_profile
from repro.net import build_cifs_mount, render_timeline
from repro.workloads import run_grep

SCALE = 0.02


def run(flavor: str, delayed_ack: bool):
    mount = build_cifs_mount(scale=SCALE, flavor=flavor,
                             delayed_ack=delayed_ack)
    run_grep(mount.client, mount.root)
    return mount


def main() -> None:
    print("=== Windows client, delayed ACKs on (default) ===\n")
    windows = run("windows", delayed_ack=True)
    pset = windows.client.fs_profiles()
    print(render_profile(pset["FIND_FIRST"]))
    print()
    if pset.get("FIND_NEXT"):
        print(render_profile(pset["FIND_NEXT"]))
        print()
    stalls = windows.sniffer.stalls(threshold_seconds=0.15)
    print(f"elapsed: {windows.client.elapsed_seconds():.2f}s   "
          f"~200ms stalls on the wire: {len(stalls)}\n")

    print("=== Packet timeline around the first stalled FindFirst ===\n")
    # Find the first stall and show the packets around it.
    packets = sorted(windows.sniffer.packets, key=lambda p: p.time)
    stall_index = 0
    for i, (a, b) in enumerate(zip(packets, packets[1:])):
        if (b.time - a.time) / 1.7e9 >= 0.15:
            stall_index = i
            break
    window = windows.sniffer
    window.packets = packets[max(0, stall_index - 4):stall_index + 4]
    print(render_timeline(window, "client", "server"))
    print()

    print("=== Linux client (ACK piggybacks on the next request) ===\n")
    linux = run("linux", delayed_ack=True)
    lset = linux.client.fs_profiles()
    print(render_profile(lset["FIND_FIRST"]))
    lstalls = linux.sniffer.stalls(threshold_seconds=0.15)
    print(f"\nelapsed: {linux.client.elapsed_seconds():.2f}s   "
          f"stalls: {len(lstalls)}\n")

    print("=== Windows client with delayed ACKs disabled ===\n")
    fixed = run("windows", delayed_ack=False)
    improvement = 1 - (fixed.client.elapsed_seconds()
                       / windows.client.elapsed_seconds())
    print(f"elapsed: {fixed.client.elapsed_seconds():.2f}s  "
          f"({improvement:.0%} faster than with delayed ACKs; "
          f"paper measured ~20%)")


if __name__ == "__main__":
    main()

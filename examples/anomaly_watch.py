#!/usr/bin/env python
"""Watching a system degrade in real time with sampled profiles.

Combines two OSprof facilities: profile sampling (Section 3.1) and
distribution comparison (Section 3.2) into the monitoring loop the
paper's Section 2 credits to Chen et al. — "observ[ing] changes in the
distribution of latency over time ... to detect possible problems".

A steady random-read stream runs for six seconds; three seconds in, the
disk silently starts failing (media errors handled by internal drive
retries — nothing any error counter would show).  Comparing each 0.5 s
segment's latency distribution with its predecessor flags the exact
segment where behaviour changed.

Run:  python examples/anomaly_watch.py
"""

from repro import System
from repro.analysis import render_sampled
from repro.analysis.anomaly import change_points, distance_series
from repro.sim.engine import seconds
from repro.vfs.file import O_DIRECT, SEEK_SET

DURATION = seconds(6.0)
DEGRADE_AT = seconds(3.0)
INTERVAL = seconds(0.5)


def main() -> None:
    system = System.build(with_timer=False, seed=11,
                          sample_interval=INTERVAL)
    inode = system.tree.mkfile(system.root, "data.db", 64 << 20)
    rng = system.kernel.rng.fork("watch")

    def reader(proc):
        handle = system.vfs.open_inode(inode, flags=O_DIRECT)
        while True:
            pos = rng.randint(0, inode.size - 512)
            yield from system.syscalls.invoke(
                proc, "llseek",
                system.vfs.llseek(proc, handle, pos, SEEK_SET))
            yield from system.syscalls.invoke(
                proc, "read", system.vfs.read(proc, handle, 512))

    system.kernel.spawn(reader, "db-reader")

    def degrade() -> None:
        system.disk.error_rate = 0.6
        system.disk.max_retries = 6

    system.kernel.engine.schedule_at(DEGRADE_AT, degrade)
    print(f"Running a random-read stream for "
          f"{DURATION / 1.7e9:.0f}s; the disk starts failing at "
          f"t={DEGRADE_AT / 1.7e9:.0f}s (internal retries only)...\n")
    system.run(until=DURATION)
    system.shutdown()

    series = system.sampled.series()
    print(render_sampled(series, "read", interval_seconds=0.5))
    print()
    print("EMD between consecutive segments:")
    for segment, distance in enumerate(
            distance_series(series, "read", min_ops=20)):
        bar = "" if distance is None else "#" * int(distance * 40)
        label = "-" if distance is None else f"{distance:.3f}"
        print(f"  segment {segment:2d}: {label:>6s} {bar}")

    points = change_points(series, "read", min_ops=20)
    print("\nFlagged change points:")
    for point in points:
        t = point.segment * 0.5
        print(f"  t={t:.1f}s  {point.describe()}")
    degrade_segment = int(DEGRADE_AT / INTERVAL)
    assert any(p.segment == degrade_segment for p in points)
    print(f"\n-> the degradation at t=3.0s (segment {degrade_segment}) "
          "was caught from the latency distribution alone.")


if __name__ == "__main__":
    main()

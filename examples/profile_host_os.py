#!/usr/bin/env python
"""Portability demo: profile the *host* operating system.

The same aggregate-stats core that instruments the simulator also runs
against real system calls — the paper's user-level POSIX profiler.
This script profiles a small read/seek workload against a temporary
file on the machine it runs on and renders the real latency profiles.

Expect to see multi-modal structure here too: page-cache-warm reads in
the fast buckets, first-touch reads and syscall-path noise to the
right.

Run:  python examples/profile_host_os.py
"""

import os
import tempfile

from repro.analysis import find_peaks, render_profile
from repro.core import SyscallProfiler, profile_callable

FILE_SIZE = 4 << 20  # 4 MB
READS = 2000


def main() -> None:
    profiler = SyscallProfiler()
    with tempfile.TemporaryDirectory() as tmp:
        path = os.path.join(tmp, "workload.dat")
        with open(path, "wb") as f:
            f.write(os.urandom(FILE_SIZE))

        fd = profiler.open(path, os.O_RDONLY)
        # Random 4 KB reads: seek + read pairs, like the paper's
        # random-read workload (buffered rather than O_DIRECT).
        import random
        rng = random.Random(2006)
        for _ in range(READS):
            pos = rng.randrange(0, FILE_SIZE - 4096)
            profiler.lseek(fd, pos)
            profiler.read(fd, 4096)
        profiler.close(fd)
        profiler.listdir(tmp)
        profiler.stat(path)

    pset = profiler.profile_set()
    for op in ("read", "lseek"):
        prof = pset[op]
        print(render_profile(prof))
        peaks = find_peaks(prof, min_ops=5)
        print(f"  -> {len(peaks)} peak(s); "
              f"mean {prof.mean_latency():.0f} cycles\n")

    # The profiler's own floor, measured the way Section 5.2 does:
    # profile an empty operation and look at the smallest bucket.
    floor = profile_callable(lambda: None, "empty", iterations=5000)
    lo, hi = floor["empty"].histogram.span()
    print(f"Profiling an empty callable lands in buckets {lo}..{hi}; "
          f"bucket {lo} is this host's measurement floor "
          f"(the paper's C hooks floored at bucket 5, ~40 cycles).")


if __name__ == "__main__":
    main()

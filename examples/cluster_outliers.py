#!/usr/bin/env python
"""Cluster profiling (the paper's future work, implemented).

Section 7: "Because of the compactness of our profiles, we believe that
OSprof is suitable for clusters and distributed systems."

This example runs the same random-read workload (media-bound, so drive
behaviour dominates) on five simulated machines — one of which has a
silently failing disk (media errors forcing internal retry storms) —
collects each node's compact profile set, and uses leave-one-out EMD
comparison to find the sick node without per-node thresholds or prior
knowledge.

Run:  python examples/cluster_outliers.py
"""

from repro import System
from repro.analysis import (NodeProfiles, aggregate, outlier_nodes,
                            render_profile)
from repro.workloads import RandomReadConfig, run_random_read

NODES = 5
SICK_NODE = "node3"


def run_node(name: str, seed: int, error_rate: float) -> NodeProfiles:
    system = System.build(fs_type="ext2", seed=seed, num_cpus=2,
                          with_timer=False)
    system.disk.error_rate = error_rate
    system.disk.max_retries = 6  # a patient drive: long retry storms
    run_random_read(system, RandomReadConfig(processes=2,
                                             iterations=1200))
    pset = system.fs_profiles()
    pset.name = name
    return NodeProfiles(name, pset)


def main() -> None:
    print(f"Profiling random reads on {NODES} nodes "
          f"({SICK_NODE} has a failing disk)...\n")
    nodes = []
    for i in range(NODES):
        name = f"node{i}"
        error_rate = 0.6 if name == SICK_NODE else 0.0
        nodes.append(run_node(name, seed=i + 1, error_rate=error_rate))

    cluster = aggregate(nodes)
    print(f"Cluster-wide profile: {cluster.total_ops()} requests over "
          f"{len(cluster)} operations "
          f"(each node's profile is ~{len(nodes[0].profiles.dumps())} "
          f"bytes on the wire)\n")

    # min_ops filters low-volume operations whose cross-node sampling
    # noise would otherwise drown the signal (same reasoning as the
    # single-node selector's phase-1 thresholds).
    report = outlier_nodes(nodes, metric="emd", min_ops=200)
    print("Deviation ranking (leave-one-out EMD):")
    for finding in report.worst(6):
        print("  " + finding.describe())
    top = report.findings[0]
    print(f"\n-> {top.node} deviates most, on {top.operation!r}.")
    if top.operation == "llseek":
        print("   (a failing *disk* surfacing through *llseek*: slower "
              "direct reads hold i_sem longer, so seeks queue behind "
              "them — the paper's Section 6.1 mechanism, rediscovered "
              "by the cluster comparison)")

    sick = next(n for n in nodes if n.node == top.node)
    healthy = next(n for n in nodes if n.node != top.node)
    print(f"\nThe sick node's {top.operation} profile vs a healthy "
          "one:\n")
    print(render_profile(sick.profiles[top.operation]))
    print()
    print(render_profile(healthy.profiles[top.operation]))
    print("\nThe right-shifted mass is the drive's internal retry "
          "storms — invisible to error counters, obvious in the "
          "latency distribution.")
    assert top.node == SICK_NODE


if __name__ == "__main__":
    main()

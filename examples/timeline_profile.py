#!/usr/bin/env python
"""Section 6.3: 3-D sampled profiles of Reiserfs journal contention.

A reader streams through a source tree on a reiserfs-like file system
while the metadata flush daemon commits the journal every 5 seconds
under the FS big lock.  Sampling the profiles in 2.5-second segments
(Figure 9) makes the periodic interference visible: the write_super row
lights up every other segment, and reads captured in those segments
grow a far-right stripe — they waited for the commit.

Run:  python examples/timeline_profile.py
"""

from repro import System
from repro.analysis import render_sampled
from repro.fs import make_flush_daemons
from repro.sim.engine import seconds
from repro.workloads import build_source_tree, grep_body

DURATION_SECONDS = 12.0
SAMPLE_INTERVAL = 2.5


def main() -> None:
    system = System.build(fs_type="reiserfs", with_timer=False,
                          sample_interval=seconds(SAMPLE_INTERVAL),
                          pagecache_pages=512)
    root, stats = build_source_tree(system, scale=0.03)
    print(f"Tree: {stats.directories} dirs / {stats.files} files; "
          f"page cache small enough that reads keep hitting the disk.\n")

    metadata_daemon, data_daemon = make_flush_daemons(
        system.kernel, system.vfs)
    metadata_daemon.start()
    data_daemon.start()

    def reader(proc):
        # Loop grep until the run is stopped: a steady read stream.
        while True:
            yield from grep_body(system, proc, root)

    system.kernel.spawn(reader, "reader")
    system.run(until=seconds(DURATION_SECONDS))
    system.shutdown()

    series = system.sampled.series()
    print(f"Captured {len(series)} segments of "
          f"{SAMPLE_INTERVAL}s each\n")
    print(render_sampled(series, "write_super",
                         interval_seconds=SAMPLE_INTERVAL))
    print()
    print(render_sampled(series, "read",
                         interval_seconds=SAMPLE_INTERVAL))
    print()

    # Quantify the interference: read tail latency in commit segments.
    commit_rows = [i for i, count in enumerate(
        series.periodicity("write_super", 0, 64)) if count > 0]
    print(f"write_super active in segments: {commit_rows} "
          f"(every {metadata_daemon.period / 1.7e9:.0f}s, as bdflush "
          f"schedules metadata flushes)")
    for segment in range(len(series)):
        row = series.periodicity("read", 24, 64)[segment]
        marker = " <- commit stall" if row else ""
        print(f"  segment {segment}: reads slower than ~10ms: "
              f"{row}{marker}")


if __name__ == "__main__":
    main()

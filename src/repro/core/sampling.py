"""Profile sampling: time-segmented (3-D) profiles.

"OSprof is capable of taking successive snapshots by using new sets of
buckets to capture latency at predefined time intervals" (Section 3.1).
Figure 9's Reiserfs ``write_super``/``read`` contention was visualized
this way: the x-axis is the bucket number, the y-axis elapsed time, and
the cell value the operation count in that (bucket, interval) pair.

:class:`SampledProfiler` wraps the segmentation logic; each segment is a
full :class:`~repro.core.profileset.ProfileSet`, which is affordable
because one OSprof profile is tiny ("the small size of the OSprof
profile data", Section 6.3).
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Tuple

from .buckets import BucketSpec
from .profile import Layer
from .profileset import ProfileSet

__all__ = ["SampledProfiler", "SampledProfileSeries"]


class SampledProfileSeries:
    """The result of a sampled run: an ordered list of per-interval sets."""

    def __init__(self, interval: float, segments: List[ProfileSet]):
        if interval <= 0:
            raise ValueError("interval must be positive")
        self.interval = interval
        self.segments = segments

    def __len__(self) -> int:
        return len(self.segments)

    def __getitem__(self, i: int) -> ProfileSet:
        return self.segments[i]

    def operations(self) -> List[str]:
        ops = set()
        for seg in self.segments:
            ops.update(seg.operations())
        return sorted(ops)

    def cells(self, operation: str) -> Dict[Tuple[int, int], int]:
        """Sparse (segment, bucket) → count matrix for one operation.

        This is the data behind Figure 9's density plot.
        """
        matrix: Dict[Tuple[int, int], int] = {}
        for seg_index, seg in enumerate(self.segments):
            prof = seg.get(operation)
            if prof is None:
                continue
            for bucket, count in prof.counts().items():
                matrix[(seg_index, bucket)] = count
        return matrix

    def collapse(self) -> ProfileSet:
        """Merge all segments back into a single complete profile."""
        spec = self.segments[0].spec if self.segments else BucketSpec()
        total = ProfileSet(name="collapsed", spec=spec)
        for seg in self.segments:
            total.merge(seg)
        return total

    def periodicity(self, operation: str, bucket_lo: int,
                    bucket_hi: int) -> List[int]:
        """Per-segment counts within a bucket range, for spotting periodic bursts.

        A 5-second metadata flush shows up as spikes every
        ``5s / interval`` segments in the ``write_super`` row.
        """
        series = []
        for seg in self.segments:
            prof = seg.get(operation)
            if prof is None:
                series.append(0)
                continue
            series.append(sum(c for b, c in prof.counts().items()
                              if bucket_lo <= b <= bucket_hi))
        return series


class SampledProfiler:
    """Latency profiler that rotates its bucket set every *interval* cycles.

    The caller provides the same pluggable clock as
    :class:`~repro.core.profiler.Profiler`; segment boundaries are
    derived from that clock, so the profiler works identically on real
    and simulated time.
    """

    def __init__(self, clock: Callable[[], float], interval: float,
                 name: str = "", layer: str = Layer.FILESYSTEM,
                 spec: Optional[BucketSpec] = None):
        if interval <= 0:
            raise ValueError("interval must be positive")
        self.clock = clock
        self.interval = interval
        self.layer = layer
        self.spec = spec if spec is not None else BucketSpec()
        self.name = name
        self._epoch = clock()
        self._segments: List[ProfileSet] = []
        self._flush_hooks: List[Callable[[], None]] = []

    def _segment_for(self, timestamp: float) -> ProfileSet:
        index = int((timestamp - self._epoch) / self.interval)
        if index < 0:
            index = 0
        while len(self._segments) <= index:
            self._segments.append(
                ProfileSet(name=f"{self.name}[{len(self._segments)}]",
                           spec=self.spec))
        return self._segments[index]

    def record(self, operation: str, start: float, latency: float) -> None:
        """Record a request that *started* at ``start`` and took ``latency``.

        Requests are attributed to the segment containing their start
        time, matching the paper's implementation where the bucket set
        active at FSPROF_PRE time receives the sample.
        """
        if latency < 0:
            latency = 0.0
        self._segment_for(start).add(operation, latency, layer=self.layer)

    def record_now(self, operation: str, latency: float) -> None:
        """Record a just-completed request of the given latency."""
        now = self.clock()
        self.record(operation, now - latency, latency)

    def attach_flush(self, hook: Callable[[], None]) -> None:
        """Register a hook run before :meth:`series` reads results.

        Lets the probe/event pipeline drain its deferred batch buffers
        so the segment matrix is complete at read time.
        """
        self._flush_hooks.append(hook)

    def series(self) -> SampledProfileSeries:
        """The accumulated time-segmented profiles."""
        for hook in self._flush_hooks:
            hook()
        return SampledProfileSeries(self.interval, list(self._segments))

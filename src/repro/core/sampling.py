"""Profile sampling: time-segmented (3-D) profiles.

"OSprof is capable of taking successive snapshots by using new sets of
buckets to capture latency at predefined time intervals" (Section 3.1).
Figure 9's Reiserfs ``write_super``/``read`` contention was visualized
this way: the x-axis is the bucket number, the y-axis elapsed time, and
the cell value the operation count in that (bucket, interval) pair.

:class:`SampledProfiler` wraps the segmentation logic; each segment is a
full :class:`~repro.core.profileset.ProfileSet`, which is affordable
because one OSprof profile is tiny ("the small size of the OSprof
profile data", Section 6.3).
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Tuple

from .buckets import BucketSpec
from .profile import Layer
from .profileset import ProfileSet

__all__ = ["SampledProfiler", "SampledProfileSeries"]


class SampledProfileSeries:
    """The result of a sampled run: an ordered list of per-interval sets."""

    def __init__(self, interval: float, segments: List[ProfileSet],
                 tail_fraction: float = 1.0):
        if interval <= 0:
            raise ValueError("interval must be positive")
        if not 0.0 <= tail_fraction <= 1.0:
            raise ValueError("tail_fraction must be within [0, 1]")
        self.interval = interval
        self.segments = segments
        #: How much of the final segment's interval had elapsed when the
        #: series was read (1.0 = a complete interval).  Rate-style
        #: consumers must scale the last row by this instead of treating
        #: a partial tail as a genuine dip.
        self.tail_fraction = tail_fraction

    def __len__(self) -> int:
        return len(self.segments)

    def __getitem__(self, i: int) -> ProfileSet:
        return self.segments[i]

    def operations(self) -> List[str]:
        ops = set()
        for seg in self.segments:
            ops.update(seg.operations())
        return sorted(ops)

    def cells(self, operation: str) -> Dict[Tuple[int, int], int]:
        """Sparse (segment, bucket) → count matrix for one operation.

        This is the data behind Figure 9's density plot.
        """
        matrix: Dict[Tuple[int, int], int] = {}
        for seg_index, seg in enumerate(self.segments):
            prof = seg.get(operation)
            if prof is None:
                continue
            for bucket, count in prof.counts().items():
                matrix[(seg_index, bucket)] = count
        return matrix

    def collapse(self) -> ProfileSet:
        """Merge all segments back into a single complete profile.

        Raises :class:`ValueError` on an empty series: with no segments
        there is no bucket spec to inherit, and inventing a default
        would let a collapsed-empty profile silently merge into (and
        corrupt) sets recorded under a non-default resolution.
        """
        if not self.segments:
            raise ValueError(
                "cannot collapse an empty sampled series (no segments, "
                "so no bucket spec to inherit)")
        total = ProfileSet(name="collapsed", spec=self.segments[0].spec)
        for seg in self.segments:
            total.merge(seg)
        return total

    def periodicity(self, operation: str, bucket_lo: int,
                    bucket_hi: int) -> List[int]:
        """Per-segment counts within a bucket range, for spotting periodic bursts.

        A 5-second metadata flush shows up as spikes every
        ``5s / interval`` segments in the ``write_super`` row.
        """
        series = []
        for seg in self.segments:
            prof = seg.get(operation)
            if prof is None:
                series.append(0)
                continue
            series.append(sum(c for b, c in prof.counts().items()
                              if bucket_lo <= b <= bucket_hi))
        return series


class SampledProfiler:
    """Latency profiler that rotates its bucket set every *interval* cycles.

    The caller provides the same pluggable clock as
    :class:`~repro.core.profiler.Profiler`; segment boundaries are
    derived from that clock, so the profiler works identically on real
    and simulated time.
    """

    def __init__(self, clock: Callable[[], float], interval: float,
                 name: str = "", layer: str = Layer.FILESYSTEM,
                 spec: Optional[BucketSpec] = None):
        if interval <= 0:
            raise ValueError("interval must be positive")
        self.clock = clock
        self.interval = interval
        self.layer = layer
        self.spec = spec if spec is not None else BucketSpec()
        self.name = name
        self._epoch = clock()
        self._segments: List[ProfileSet] = []
        self._flush_hooks: List[Callable[[], None]] = []

    def _segment_for(self, timestamp: float) -> ProfileSet:
        if timestamp < self._epoch:
            # A pre-epoch start means the clock ran backwards (or the
            # caller replayed a stale timestamp); binning it into
            # segment 0 would silently shift Figure 9's time axis.
            # (Checked on the timestamp, not the derived index: int()
            # truncates toward zero, so offsets less than one interval
            # before the epoch would otherwise alias into segment 0.)
            raise ValueError(
                f"timestamp {timestamp} precedes the sampling epoch "
                f"{self._epoch} (non-monotonic clock input)")
        index = int((timestamp - self._epoch) / self.interval)
        while len(self._segments) <= index:
            self._segments.append(
                ProfileSet(name=f"{self.name}[{len(self._segments)}]",
                           spec=self.spec))
        return self._segments[index]

    def record(self, operation: str, start: float, latency: float) -> None:
        """Record a request that *started* at ``start`` and took ``latency``.

        Requests are attributed to the segment containing their start
        time, matching the paper's implementation where the bucket set
        active at FSPROF_PRE time receives the sample.
        """
        if latency < 0:
            latency = 0.0
        self._segment_for(start).add(operation, latency, layer=self.layer)

    def record_now(self, operation: str, latency: float) -> None:
        """Record a just-completed request of the given latency."""
        now = self.clock()
        self.record(operation, now - latency, latency)

    def attach_flush(self, hook: Callable[[], None]) -> None:
        """Register a hook run before :meth:`series` reads results.

        Lets the probe/event pipeline drain its deferred batch buffers
        so the segment matrix is complete at read time.
        """
        self._flush_hooks.append(hook)

    def series(self) -> SampledProfileSeries:
        """The accumulated time-segmented profiles.

        The returned series carries ``tail_fraction``: how much of the
        final segment's interval had elapsed at read time, so a
        mid-interval read is distinguishable from a genuinely quiet
        tail.
        """
        for hook in self._flush_hooks:
            hook()
        tail = 1.0
        if self._segments:
            elapsed = (self.clock() - self._epoch) / self.interval
            tail = min(1.0, max(0.0, elapsed - (len(self._segments) - 1)))
        return SampledProfileSeries(self.interval, list(self._segments),
                                    tail_fraction=tail)

"""The /proc reporting interface.

"In the Linux kernel, we used the /proc interface for reporting
results" (Section 4).  The paper's module exposes each profiler's
buckets as readable files, and writing to them resets the counters so
successive workload phases can be profiled separately.

:class:`ProcFs` gives the simulated machine the same facility: a tiny
virtual file system keyed by path (``/proc/osprof/<layer>``), where a
read returns the serialized profile set and a write of ``reset`` clears
it.  Tools (the CLI, tests, long-running monitors) read profiles
through it without touching profiler internals.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

from .profiler import Profiler
from .profileset import ProfileSet

__all__ = ["ProcFs", "PROC_ROOT"]

PROC_ROOT = "/proc/osprof"


class ProcFs:
    """Virtual /proc files exposing live profiler state."""

    def __init__(self):
        self._profilers: Dict[str, Profiler] = {}

    # -- registration ----------------------------------------------------------

    def register(self, name: str, profiler: Profiler) -> str:
        """Expose *profiler* at /proc/osprof/<name>; returns the path."""
        if not name or "/" in name:
            raise ValueError("profiler name must be a single component")
        if name in self._profilers:
            raise ValueError(f"{name!r} is already registered")
        self._profilers[name] = profiler
        return self.path_of(name)

    def unregister(self, name: str) -> None:
        del self._profilers[name]

    @staticmethod
    def path_of(name: str) -> str:
        return f"{PROC_ROOT}/{name}"

    def _name_from(self, path: str) -> str:
        prefix = PROC_ROOT + "/"
        if not path.startswith(prefix):
            raise FileNotFoundError(path)
        name = path[len(prefix):]
        if name not in self._profilers:
            raise FileNotFoundError(path)
        return name

    # -- the file interface -------------------------------------------------------

    def ls(self) -> List[str]:
        """Paths of all registered profile files."""
        return [self.path_of(name) for name in sorted(self._profilers)]

    def read(self, path: str) -> str:
        """Read a profile file: the /proc-style serialized profile set."""
        name = self._name_from(path)
        return self._profilers[name].profile_set().dumps()

    def write(self, path: str, data: str) -> None:
        """Write to a profile file; ``reset`` clears the counters.

        Mirrors the paper's kernel module, where writing to the /proc
        file restarts collection (used between workload phases).
        """
        name = self._name_from(path)
        command = data.strip()
        if command == "reset":
            self._profilers[name].reset()
        elif command in ("enable", "disable"):
            self._profilers[name].enabled = (command == "enable")
        else:
            raise ValueError(f"unknown command {command!r} "
                             "(expected reset/enable/disable)")

    def snapshot(self, path: str) -> ProfileSet:
        """Parse a read back into a ProfileSet (a point-in-time copy)."""
        return ProfileSet.loads(self.read(path))

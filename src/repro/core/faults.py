"""Deterministic fault injection across the collection stack.

OSprof's pitch is that profiles survive hostile conditions: the method
chapters (Sections 4-6) compare profiles captured under contention,
preemption, and partial failure, which is only meaningful if the
*collector* keeps producing correct, checksummed profiles while the
world burns around it.  This module is the burn-the-world half of that
contract — a seed-driven fault plane that can be armed at named sites
throughout the stack:

================  ==============================  =======================
site              where it fires                  kinds
================  ==============================  =======================
``shard.worker``  inside a shard worker, before   crash, hang, delay
                  the workload runs
``shard.payload`` the encoded shard result bytes  corrupt
``client.connect``establishing the service TCP    error, delay
                  connection
``client.send``   every outbound frame write      error, corrupt, delay
``client.recv``   every inbound frame read        error, delay
``sink.consume``  an event sink inside the probe  error
                  pipeline
``warehouse.ingest``  between a warehouse segment crash
                  file landing and its log commit
``warehouse.compact`` between a merged super-     crash
                  segment landing and its log
                  commit / input deletion
``device.service``a simulated device servicing a  error
                  request (media error -> the
                  drive's transparent retry)
================  ==============================  =======================

Determinism is the design constraint: every injection decision is a
pure function of ``(plan seed, site, key, attempt)`` via
:func:`repro.sim.rng.derive_seed`, so a failing fault-matrix run
reproduces from its seed alone.  Plans and points are plain frozen
dataclasses, picklable across the shard engine's process boundary.

The healing counterparts live next to the sites: bounded same-seed
retries and salvage in :func:`repro.core.shard.collect_sharded`,
backoff / spooling / idempotent resend in
:class:`repro.service.client.ResilientServiceClient`, read timeouts and
backpressure in :mod:`repro.service.server`, sink isolation in
:class:`repro.core.pipeline.FanoutSink`, and write-ahead log replay in
:class:`repro.warehouse.Warehouse` (a crash between a segment file and
its log commit leaves an orphan file, never a half-committed segment).
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass, field
from typing import Callable, Iterable, Optional, Tuple

from ..sim.rng import derive_seed

__all__ = [
    "FAULT_SITES",
    "FAULT_KINDS",
    "InjectedFault",
    "FaultPoint",
    "FaultPlan",
    "corrupt_bytes",
    "FaultySocket",
    "FaultingSink",
]

#: Every armable site and the fault kinds that make sense there.
FAULT_SITES = {
    "shard.worker": frozenset({"crash", "hang", "delay"}),
    "shard.payload": frozenset({"corrupt"}),
    "client.connect": frozenset({"error", "delay"}),
    "client.send": frozenset({"error", "corrupt", "delay"}),
    "client.recv": frozenset({"error", "delay"}),
    "sink.consume": frozenset({"error"}),
    "warehouse.ingest": frozenset({"crash"}),
    "warehouse.compact": frozenset({"crash"}),
    # Fired inside the simulator, not the collection stack: a matching
    # point marks the in-service disk request as a media error, so the
    # engine's transparent-retry path runs under any device model.  The
    # key is "read"/"write"; the attempt number is the request's retry
    # count, so attempts=() drives a request to retry exhaustion.
    "device.service": frozenset({"error"}),
}

#: The union of kinds across all sites.
FAULT_KINDS = frozenset(kind for kinds in FAULT_SITES.values()
                        for kind in kinds)

#: Corruption modes for byte payloads (see :func:`corrupt_bytes`).
CORRUPT_MODES = ("flip", "tail", "truncate")


class InjectedFault(RuntimeError):
    """A deliberate crash fired by an armed :class:`FaultPoint`.

    Distinct from any organic failure so test assertions (and retry
    accounting) can tell injected damage from real bugs.
    """

    def __init__(self, site: str, kind: str, key: Optional[str],
                 attempt: int):
        super().__init__(
            f"injected {kind} fault at {site}"
            f"{f' [{key}]' if key else ''} (attempt {attempt})")
        self.site = site
        self.kind = kind
        self.key = key
        self.attempt = attempt

    def __reduce__(self):
        # Exceptions pickle as cls(*args); rebuild from the structured
        # fields so a crash fired inside a pool worker crosses the
        # process boundary intact.
        return (InjectedFault,
                (self.site, self.kind, self.key, self.attempt))


@dataclass(frozen=True)
class FaultPoint:
    """One armed fault: where, what, and when it fires.

    ``attempts`` selects which attempt numbers fire — ``(0,)`` (the
    default) breaks only the first try, which is how a test asserts that
    retry heals; ``()`` means *every* attempt, which is how a test
    drives retries to exhaustion.  ``probability`` below 1.0 gates each
    firing on a deterministic coin derived from the plan seed.
    """

    site: str
    kind: str
    key: Optional[str] = None          #: restrict to one instance, e.g. "shard:1"
    attempts: Tuple[int, ...] = (0,)   #: attempt numbers that fire; () = all
    probability: float = 1.0
    seconds: float = 0.0               #: hang/delay duration (hang default 3600)
    mode: str = "flip"                 #: corruption mode for 'corrupt' kinds

    def __post_init__(self):
        if self.site not in FAULT_SITES:
            raise ValueError(
                f"unknown fault site {self.site!r}; expected one of "
                f"{', '.join(sorted(FAULT_SITES))}")
        if self.kind not in FAULT_SITES[self.site]:
            raise ValueError(
                f"fault kind {self.kind!r} is not armable at {self.site!r} "
                f"(allowed: {', '.join(sorted(FAULT_SITES[self.site]))})")
        if not 0.0 <= self.probability <= 1.0:
            raise ValueError("probability must be within [0, 1]")
        if self.seconds < 0:
            raise ValueError("seconds must be >= 0")
        if self.mode not in CORRUPT_MODES:
            raise ValueError(
                f"unknown corruption mode {self.mode!r}; expected one of "
                f"{', '.join(CORRUPT_MODES)}")

    def matches(self, site: str, key: Optional[str], attempt: int) -> bool:
        if site != self.site:
            return False
        if self.key is not None and key != self.key:
            return False
        if self.attempts and attempt not in self.attempts:
            return False
        return True


@dataclass(frozen=True)
class FaultPlan:
    """A deterministic set of armed fault points.

    The plan is consulted (never mutated) at each site, so one plan
    value can cross process boundaries and every consumer reaches the
    same injection decisions.  ``seed`` drives both probability gates
    and corruption positions.
    """

    points: Tuple[FaultPoint, ...] = ()
    seed: int = 0

    def __init__(self, points: Iterable[FaultPoint] = (), seed: int = 0):
        object.__setattr__(self, "points", tuple(points))
        object.__setattr__(self, "seed", int(seed))

    def __bool__(self) -> bool:
        return bool(self.points)

    def wants(self, site: str) -> bool:
        """Cheap gate: is anything armed at *site* at all?"""
        return any(point.site == site for point in self.points)

    def point_at(self, site: str, key: Optional[str] = None,
                 attempt: int = 0) -> Optional[FaultPoint]:
        """The first armed point firing at ``(site, key, attempt)``."""
        for index, point in enumerate(self.points):
            if not point.matches(site, key, attempt):
                continue
            if point.probability >= 1.0:
                return point
            coin = random.Random(derive_seed(
                self.seed, f"{site}|{key}|{attempt}|{index}")).random()
            if coin < point.probability:
                return point
        return None

    def fire(self, site: str, key: Optional[str] = None, attempt: int = 0,
             data: Optional[bytes] = None,
             sleep: Callable[[float], None] = time.sleep,
             ) -> Optional[bytes]:
        """Maybe inject at a site; returns *data* (possibly corrupted).

        ``crash`` raises :class:`InjectedFault`; ``error`` raises a
        :class:`ConnectionError` (an ``OSError``, so the healing paths
        exercise their real environment-error handling); ``hang`` and
        ``delay`` sleep; ``corrupt`` returns damaged bytes.
        """
        point = self.point_at(site, key, attempt)
        if point is None:
            return data
        if point.kind == "crash":
            raise InjectedFault(site, point.kind, key, attempt)
        if point.kind == "error":
            raise ConnectionError(
                f"injected error fault at {site}"
                f"{f' [{key}]' if key else ''} (attempt {attempt})")
        if point.kind == "hang":
            sleep(point.seconds if point.seconds > 0 else 3600.0)
            return data
        if point.kind == "delay":
            sleep(point.seconds)
            return data
        # corrupt
        if data is None:
            return data
        return corrupt_bytes(
            data,
            seed=derive_seed(self.seed, f"{site}|{key}|{attempt}"),
            mode=point.mode)


def corrupt_bytes(data: bytes, seed: int = 0, mode: str = "flip") -> bytes:
    """Deterministically damage a byte payload.

    ``flip`` flips one bit at a seed-derived position (anywhere — the
    codec's CRC must catch it wherever it lands), ``tail`` flips the
    low bit of the last byte (damage guaranteed to land in a trailing
    checksum, not in framing fields), and ``truncate`` drops the second
    half.  Empty input is returned unchanged — there is nothing to
    damage.
    """
    if mode not in CORRUPT_MODES:
        raise ValueError(f"unknown corruption mode {mode!r}")
    if not data:
        return data
    if mode == "truncate":
        return data[:len(data) // 2]
    if mode == "tail":
        index = len(data) - 1
        bit = 0
    else:
        rng = random.Random(seed)
        index = rng.randrange(len(data))
        bit = rng.randrange(8)
    damaged = bytearray(data)
    damaged[index] ^= 1 << bit
    return bytes(damaged)


class FaultySocket:
    """A socket proxy that fires ``client.send``/``client.recv`` faults.

    Wraps a connected socket; every ``sendall`` consults the plan at
    ``client.send`` (attempt = send ordinal) and every ``recv`` at
    ``client.recv`` (attempt = recv ordinal), so ``attempts=(0,)``
    breaks exactly the first operation.  Pass a shared ``counters``
    dict to keep ordinals monotonic across reconnects — a healing
    client wraps each fresh socket, and without shared counters an
    ``attempts=(0,)`` fault would re-fire on the first operation of
    *every* connection and never heal.  Everything else is delegated,
    so the wrapper drops into :mod:`repro.service.protocol` unchanged.
    """

    def __init__(self, sock, plan: FaultPlan,
                 sleep: Callable[[float], None] = time.sleep,
                 counters: Optional[dict] = None):
        self._sock = sock
        self._plan = plan
        self._sleep = sleep
        self._counters = counters if counters is not None \
            else {"send": 0, "recv": 0}

    @property
    def sends(self) -> int:
        return self._counters["send"]

    @property
    def recvs(self) -> int:
        return self._counters["recv"]

    def sendall(self, data: bytes) -> None:
        attempt = self._counters["send"]
        self._counters["send"] += 1
        data = self._plan.fire("client.send", attempt=attempt, data=data,
                               sleep=self._sleep)
        self._sock.sendall(data)

    def recv(self, bufsize: int) -> bytes:
        attempt = self._counters["recv"]
        self._counters["recv"] += 1
        self._plan.fire("client.recv", attempt=attempt, sleep=self._sleep)
        return self._sock.recv(bufsize)

    def __getattr__(self, name):
        return getattr(self._sock, name)


class FaultingSink:
    """An event sink that fires ``sink.consume`` faults, then forwards.

    Duck-types :class:`repro.core.pipeline.EventSink` (no import, to
    keep this module dependency-light).  ``inner`` is optional — a bare
    FaultingSink is simply a sink that raises on the armed attempts.
    """

    def __init__(self, plan: FaultPlan, inner=None,
                 key: Optional[str] = None):
        self._plan = plan
        self._inner = inner
        self._key = key
        self.consumes = 0

    def consume(self, layer: str, events) -> None:
        attempt = self.consumes
        self.consumes += 1
        point = self._plan.point_at("sink.consume", key=self._key,
                                    attempt=attempt)
        if point is not None:
            raise InjectedFault("sink.consume", point.kind, self._key,
                               attempt)
        if self._inner is not None:
            self._inner.consume(layer, events)

    def flush(self) -> None:
        if self._inner is not None:
            self._inner.flush()

"""The one durable-write funnel: fsync-correct atomic files + appends.

Every component that claims crash safety — the warehouse's segment
files and commit journal, the push spool, the relay's write-ahead state
file — used to carry its own copy of the temp-file + ``os.replace``
idiom.  All three copies shared the same latent bug: nothing ever
fsynced the file contents before the rename, or the parent directory
after it, so the "atomic" commit was atomic against *process* crashes
only.  A power cut (or any crash that drops the page cache) could leave
the rename durable while the payload was not — a committed-looking file
full of zeros — or lose the rename entirely after the caller had
already acked the data.

This module is the single replacement.  :func:`write_atomic` performs
the full four-step durable commit::

    write temp  ->  fsync temp  ->  os.replace  ->  fsync parent dir

and :func:`append_bytes` the append-side equivalent (write, flush,
fsync).  Nothing in the tree opens a durable file any other way.

Every operation is also *journaled* when a recorder is installed (see
:mod:`repro.core.crashfs`): the recorder observes the exact op stream —
writes, appends, fsyncs, renames, unlinks — and can later materialize
any crash image of it, which is how the crash-consistency matrix proves
these four steps are all present and all required.  Recording is a
process-global hook intended for single-threaded test drivers; the
production path never installs one and pays only a ``None`` check.
"""

from __future__ import annotations

import contextlib
import os
from pathlib import Path
from typing import Optional

__all__ = [
    "write_atomic",
    "write_file",
    "append_bytes",
    "fsync_file",
    "fsync_dir",
    "ensure_dir",
    "unlink",
    "replace",
    "truncate",
    "set_recorder",
    "recording",
]

#: The installed op recorder (a :class:`repro.core.crashfs.CrashFS` in
#: tests, ``None`` in production).  Consulted, never required.
_recorder = None


def set_recorder(recorder) -> None:
    """Install (or, with ``None``, remove) the global op recorder."""
    global _recorder
    _recorder = recorder


@contextlib.contextmanager
def recording(recorder):
    """Scope a recorder over a block: ``with recording(fs): ...``."""
    previous = _recorder
    set_recorder(recorder)
    try:
        yield recorder
    finally:
        set_recorder(previous)


def _record(kind: str, path, data: Optional[bytes] = None,
            dest=None, size: Optional[int] = None) -> None:
    if _recorder is not None:
        _recorder.record(kind, path, data=data, dest=dest, size=size)


# -- directory plumbing ------------------------------------------------------

def ensure_dir(path) -> None:
    """``mkdir -p``, journaled."""
    path = Path(path)
    if path.is_dir():
        return
    path.mkdir(parents=True, exist_ok=True)
    _record("mkdir", path)


def fsync_dir(path) -> None:
    """Make a directory's entries (creates/renames/unlinks) durable.

    Best-effort on platforms that cannot open directories (the op is
    still journaled, so the crash matrix judges the *intent*).
    """
    _record("fsync_dir", path)
    flags = os.O_RDONLY | getattr(os, "O_DIRECTORY", 0)
    try:
        fd = os.open(path, flags)
    except OSError:
        return
    try:
        os.fsync(fd)
    except OSError:
        pass
    finally:
        os.close(fd)


def fsync_file(path) -> None:
    """fsync an existing file's contents in place."""
    with open(path, "rb") as f:
        os.fsync(f.fileno())
    _record("fsync", path)


# -- the durable write idioms ------------------------------------------------

def write_atomic(path, data: bytes, *, fsync: bool = True) -> None:
    """Durably publish *data* at *path* via the four-step commit.

    The temp file is fsynced **before** the rename (so the payload can
    never lag the name) and the parent directory **after** it (so the
    name itself is durable).  ``fsync=False`` skips both syncs — that
    is the historical bug, kept only so the crash matrix can prove the
    harness catches it; never pass it from production code.
    """
    path = Path(path)
    ensure_dir(path.parent)
    tmp = path.with_name(f".tmp-{path.name}")
    with open(tmp, "wb") as f:
        _record("write", tmp, data=data)
        f.write(data)
        if fsync:
            f.flush()
            os.fsync(f.fileno())
    if fsync:
        _record("fsync", tmp)
    os.replace(tmp, path)
    _record("replace", tmp, dest=path)
    if fsync:
        fsync_dir(path.parent)


def write_file(path, data: bytes, *, fsync: bool = True) -> None:
    """Durably create (or truncate) a plain file in place.

    For files that are appended to afterwards (a journal header): the
    content is fsynced and the parent directory synced so the file's
    existence is durable before the first append relies on it.
    """
    path = Path(path)
    ensure_dir(path.parent)
    with open(path, "wb") as f:
        _record("write", path, data=data)
        f.write(data)
        if fsync:
            f.flush()
            os.fsync(f.fileno())
    if fsync:
        _record("fsync", path)
        fsync_dir(path.parent)


def append_bytes(path, data: bytes, *, fsync: bool = True) -> None:
    """Durably append *data* to *path* (one write, one fsync)."""
    path = Path(path)
    with open(path, "ab") as f:
        _record("append", path, data=data)
        f.write(data)
        f.flush()
        if fsync:
            os.fsync(f.fileno())
    if fsync:
        _record("fsync", path)


# -- namespace ops the crash matrix must see ---------------------------------

def unlink(path, missing_ok: bool = True) -> bool:
    """Journaled ``unlink``; returns whether a file was removed."""
    try:
        os.unlink(path)
    except FileNotFoundError:
        if missing_ok:
            return False
        raise
    _record("unlink", path)
    return True


def replace(src, dest) -> None:
    """Journaled ``os.replace`` of an existing file (no data write)."""
    os.replace(src, dest)
    _record("replace", src, dest=dest)


def truncate(path, size: int) -> None:
    """Journaled truncate-in-place (journal tail repair)."""
    with open(path, "r+b") as f:
        f.truncate(size)
    _record("truncate", path, size=size)

"""Logarithmic latency buckets: the aggregate statistics library.

This module is the Python equivalent of the paper's 141-line C
``aggregate_stats`` library (Section 4).  Latencies, measured in CPU
cycles, are sorted at record time into logarithmic buckets:

    bucket(latency) = floor(r * log2(latency))

where ``r`` is the profile *resolution* (the paper always used ``r = 1``
and notes that ``r = 2`` would double the bucket density at negligible
cost).  Bucket ``b`` therefore holds all requests whose latency lies in
``[2**(b/r), 2**((b+1)/r))`` cycles.

Logarithmic bucketing implements the non-linear filtering of Section 3:
``log(t_max + eps) ~= log(t_max)``, so each bucket isolates the dominant
latency contributor of one execution path, and distinct paths appear as
distinct peaks.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Iterable, Iterator, List, Optional, Tuple

__all__ = [
    "BucketSpec",
    "LatencyBuckets",
    "DEFAULT_RESOLUTION",
    "MAX_BUCKET",
]

#: The paper always profiles with resolution 1 (one bucket per power of two).
DEFAULT_RESOLUTION = 1

#: A 64-bit cycle counter "can count for a century without overflowing"
#: (Section 4); 64 buckets at r=1 therefore cover every possible latency.
MAX_BUCKET = 64 * 8  # generous cap even for r = 8


class BucketSpec:
    """Mapping between latencies (in cycles) and logarithmic bucket indices.

    A ``BucketSpec`` is immutable and shared between all histograms of a
    profile set so that their buckets are directly comparable.
    """

    __slots__ = ("resolution",)

    def __init__(self, resolution: int = DEFAULT_RESOLUTION):
        if not isinstance(resolution, int) or resolution < 1:
            raise ValueError("resolution must be a positive integer")
        if resolution > 8:
            raise ValueError("resolution > 8 wastes memory without benefit")
        self.resolution = resolution

    def bucket(self, latency: float) -> int:
        """Return the bucket index for a latency in cycles.

        Latencies below one cycle (including zero) land in bucket 0: the
        hardware counter cannot resolve sub-cycle intervals, mirroring the
        C library where a zero-delta TSC read increments the first bucket.
        """
        if latency < 1:
            return 0
        if self.resolution == 1:
            # Exact floor(log2): frexp is a bit-scan, immune to the
            # rounding of math.log2 near bucket boundaries (the C
            # library uses bsr for the same reason).
            _, exponent = math.frexp(latency)
            return min(exponent - 1, MAX_BUCKET)
        b = int(self.resolution * math.log2(latency))
        return min(b, MAX_BUCKET)

    def low(self, bucket: int) -> float:
        """Inclusive lower latency bound of *bucket*, in cycles."""
        if bucket < 0:
            raise ValueError("bucket index must be non-negative")
        return 2.0 ** (bucket / self.resolution)

    def high(self, bucket: int) -> float:
        """Exclusive upper latency bound of *bucket*, in cycles."""
        return 2.0 ** ((bucket + 1) / self.resolution)

    def mid(self, bucket: int) -> float:
        """Representative (geometric-mean biased) latency of *bucket*.

        The paper uses ``3/2 * 2**b`` as the average latency of bucket
        ``b`` at r=1 (Section 3.3: "the average latency of bucket b is
        equal to t_cpu = 3/2 * 2**b"); we generalize to arbitrary r as the
        arithmetic middle of the bucket's span.
        """
        return (self.low(bucket) + self.high(bucket)) / 2.0

    def label(self, bucket: int, hz: float = 1.7e9) -> str:
        """Human-readable time label for a bucket boundary.

        ``hz`` converts cycles to seconds; the default matches the paper's
        1.7 GHz Pentium 4 so that labels line up with the figures
        (bucket 5 ~ 28 ns, bucket 10 ~ 903 ns, ...).
        """
        seconds = self.low(bucket) / hz
        return format_seconds(seconds)

    def __eq__(self, other: object) -> bool:
        return isinstance(other, BucketSpec) and other.resolution == self.resolution

    def __hash__(self) -> int:
        return hash(("BucketSpec", self.resolution))

    def __repr__(self) -> str:
        return f"BucketSpec(resolution={self.resolution})"


def format_seconds(seconds: float) -> str:
    """Format a duration the way the paper's figure labels do (28ns, 903ns, 28us...)."""
    if seconds < 1e-6:
        return f"{seconds * 1e9:.0f}ns"
    if seconds < 1e-3:
        return f"{seconds * 1e6:.0f}us"
    if seconds < 1.0:
        return f"{seconds * 1e3:.0f}ms"
    return f"{seconds:.1f}s"


def _grow_expansion(partials: List[float], x: float) -> None:
    """Add *x* to a Shewchuk expansion, keeping the sum exact.

    ``partials`` is a list of non-overlapping floats whose mathematical
    sum equals the true (infinitely precise) running total.  Growing it
    with two-sums is error-free, so the represented total does not
    depend on the order values arrive in — the property that makes
    merged profiles byte-identical no matter how many concurrent
    collectors contributed (same trick as ``math.fsum``).
    """
    i = 0
    for y in partials:
        if abs(x) < abs(y):
            x, y = y, x
        hi = x + y
        lo = y - (hi - x)
        if lo:
            partials[i] = lo
            i += 1
        x = hi
    partials[i:] = [x]


@dataclass
class BucketStats:
    """Summary of one bucket: index, count and the spec-derived bounds."""

    index: int
    count: int
    low: float
    high: float


class LatencyBuckets:
    """A growable logarithmic histogram of request latencies.

    This is one "profile" in the paper's terminology: a small array of
    counters, one per log2 bucket, plus running totals used both for
    analysis (total latency sorting) and for consistency checking
    (Section 4: "aggregate_stats maintains checksums of the number of
    time measurements").
    """

    __slots__ = ("spec", "_counts", "total_ops", "_latency_partials",
                 "min_latency", "max_latency")

    def __init__(self, spec: Optional[BucketSpec] = None):
        self.spec = spec if spec is not None else BucketSpec()
        self._counts: Dict[int, int] = {}
        self.total_ops = 0
        self._latency_partials: List[float] = []
        self.min_latency: Optional[float] = None
        self.max_latency: Optional[float] = None

    @property
    def total_latency(self) -> float:
        """Exact sum of all recorded latencies, in cycles.

        Internally an error-free float expansion, so the value is
        independent of the order in which samples were added or
        histograms were merged — two profiles holding the same samples
        always serialize to identical bytes.
        """
        return math.fsum(self._latency_partials)

    @total_latency.setter
    def total_latency(self, value: float) -> None:
        self._latency_partials = [float(value)]

    # -- recording ---------------------------------------------------------

    def add(self, latency: float, count: int = 1) -> int:
        """Record *count* requests of the given latency; return the bucket hit."""
        if count < 1:
            raise ValueError("count must be >= 1")
        if latency < 0:
            raise ValueError("latency must be non-negative")
        b = self.spec.bucket(latency)
        self._counts[b] = self._counts.get(b, 0) + count
        self.total_ops += count
        _grow_expansion(self._latency_partials, latency * count)
        if self.min_latency is None or latency < self.min_latency:
            self.min_latency = latency
        if self.max_latency is None or latency > self.max_latency:
            self.max_latency = latency
        return b

    def add_many(self, latencies: Iterable[float]) -> None:
        """Record a batch of latencies: the pipeline's flush hot path.

        Exactly equivalent to calling :meth:`add` once per latency — the
        same buckets, totals, extrema, and (because the running total is
        an exact expansion) the same serialized bytes — but considerably
        faster: bucketing is done inline with ``int.bit_length`` (the
        Python spelling of the C library's ``bsr``) and the expansion
        growth is unrolled into the loop, so each sample costs zero
        function calls instead of the per-sample path's several.
        """
        if not isinstance(latencies, list):
            latencies = list(latencies)
        if not latencies:
            return
        counts = self._counts
        partials = self._latency_partials
        counts_get = counts.get
        fast = self.spec.resolution == 1
        bucket_of = self.spec.bucket
        for lat in latencies:
            if lat < 1.0:
                if lat < 0.0:
                    raise ValueError("latency must be non-negative")
                b = 0
            elif fast:
                # floor(log2): truncation to int never crosses a power
                # of two downward, so bit_length-1 equals the frexp
                # exponent used by the per-sample path.
                b = int(lat).bit_length() - 1
                if b > MAX_BUCKET:
                    b = MAX_BUCKET
            else:
                b = bucket_of(lat)
            counts[b] = counts_get(b, 0) + 1
            # _grow_expansion, unrolled: error-free two-sums keep the
            # running total exact, hence order-independent.
            x = lat
            i = 0
            for y in partials:
                if abs(x) < abs(y):
                    x, y = y, x
                hi = x + y
                lo = y - (hi - x)
                if lo:
                    partials[i] = lo
                    i += 1
                x = hi
            partials[i:] = [x]
        self.total_ops += len(latencies)
        lo = min(latencies)
        hi = max(latencies)
        if self.min_latency is None or lo < self.min_latency:
            self.min_latency = lo
        if self.max_latency is None or hi > self.max_latency:
            self.max_latency = hi

    def add_to_bucket(self, bucket: int, count: int = 1) -> None:
        """Record directly into a bucket (used for value-correlation profiles).

        Totals are updated using the bucket's representative latency so
        that checksum verification still holds.
        """
        if bucket < 0 or bucket > MAX_BUCKET:
            raise ValueError("bucket index out of range")
        if count < 1:
            raise ValueError("count must be >= 1")
        self._counts[bucket] = self._counts.get(bucket, 0) + count
        self.total_ops += count
        _grow_expansion(self._latency_partials, self.spec.mid(bucket) * count)

    def merge(self, other: "LatencyBuckets") -> None:
        """Fold another histogram into this one (used by per-CPU profiles)."""
        if other.spec != self.spec:
            raise ValueError("cannot merge histograms with different resolutions")
        for b, c in other._counts.items():
            self._counts[b] = self._counts.get(b, 0) + c
        self.total_ops += other.total_ops
        # Concatenating two exact expansions keeps the sum exact, so
        # merge order (serial, sharded, concurrent pushes) cannot change
        # the reported total by even an ulp.
        for partial in other._latency_partials:
            _grow_expansion(self._latency_partials, partial)
        if other.min_latency is not None:
            if self.min_latency is None or other.min_latency < self.min_latency:
                self.min_latency = other.min_latency
        if other.max_latency is not None:
            if self.max_latency is None or other.max_latency > self.max_latency:
                self.max_latency = other.max_latency

    def latency_residual(self) -> List[float]:
        """Exact expansion of ``(true total) - total_latency``.

        Serialization keeps one float64 per total, so a histogram whose
        expansion needs more components loses up to half an ulp per
        encode.  The residual captures exactly what the rounding
        dropped; a consumer that stores it next to the encoded bytes
        (the warehouse does, in its commit log) can hand it back to
        :meth:`correct_total_latency` after decoding and make the
        encode/decode cycle sum-exact — which is what keeps tiered
        compaction byte-deterministic.
        """
        residual: List[float] = []
        _grow_expansion(residual, -self.total_latency)
        for partial in self._latency_partials:
            _grow_expansion(residual, partial)
        return [c for c in residual if c]

    def correct_total_latency(self, components: Iterable[float]) -> None:
        """Fold exact correction *components* back into the expansion."""
        for c in components:
            _grow_expansion(self._latency_partials, float(c))

    # -- reading -----------------------------------------------------------

    def count(self, bucket: int) -> int:
        """Number of requests recorded in *bucket*."""
        return self._counts.get(bucket, 0)

    def counts(self) -> Dict[int, int]:
        """A copy of the sparse bucket→count mapping."""
        return dict(self._counts)

    def nonzero_buckets(self) -> List[int]:
        """Sorted indices of buckets holding at least one request."""
        return sorted(self._counts)

    def as_list(self, first: Optional[int] = None,
                last: Optional[int] = None) -> List[int]:
        """Dense list of counts from bucket *first* to *last* inclusive.

        Defaults to the histogram's own occupied range.  Empty histograms
        yield an empty list.
        """
        if not self._counts:
            return []
        lo = min(self._counts) if first is None else first
        hi = max(self._counts) if last is None else last
        return [self._counts.get(b, 0) for b in range(lo, hi + 1)]

    def span(self) -> Tuple[int, int]:
        """(lowest, highest) occupied bucket indices.

        Raises ``ValueError`` on an empty histogram.
        """
        if not self._counts:
            raise ValueError("histogram is empty")
        return min(self._counts), max(self._counts)

    def mean_latency(self) -> float:
        """Average recorded latency in cycles (0.0 if empty)."""
        if self.total_ops == 0:
            return 0.0
        return self.total_latency / self.total_ops

    def estimated_latency(self) -> float:
        """Total latency reconstructed from bucket midpoints.

        Useful when only the bucket counts survived serialization; agrees
        with ``total_latency`` to within a factor of the bucket width.
        """
        return sum(self.spec.mid(b) * c for b, c in self._counts.items())

    def verify_checksum(self) -> bool:
        """Consistency check from Section 4: bucket counts must sum to total_ops.

        Catches instrumentation errors (lost or double-counted updates).
        """
        return sum(self._counts.values()) == self.total_ops

    def __len__(self) -> int:
        return len(self._counts)

    def __iter__(self) -> Iterator[BucketStats]:
        for b in sorted(self._counts):
            yield BucketStats(index=b, count=self._counts[b],
                              low=self.spec.low(b), high=self.spec.high(b))

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, LatencyBuckets):
            return NotImplemented
        return (self.spec == other.spec and self._counts == other._counts
                and self.total_ops == other.total_ops)

    def __repr__(self) -> str:
        return (f"<LatencyBuckets ops={self.total_ops} "
                f"buckets={len(self._counts)} "
                f"mean={self.mean_latency():.0f}cyc>")

    # -- construction helpers ----------------------------------------------

    @classmethod
    def from_latencies(cls, latencies: Iterable[float],
                       spec: Optional[BucketSpec] = None) -> "LatencyBuckets":
        """Build a histogram from an iterable of latencies in cycles."""
        hist = cls(spec)
        for lat in latencies:
            hist.add(lat)
        return hist

    @classmethod
    def from_counts(cls, counts: Dict[int, int],
                    spec: Optional[BucketSpec] = None) -> "LatencyBuckets":
        """Build a histogram directly from a bucket→count mapping."""
        hist = cls(spec)
        for b in sorted(counts):
            if counts[b]:
                hist.add_to_bucket(b, counts[b])
        return hist

    @classmethod
    def restore(cls, counts: Dict[int, int], total_ops: int,
                total_latency: float,
                min_latency: Optional[float] = None,
                max_latency: Optional[float] = None,
                spec: Optional[BucketSpec] = None) -> "LatencyBuckets":
        """Rebuild a histogram from serialized state, exactly.

        Unlike :meth:`from_counts` (which re-derives totals from bucket
        midpoints), ``restore`` preserves the recorded totals so a
        decoded histogram is bit-identical to the one that was encoded.
        The Section 4 checksum is enforced on the way in: bucket counts
        must sum to ``total_ops``.
        """
        hist = cls(spec)
        for b in sorted(counts):
            c = counts[b]
            if c < 0:
                raise ValueError(f"negative count {c} in bucket {b}")
            if b < 0 or b > MAX_BUCKET:
                raise ValueError(f"bucket index {b} out of range")
            if c:
                hist._counts[b] = c
        if sum(hist._counts.values()) != total_ops:
            raise ValueError(
                f"checksum mismatch: bucket counts sum to "
                f"{sum(hist._counts.values())}, header says {total_ops}")
        hist.total_ops = total_ops
        hist.total_latency = total_latency
        hist.min_latency = min_latency
        hist.max_latency = max_latency
        return hist

"""Request interception and latency capture.

The :class:`Profiler` is the moral equivalent of the paper's
``FSPROF_PRE(op)`` / ``FSPROF_POST(op)`` instrumentation macros: it reads
a cycle counter at operation entry and exit, and stores the delta into
the appropriate logarithmic bucket of a per-operation profile.

The cycle counter is pluggable: pass any zero-argument callable
returning a monotonically non-decreasing cycle count.  By default a
wall-clock TSC emulation (``perf_counter_ns`` scaled to a nominal CPU
frequency) is used, so the profiler can instrument *real* Python code;
inside the simulator, the simulated per-CPU TSC is passed instead —
exactly the layered design of Figure 2 where the same aggregate-stats
library runs at user, file-system, and driver level.
"""

from __future__ import annotations

import functools
import time
from contextlib import contextmanager
from typing import Callable, Dict, Iterator, Optional

from .buckets import BucketSpec
from .profile import Layer
from .profileset import ProfileSet

__all__ = ["Profiler", "RequestToken", "TokenFinishedError", "tsc_clock",
           "NOMINAL_HZ"]

#: Nominal frequency of the paper's test machine (1.7 GHz Pentium 4).
NOMINAL_HZ = 1.7e9


class TokenFinishedError(RuntimeError):
    """A request/probe token was finished twice.

    Each token represents exactly one in-flight request; a double finish
    means the instrumentation's entry/exit pairing is broken (the
    C library's equivalent would be a mismatched FSPROF_POST).  Subclass
    of :class:`RuntimeError` for backward compatibility with callers
    that caught the old generic error.
    """


def tsc_clock(hz: float = NOMINAL_HZ) -> Callable[[], float]:
    """An emulated TSC: wall-clock nanoseconds scaled to CPU cycles.

    On the paper's hardware a TSC read was a single instruction (~20
    cycles); ``perf_counter_ns`` is the closest portable equivalent.
    """
    scale = hz / 1e9

    def read() -> float:
        return time.perf_counter_ns() * scale

    return read


class RequestToken:
    """Context variable holding a request's start timestamp.

    The C library "store[s] request start times in context variables"
    (Section 4); this object is that variable.  Tokens are cheap, may be
    held across blocking calls, and each may be finished exactly once.
    """

    __slots__ = ("operation", "start", "_done")

    def __init__(self, operation: str, start: float):
        self.operation = operation
        self.start = start
        self._done = False


class Profiler:
    """Latency profiler writing into a :class:`ProfileSet`.

    Instances are cheap; create one per layer being profiled.  Three
    usage styles are supported, mirroring how the paper's macros were
    applied:

    * explicit ``begin()`` / ``end()`` around arbitrary code,
    * the :meth:`request` context manager,
    * the :meth:`wrap` decorator, which instruments a callable the way
      FoSgen instruments a VFS operation.
    """

    def __init__(self, name: str = "", layer: str = Layer.FILESYSTEM,
                 clock: Optional[Callable[[], float]] = None,
                 spec: Optional[BucketSpec] = None,
                 enabled: bool = True):
        self.layer = layer
        self.clock = clock if clock is not None else tsc_clock()
        self.profiles = ProfileSet(name=name, spec=spec)
        self.enabled = enabled
        #: Overhead accounting: number of begin/end pairs processed.
        self.requests_profiled = 0
        self._flush_hooks = []

    # -- core instrumentation ---------------------------------------------

    def begin(self, operation: str) -> RequestToken:
        """FSPROF_PRE: read the cycle counter and remember it."""
        return RequestToken(operation, self.clock())

    def end(self, token: RequestToken) -> Optional[float]:
        """FSPROF_POST: compute the latency and bucket it.

        Returns the measured latency in cycles, or ``None`` when the
        profiler is disabled.  Finishing a token twice is an
        instrumentation bug and raises.
        """
        now = self.clock()
        if token._done:
            raise TokenFinishedError(
                f"request token for {token.operation!r} finished twice")
        token._done = True
        if not self.enabled:
            return None
        latency = now - token.start
        if latency < 0:
            # Clock skew across CPUs (Section 3.4) can make latencies
            # negative; clamp to zero so they land in bucket 0 instead of
            # corrupting the histogram.
            latency = 0.0
        self.profiles.add(token.operation, latency, layer=self.layer)
        self.requests_profiled += 1
        return latency

    def record(self, operation: str, latency: float) -> None:
        """Record an externally measured latency (cycles) directly."""
        if not self.enabled:
            return
        if latency < 0:
            latency = 0.0
        self.profiles.add(operation, latency, layer=self.layer)
        self.requests_profiled += 1

    @contextmanager
    def request(self, operation: str) -> Iterator[RequestToken]:
        """Profile the body of a ``with`` block as one request."""
        token = self.begin(operation)
        try:
            yield token
        finally:
            self.end(token)

    def wrap(self, operation: Optional[str] = None) -> Callable:
        """Decorator instrumenting a callable as a profiled operation.

        The operation name defaults to the function's ``__name__``, the
        same convention FoSgen uses for VFS operation vectors.
        """

        def decorate(func: Callable) -> Callable:
            opname = operation if operation is not None else func.__name__

            @functools.wraps(func)
            def wrapper(*args, **kwargs):
                token = self.begin(opname)
                try:
                    return func(*args, **kwargs)
                finally:
                    self.end(token)

            return wrapper

        return decorate

    # -- results -------------------------------------------------------------

    def attach_flush(self, hook: Callable[[], None]) -> None:
        """Register a hook run before results are read or reset.

        The probe/event pipeline defers histogram insertion into per-CPU
        batch buffers; its flush is attached here so ``profile_set()``
        and ``reset()`` always observe a fully drained profile.
        """
        self._flush_hooks.append(hook)

    def _flush(self) -> None:
        for hook in self._flush_hooks:
            hook()

    def profile_set(self) -> ProfileSet:
        """The accumulated complete profile."""
        self._flush()
        return self.profiles

    def reset(self) -> None:
        """Drop accumulated profiles, keeping clock and configuration."""
        self._flush()
        self.profiles = ProfileSet(name=self.profiles.name,
                                   spec=self.profiles.spec)
        self.requests_profiled = 0

    def measurement_overhead(self, samples: int = 10000) -> float:
        """Measure the in-profile overhead: cycles between the two clock reads.

        Section 5.2 computed ~40 cycles on the paper's machine, which
        bounds the smallest recordable latency (their minimum was always
        bucket 5).  Profiling an empty region measures the same quantity
        here.
        """
        if samples < 1:
            raise ValueError("samples must be >= 1")
        deltas = []
        for _ in range(samples):
            t0 = self.clock()
            t1 = self.clock()
            deltas.append(t1 - t0)
        return sum(deltas) / len(deltas)

"""OSprof core: logarithmic latency profiles and their capture.

The public surface of the paper's primary contribution:

* :class:`BucketSpec`, :class:`LatencyBuckets` — the aggregate-stats
  library (log2 buckets, checksums, resolution).
* :class:`Profile`, :class:`ProfileSet` — per-operation histograms and
  complete profiles with text serialization.
* :class:`Profiler` — request interception (begin/end, context manager,
  decorator) against any cycle-counter clock.
* :class:`SampledProfiler` — time-segmented 3-D profiles (Figure 9).
* :class:`ValueCorrelator` — direct profile/value correlation (Figure 8).
* :class:`LayerStack` — layered profiling across user/FS/driver levels.
* :class:`LossySharedBuckets` / :class:`PerThreadBuckets` — SMP update
  strategies.
* :class:`SyscallProfiler` — user-level profiling of the host OS.
"""

from .buckets import BucketSpec, LatencyBuckets, DEFAULT_RESOLUTION, MAX_BUCKET
from .correlation import PeakRange, ValueCorrelator
from .detours import InterceptionError, Interceptor
from .procfs import PROC_ROOT, ProcFs
from .hostprof import SyscallProfiler, profile_callable
from .layers import LayerStack, isolate_layer
from .locking import LossySharedBuckets, PerThreadBuckets
from .profile import Layer, Profile
from .profileset import ProfileSet
from .profiler import NOMINAL_HZ, Profiler, RequestToken, tsc_clock
from .sampling import SampledProfiler, SampledProfileSeries

__all__ = [
    "BucketSpec", "LatencyBuckets", "DEFAULT_RESOLUTION", "MAX_BUCKET",
    "PeakRange", "ValueCorrelator",
    "InterceptionError", "Interceptor",
    "PROC_ROOT", "ProcFs",
    "SyscallProfiler", "profile_callable",
    "LayerStack", "isolate_layer",
    "LossySharedBuckets", "PerThreadBuckets",
    "Layer", "Profile", "ProfileSet",
    "NOMINAL_HZ", "Profiler", "RequestToken", "tsc_clock",
    "SampledProfiler", "SampledProfileSeries",
]

"""Complete profiles: one histogram per OS operation, plus text I/O.

"A complete profile may consist of dozens of profiles of individual
operations" (Section 3.1).  :class:`ProfileSet` is that container; it
also implements the `/proc`-style text format used by the paper's kernel
reporting interface, so profiles can be saved, diffed and re-loaded.

Text format (one profile per block)::

    # osprof 1 resolution=1
    op read layer=filesystem total_ops=123 total_latency=456789
    5 17
    6 100
    ...
    end

Bucket lines are ``<bucket-index> <count>``.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Optional, TextIO, Tuple

from .buckets import BucketSpec
from .profile import Layer, Profile

__all__ = ["ProfileSet"]

_HEADER_PREFIX = "# osprof 1"


class ProfileSet:
    """A mapping of operation name to :class:`Profile` for one experiment."""

    def __init__(self, name: str = "", spec: Optional[BucketSpec] = None,
                 attributes: Optional[Dict[str, str]] = None):
        self.name = name
        self.spec = spec if spec is not None else BucketSpec()
        self.attributes: Dict[str, str] = dict(attributes or {})
        self._profiles: Dict[str, Profile] = {}

    # -- container behaviour -------------------------------------------------

    def __contains__(self, operation: str) -> bool:
        return operation in self._profiles

    def __getitem__(self, operation: str) -> Profile:
        return self._profiles[operation]

    def __iter__(self) -> Iterator[Profile]:
        return iter(self._profiles.values())

    def __len__(self) -> int:
        return len(self._profiles)

    def operations(self) -> List[str]:
        """Operation names, sorted for stable output."""
        return sorted(self._profiles)

    def get(self, operation: str) -> Optional[Profile]:
        return self._profiles.get(operation)

    def profile(self, operation: str, layer: str = Layer.FILESYSTEM) -> Profile:
        """Return the profile for *operation*, creating it if needed."""
        prof = self._profiles.get(operation)
        if prof is None:
            prof = Profile(operation, layer, self.spec)
            self._profiles[operation] = prof
        return prof

    def add(self, operation: str, latency: float, count: int = 1,
            layer: str = Layer.FILESYSTEM) -> int:
        """Record one latency sample under *operation*."""
        return self.profile(operation, layer).add(latency, count)

    def insert(self, prof: Profile) -> None:
        """Insert (or merge into) a profile for ``prof.operation``."""
        if prof.spec != self.spec:
            raise ValueError("profile resolution differs from set resolution")
        existing = self._profiles.get(prof.operation)
        if existing is None:
            self._profiles[prof.operation] = prof
        else:
            existing.merge(prof)

    def merge(self, other: "ProfileSet") -> None:
        """Fold every profile of *other* into this set (per-CPU merge)."""
        for prof in other:
            self.insert(prof.copy())

    # -- aggregate queries ---------------------------------------------------

    def total_ops(self) -> int:
        return sum(p.total_ops for p in self)

    def total_latency(self) -> float:
        return sum(p.total_latency for p in self)

    def by_total_latency(self) -> List[Profile]:
        """Profiles sorted by descending total latency (Section 3.2 step 1).

        The head of this list is where optimization effort pays off.
        """
        return sorted(self, key=lambda p: p.total_latency, reverse=True)

    def verify_checksums(self) -> List[str]:
        """Names of operations whose histograms fail the checksum test."""
        return [p.operation for p in self if not p.verify_checksum()]

    def __repr__(self) -> str:
        return (f"<ProfileSet {self.name!r} ops={len(self)} "
                f"requests={self.total_ops()}>")

    # -- text serialization ----------------------------------------------------

    def dump(self, out: TextIO) -> None:
        """Write the set in the /proc-style text format."""
        out.write(f"{_HEADER_PREFIX} resolution={self.spec.resolution}")
        if self.name:
            out.write(f" name={self.name}")
        out.write("\n")
        for op in self.operations():
            prof = self._profiles[op]
            out.write(
                f"op {prof.operation} layer={prof.layer} "
                f"total_ops={prof.total_ops} "
                f"total_latency={prof.total_latency:.0f}\n")
            for b, c in sorted(prof.counts().items()):
                out.write(f"{b} {c}\n")
            out.write("end\n")

    def dumps(self) -> str:
        import io
        buf = io.StringIO()
        self.dump(buf)
        return buf.getvalue()

    @classmethod
    def load(cls, inp: TextIO) -> "ProfileSet":
        """Parse the text format written by :meth:`dump`."""
        header = inp.readline().strip()
        if not header.startswith(_HEADER_PREFIX):
            raise ValueError(f"not an osprof profile dump: {header!r}")
        fields = dict(
            kv.split("=", 1) for kv in header[len(_HEADER_PREFIX):].split()
            if "=" in kv)
        spec = BucketSpec(int(fields.get("resolution", "1")))
        pset = cls(name=fields.get("name", ""), spec=spec)
        current: Optional[Profile] = None
        for raw in inp:
            line = raw.strip()
            if not line or line.startswith("#"):
                continue
            if line.startswith("op "):
                parts = line.split()
                opname = parts[1]
                opts = dict(kv.split("=", 1) for kv in parts[2:] if "=" in kv)
                current = Profile(opname, opts.get("layer", Layer.FILESYSTEM),
                                  spec)
                pset._profiles[opname] = current
            elif line == "end":
                current = None
            else:
                if current is None:
                    raise ValueError(f"bucket line outside op block: {line!r}")
                bucket_str, count_str = line.split()
                current.histogram.add_to_bucket(int(bucket_str),
                                                int(count_str))
        return pset

    @classmethod
    def loads(cls, text: str) -> "ProfileSet":
        import io
        return cls.load(io.StringIO(text))

    @classmethod
    def from_operation_latencies(
            cls, samples: Dict[str, Iterable[float]], name: str = "",
            spec: Optional[BucketSpec] = None) -> "ProfileSet":
        """Build a set from ``{operation: [latency, ...]}``."""
        pset = cls(name=name, spec=spec)
        for op, latencies in samples.items():
            for lat in latencies:
                pset.add(op, lat)
        return pset

"""Complete profiles: one histogram per OS operation, plus text and binary I/O.

"A complete profile may consist of dozens of profiles of individual
operations" (Section 3.1).  :class:`ProfileSet` is that container; it
also implements the `/proc`-style text format used by the paper's kernel
reporting interface, so profiles can be saved, diffed and re-loaded.

Text format (one profile per block)::

    # osprof 1 resolution=1
    op read layer=filesystem total_ops=123 total_latency=456789
    5 17
    6 100
    ...
    end

Bucket lines are ``<bucket-index> <count>``.

Binary format (``to_bytes``/``from_bytes``): the wire codec used by the
shard engine to stream per-worker profiles back to the collector.  It
mirrors the paper's "≈1 KB per operation" checksummed profiles: a
struct-packed little-endian stream, sparse ``(bucket, count)`` pairs
only, exact totals, and a CRC-32 trailer over the whole payload so a
corrupted shard result is rejected rather than silently merged::

    magic    8s  b"OSPROFB1"
    header   u8 resolution, str name, u16 nattrs, nattrs x (str k, str v),
             u32 nprofiles
    profile  str operation, str layer, u64 total_ops, f64 total_latency,
             u8 flags (bit0 has-min, bit1 has-max), [f64 min], [f64 max],
             u32 nbuckets, nbuckets x (u16 bucket, u64 count)
    trailer  u32 crc32 of everything after the magic

where ``str`` is ``u16 length + UTF-8 bytes``.  Profiles and attributes
are written in sorted order, so encoding is canonical: equal sets encode
to identical bytes, and decode→encode round-trips are byte-identical.
"""

from __future__ import annotations

import struct
import zlib
from typing import Dict, Iterable, Iterator, List, Optional, TextIO, Tuple

from .buckets import BucketSpec, LatencyBuckets
from .profile import Layer, Profile

__all__ = ["ProfileSet"]

_HEADER_PREFIX = "# osprof 1"

#: Magic prefix of the binary profile codec (version 1).
_BINARY_MAGIC = b"OSPROFB1"


class _Reader:
    """Bounds-checked cursor over a binary profile payload."""

    def __init__(self, data: bytes, offset: int = 0):
        self.data = data
        self.offset = offset

    def take(self, n: int) -> bytes:
        if self.offset + n > len(self.data):
            raise ValueError(
                f"truncated binary profile: wanted {n} bytes at offset "
                f"{self.offset}, only {len(self.data) - self.offset} left")
        chunk = self.data[self.offset:self.offset + n]
        self.offset += n
        return chunk

    def unpack(self, fmt: str) -> Tuple:
        return struct.unpack(fmt, self.take(struct.calcsize(fmt)))

    def string(self) -> str:
        (length,) = self.unpack("<H")
        return self.take(length).decode("utf-8")


def _pack_str(out: List[bytes], text: str) -> None:
    raw = text.encode("utf-8")
    if len(raw) > 0xFFFF:
        raise ValueError(f"string too long for binary profile: {text[:40]!r}...")
    out.append(struct.pack("<H", len(raw)))
    out.append(raw)


class ProfileSet:
    """A mapping of operation name to :class:`Profile` for one experiment."""

    def __init__(self, name: str = "", spec: Optional[BucketSpec] = None,
                 attributes: Optional[Dict[str, str]] = None):
        self.name = name
        self.spec = spec if spec is not None else BucketSpec()
        self.attributes: Dict[str, str] = dict(attributes or {})
        self._profiles: Dict[str, Profile] = {}

    # -- container behaviour -------------------------------------------------

    def __contains__(self, operation: str) -> bool:
        return operation in self._profiles

    def __getitem__(self, operation: str) -> Profile:
        return self._profiles[operation]

    def __iter__(self) -> Iterator[Profile]:
        return iter(self._profiles.values())

    def __len__(self) -> int:
        return len(self._profiles)

    def operations(self) -> List[str]:
        """Operation names, sorted for stable output."""
        return sorted(self._profiles)

    def get(self, operation: str) -> Optional[Profile]:
        return self._profiles.get(operation)

    def profile(self, operation: str, layer: str = Layer.FILESYSTEM) -> Profile:
        """Return the profile for *operation*, creating it if needed."""
        prof = self._profiles.get(operation)
        if prof is None:
            prof = Profile(operation, layer, self.spec)
            self._profiles[operation] = prof
        return prof

    def add(self, operation: str, latency: float, count: int = 1,
            layer: str = Layer.FILESYSTEM) -> int:
        """Record one latency sample under *operation*."""
        return self.profile(operation, layer).add(latency, count)

    def insert(self, prof: Profile) -> None:
        """Insert (or merge into) a profile for ``prof.operation``."""
        if prof.spec != self.spec:
            raise ValueError("profile resolution differs from set resolution")
        existing = self._profiles.get(prof.operation)
        if existing is None:
            self._profiles[prof.operation] = prof
        else:
            existing.merge(prof)

    def merge(self, other: "ProfileSet") -> None:
        """Fold every profile of *other* into this set (per-CPU merge)."""
        for prof in other:
            self.insert(prof.copy())

    @classmethod
    def merged(cls, sets: Iterable["ProfileSet"], name: str = "",
               spec: Optional[BucketSpec] = None) -> "ProfileSet":
        """Union of several sets into a fresh one (order-independent).

        The result carries only *name* and no attributes, so equal
        inputs merged in any order — serially, or interleaved across
        concurrent collectors — encode to identical bytes.  The spec
        defaults to the first input's; a mismatched input raises
        :class:`ValueError`.
        """
        out: Optional[ProfileSet] = None
        for pset in sets:
            if out is None:
                out = cls(name=name,
                          spec=spec if spec is not None else pset.spec)
            out.merge(pset)
        if out is None:
            out = cls(name=name, spec=spec)
        return out

    # -- aggregate queries ---------------------------------------------------

    def total_ops(self) -> int:
        return sum(p.total_ops for p in self)

    def total_latency(self) -> float:
        return sum(p.total_latency for p in self)

    def by_total_latency(self) -> List[Profile]:
        """Profiles sorted by descending total latency (Section 3.2 step 1).

        The head of this list is where optimization effort pays off.
        """
        return sorted(self, key=lambda p: p.total_latency, reverse=True)

    def verify_checksums(self) -> List[str]:
        """Names of operations whose histograms fail the checksum test."""
        return [p.operation for p in self if not p.verify_checksum()]

    def __eq__(self, other: object) -> bool:
        """Bucket-for-bucket equality across every operation profile."""
        if not isinstance(other, ProfileSet):
            return NotImplemented
        return (self.spec == other.spec
                and self.operations() == other.operations()
                and all(self._profiles[op] == other._profiles[op]
                        for op in self._profiles))

    def __repr__(self) -> str:
        return (f"<ProfileSet {self.name!r} ops={len(self)} "
                f"requests={self.total_ops()}>")

    # -- text serialization ----------------------------------------------------

    def dump(self, out: TextIO) -> None:
        """Write the set in the /proc-style text format."""
        out.write(f"{_HEADER_PREFIX} resolution={self.spec.resolution}")
        if self.name:
            out.write(f" name={self.name}")
        out.write("\n")
        for op in self.operations():
            prof = self._profiles[op]
            out.write(
                f"op {prof.operation} layer={prof.layer} "
                f"total_ops={prof.total_ops} "
                f"total_latency={prof.total_latency:.0f}\n")
            for b, c in sorted(prof.counts().items()):
                out.write(f"{b} {c}\n")
            out.write("end\n")

    def dumps(self) -> str:
        import io
        buf = io.StringIO()
        self.dump(buf)
        return buf.getvalue()

    @classmethod
    def load(cls, inp: TextIO) -> "ProfileSet":
        """Parse the text format written by :meth:`dump`.

        Malformed input — a bad header, a truncated ``op`` block, a
        bucket line that is not ``<bucket> <count>``, or totals that
        disagree with the bucket counts — raises :class:`ValueError`
        naming the offending line, never a silent misparse.
        """
        header = inp.readline().strip()
        if not header.startswith(_HEADER_PREFIX):
            raise ValueError(f"not an osprof profile dump: {header!r}")
        fields = dict(
            kv.split("=", 1) for kv in header[len(_HEADER_PREFIX):].split()
            if "=" in kv)
        try:
            spec = BucketSpec(int(fields.get("resolution", "1")))
        except ValueError as exc:
            raise ValueError(f"bad profile header {header!r}: {exc}") from None
        pset = cls(name=fields.get("name", ""), spec=spec)
        current: Optional[Profile] = None
        declared: Optional[Tuple[Optional[int], Optional[float]]] = None

        def finish_block() -> None:
            # Restore the declared totals so dump(load(dump(x))) is
            # byte-identical, enforcing the Section 4 checksum on the way.
            nonlocal current, declared
            assert current is not None and declared is not None
            total_ops, total_latency = declared
            hist = current.histogram
            if total_ops is not None and hist.total_ops != total_ops:
                raise ValueError(
                    f"checksum mismatch in op {current.operation!r}: bucket "
                    f"counts sum to {hist.total_ops}, header declares "
                    f"total_ops={total_ops}")
            if total_latency is not None:
                hist.total_latency = total_latency
            current = None
            declared = None

        for raw in inp:
            line = raw.strip()
            if not line or line.startswith("#"):
                continue
            if line.startswith("op "):
                if current is not None:
                    raise ValueError(
                        f"op block {current.operation!r} not closed before "
                        f"next op line (missing 'end')")
                parts = line.split()
                opname = parts[1]
                if opname in pset._profiles:
                    raise ValueError(f"duplicate op block {opname!r}")
                opts = dict(kv.split("=", 1) for kv in parts[2:] if "=" in kv)
                try:
                    declared = (
                        int(opts["total_ops"]) if "total_ops" in opts
                        else None,
                        float(opts["total_latency"])
                        if "total_latency" in opts else None)
                except ValueError:
                    raise ValueError(f"bad op line: {line!r}") from None
                current = Profile(opname, opts.get("layer", Layer.FILESYSTEM),
                                  spec)
                pset._profiles[opname] = current
            elif line == "end":
                if current is None:
                    raise ValueError("'end' outside an op block")
                finish_block()
            else:
                if current is None:
                    raise ValueError(f"bucket line outside op block: {line!r}")
                parts = line.split()
                if len(parts) != 2:
                    raise ValueError(f"malformed bucket line: {line!r}")
                try:
                    bucket, count = int(parts[0]), int(parts[1])
                except ValueError:
                    raise ValueError(
                        f"malformed bucket line: {line!r}") from None
                try:
                    current.histogram.add_to_bucket(bucket, count)
                except ValueError as exc:
                    raise ValueError(
                        f"bad bucket line {line!r}: {exc}") from None
        if current is not None:
            raise ValueError(
                f"truncated dump: op block {current.operation!r} has no 'end'")
        return pset

    @classmethod
    def loads(cls, text: str) -> "ProfileSet":
        import io
        return cls.load(io.StringIO(text))

    # -- binary serialization ----------------------------------------------------

    def to_bytes(self) -> bytes:
        """Encode the set in the compact checksummed binary format.

        The encoding is canonical (profiles, buckets and attributes are
        sorted), so two equal sets always produce identical bytes and a
        merged-shard profile can be compared byte-for-byte against its
        serial counterpart.
        """
        out: List[bytes] = []
        out.append(struct.pack("<B", self.spec.resolution))
        _pack_str(out, self.name)
        attrs = sorted(self.attributes.items())
        out.append(struct.pack("<H", len(attrs)))
        for key, value in attrs:
            _pack_str(out, key)
            _pack_str(out, value)
        out.append(struct.pack("<I", len(self._profiles)))
        for op in self.operations():
            prof = self._profiles[op]
            hist = prof.histogram
            _pack_str(out, prof.operation)
            _pack_str(out, prof.layer)
            out.append(struct.pack("<Qd", hist.total_ops,
                                   hist.total_latency))
            flags = ((1 if hist.min_latency is not None else 0)
                     | (2 if hist.max_latency is not None else 0))
            out.append(struct.pack("<B", flags))
            if hist.min_latency is not None:
                out.append(struct.pack("<d", hist.min_latency))
            if hist.max_latency is not None:
                out.append(struct.pack("<d", hist.max_latency))
            counts = hist.counts()
            out.append(struct.pack("<I", len(counts)))
            for bucket in sorted(counts):
                out.append(struct.pack("<HQ", bucket, counts[bucket]))
        payload = b"".join(out)
        return (_BINARY_MAGIC + payload
                + struct.pack("<I", zlib.crc32(payload) & 0xFFFFFFFF))

    @classmethod
    def from_bytes(cls, data: bytes) -> "ProfileSet":
        """Decode :meth:`to_bytes` output, verifying the CRC-32 trailer.

        Raises :class:`ValueError` on a bad magic, a truncated payload,
        a checksum mismatch, or any structurally invalid field.
        """
        if not isinstance(data, (bytes, bytearray, memoryview)):
            raise ValueError("binary profile must be a bytes-like object")
        data = bytes(data)
        if not data.startswith(_BINARY_MAGIC):
            raise ValueError(
                f"not a binary osprof profile: magic {data[:8]!r}")
        if len(data) < len(_BINARY_MAGIC) + 4:
            raise ValueError("truncated binary profile: missing trailer")
        payload = data[len(_BINARY_MAGIC):-4]
        (declared_crc,) = struct.unpack("<I", data[-4:])
        actual_crc = zlib.crc32(payload) & 0xFFFFFFFF
        if declared_crc != actual_crc:
            raise ValueError(
                f"binary profile CRC mismatch: trailer says "
                f"{declared_crc:#010x}, payload hashes to {actual_crc:#010x}")
        reader = _Reader(payload)
        (resolution,) = reader.unpack("<B")
        try:
            spec = BucketSpec(resolution)
        except ValueError as exc:
            raise ValueError(f"bad binary profile header: {exc}") from None
        name = reader.string()
        (nattrs,) = reader.unpack("<H")
        attributes = {}
        for _ in range(nattrs):
            key = reader.string()
            attributes[key] = reader.string()
        pset = cls(name=name, spec=spec, attributes=attributes)
        (nprofiles,) = reader.unpack("<I")
        for _ in range(nprofiles):
            operation = reader.string()
            layer = reader.string()
            total_ops, total_latency = reader.unpack("<Qd")
            (flags,) = reader.unpack("<B")
            min_latency = reader.unpack("<d")[0] if flags & 1 else None
            max_latency = reader.unpack("<d")[0] if flags & 2 else None
            (nbuckets,) = reader.unpack("<I")
            counts: Dict[int, int] = {}
            for _ in range(nbuckets):
                bucket, count = reader.unpack("<HQ")
                if bucket in counts:
                    raise ValueError(
                        f"duplicate bucket {bucket} in op {operation!r}")
                counts[bucket] = count
            if operation in pset._profiles:
                raise ValueError(f"duplicate op block {operation!r}")
            prof = Profile(operation, layer, spec)
            try:
                prof.histogram = LatencyBuckets.restore(
                    counts, total_ops, total_latency,
                    min_latency, max_latency, spec)
            except ValueError as exc:
                raise ValueError(f"bad op {operation!r}: {exc}") from None
            pset._profiles[operation] = prof
        if reader.offset != len(payload):
            raise ValueError(
                f"{len(payload) - reader.offset} trailing bytes after the "
                f"last profile")
        return pset

    # -- file helpers -------------------------------------------------------------

    def save(self, path: str, format: str = "text") -> None:
        """Write the set to *path* in the given format (``text``/``binary``)."""
        if format == "text":
            with open(path, "w") as f:
                self.dump(f)
        elif format == "binary":
            with open(path, "wb") as f:
                f.write(self.to_bytes())
        else:
            raise ValueError(f"unknown profile format {format!r}")

    @classmethod
    def load_path(cls, path: str, format: str = "auto") -> "ProfileSet":
        """Read a profile set from *path*.

        ``format="auto"`` sniffs the binary magic, so callers (and the
        CLI) accept either representation transparently.
        """
        if format not in ("auto", "text", "binary"):
            raise ValueError(f"unknown profile format {format!r}")
        with open(path, "rb") as f:
            data = f.read()
        is_binary = data.startswith(_BINARY_MAGIC)
        if format == "binary" or (format == "auto" and is_binary):
            return cls.from_bytes(data)
        try:
            text = data.decode("utf-8")
        except UnicodeDecodeError:
            raise ValueError(
                f"{path}: neither a binary osprof profile nor utf-8 text")
        import io
        return cls.load(io.StringIO(text))

    @classmethod
    def from_operation_latencies(
            cls, samples: Dict[str, Iterable[float]], name: str = "",
            spec: Optional[BucketSpec] = None) -> "ProfileSet":
        """Build a set from ``{operation: [latency, ...]}``."""
        pset = cls(name=name, spec=spec)
        for op, latencies in samples.items():
            for lat in latencies:
                pset.add(op, lat)
        return pset

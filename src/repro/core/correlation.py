"""Direct profile and value correlation (Section 3.1, Figure 8).

To explain a peak, OSprof can partition requests by the peak their
latency falls into and, for each partition, build a logarithmic profile
of an *internal OS variable* instead of the latency.  The paper's
Figure 8 correlates ``readdir_past_EOF * 1024`` with the first peak of
the ``readdir`` profile, proving that peak is reads past end of
directory.

:class:`ValueCorrelator` implements that slightly modified profiling
macro: the caller supplies bucket ranges naming each peak; every request
reports (latency, value); the value is bucketed logarithmically into the
profile belonging to the peak the latency matched.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from .buckets import BucketSpec, LatencyBuckets

__all__ = ["PeakRange", "ValueCorrelator"]


class PeakRange:
    """A named, inclusive range of bucket indices identifying one peak."""

    __slots__ = ("name", "low", "high")

    def __init__(self, name: str, low: int, high: int):
        if low > high:
            raise ValueError("peak range low must be <= high")
        self.name = name
        self.low = low
        self.high = high

    def contains(self, bucket: int) -> bool:
        return self.low <= bucket <= self.high

    def __repr__(self) -> str:
        return f"PeakRange({self.name!r}, {self.low}, {self.high})"


class ValueCorrelator:
    """Correlate an internal variable's values with latency peaks.

    One value histogram is kept per peak range, plus an ``other``
    histogram for requests matching no configured peak (the paper's
    "in another profile otherwise").
    """

    OTHER = "other"

    def __init__(self, peaks: Sequence[PeakRange],
                 spec: Optional[BucketSpec] = None,
                 value_scale: float = 1.0):
        names = [p.name for p in peaks]
        if len(set(names)) != len(names):
            raise ValueError("peak names must be unique")
        if self.OTHER in names:
            raise ValueError(f"peak name {self.OTHER!r} is reserved")
        self.peaks = list(peaks)
        self.spec = spec if spec is not None else BucketSpec()
        #: Figure 8 multiplies the 0/1 flag by 1024 so both values are
        #: visible on a log plot; value_scale generalizes that trick.
        self.value_scale = value_scale
        self._histograms: Dict[str, LatencyBuckets] = {
            p.name: LatencyBuckets(self.spec) for p in self.peaks}
        self._histograms[self.OTHER] = LatencyBuckets(self.spec)

    def record(self, latency: float, value: float) -> str:
        """Attribute *value* to the peak containing *latency*; return its name."""
        bucket = self.spec.bucket(latency)
        name = self.OTHER
        for peak in self.peaks:
            if peak.contains(bucket):
                name = peak.name
                break
        scaled = value * self.value_scale
        if scaled < 0:
            raise ValueError("correlated values must be non-negative")
        self._histograms[name].add(scaled)
        return name

    def record_batch(self, pairs: Sequence[Tuple[float, float]]) -> None:
        """Record many ``(latency, value)`` pairs — the pipeline's path.

        Equivalent to calling :meth:`record` per pair; grouping by peak
        lets the scaled values enter each histogram via
        :meth:`~repro.core.buckets.LatencyBuckets.add_many`.
        """
        grouped: Dict[str, List[float]] = {}
        bucket_of = self.spec.bucket
        scale = self.value_scale
        for latency, value in pairs:
            bucket = bucket_of(latency)
            name = self.OTHER
            for peak in self.peaks:
                if peak.contains(bucket):
                    name = peak.name
                    break
            scaled = value * scale
            if scaled < 0:
                raise ValueError("correlated values must be non-negative")
            grouped.setdefault(name, []).append(scaled)
        for name, values in grouped.items():
            self._histograms[name].add_many(values)

    def histogram(self, peak_name: str) -> LatencyBuckets:
        """The value histogram accumulated for one peak (or ``OTHER``)."""
        return self._histograms[peak_name]

    def summary(self) -> Dict[str, Dict[int, int]]:
        """Peak name → value-bucket counts, for reporting."""
        return {name: hist.counts()
                for name, hist in self._histograms.items()}

    def dominant_value_bucket(self, peak_name: str) -> Optional[int]:
        """The most populated value bucket for a peak, or None if empty."""
        counts = self._histograms[peak_name].counts()
        if not counts:
            return None
        return max(counts, key=lambda b: (counts[b], -b))

    def discrimination(self, peak_name: str) -> float:
        """How exclusively this peak's requests carry a distinct value.

        Returns the fraction of the peak's requests whose value bucket is
        not the dominant value bucket of all *other* requests combined —
        1.0 means the variable perfectly separates the peak (as in
        Figure 8 where past-EOF requests all carry flag 1 and every other
        request carries flag 0).
        """
        mine = self._histograms[peak_name].counts()
        total_mine = sum(mine.values())
        if total_mine == 0:
            return 0.0
        others: Dict[int, int] = {}
        for name, hist in self._histograms.items():
            if name == peak_name:
                continue
            for b, c in hist.counts().items():
                others[b] = others.get(b, 0) + c
        if not others:
            return 1.0
        others_dominant = max(others, key=lambda b: (others[b], -b))
        distinct = sum(c for b, c in mine.items() if b != others_dominant)
        return distinct / total_mine

"""Runtime interception of arbitrary callables (the Detours analogue).

The paper's Windows user-level profiler injects a DLL that uses the
Detours library to rewrite arbitrary Win32 functions "even during
program execution", so closed-source programs can be profiled without
recompilation.  The Python analogue intercepts attributes on live
objects, classes, or modules: :class:`Interceptor` rebinds the target
callable to a timing trampoline and restores the original on detach.

Example — profile every ``read``/``write`` an existing object performs::

    interceptor = Interceptor()
    interceptor.attach(conn, ["send", "recv"])
    ... run the workload ...
    interceptor.detach_all()
    print(interceptor.profile_set().dumps())
"""

from __future__ import annotations

import functools
from typing import Any, Callable, Dict, Iterable, List, Optional, Tuple

from .buckets import BucketSpec
from .profile import Layer
from .profiler import NOMINAL_HZ, Profiler, tsc_clock

__all__ = ["Interceptor", "InterceptionError"]


class InterceptionError(Exception):
    """Attachment to a target failed (missing or non-callable)."""


class Interceptor:
    """Attach latency-profiling trampolines to live callables."""

    def __init__(self, hz: float = NOMINAL_HZ,
                 spec: Optional[BucketSpec] = None,
                 clock: Optional[Callable[[], float]] = None):
        self._profiler = Profiler(name="detours", layer=Layer.USER,
                                  clock=clock or tsc_clock(hz),
                                  spec=spec)
        # (id(target), name) -> (target, name, original)
        self._attached: Dict[Tuple[int, str], Tuple[Any, str, Any]] = {}

    # -- attachment ----------------------------------------------------------

    def attach(self, target: Any, names: Iterable[str],
               prefix: str = "") -> List[str]:
        """Intercept the named callables on *target*.

        *target* may be an object, class, or module.  The recorded
        operation name is ``prefix + name``.  Returns the names
        attached; attaching an already-intercepted function is a no-op.
        """
        attached = []
        for name in names:
            key = (id(target), name)
            if key in self._attached:
                continue
            original = getattr(target, name, None)
            if original is None or not callable(original):
                raise InterceptionError(
                    f"{target!r} has no callable attribute {name!r}")
            operation = prefix + name
            trampoline = self._make_trampoline(operation, original)
            setattr(target, name, trampoline)
            self._attached[key] = (target, name, original)
            attached.append(name)
        return attached

    def _make_trampoline(self, operation: str, original: Callable):
        profiler = self._profiler

        @functools.wraps(original)
        def trampoline(*args, **kwargs):
            token = profiler.begin(operation)
            try:
                return original(*args, **kwargs)
            finally:
                profiler.end(token)

        trampoline._detours_original = original  # type: ignore[attr-defined]
        return trampoline

    # -- detachment -----------------------------------------------------------

    def detach(self, target: Any, name: str) -> bool:
        """Restore one interception; True if it was attached."""
        key = (id(target), name)
        entry = self._attached.pop(key, None)
        if entry is None:
            return False
        tgt, attr, original = entry
        setattr(tgt, attr, original)
        return True

    def detach_all(self) -> int:
        """Restore every interception; returns how many were removed."""
        count = 0
        for target, name, original in list(self._attached.values()):
            setattr(target, name, original)
            count += 1
        self._attached.clear()
        return count

    def attached(self) -> List[str]:
        """Names currently intercepted, for inspection."""
        return sorted(name for _, name in self._attached)

    # -- results ----------------------------------------------------------------

    def profile_set(self):
        return self._profiler.profile_set()

    def reset(self) -> None:
        self._profiler.reset()

    def __enter__(self) -> "Interceptor":
        return self

    def __exit__(self, *exc) -> None:
        self.detach_all()

"""SMP bucket-update strategies (Section 3.4, "Profile Locking").

Bucket increments are not atomic; on SMP machines concurrent updates can
be lost.  The paper adopts two lock-free strategies instead of atomic
operations (whose ``lock`` prefix would hurt profiler performance):

1. **Lossy shared buckets** for machines with few CPUs: plain unlocked
   increments; in the worst case (<1% on 2 CPUs) some updates are lost.
2. **Per-thread profiles** for many CPUs: each thread updates a private
   set of buckets, merged at collection time; no updates are lost.

Both are implemented here with real OS threads so the trade-off can be
measured (bench ``tbl-locking``).  The lossy updater deliberately
performs the read-modify-write in separate bytecode steps, making the
race window comparable to the C library's non-atomic increment.
"""

from __future__ import annotations

import threading
from typing import Callable, Dict, List, Optional

from .buckets import BucketSpec, LatencyBuckets
from .profile import Layer, Profile

__all__ = ["LossySharedBuckets", "PerThreadBuckets", "locked_reference_count"]


class LossySharedBuckets:
    """Strategy 1: a single shared counter array updated without locks.

    ``add`` deliberately splits the increment into an explicit load, an
    add, and a store, so concurrent threads exhibit the lost-update race
    the paper describes.  ``expected`` tracks the true number of updates
    (maintained with an atomic-enough per-thread tally merged at read
    time) so the loss rate can be computed.
    """

    def __init__(self, spec: Optional[BucketSpec] = None):
        self.spec = spec if spec is not None else BucketSpec()
        self._counts: Dict[int, int] = {}
        self._attempts = threading.local()
        self._attempt_tallies: List[List[int]] = []
        self._tally_lock = threading.Lock()

    def _attempt_cell(self) -> List[int]:
        cell = getattr(self._attempts, "cell", None)
        if cell is None:
            cell = [0]
            self._attempts.cell = cell
            with self._tally_lock:
                self._attempt_tallies.append(cell)
        return cell

    def add(self, latency: float) -> None:
        """Racy increment of the bucket for *latency*."""
        bucket = self.spec.bucket(latency)
        current = self._counts.get(bucket, 0)  # load
        updated = current + 1                  # modify
        self._counts[bucket] = updated         # store (may clobber a peer)
        self._attempt_cell()[0] += 1

    def attempted(self) -> int:
        """The true number of ``add`` calls across all threads."""
        with self._tally_lock:
            return sum(cell[0] for cell in self._attempt_tallies)

    def recorded(self) -> int:
        """Updates that survived the race."""
        return sum(self._counts.values())

    def lost(self) -> int:
        """Updates clobbered by concurrent writers."""
        return self.attempted() - self.recorded()

    def loss_rate(self) -> float:
        attempts = self.attempted()
        if attempts == 0:
            return 0.0
        return self.lost() / attempts

    def histogram(self) -> LatencyBuckets:
        """The (possibly lossy) accumulated histogram."""
        return LatencyBuckets.from_counts(self._counts, self.spec)

    def as_profile(self, operation: str,
                   layer: str = Layer.FILESYSTEM) -> Profile:
        """Lift the accumulated buckets into a mergeable :class:`Profile`.

        The bridge between the SMP update strategies and the collection
        path: a shard records through a strategy, then hands the result
        to :meth:`ProfileSet.insert` / ``merge`` like any other profile.
        """
        prof = Profile(operation, layer, self.spec)
        prof.histogram.merge(self.histogram())
        return prof


class PerThreadBuckets:
    """Strategy 2: each thread owns a private histogram; merge on demand.

    "On systems with many CPUs we make each process or thread update its
    own profile in memory.  This prevents lost updates on systems with
    any number of CPUs."
    """

    def __init__(self, spec: Optional[BucketSpec] = None):
        self.spec = spec if spec is not None else BucketSpec()
        self._local = threading.local()
        self._all: List[LatencyBuckets] = []
        self._registry_lock = threading.Lock()

    def _mine(self) -> LatencyBuckets:
        hist = getattr(self._local, "hist", None)
        if hist is None:
            hist = LatencyBuckets(self.spec)
            self._local.hist = hist
            with self._registry_lock:
                self._all.append(hist)
        return hist

    def add(self, latency: float) -> None:
        """Increment the calling thread's private bucket; never racy."""
        self._mine().add(latency)

    def recorded(self) -> int:
        with self._registry_lock:
            return sum(h.total_ops for h in self._all)

    def histogram(self) -> LatencyBuckets:
        """Merge all per-thread histograms into one."""
        merged = LatencyBuckets(self.spec)
        with self._registry_lock:
            for h in self._all:
                merged.merge(h)
        return merged

    def thread_count(self) -> int:
        with self._registry_lock:
            return len(self._all)

    def as_profile(self, operation: str,
                   layer: str = Layer.FILESYSTEM) -> Profile:
        """Merge every thread's buckets into one :class:`Profile`.

        Collection-time merge of Section 3.4: the per-thread histograms
        fold into a single profile that ``ProfileSet.merge`` can then
        combine across shards — the same histogram addition at both
        levels, so (thread-merge then shard-merge) equals one global
        count.
        """
        prof = Profile(operation, layer, self.spec)
        prof.histogram.merge(self.histogram())
        return prof


def locked_reference_count(workers: int, updates_per_worker: int,
                           make_latency: Callable[[int, int], float],
                           strategy) -> int:
    """Drive *workers* threads hammering a bucket-update strategy.

    ``make_latency(worker, i)`` produces the latency each update records;
    using a constant maximizes contention on a single bucket (the paper's
    worst case: "two threads ... measuring latency of an empty function
    and updating the same bucket").  Returns the number of recorded
    updates.
    """
    if workers < 1:
        raise ValueError("workers must be >= 1")
    barrier = threading.Barrier(workers)

    def run(worker: int) -> None:
        barrier.wait()
        for i in range(updates_per_worker):
            strategy.add(make_latency(worker, i))

    threads = [threading.Thread(target=run, args=(w,))
               for w in range(workers)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    return strategy.recorded()

"""CrashFS: record every durable write, then materialize any crash.

The reliability story so far asserted crash safety at a handful of
hand-picked fault sites (``warehouse.ingest`` after-file/after-log,
kill-server-mid-push, ...).  CrashFS replaces sampling with
enumeration, the way ReLayTracer slices execution into layers instead
of guessing where an anomaly lives: every durable writer in the tree
funnels through :mod:`repro.core.durable`, which journals each
operation — write, append, fsync, rename, unlink — into a CrashFS
instance.  From that op-log, :meth:`CrashFS.materialize` rebuilds the
on-disk state a machine could be left in if the power died after any
*prefix* of the ops, under any of the page-cache outcomes a real
filesystem permits:

``flush``
    everything in the cache survived (the kindest crash — equivalent
    to the kernel having flushed just in time);
``strict``
    only explicitly fsynced state survived: un-fsynced file data *and*
    un-fsynced directory entries (creates, renames, unlinks) are gone;
``rename-no-data``
    directory entries survived but un-fsynced file data did not — the
    classic ext-style reordering where a rename becomes durable while
    the payload behind it is still dirty, leaving a committed-looking
    file empty (this is the mode that catches a missing
    fsync-before-rename);
``data-no-rename``
    the converse writeback order: file data reached the platter but
    un-fsynced directory entries did not (catches a missing
    parent-directory fsync after rename);
``torn``
    directory entries survived and every file's un-fsynced byte delta
    is torn at a seed-derived position — the mid-buffer power cut that
    CRC framing must turn into a loud, truncating recovery.

A crash *image* is ``(prefix length, mode)`` materialized into a fresh
directory; the exploration drivers (``tests/integration/
test_crash_matrix.py``) reopen each image with the real recovery code
and assert the invariant: nothing acked is lost, the index equals a
pure log replay, and queries are byte-identical to a legal pre-crash
state or loudly degraded.

Model simplifications, stated honestly: directory *creation* is
treated as durable (every recorded mkdir exists in every image — the
interesting bugs live in file data and renames, not mkdir), and loss
is applied uniformly per mode rather than per-file (the four lossy
modes are the corners of the per-file outcome space; a mixed outcome
is always component-wise between two corners, and every recovery
invariant we check is per-file, so the corners dominate).

:meth:`CrashFS.note` interleaves externally-visible events (an
upstream ack, a client-visible return) into the op stream, so a driver
can reconstruct *what the rest of the world had already seen* at any
crash point.
"""

from __future__ import annotations

import random
import shutil
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple

from ..sim.rng import derive_seed

__all__ = ["MODES", "Op", "CrashFS"]

#: Every materialization mode, kindest first.
MODES = ("flush", "strict", "rename-no-data", "data-no-rename", "torn")

#: Modes where un-fsynced directory entries survive the crash.
_NS_SURVIVES = {"flush", "rename-no-data", "torn"}
#: Modes where un-fsynced file data survives the crash.
_DATA_SURVIVES = {"flush", "data-no-rename"}


@dataclass(frozen=True)
class Op:
    """One journaled filesystem operation (paths relative to the root)."""

    kind: str                     #: mkdir|write|append|fsync|fsync_dir|
                                  #: replace|unlink|truncate|note
    path: str = ""
    data: Optional[bytes] = None  #: payload of write/append
    dest: Optional[str] = None    #: rename target of replace
    size: Optional[int] = None    #: truncate length
    tag: Any = None               #: opaque marker of a note


class _Inode:
    """File content with two truths: the cache and the platter."""

    __slots__ = ("cache", "durable")

    def __init__(self, cache: bytes = b"", durable: bytes = b""):
        self.cache = cache
        self.durable = durable


class CrashFS:
    """An op journal over one directory tree, and its crash images."""

    def __init__(self, root):
        self.root = Path(root).resolve()
        self.ops: List[Op] = []

    # -- recording (called through repro.core.durable) -----------------------

    def _rel(self, path) -> Optional[str]:
        try:
            return Path(path).resolve().relative_to(self.root).as_posix()
        except ValueError:
            return None

    def record(self, kind: str, path, data: Optional[bytes] = None,
               dest=None, size: Optional[int] = None) -> None:
        rel = self._rel(path)
        rel_dest = self._rel(dest) if dest is not None else None
        if rel is None and rel_dest is None:
            return  # outside the recorded tree
        self.ops.append(Op(kind=kind, path=rel if rel is not None else "",
                           data=data, dest=rel_dest, size=size))

    def note(self, tag) -> None:
        """Interleave an external event marker into the op stream."""
        self.ops.append(Op(kind="note", tag=tag))

    def mark(self) -> int:
        """The current op count — 'everything before this is done'."""
        return len(self.ops)

    def crash_points(self) -> range:
        """Every crash prefix, including 'before anything' and 'after
        everything'."""
        return range(len(self.ops) + 1)

    def notes_through(self, point: int) -> List[Any]:
        """Tags of every note op within the first *point* ops."""
        return [op.tag for op in self.ops[:point] if op.kind == "note"]

    # -- materialization -----------------------------------------------------

    def materialize(self, dest, point: int, mode: str,
                    seed: int = 0) -> Path:
        """Build the crash image of ``ops[:point]`` under *mode* at *dest*.

        *dest* is wiped first, so drivers can reuse one scratch
        directory across the whole enumeration.  Returns *dest*.
        """
        if mode not in MODES:
            raise ValueError(f"unknown crash mode {mode!r}; expected one "
                             f"of {', '.join(MODES)}")
        if not 0 <= point <= len(self.ops):
            raise ValueError(f"crash point {point} outside "
                             f"0..{len(self.ops)}")
        dirs, cache_ns, durable_ns = self._replay(point)
        names = dict(cache_ns) if mode in _NS_SURVIVES else dict(durable_ns)
        dest = Path(dest)
        if dest.exists():
            shutil.rmtree(dest)
        dest.mkdir(parents=True)
        for rel in sorted(dirs):
            (dest / rel).mkdir(parents=True, exist_ok=True)
        for rel in sorted(names):
            inode = names[rel]
            content = self._content(inode, mode, rel, point, seed)
            path = dest / rel
            path.parent.mkdir(parents=True, exist_ok=True)
            path.write_bytes(content)
        return dest

    def _content(self, inode: _Inode, mode: str, rel: str, point: int,
                 seed: int) -> bytes:
        if mode in _DATA_SURVIVES or inode.cache == inode.durable:
            return inode.cache if mode in _DATA_SURVIVES else inode.durable
        if mode != "torn":
            return inode.durable
        # Tear the un-fsynced delta at a seed-derived position: always
        # at least one dirty byte lost, so torn never collapses into
        # flush.  A non-extending rewrite tears the whole new content.
        rng = random.Random(derive_seed(seed, f"{rel}|{point}"))
        if inode.cache[:len(inode.durable)] == inode.durable:
            delta = inode.cache[len(inode.durable):]
            return inode.durable + delta[:rng.randrange(len(delta))]
        return inode.cache[:rng.randrange(len(inode.cache))]

    def _replay(self, point: int) -> Tuple[set, Dict[str, _Inode],
                                           Dict[str, _Inode]]:
        dirs: set = set()
        cache_ns: Dict[str, _Inode] = {}
        durable_ns: Dict[str, _Inode] = {}
        for op in self.ops[:point]:
            if op.kind == "note":
                continue
            if op.kind == "mkdir":
                rel = op.path
                while rel and rel != ".":
                    dirs.add(rel)
                    rel = Path(rel).parent.as_posix()
            elif op.kind == "write":
                cache_ns[op.path] = _Inode(cache=op.data or b"")
            elif op.kind == "append":
                inode = cache_ns.setdefault(op.path, _Inode())
                inode.cache += op.data or b""
            elif op.kind == "fsync":
                inode = cache_ns.get(op.path)
                if inode is not None:
                    inode.durable = inode.cache
            elif op.kind == "truncate":
                inode = cache_ns.get(op.path)
                if inode is not None:
                    inode.cache = inode.cache[:op.size]
                    inode.durable = inode.durable[:op.size]
            elif op.kind == "replace":
                inode = cache_ns.pop(op.path, None)
                if inode is not None and op.dest is not None:
                    cache_ns[op.dest] = inode
            elif op.kind == "unlink":
                cache_ns.pop(op.path, None)
            elif op.kind == "fsync_dir":
                parent = op.path or "."
                touched = {rel for rel in cache_ns
                           if Path(rel).parent.as_posix() == parent}
                touched |= {rel for rel in durable_ns
                            if Path(rel).parent.as_posix() == parent}
                for rel in touched:
                    if rel in cache_ns:
                        durable_ns[rel] = cache_ns[rel]
                    else:
                        durable_ns.pop(rel, None)
            else:
                raise ValueError(f"unknown journaled op kind {op.kind!r}")
        return dirs, cache_ns, durable_ns

    def __repr__(self) -> str:
        return f"<CrashFS {str(self.root)!r} ops={len(self.ops)}>"

"""Layered profiling (Section 3.1, Figure 2).

OSprof inserts latency-profiling layers at several levels of the OS
stack — user, file system, driver — and compares the profiles captured
at adjacent levels to isolate each layer's contribution ("the comparison
of user-level and file-system-level profiles helps isolate VFS behavior
from the behavior of lower file systems").

:class:`LayerStack` holds one profiler per layer, hands out the right
profiler to instrumentation points, and implements the cross-layer
subtraction used for isolation.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Tuple

from .buckets import BucketSpec
from .pipeline import Pipeline, ProbePoint, wire_probe
from .profile import Layer, Profile
from .profileset import ProfileSet
from .profiler import Profiler

__all__ = ["LayerStack", "isolate_layer"]


class LayerStack:
    """An ordered stack of profilers, outermost (user) first.

    The stack owns (or shares, via ``pipeline=``) a probe/event
    pipeline; :meth:`probe` hands out one lazily wired
    :class:`~repro.core.pipeline.ProbePoint` per layer, so a whole
    Figure 2 stack emits through a single batched capture path with one
    request-id space.
    """

    def __init__(self, layers: List[str],
                 clock: Callable[[], float],
                 spec: Optional[BucketSpec] = None,
                 pipeline: Optional[Pipeline] = None):
        if not layers:
            raise ValueError("at least one layer is required")
        if len(set(layers)) != len(layers):
            raise ValueError("layer names must be unique")
        self.order = list(layers)
        self.pipeline = pipeline if pipeline is not None else Pipeline()
        self._profilers: Dict[str, Profiler] = {
            layer: Profiler(name=layer, layer=layer, clock=clock, spec=spec)
            for layer in layers}
        self._probes: Dict[str, ProbePoint] = {}

    def profiler(self, layer: str) -> Profiler:
        """The profiler serving one layer; KeyError for unknown layers."""
        return self._profilers[layer]

    def probe(self, layer: str) -> ProbePoint:
        """The layer's ProbePoint on the shared pipeline (lazily wired)."""
        point = self._probes.get(layer)
        if point is None:
            profiler = self._profilers[layer]  # KeyError for unknown
            point = wire_probe(self.pipeline, layer, profiler=profiler,
                               clock=profiler.clock, name=layer)
            self._probes[layer] = point
        return point

    def layers(self) -> List[str]:
        return list(self.order)

    def profile_sets(self) -> Dict[str, ProfileSet]:
        return {layer: p.profile_set() for layer, p in self._profilers.items()}

    def above(self, layer: str) -> Optional[str]:
        """The next layer outward (closer to the user), or None."""
        i = self.order.index(layer)
        return self.order[i - 1] if i > 0 else None

    def below(self, layer: str) -> Optional[str]:
        """The next layer inward (closer to the hardware), or None."""
        i = self.order.index(layer)
        return self.order[i + 1] if i < len(self.order) - 1 else None


def isolate_layer(outer: Profile, inner: Profile) -> Dict[str, float]:
    """Estimate the latency contributed by the outer layer itself.

    Both profiles describe the same logical operation captured at
    adjacent layers.  Because outer latency = inner latency + own work,
    the difference of mean latencies estimates the outer layer's own
    per-request cost, and the difference in operation counts reveals
    fan-out (e.g. the VFS calling multiple FS operations per syscall,
    Section 5: "a file system receives a larger number of requests").

    Returns a dict with ``own_latency`` (cycles/request at the outer
    layer), ``fanout`` (inner ops per outer op) and ``inner_share``
    (fraction of outer total latency explained by the inner layer).
    """
    if outer.total_ops == 0:
        raise ValueError("outer profile is empty")
    fanout = inner.total_ops / outer.total_ops
    inner_latency_per_outer_op = inner.total_latency / outer.total_ops
    own = outer.mean_latency() - inner_latency_per_outer_op
    share = (inner.total_latency / outer.total_latency
             if outer.total_latency > 0 else 0.0)
    return {
        "own_latency": own,
        "fanout": fanout,
        "inner_share": share,
    }

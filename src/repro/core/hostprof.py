"""User-level profiling of the *host* operating system.

The paper's POSIX user-level profilers replace system calls in workload
generators with macros that time the call and bucket the latency
(Section 4).  This module is the Python analogue: it wraps real
``os``-level system calls with OSprof instrumentation so the library can
profile the machine it runs on, not only the simulator.  It demonstrates
the portability claim — the same aggregate-stats core runs against real
and simulated kernels unchanged.
"""

from __future__ import annotations

import os
from typing import Callable, Dict, Iterable, List, Optional

from .buckets import BucketSpec
from .profile import Layer
from .profiler import NOMINAL_HZ, Profiler, tsc_clock

__all__ = ["SyscallProfiler", "profile_callable"]

#: System calls we know how to wrap out of the box.
_WRAPPABLE = ("read", "write", "lseek", "open", "close", "stat", "listdir")


class SyscallProfiler:
    """Profile real system calls issued by Python code.

    Usage::

        prof = SyscallProfiler()
        fd = prof.open("/etc/hosts", os.O_RDONLY)
        data = prof.read(fd, 4096)
        prof.close(fd)
        pset = prof.profile_set()

    Each wrapped call is timed with the emulated TSC and recorded under
    its syscall name, exactly as the paper's instrumented workload
    generators do.
    """

    def __init__(self, hz: float = NOMINAL_HZ,
                 spec: Optional[BucketSpec] = None):
        self._profiler = Profiler(name="host-syscalls", layer=Layer.USER,
                                  clock=tsc_clock(hz), spec=spec)

    # Wrapped syscalls.  Explicit methods (not getattr magic) keep the
    # call sites greppable and the signatures honest.

    def open(self, path: str, flags: int, mode: int = 0o666) -> int:
        with self._profiler.request("open"):
            return os.open(path, flags, mode)

    def close(self, fd: int) -> None:
        with self._profiler.request("close"):
            os.close(fd)

    def read(self, fd: int, size: int) -> bytes:
        with self._profiler.request("read"):
            return os.read(fd, size)

    def write(self, fd: int, data: bytes) -> int:
        with self._profiler.request("write"):
            return os.write(fd, data)

    def lseek(self, fd: int, pos: int, how: int = os.SEEK_SET) -> int:
        with self._profiler.request("lseek"):
            return os.lseek(fd, pos, how)

    def stat(self, path: str) -> os.stat_result:
        with self._profiler.request("stat"):
            return os.stat(path)

    def listdir(self, path: str) -> List[str]:
        with self._profiler.request("readdir"):
            return os.listdir(path)

    def profile_set(self):
        return self._profiler.profile_set()

    def reset(self) -> None:
        self._profiler.reset()

    @staticmethod
    def wrappable() -> Iterable[str]:
        """Names of the syscalls this profiler can intercept."""
        return _WRAPPABLE


def profile_callable(func: Callable[[], object], operation: str,
                     iterations: int = 1000,
                     hz: float = NOMINAL_HZ,
                     spec: Optional[BucketSpec] = None):
    """Profile repeated invocations of an arbitrary callable.

    Returns the resulting :class:`~repro.core.profileset.ProfileSet`.
    Handy for the paper's micro-probe style experiments (e.g. measuring
    the latency distribution of an empty function to find the profiler's
    own floor).
    """
    if iterations < 1:
        raise ValueError("iterations must be >= 1")
    profiler = Profiler(name="callable", layer=Layer.USER,
                        clock=tsc_clock(hz), spec=spec)
    for _ in range(iterations):
        with profiler.request(operation):
            func()
    return profiler.profile_set()

"""Per-operation latency profiles.

A :class:`Profile` binds a :class:`~repro.core.buckets.LatencyBuckets`
histogram to the name of the OS operation it describes (``read``,
``llseek``, ``FIND_FIRST``...), the layer it was captured at, and
optional free-form attributes (kernel version, workload name).  A
complete profile of a workload is a set of these, one per operation —
see :mod:`repro.core.profileset`.
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional

from .buckets import BucketSpec, LatencyBuckets

__all__ = ["Profile", "Layer"]


class Layer:
    """Well-known profiling layers (Figure 2 of the paper)."""

    USER = "user"
    FILESYSTEM = "filesystem"
    DRIVER = "driver"
    NETWORK = "network"


class Profile:
    """A named latency histogram for one OS operation at one layer."""

    __slots__ = ("operation", "layer", "attributes", "histogram")

    def __init__(self, operation: str, layer: str = Layer.FILESYSTEM,
                 spec: Optional[BucketSpec] = None,
                 attributes: Optional[Dict[str, str]] = None):
        if not operation:
            raise ValueError("operation name must be non-empty")
        self.operation = operation
        self.layer = layer
        self.attributes: Dict[str, str] = dict(attributes or {})
        self.histogram = LatencyBuckets(spec)

    # Convenience pass-throughs used pervasively by analysis code.

    @property
    def spec(self) -> BucketSpec:
        return self.histogram.spec

    @property
    def total_ops(self) -> int:
        return self.histogram.total_ops

    @property
    def total_latency(self) -> float:
        return self.histogram.total_latency

    def add(self, latency: float, count: int = 1) -> int:
        """Record a latency sample; returns the bucket index."""
        return self.histogram.add(latency, count)

    def count(self, bucket: int) -> int:
        return self.histogram.count(bucket)

    def counts(self) -> Dict[int, int]:
        return self.histogram.counts()

    def mean_latency(self) -> float:
        return self.histogram.mean_latency()

    def merge(self, other: "Profile") -> None:
        """Fold another profile for the same operation into this one."""
        if other.operation != self.operation:
            raise ValueError(
                f"cannot merge profile of {other.operation!r} into "
                f"{self.operation!r}")
        self.histogram.merge(other.histogram)

    def copy(self) -> "Profile":
        clone = Profile(self.operation, self.layer, self.spec,
                        self.attributes)
        clone.histogram.merge(self.histogram)
        return clone

    def verify_checksum(self) -> bool:
        return self.histogram.verify_checksum()

    def __eq__(self, other: object) -> bool:
        """Bucket-for-bucket equality (same operation, layer, histogram).

        This is the acceptance test for shard merging: a merged parallel
        profile must compare equal to its serial counterpart.
        """
        if not isinstance(other, Profile):
            return NotImplemented
        return (self.operation == other.operation
                and self.layer == other.layer
                and self.histogram == other.histogram)

    def __repr__(self) -> str:
        return (f"<Profile {self.operation}@{self.layer} "
                f"ops={self.total_ops}>")

    @classmethod
    def from_latencies(cls, operation: str, latencies: Iterable[float],
                       layer: str = Layer.FILESYSTEM,
                       spec: Optional[BucketSpec] = None) -> "Profile":
        prof = cls(operation, layer, spec)
        for lat in latencies:
            prof.add(lat)
        return prof

    @classmethod
    def from_counts(cls, operation: str, counts: Dict[int, int],
                    layer: str = Layer.FILESYSTEM,
                    spec: Optional[BucketSpec] = None) -> "Profile":
        prof = cls(operation, layer, spec)
        hist = LatencyBuckets.from_counts(counts, spec)
        prof.histogram.merge(hist)
        return prof

"""The probe/event pipeline: one capture path for every instrumented layer.

The paper's design (Figure 2, §4) is a single aggregate-stats library
shared by profilers at user, file-system, driver, and network level.
This module is that shared spine for the reproduction: every
instrumented layer emits through a :class:`ProbePoint` into composable
:class:`EventSink` implementations, instead of hand-wiring calls to
``Profiler`` / ``SampledProfiler`` / ``ValueCorrelator`` at each site.

Three ideas compose here:

* **Cross-layer request contexts.**  A :class:`RequestContext` is
  stamped when a request enters the outermost probed layer (the syscall
  boundary) and propagated down the stack — VFS dispatch, file-system
  internals, the SCSI driver's completion path, network RPCs — so every
  event of one logical request carries the same request id and a layer
  path, ReLayTracer-style.  :class:`TraceSink` reassembles per-request
  slices from the stream.

* **A batched hot path.**  ``ProbePoint.record`` appends one flat tuple
  to a per-CPU batch buffer — no histogram work, no method-call chain.
  Buffers drain on :meth:`Pipeline.flush` (or when a buffer fills),
  where :class:`ProfileSink` groups events per operation and buckets
  them with :meth:`~repro.core.buckets.LatencyBuckets.add_many`'s
  ``bit_length`` loop.  The deferred path is measurably *faster* per
  sample than the per-sample method chain it replaces
  (``benchmarks/test_perf_micro.py -k record``) and, because bucket
  counts, extrema, and the exact latency expansion are all
  order-independent, produces byte-identical ProfileSets.

* **Composable sinks.**  One event stream feeds any combination of
  complete profiles (:class:`ProfileSink`), time-segmented 3-D profiles
  (:class:`SamplingSink`), value correlation (:class:`CorrelationSink`),
  batched pushes to the continuous-profiling service
  (:class:`StreamSink`), request tracing (:class:`TraceSink`), or
  nothing at all (:class:`NullSink` — the measured-zero "off" variant).
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import (Any, Callable, Dict, Iterator, List, Optional, Sequence,
                    Tuple, Union)

from .buckets import BucketSpec
from .profile import Layer
from .profileset import ProfileSet
from .profiler import TokenFinishedError, tsc_clock
from .sampling import SampledProfiler

__all__ = [
    "RequestContext",
    "ProbeToken",
    "ProbePoint",
    "Pipeline",
    "EventSink",
    "NullSink",
    "ProfileSink",
    "SamplingSink",
    "CorrelationSink",
    "StreamSink",
    "TraceSink",
    "TraceEvent",
    "FanoutSink",
    "TokenFinishedError",
    "wire_probe",
]

#: Default number of buffered events per CPU before an automatic drain.
DEFAULT_BATCH_SIZE = 8192

#: One buffered event: (operation, start, latency, context).
Event = Tuple[str, float, float, Optional["RequestContext"]]


class RequestContext:
    """Identity of one in-flight request as it descends the stack.

    The root context is stamped where the request enters the system (a
    syscall, an intercepted IRP); each probed layer below extends it
    with its own ``(layer, operation)`` frame via :meth:`child`.  All
    frames share the root's ``request_id``, which is what lets a single
    event stream be sliced per request across layers.
    """

    __slots__ = ("request_id", "operation", "layer", "parent", "_values")

    def __init__(self, request_id: int, operation: str, layer: str,
                 parent: Optional["RequestContext"] = None):
        self.request_id = request_id
        self.operation = operation
        self.layer = layer
        self.parent = parent
        self._values: Optional[Dict[str, Any]] = None

    def child(self, operation: str, layer: str) -> "RequestContext":
        """A sub-request frame one layer further down the stack."""
        return RequestContext(self.request_id, operation, layer,
                              parent=self)

    @property
    def depth(self) -> int:
        depth = 0
        frame = self.parent
        while frame is not None:
            depth += 1
            frame = frame.parent
        return depth

    @property
    def path(self) -> Tuple[Tuple[str, str], ...]:
        """``((layer, operation), ...)`` frames, outermost first."""
        frames: List[Tuple[str, str]] = []
        frame: Optional[RequestContext] = self
        while frame is not None:
            frames.append((frame.layer, frame.operation))
            frame = frame.parent
        return tuple(reversed(frames))

    def annotate(self, key: str, value: Any) -> None:
        """Attach an internal OS variable (Figure 8's correlation input)."""
        if self._values is None:
            self._values = {}
        self._values[key] = value

    def value(self, key: str, default: Any = None) -> Any:
        """Look *key* up on this frame, then up the parent chain."""
        frame: Optional[RequestContext] = self
        while frame is not None:
            if frame._values is not None and key in frame._values:
                return frame._values[key]
            frame = frame.parent
        return default

    def __repr__(self) -> str:
        frames = "->".join(op for _, op in self.path)
        return f"<RequestContext #{self.request_id} {frames}>"


class ProbeToken:
    """FSPROF_PRE state: the entry timestamp plus the request context.

    A token may be finished exactly once; a second :meth:`ProbePoint.exit`
    is an instrumentation bug and raises :class:`TokenFinishedError`.
    """

    __slots__ = ("operation", "start", "context", "cpu", "_done")

    def __init__(self, operation: str, start: float,
                 context: Optional[RequestContext] = None, cpu: int = 0):
        self.operation = operation
        self.start = start
        self.context = context
        self.cpu = cpu
        self._done = False


class EventSink:
    """Consumer protocol for probe events.

    ``consume`` receives one layer's drained batch — a list of
    ``(operation, start, latency, context)`` tuples with latencies
    already clamped non-negative.  ``flush`` is called when the pipeline
    is flushed with ``final=True`` (end of a collection), letting sinks
    with internal batching (:class:`StreamSink`) emit remainders.
    """

    def consume(self, layer: str, events: List[Event]) -> None:
        raise NotImplementedError

    def flush(self) -> None:  # pragma: no cover - default no-op
        pass


class NullSink(EventSink):
    """The "off" variant: drops everything, adds no buckets.

    Probes wired to nothing but ``NullSink`` deactivate their record
    path entirely, so the off variant's overhead is measured-zero — not
    merely small (`benchmarks/test_tbl_overhead.py` asserts this).
    """

    def consume(self, layer: str, events: List[Event]) -> None:
        pass


def _accumulate(pset: ProfileSet, layer: str,
                events: List[Event]) -> None:
    """Group a drained batch per operation and bulk-bucket it."""
    groups: Dict[str, List[float]] = {}
    groups_get = groups.get
    for op, _start, lat, _ctx in events:
        lats = groups_get(op)
        if lats is None:
            groups[op] = lats = []
        lats.append(lat)
    profile = pset.profile
    for op, lats in groups.items():
        profile(op, layer).histogram.add_many(lats)


class ProfileSink(EventSink):
    """Buckets events into a :class:`ProfileSet` (the complete profile).

    ``target`` is either a ProfileSet or a zero-argument callable
    returning one — the callable form tracks a
    :class:`~repro.core.profiler.Profiler` across ``reset()``, which
    replaces its underlying set.
    """

    def __init__(self, target: Union[ProfileSet,
                                     Callable[[], ProfileSet]]):
        if isinstance(target, ProfileSet):
            self._resolve: Callable[[], ProfileSet] = lambda: target
        else:
            self._resolve = target
        self.events_consumed = 0

    @property
    def profiles(self) -> ProfileSet:
        return self._resolve()

    def consume(self, layer: str, events: List[Event]) -> None:
        self.events_consumed += len(events)
        _accumulate(self._resolve(), layer, events)


class SamplingSink(EventSink):
    """Routes events into a :class:`SampledProfiler` (3-D profiles).

    Segment attribution uses each event's *start* timestamp, matching
    the paper's rule that the bucket set active at FSPROF_PRE time
    receives the sample.
    """

    def __init__(self, sampled: SampledProfiler):
        self.sampled = sampled

    def consume(self, layer: str, events: List[Event]) -> None:
        record = self.sampled.record
        for op, start, lat, _ctx in events:
            record(op, start, lat)


class CorrelationSink(EventSink):
    """Feeds a :class:`~repro.core.correlation.ValueCorrelator`.

    Requests annotate an internal variable on their context
    (``ctx.annotate(key, value)``); the sink correlates that value with
    the probed latency.  ``operation`` optionally restricts correlation
    to one operation's events (Figure 8 correlates only ``readdir``).
    """

    def __init__(self, correlator, key: str = "value",
                 operation: Optional[str] = None):
        self.correlator = correlator
        self.key = key
        self.operation = operation

    def consume(self, layer: str, events: List[Event]) -> None:
        pairs: List[Tuple[float, float]] = []
        for op, _start, lat, ctx in events:
            if self.operation is not None and op != self.operation:
                continue
            if ctx is None:
                continue
            value = ctx.value(self.key)
            if value is None:
                continue
            pairs.append((lat, value))
        if pairs:
            self.correlator.record_batch(pairs)


class StreamSink(EventSink):
    """Batches events into ProfileSets and pushes them to the service.

    Instead of one OSPS push per sample or per segment boundary decided
    elsewhere, the sink accumulates a pending set and pushes whenever it
    holds ``batch_ops`` samples; the final :meth:`flush` pushes the
    remainder.  ``push`` is a :class:`~repro.service.client.ServiceClient`
    (anything with a ``push(pset)`` method) or a bare callable.
    """

    def __init__(self, push, batch_ops: int = 2048,
                 name: str = "stream", spec: Optional[BucketSpec] = None):
        if batch_ops < 1:
            raise ValueError("batch_ops must be >= 1")
        self._push = push.push if hasattr(push, "push") else push
        self.batch_ops = batch_ops
        self.name = name
        self.spec = spec if spec is not None else BucketSpec()
        self._pending = ProfileSet(name=name, spec=self.spec)
        self.pushes = 0
        self.ops_streamed = 0

    def consume(self, layer: str, events: List[Event]) -> None:
        _accumulate(self._pending, layer, events)
        if self._pending.total_ops() >= self.batch_ops:
            self._emit()

    def flush(self) -> None:
        if self._pending.total_ops():
            self._emit()

    def _emit(self) -> None:
        pending = self._pending
        self._pending = ProfileSet(name=self.name, spec=self.spec)
        self.pushes += 1
        self.ops_streamed += pending.total_ops()
        self._push(pending)


class TraceEvent:
    """One probe event with its request identity, for per-request slicing."""

    __slots__ = ("request_id", "layer", "operation", "start", "latency",
                 "depth")

    def __init__(self, request_id: Optional[int], layer: str,
                 operation: str, start: float, latency: float, depth: int):
        self.request_id = request_id
        self.layer = layer
        self.operation = operation
        self.start = start
        self.latency = latency
        self.depth = depth

    def __repr__(self) -> str:
        return (f"<TraceEvent #{self.request_id} {self.layer}:"
                f"{self.operation} {self.latency:.0f}cyc>")


class TraceSink(EventSink):
    """Collects the unified event stream for request-slicing analysis.

    This is the ReLayTracer-style payoff of cross-layer contexts: one
    logical request's syscall, VFS/FS, driver, and network events all
    share a request id, so ``requests()`` hands back per-request slices
    of IO execution across every probed layer.
    """

    def __init__(self, limit: Optional[int] = None):
        self.events: List[TraceEvent] = []
        self.limit = limit
        self.dropped = 0

    def consume(self, layer: str, events: List[Event]) -> None:
        store = self.events
        limit = self.limit
        for op, start, lat, ctx in events:
            if limit is not None and len(store) >= limit:
                self.dropped += 1
                continue
            rid = ctx.request_id if ctx is not None else None
            depth = ctx.depth if ctx is not None else 0
            store.append(TraceEvent(rid, layer, op, start, lat, depth))

    def requests(self) -> Dict[int, List[TraceEvent]]:
        """Request id → its events, entry-ordered (start, then depth)."""
        grouped: Dict[int, List[TraceEvent]] = {}
        for event in self.events:
            if event.request_id is None:
                continue
            grouped.setdefault(event.request_id, []).append(event)
        for events in grouped.values():
            events.sort(key=lambda e: (e.start, e.depth))
        return grouped


class FanoutSink(EventSink):
    """Forwards one stream to several sinks (profile + sample + stream...).

    Consumers are isolated from each other: a sink that raises is
    counted against (``sink_errors``, ``last_errors``,
    ``events_dropped``) and skipped for that batch, while every other
    sink still receives the full event stream — one bad consumer (a
    dead service connection inside a :class:`StreamSink`, a buggy
    analysis sink) can degrade itself but can never drop events for the
    rest.  :meth:`degraded` and :meth:`metrics` surface the damage so
    it is observable, never silent.
    """

    def __init__(self, sinks: Sequence[EventSink]):
        self.sinks = tuple(sinks)
        self.sink_errors = [0] * len(self.sinks)
        self.last_errors: List[Optional[BaseException]] = \
            [None] * len(self.sinks)
        self.events_dropped = 0  #: events a failed sink did not receive

    def consume(self, layer: str, events: List[Event]) -> None:
        for index, sink in enumerate(self.sinks):
            try:
                sink.consume(layer, events)
            except Exception as exc:
                self.sink_errors[index] += 1
                self.last_errors[index] = exc
                self.events_dropped += len(events)

    def flush(self) -> None:
        for index, sink in enumerate(self.sinks):
            try:
                sink.flush()
            except Exception as exc:
                self.sink_errors[index] += 1
                self.last_errors[index] = exc

    def degraded(self) -> bool:
        """Has any consumer failed at least once?"""
        return any(self.sink_errors)

    def metrics(self) -> Dict[str, int]:
        """Degradation counters, ``osprof_*``-named for exposition."""
        return {
            "osprof_sink_errors_total": sum(self.sink_errors),
            "osprof_sink_events_dropped_total": self.events_dropped,
            "osprof_sinks_degraded": sum(
                1 for count in self.sink_errors if count),
        }


class ProbePoint:
    """Entry/exit instrumentation for one layer, emitting to sinks.

    The record path is deliberately tiny: clamp, append one tuple to the
    owning pipeline's per-CPU buffer, maybe trigger a drain.  All
    bucketing happens at flush time.  A probe wired to no real sink
    (only :class:`NullSink`, or nothing) deactivates the path entirely.
    """

    __slots__ = ("pipeline", "layer", "name", "sinks", "clock", "active",
                 "events_recorded", "_buffers", "_batch_size", "_fast")

    def __init__(self, pipeline: "Pipeline", layer: str,
                 sinks: Sequence[EventSink],
                 clock: Optional[Callable[[], float]] = None,
                 name: str = ""):
        self.pipeline = pipeline
        self.layer = layer
        self.name = name or layer
        self.sinks = tuple(sinks)
        self.clock = clock
        self.active = any(not isinstance(s, NullSink) for s in self.sinks)
        self.events_recorded = 0
        self._buffers = pipeline._buffers
        self._batch_size = pipeline.batch_size
        # A probe feeding exactly one ProfileSink (the dominant wiring)
        # skips the generic event tuples: latencies group per operation
        # at record time and drain straight into add_many.  Anything
        # needing starts or contexts — a SamplingSink, a global
        # TraceSink — forces the generic path.
        if (self.active and len(self.sinks) == 1
                and type(self.sinks[0]) is ProfileSink
                and not pipeline._global_sinks):
            self._fast: Optional[List[Dict[str, List[float]]]] = [
                {} for _ in pipeline._buffers]
        else:
            self._fast = None

    # -- the hot path -------------------------------------------------------

    def record(self, operation: str, latency: float, start: float = 0.0,
               context: Optional[RequestContext] = None,
               cpu: int = 0) -> None:
        """Emit one measured latency (cycles) into the pipeline."""
        fast = self._fast
        if fast is not None:
            if latency < 0.0:
                latency = 0.0
            groups = fast[cpu]
            lats = groups.get(operation)
            if lats is None:
                groups[operation] = [latency]
                if self._batch_size == 1:
                    self._drain_fast()
                return
            lats.append(latency)
            if len(lats) >= self._batch_size:
                self._drain_fast()
            return
        if not self.active:
            return
        if latency < 0.0:
            # Clock skew across CPUs (§3.4) can make latencies negative;
            # clamp so they land in bucket 0, as the per-sample path did.
            latency = 0.0
        buffer = self._buffers[cpu]
        buffer.append((self, operation, start, latency, context))
        self.events_recorded += 1
        if len(buffer) >= self._batch_size:
            self.pipeline._drain(buffer)

    def _drain_fast(self) -> None:
        """Bucket the per-operation fast buffers into the ProfileSink."""
        fast = self._fast
        if fast is None:
            return
        sink = self.sinks[0]
        pset = sink.profiles
        profile = pset.profile
        layer = self.layer
        total = 0
        for groups in fast:
            if not groups:
                continue
            for op, lats in groups.items():
                profile(op, layer).histogram.add_many(lats)
                total += len(lats)
            groups.clear()
        if total:
            sink.events_consumed += total
            self.events_recorded += total
            self.pipeline.events_flushed += total

    def _pending_fast(self) -> int:
        if self._fast is None:
            return 0
        return sum(len(lats) for groups in self._fast
                   for lats in groups.values())

    def _disable_fast(self) -> None:
        """Drop to the generic path (a global sink was attached)."""
        if self._fast is not None:
            self._drain_fast()
            self._fast = None

    # -- entry/exit API -----------------------------------------------------

    def enter(self, operation: str,
              context: Optional[RequestContext] = None,
              parent: Optional[RequestContext] = None,
              cpu: int = 0) -> ProbeToken:
        """FSPROF_PRE: read the clock, stamp a context, return a token.

        ``context`` uses an existing frame as-is; ``parent`` derives a
        child frame from it; with neither, a fresh root context is
        stamped (a new request id).
        """
        if context is None:
            if parent is not None:
                context = parent.child(operation, self.layer)
            else:
                context = self.pipeline.new_context(operation, self.layer)
        start = self.clock() if self.clock is not None else 0.0
        return ProbeToken(operation, start, context, cpu)

    def exit(self, token: ProbeToken) -> float:
        """FSPROF_POST: measure, clamp, and emit.  Returns the latency."""
        if token._done:
            raise TokenFinishedError(
                f"probe token for {token.operation!r} finished twice")
        token._done = True
        end = self.clock() if self.clock is not None else 0.0
        latency = end - token.start
        if latency < 0.0:
            latency = 0.0
        self.record(token.operation, latency, start=token.start,
                    context=token.context, cpu=token.cpu)
        return latency

    @contextmanager
    def request(self, operation: str,
                parent: Optional[RequestContext] = None,
                cpu: int = 0) -> Iterator[ProbeToken]:
        """Probe the body of a ``with`` block as one request."""
        token = self.enter(operation, parent=parent, cpu=cpu)
        try:
            yield token
        finally:
            self.exit(token)

    # -- context propagation through simulated processes --------------------

    def push_context(self, proc, operation: str) -> RequestContext:
        """Stamp a context frame on a simulated process.

        The root frame (no context on the process yet) allocates a new
        request id; nested frames extend the existing one.  Pair with
        :meth:`pop_context` in a ``finally``.
        """
        parent = proc.request_context
        if parent is None:
            context = self.pipeline.new_context(operation, self.layer)
        else:
            context = parent.child(operation, self.layer)
        proc.request_context = context
        return context

    @staticmethod
    def pop_context(proc, context: RequestContext) -> None:
        proc.request_context = context.parent

    def __repr__(self) -> str:
        return (f"<ProbePoint {self.name!r} layer={self.layer} "
                f"sinks={len(self.sinks)} "
                f"{'active' if self.active else 'inactive'}>")


class Pipeline:
    """Owns the per-CPU batch buffers, request ids, probes, and sinks.

    One pipeline spans one machine (or one collection): every probe
    created from it shares the request-id sequence — the property that
    makes cross-layer request slicing possible — and its buffers drain
    together on :meth:`flush`.
    """

    def __init__(self, num_cpus: int = 1,
                 batch_size: int = DEFAULT_BATCH_SIZE,
                 clock: Optional[Callable[[], float]] = None):
        if num_cpus < 1:
            raise ValueError("need at least one CPU buffer")
        if batch_size < 1:
            raise ValueError("batch_size must be >= 1")
        self.batch_size = batch_size
        self.clock = clock
        self._buffers: List[list] = [[] for _ in range(num_cpus)]
        self._probes: List[ProbePoint] = []
        self._global_sinks: List[EventSink] = []
        self._next_request_id = 1
        self.events_flushed = 0

    # -- construction -------------------------------------------------------

    def probe(self, layer: str, *sinks: EventSink,
              clock: Optional[Callable[[], float]] = None,
              name: str = "") -> ProbePoint:
        """Create a probe for one layer, wired to *sinks*."""
        point = ProbePoint(self, layer, sinks,
                           clock=clock if clock is not None else self.clock,
                           name=name)
        if self._global_sinks:
            point.active = True
        self._probes.append(point)
        return point

    def add_global_sink(self, sink: EventSink) -> None:
        """Attach a sink receiving every probe's events (e.g. a trace)."""
        self._global_sinks.append(sink)
        for probe in self._probes:
            # Fast-path probes drop per-op latency lists without starts
            # or contexts — drain them and fall back to event tuples so
            # the new sink sees the full stream from here on.
            probe._disable_fast()
            probe.active = True

    def probes(self) -> List[ProbePoint]:
        return list(self._probes)

    # -- request identity ---------------------------------------------------

    def new_context(self, operation: str,
                    layer: str = Layer.USER) -> RequestContext:
        """Stamp a fresh root context (a new request id)."""
        rid = self._next_request_id
        self._next_request_id += 1
        return RequestContext(rid, operation, layer)

    # -- draining -----------------------------------------------------------

    def pending_events(self) -> int:
        return (sum(len(buffer) for buffer in self._buffers)
                + sum(probe._pending_fast() for probe in self._probes))

    def _drain(self, buffer: list) -> None:
        if not buffer:
            return
        events = buffer[:]
        del buffer[:]
        self.events_flushed += len(events)
        # Partition by probe, preserving first-appearance order, then
        # deliver each probe's slice to its sinks and the global sinks.
        per_probe: Dict[int, Tuple[ProbePoint, List[Event]]] = {}
        for probe, op, start, lat, ctx in events:
            entry = per_probe.get(id(probe))
            if entry is None:
                per_probe[id(probe)] = entry = (probe, [])
            entry[1].append((op, start, lat, ctx))
        for probe, batch in per_probe.values():
            for sink in probe.sinks:
                sink.consume(probe.layer, batch)
            for sink in self._global_sinks:
                sink.consume(probe.layer, batch)

    def flush(self, final: bool = False) -> None:
        """Drain every CPU buffer into the sinks.

        ``final=True`` additionally flushes the sinks themselves, which
        lets :class:`StreamSink` push its last partial batch.
        """
        for buffer in self._buffers:
            self._drain(buffer)
        for probe in self._probes:
            probe._drain_fast()
        if final:
            seen = set()
            for probe in self._probes:
                for sink in probe.sinks:
                    if id(sink) not in seen:
                        seen.add(id(sink))
                        sink.flush()
            for sink in self._global_sinks:
                if id(sink) not in seen:
                    seen.add(id(sink))
                    sink.flush()

    def __repr__(self) -> str:
        return (f"<Pipeline probes={len(self._probes)} "
                f"pending={self.pending_events()} "
                f"flushed={self.events_flushed}>")


def wire_probe(pipeline: Pipeline, layer: str,
               profiler=None, sampled: Optional[SampledProfiler] = None,
               extra_sinks: Sequence[EventSink] = (),
               clock: Optional[Callable[[], float]] = None,
               name: str = "") -> ProbePoint:
    """Build a probe feeding a Profiler and/or SampledProfiler.

    This is the standard layer wiring: the profiler's ProfileSet gets a
    :class:`ProfileSink` (resolved through the profiler so ``reset()``
    keeps working), the sampled profiler a :class:`SamplingSink`, and
    both get the pipeline's flush attached so reading results always
    observes drained buffers.  With neither target and no extra sinks
    the probe gets a :class:`NullSink` — the measured-zero off variant.
    """
    sinks: List[EventSink] = []
    if profiler is not None:
        sinks.append(ProfileSink(lambda: profiler.profiles))
    if sampled is not None:
        sinks.append(SamplingSink(sampled))
    sinks.extend(extra_sinks)
    if not sinks:
        sinks.append(NullSink())
    probe = pipeline.probe(layer, *sinks, clock=clock, name=name)
    if profiler is not None:
        profiler.attach_flush(pipeline.flush)
    if sampled is not None:
        sampled.attach_flush(pipeline.flush)
    return probe

"""Sharded parallel profile collection.

The paper's aggregate-stats library is built for SMP scale: per-CPU
bucket sets updated without locks and merged at collection time
(Section 3.4), with profiles small and checksummed so they are cheap to
ship around.  This module applies the same design one level up: a
workload is split into N *shards*, each shard runs on its own simulated
machine in its own worker process, and the per-shard profile sets are
streamed back through the binary codec
(:meth:`~repro.core.profileset.ProfileSet.to_bytes`) and folded together
with :meth:`~repro.core.profileset.ProfileSet.merge` — the same
histogram addition that merges per-thread buckets inside one machine.

Determinism is the whole point of the seed plumbing: shard *i* of a run
seeded ``s`` always simulates with ``derive_seed(s, "shard:i")``
(:func:`repro.sim.rng.derive_seed`), so the merged result depends only
on ``(workload, seed, shards)`` — never on the worker count, scheduling,
or whether the shards ran in parallel at all.  ``workers=1`` therefore
*is* the serial reference: the same shard plan executed in-process, and
the acceptance check ``collect_sharded(..., workers=N) ==
collect_sharded(..., workers=1)`` holds bucket-for-bucket.

Shard semantics per workload: the request-driven workloads
(``randomread``, ``postmark``, ``zerobyte``, ``clone``) divide their
``iterations`` across shards (remainder to the earliest shards); the
trace-shaped ``grep`` workload replicates — each shard greps a full
source tree generated from its own derived seed.
"""

from __future__ import annotations

import multiprocessing
from dataclasses import dataclass
from typing import List, Optional

from ..sim.rng import derive_seed
from ..workloads.runner import (PROFILE_LAYERS, WORKLOAD_NAMES,
                                collect_profiles)
from .profileset import ProfileSet

__all__ = ["ShardTask", "plan_shards", "run_shard", "collect_sharded"]

#: Workloads whose ``iterations`` are divided across shards; the rest
#: replicate the full workload per shard (with a derived seed).
ITERATION_SHARDED = ("randomread", "postmark", "zerobyte", "clone")


@dataclass(frozen=True)
class ShardTask:
    """Everything one worker needs to produce one shard's profile set.

    Frozen and built from plain scalars so it pickles cheaply into a
    worker process regardless of start method.
    """

    workload: str
    index: int
    shards: int
    seed: int                 # derived: derive_seed(base, f"shard:{index}")
    layer: str = "fs"
    fs_type: str = "ext2"
    num_cpus: int = 1
    scale: float = 0.02
    processes: int = 2
    iterations: int = 1000
    patched_llseek: bool = False
    kernel_preemption: bool = False


def plan_shards(workload: str, *, shards: int = 1, seed: int = 2006,
                layer: str = "fs", fs_type: str = "ext2",
                num_cpus: int = 1, scale: float = 0.02,
                processes: int = 2, iterations: int = 1000,
                patched_llseek: bool = False,
                kernel_preemption: bool = False) -> List[ShardTask]:
    """Deterministically split a workload into per-shard tasks."""
    if workload not in WORKLOAD_NAMES:
        raise ValueError(
            f"unknown workload {workload!r}; expected one of "
            f"{', '.join(WORKLOAD_NAMES)}")
    if layer not in PROFILE_LAYERS:
        raise ValueError(
            f"unknown layer {layer!r}; expected one of "
            f"{', '.join(PROFILE_LAYERS)}")
    if shards < 1:
        raise ValueError("shards must be >= 1")
    if workload in ITERATION_SHARDED and iterations < shards:
        raise ValueError(
            f"cannot split {iterations} iterations across {shards} shards")
    tasks = []
    base, remainder = divmod(iterations, shards)
    for index in range(shards):
        if workload in ITERATION_SHARDED:
            share = base + (1 if index < remainder else 0)
        else:
            share = iterations
        tasks.append(ShardTask(
            workload=workload, index=index, shards=shards,
            seed=derive_seed(seed, f"shard:{index}"), layer=layer,
            fs_type=fs_type, num_cpus=num_cpus, scale=scale,
            processes=processes, iterations=share,
            patched_llseek=patched_llseek,
            kernel_preemption=kernel_preemption))
    return tasks


def run_shard(task: ShardTask) -> bytes:
    """Execute one shard on a fresh simulated machine.

    Returns the shard's profile set in the checksummed binary wire
    format — this is what crosses the process boundary, exercising the
    same codec whether the shard ran remotely or in-process.
    """
    pset = collect_profiles(
        task.workload, layer=task.layer, fs_type=task.fs_type,
        num_cpus=task.num_cpus, seed=task.seed, scale=task.scale,
        processes=task.processes, iterations=task.iterations,
        patched_llseek=task.patched_llseek,
        kernel_preemption=task.kernel_preemption)
    return pset.to_bytes()


def _pool_context():
    # fork skips re-importing the package in workers; fall back to the
    # platform default (spawn) where fork is unavailable.
    methods = multiprocessing.get_all_start_methods()
    return multiprocessing.get_context(
        "fork" if "fork" in methods else None)


def collect_sharded(workload: str, *, shards: int = 1,
                    workers: Optional[int] = None, seed: int = 2006,
                    layer: str = "fs", fs_type: str = "ext2",
                    num_cpus: int = 1, scale: float = 0.02,
                    processes: int = 2, iterations: int = 1000,
                    patched_llseek: bool = False,
                    kernel_preemption: bool = False) -> ProfileSet:
    """Run a workload as *shards* independent shards and merge the profiles.

    ``workers`` bounds process-level parallelism (default: one per
    shard); it never changes the result.  Every shard payload passes the
    binary codec's CRC check before merging, so a corrupted worker
    result fails loudly instead of skewing the merged histogram.
    """
    tasks = plan_shards(
        workload, shards=shards, seed=seed, layer=layer, fs_type=fs_type,
        num_cpus=num_cpus, scale=scale, processes=processes,
        iterations=iterations, patched_llseek=patched_llseek,
        kernel_preemption=kernel_preemption)
    workers = len(tasks) if workers is None else workers
    if workers < 1:
        raise ValueError("workers must be >= 1")
    if workers == 1 or len(tasks) == 1:
        payloads = [run_shard(task) for task in tasks]
    else:
        with _pool_context().Pool(min(workers, len(tasks))) as pool:
            payloads = pool.map(run_shard, tasks, chunksize=1)
    merged = ProfileSet.from_bytes(payloads[0])
    for payload in payloads[1:]:
        merged.merge(ProfileSet.from_bytes(payload))
    bad = merged.verify_checksums()
    if bad:
        raise ValueError(f"merged profile fails checksum for: {bad}")
    return merged

"""Sharded parallel profile collection.

The paper's aggregate-stats library is built for SMP scale: per-CPU
bucket sets updated without locks and merged at collection time
(Section 3.4), with profiles small and checksummed so they are cheap to
ship around.  This module applies the same design one level up: a
workload is split into N *shards*, each shard runs on its own simulated
machine in its own worker process, and the per-shard profile sets are
streamed back through the binary codec
(:meth:`~repro.core.profileset.ProfileSet.to_bytes`) and folded together
with :meth:`~repro.core.profileset.ProfileSet.merge` — the same
histogram addition that merges per-thread buckets inside one machine.

Determinism is the whole point of the seed plumbing: shard *i* of a run
seeded ``s`` always simulates with ``derive_seed(s, "shard:i")``
(:func:`repro.sim.rng.derive_seed`), so the merged result depends only
on ``(workload, seed, shards)`` — never on the worker count, scheduling,
or whether the shards ran in parallel at all.  ``workers=1`` therefore
*is* the serial reference: the same shard plan executed in-process, and
the acceptance check ``collect_sharded(..., workers=N) ==
collect_sharded(..., workers=1)`` holds bucket-for-bucket.

Shard semantics per workload: the request-driven workloads
(``randomread``, ``postmark``, ``zerobyte``, ``clone``) divide their
``iterations`` across shards (remainder to the earliest shards); the
trace-shaped ``grep`` workload replicates — each shard greps a full
source tree generated from its own derived seed.

Self-healing: because a shard's result is a pure function of its
:class:`ShardTask` (same derived seed in → byte-identical payload out),
a crashed, hung, or corrupted worker can simply be re-run with the
*same* task up to ``max_retries`` times without perturbing the merge —
the recovered run stays byte-identical to a fault-free run.  A shard
that exhausts its retries either fails the collection loudly
(:class:`ShardError`) or, with ``salvage=True``, is dropped from the
merge and recorded in the result's ``degraded`` attribute so a partial
profile can never masquerade as a complete one.
"""

from __future__ import annotations

import multiprocessing
import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..sim.rng import derive_seed
from ..workloads.runner import (PROFILE_LAYERS, WORKLOAD_NAMES,
                                collect_profiles)
from .faults import FaultPlan
from .profileset import ProfileSet

__all__ = ["ShardTask", "ShardError", "DEGRADED_ATTRIBUTE", "plan_shards",
           "run_shard", "collect_sharded"]

#: ProfileSet attribute naming the shards dropped from a salvaged merge.
DEGRADED_ATTRIBUTE = "degraded"


class ShardError(RuntimeError):
    """A shard failed every attempt (and salvage was not allowed)."""

    def __init__(self, failures: Dict[int, BaseException], attempts: int):
        detail = "; ".join(
            f"shard {index}: {exc}" for index, exc in sorted(failures.items()))
        super().__init__(
            f"{len(failures)} shard(s) failed after {attempts} attempt(s) "
            f"each: {detail}")
        self.failures = dict(failures)
        self.attempts = attempts

#: Workloads whose ``iterations`` are divided across shards; the rest
#: replicate the full workload per shard (with a derived seed).
ITERATION_SHARDED = ("randomread", "randomread-private", "postmark",
                     "zerobyte", "clone")


@dataclass(frozen=True)
class ShardTask:
    """Everything one worker needs to produce one shard's profile set.

    Frozen and built from plain scalars so it pickles cheaply into a
    worker process regardless of start method.
    """

    workload: str
    index: int
    shards: int
    seed: int                 # derived: derive_seed(base, f"shard:{index}")
    layer: str = "fs"
    fs_type: str = "ext2"
    num_cpus: int = 1
    scale: float = 0.02
    processes: int = 2
    iterations: int = 1000
    patched_llseek: bool = False
    kernel_preemption: bool = False
    scenario: Optional[str] = None  # registry name; device is rebuilt per shard


def plan_shards(workload: str, *, shards: int = 1, seed: int = 2006,
                layer: str = "fs", fs_type: str = "ext2",
                num_cpus: int = 1, scale: float = 0.02,
                processes: int = 2, iterations: int = 1000,
                patched_llseek: bool = False,
                kernel_preemption: bool = False,
                scenario: Optional[str] = None) -> List[ShardTask]:
    """Deterministically split a workload into per-shard tasks.

    ``scenario`` travels by *name*: each worker rebuilds a fresh device
    model from the registry, because model instances carry run state
    (head positions, GC counters, token buckets) that must not be shared
    across shard machines.
    """
    if scenario is not None:
        from ..scenarios import get_scenario  # validate before fan-out
        get_scenario(scenario)
    if workload not in WORKLOAD_NAMES:
        raise ValueError(
            f"unknown workload {workload!r}; expected one of "
            f"{', '.join(WORKLOAD_NAMES)}")
    if layer not in PROFILE_LAYERS:
        raise ValueError(
            f"unknown layer {layer!r}; expected one of "
            f"{', '.join(PROFILE_LAYERS)}")
    if shards < 1:
        raise ValueError("shards must be >= 1")
    if workload in ITERATION_SHARDED and iterations < shards:
        raise ValueError(
            f"cannot split {iterations} iterations across {shards} shards")
    tasks = []
    base, remainder = divmod(iterations, shards)
    for index in range(shards):
        if workload in ITERATION_SHARDED:
            share = base + (1 if index < remainder else 0)
        else:
            share = iterations
        tasks.append(ShardTask(
            workload=workload, index=index, shards=shards,
            seed=derive_seed(seed, f"shard:{index}"), layer=layer,
            fs_type=fs_type, num_cpus=num_cpus, scale=scale,
            processes=processes, iterations=share,
            patched_llseek=patched_llseek,
            kernel_preemption=kernel_preemption,
            scenario=scenario))
    return tasks


def run_shard(task: ShardTask) -> bytes:
    """Execute one shard on a fresh simulated machine.

    Returns the shard's profile set in the checksummed binary wire
    format — this is what crosses the process boundary, exercising the
    same codec whether the shard ran remotely or in-process.
    """
    pset = collect_profiles(
        task.workload, layer=task.layer, fs_type=task.fs_type,
        num_cpus=task.num_cpus, seed=task.seed, scale=task.scale,
        processes=task.processes, iterations=task.iterations,
        patched_llseek=task.patched_llseek,
        kernel_preemption=task.kernel_preemption,
        scenario=task.scenario)
    return pset.to_bytes()


def _pool_context():
    # fork skips re-importing the package in workers; fall back to the
    # platform default (spawn) where fork is unavailable.
    methods = multiprocessing.get_all_start_methods()
    return multiprocessing.get_context(
        "fork" if "fork" in methods else None)


def _run_shard_job(job: Tuple[ShardTask, int, Optional[FaultPlan]]) -> bytes:
    """One worker attempt: fire armed faults, run the shard, return bytes.

    Module-level (not a closure) so it pickles into pool workers under
    any start method.  The fault plan travels by value with the job, so
    injection decisions are identical whether the attempt runs pooled
    or in-process.
    """
    task, attempt, plan = job
    key = f"shard:{task.index}"
    if plan is not None:
        plan.fire("shard.worker", key=key, attempt=attempt)
    payload = run_shard(task)
    if plan is not None:
        payload = plan.fire("shard.payload", key=key, attempt=attempt,
                            data=payload)
    return payload


def _decode_payload(payload: bytes) -> ProfileSet:
    """CRC-check and decode one shard payload (ValueError on damage)."""
    pset = ProfileSet.from_bytes(payload)
    bad = pset.verify_checksums()
    if bad:
        raise ValueError(f"shard profile fails checksum for: {bad}")
    return pset


def _collect_serial(tasks: List[ShardTask], max_retries: int,
                    fault_plan: Optional[FaultPlan],
                    ) -> Tuple[Dict[int, ProfileSet],
                               Dict[int, BaseException]]:
    results: Dict[int, ProfileSet] = {}
    failures: Dict[int, BaseException] = {}
    for task in tasks:
        last: Optional[BaseException] = None
        for attempt in range(max_retries + 1):
            try:
                payload = _run_shard_job((task, attempt, fault_plan))
                results[task.index] = _decode_payload(payload)
                break
            except (ValueError, RuntimeError, OSError) as exc:
                last = exc
        else:
            failures[task.index] = last if last is not None else RuntimeError(
                "shard failed with no recorded cause")
    return results, failures


def _collect_pooled(tasks: List[ShardTask], workers: int, max_retries: int,
                    deadline: Optional[float],
                    fault_plan: Optional[FaultPlan],
                    ) -> Tuple[Dict[int, ProfileSet],
                               Dict[int, BaseException]]:
    """Run shards in a pool with per-attempt deadlines and retries.

    A hung worker is detected by its attempt outliving *deadline*; the
    attempt is abandoned (the stuck process dies with the pool at exit)
    and the task is resubmitted — the same task, so the retried result
    is byte-identical to what the hung attempt would have produced.
    """
    results: Dict[int, ProfileSet] = {}
    failures: Dict[int, BaseException] = {}
    ctx = _pool_context()
    with ctx.Pool(min(workers, len(tasks))) as pool:
        # index -> (async result, attempt number, attempt start time)
        pending = {
            task.index: (pool.apply_async(_run_shard_job,
                                          ((task, 0, fault_plan),)),
                         0, time.monotonic())
            for task in tasks}
        by_index = {task.index: task for task in tasks}
        while pending:
            progressed = False
            for index, (handle, attempt, started) in list(pending.items()):
                failure: Optional[BaseException] = None
                if handle.ready():
                    progressed = True
                    try:
                        results[index] = _decode_payload(handle.get())
                        del pending[index]
                        continue
                    except (ValueError, RuntimeError, OSError) as exc:
                        failure = exc
                elif (deadline is not None
                        and time.monotonic() - started > deadline):
                    progressed = True
                    failure = TimeoutError(
                        f"shard {index} attempt {attempt} exceeded its "
                        f"{deadline:g}s deadline")
                if failure is None:
                    continue
                if attempt >= max_retries:
                    failures[index] = failure
                    del pending[index]
                else:
                    pending[index] = (
                        pool.apply_async(
                            _run_shard_job,
                            ((by_index[index], attempt + 1, fault_plan),)),
                        attempt + 1, time.monotonic())
            if pending and not progressed:
                time.sleep(0.002)
    return results, failures


def collect_sharded(workload: str, *, shards: int = 1,
                    workers: Optional[int] = None, seed: int = 2006,
                    layer: str = "fs", fs_type: str = "ext2",
                    num_cpus: int = 1, scale: float = 0.02,
                    processes: int = 2, iterations: int = 1000,
                    patched_llseek: bool = False,
                    kernel_preemption: bool = False,
                    scenario: Optional[str] = None,
                    deadline: Optional[float] = None,
                    max_retries: int = 2, salvage: bool = False,
                    fault_plan: Optional[FaultPlan] = None) -> ProfileSet:
    """Run a workload as *shards* independent shards and merge the profiles.

    ``workers`` bounds process-level parallelism (default: one per
    shard); it never changes the result.  Every shard payload passes the
    binary codec's CRC check before merging, so a corrupted worker
    result fails loudly instead of skewing the merged histogram.

    Self-healing: a shard whose attempt crashes, hangs past *deadline*
    (pooled runs only — an in-process shard cannot be preempted), or
    returns a corrupt payload is retried with the same task (same
    derived seed) up to ``max_retries`` times, so a recovered run is
    byte-identical to a fault-free one.  A shard failing every attempt
    raises :class:`ShardError` — unless ``salvage=True``, in which case
    the surviving shards merge and the result carries a ``degraded``
    attribute naming the dropped shards (never a silently short
    profile).  ``fault_plan`` arms deliberate failures for testing
    (see :mod:`repro.core.faults`).
    """
    tasks = plan_shards(
        workload, shards=shards, seed=seed, layer=layer, fs_type=fs_type,
        num_cpus=num_cpus, scale=scale, processes=processes,
        iterations=iterations, patched_llseek=patched_llseek,
        kernel_preemption=kernel_preemption, scenario=scenario)
    workers = len(tasks) if workers is None else workers
    if workers < 1:
        raise ValueError("workers must be >= 1")
    if max_retries < 0:
        raise ValueError("max_retries must be >= 0")
    if deadline is not None and deadline <= 0:
        raise ValueError("deadline must be positive")
    if workers == 1 or len(tasks) == 1:
        results, failures = _collect_serial(tasks, max_retries, fault_plan)
    else:
        results, failures = _collect_pooled(tasks, workers, max_retries,
                                            deadline, fault_plan)
    if failures and not salvage:
        raise ShardError(failures, attempts=max_retries + 1)
    if not results:
        raise ShardError(failures, attempts=max_retries + 1)
    merged: Optional[ProfileSet] = None
    for index in sorted(results):
        if merged is None:
            merged = results[index]
        else:
            merged.merge(results[index])
    assert merged is not None
    if failures:
        merged.attributes[DEGRADED_ATTRIBUTE] = "shards:" + ",".join(
            str(index) for index in sorted(failures))
    bad = merged.verify_checksums()
    if bad:
        raise ValueError(f"merged profile fails checksum for: {bad}")
    return merged

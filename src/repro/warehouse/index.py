"""The warehouse's in-memory index, rebuilt from the log on open.

:class:`SegmentMeta` is the unit the index tracks: one committed,
immutable segment file, addressed by ``(source, tier, epoch)``.  Epochs
are integers in *base* (tier-0) units; a tier-*t* segment covers
``span = fanout**t`` consecutive base epochs starting at a
span-aligned ``epoch``.

:class:`WarehouseIndex` keeps the live set (segments not superseded by
a compaction and not evicted), a postings map keyed by
``(source, layer, operation)`` for operation-targeted queries, and the
monotonic counters the metrics endpoint exports.  It is a pure
reduction of the log records — applying the same records in the same
order always reproduces it, which is the whole crash-safety story.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Set, Tuple

__all__ = ["SegmentMeta", "WarehouseIndex"]


@dataclass(frozen=True)
class SegmentMeta:
    """One committed segment: where it lives and what it contains."""

    seg_id: int                             #: warehouse-unique, monotonic
    source: str                             #: collector/source name
    tier: int                               #: 0 = raw, higher = coarser
    epoch: int                              #: first base epoch covered
    span: int                               #: base epochs covered
    file: str                               #: path relative to the root
    nbytes: int                             #: encoded payload size
    ops: Tuple[Tuple[str, str], ...]        #: sorted (layer, operation)
    #: Per-operation latency rounding residuals: the codec stores one
    #: float64 per total, so a compacted segment whose exact merged
    #: total needs a wider expansion records what the encode dropped
    #: here, and :meth:`Warehouse.load_segment` folds it back in.  This
    #: is what keeps tiered compaction sum-exact, hence
    #: byte-deterministic.  Empty for raw (tier-0) ingests.
    resid: Tuple[Tuple[str, Tuple[float, ...]], ...] = ()
    #: CRC-32 trailer of the committed payload (the last four bytes of
    #: the binary codec encoding), recorded so ``osprof db scrub`` can
    #: re-verify a segment file against what the *journal* promised,
    #: not just against the file's own (possibly co-damaged) trailer.
    #: ``None`` for records committed before this field existed.
    crc: Optional[int] = None
    #: Payload family: ``"profile"`` (a ProfileSet of latency
    #: histograms — the original and default) or ``"samples"`` (a
    #: StateProfile of wait-state sample counts).  Only non-default
    #: kinds are journaled, so records committed before this field
    #: existed replay unchanged.  Sample segments stay at tier 0:
    #: compaction and retention planning select latency segments only.
    kind: str = "profile"

    @property
    def epoch_end(self) -> int:
        """Last base epoch covered (inclusive)."""
        return self.epoch + self.span - 1

    def overlaps(self, t0: Optional[int], t1: Optional[int]) -> bool:
        """Does [epoch, epoch_end] intersect the query range [t0, t1]?"""
        return ((t1 is None or self.epoch <= t1)
                and (t0 is None or self.epoch_end >= t0))

    def to_record(self, inputs: Tuple[int, ...] = ()) -> Dict:
        """The log-record form committed by :class:`SegmentLog`."""
        record = {"rec": "segment", "id": self.seg_id,
                  "source": self.source, "tier": self.tier,
                  "epoch": self.epoch, "span": self.span,
                  "file": self.file, "bytes": self.nbytes,
                  "ops": [list(pair) for pair in self.ops],
                  "inputs": list(inputs)}
        if self.resid:
            # repr-based JSON floats round-trip bit-exactly in Python,
            # so the residual survives the journal unchanged.
            record["resid"] = {op: list(comps) for op, comps in self.resid}
        if self.crc is not None:
            record["crc"] = self.crc
        if self.kind != "profile":
            record["kind"] = self.kind
        return record

    @classmethod
    def from_record(cls, record: Dict) -> "SegmentMeta":
        try:
            return cls(seg_id=int(record["id"]),
                       source=str(record["source"]),
                       tier=int(record["tier"]),
                       epoch=int(record["epoch"]),
                       span=int(record["span"]),
                       file=str(record["file"]),
                       nbytes=int(record["bytes"]),
                       ops=tuple(sorted((str(layer), str(op))
                                        for layer, op in record["ops"])),
                       resid=tuple(sorted(
                           (str(op), tuple(float(c) for c in comps))
                           for op, comps
                           in record.get("resid", {}).items())),
                       crc=int(record["crc"]) if "crc" in record
                       else None,
                       kind=str(record.get("kind", "profile")))
        except (KeyError, TypeError, ValueError) as exc:
            raise ValueError(f"bad segment record {record!r}: {exc}") \
                from None


class WarehouseIndex:
    """Live segments + postings + counters, as a reduction of the log."""

    def __init__(self):
        self._live: Dict[int, SegmentMeta] = {}
        self._by_source: Dict[str, Set[int]] = {}
        self._postings: Dict[Tuple[str, str, str], Set[int]] = {}
        self.next_id = 1
        #: committed-dead segment files awaiting removal (compacted
        #: inputs and gc victims whose unlink may not have happened yet)
        self.dead_files: Set[str] = set()
        # Monotonic totals, recomputed identically on every replay.
        self.segments_total = 0
        self.compactions_total = 0
        self.gc_evictions_total = 0

    # -- log reduction -------------------------------------------------------

    def apply(self, record: Dict) -> None:
        """Fold one committed log record into the index."""
        kind = record.get("rec")
        if kind == "segment":
            meta = SegmentMeta.from_record(record)
            inputs = [int(i) for i in record.get("inputs", [])]
            for seg_id in inputs:
                self._drop(seg_id)
            self._add(meta)
            if inputs:
                self.compactions_total += 1
            else:
                self.segments_total += 1
        elif kind == "gc":
            ids = [int(i) for i in record.get("ids", [])]
            self.gc_evictions_total += sum(
                1 for seg_id in ids if self._drop(seg_id))
        else:
            raise ValueError(f"unknown log record kind {kind!r}")

    def _add(self, meta: SegmentMeta) -> None:
        if meta.seg_id in self._live:
            raise ValueError(f"duplicate segment id {meta.seg_id}")
        self._live[meta.seg_id] = meta
        self._by_source.setdefault(meta.source, set()).add(meta.seg_id)
        for layer, op in meta.ops:
            self._postings.setdefault(
                (meta.source, layer, op), set()).add(meta.seg_id)
        if meta.seg_id >= self.next_id:
            self.next_id = meta.seg_id + 1

    def _drop(self, seg_id: int) -> bool:
        meta = self._live.pop(seg_id, None)
        if meta is None:
            return False
        self._by_source[meta.source].discard(seg_id)
        for layer, op in meta.ops:
            key = (meta.source, layer, op)
            postings = self._postings.get(key)
            if postings is not None:
                postings.discard(seg_id)
                if not postings:
                    del self._postings[key]
        self.dead_files.add(meta.file)
        return True

    # -- queries -------------------------------------------------------------

    def sources(self) -> List[str]:
        return sorted(src for src, ids in self._by_source.items() if ids)

    def __len__(self) -> int:
        return len(self._live)

    def get(self, seg_id: int) -> Optional[SegmentMeta]:
        return self._live.get(seg_id)

    def live_files(self) -> Set[str]:
        return {meta.file for meta in self._live.values()}

    def select(self, source: str, layer: Optional[str] = None,
               op: Optional[str] = None, t0: Optional[int] = None,
               t1: Optional[int] = None,
               kind: Optional[str] = "profile") -> List[SegmentMeta]:
        """Live segments of *source* matching the filters, epoch order.

        ``layer``/``op`` consult the postings map, so a query for one
        operation never touches segments that never saw it.  The sort
        key ``(epoch, seg_id)`` is deterministic, which keeps every
        downstream merge byte-deterministic.  ``kind`` restricts the
        payload family — the ``"profile"`` default keeps every latency
        consumer (queries, compaction, gc planning) blind to sample
        segments; pass ``"samples"`` for those or ``None`` for all.
        """
        ids = set(self._by_source.get(source, ()))
        if layer is not None or op is not None:
            matched: Set[int] = set()
            for (psource, player, pop), pids in self._postings.items():
                if psource != source:
                    continue
                if layer is not None and player != layer:
                    continue
                if op is not None and pop != op:
                    continue
                matched |= pids
            ids &= matched
        metas = [self._live[i] for i in ids
                 if self._live[i].overlaps(t0, t1)
                 and (kind is None or self._live[i].kind == kind)]
        return sorted(metas, key=lambda m: (m.epoch, m.seg_id))

    def max_epoch(self, source: str) -> Optional[int]:
        """Highest base epoch covered by any live segment of *source*."""
        ids = self._by_source.get(source)
        if not ids:
            return None
        return max(self._live[i].epoch_end for i in ids)

    def next_epoch(self, source: str) -> int:
        """The first base epoch after everything stored for *source*."""
        latest = self.max_epoch(source)
        return 0 if latest is None else latest + 1

    def __repr__(self) -> str:
        return (f"<WarehouseIndex segments={len(self._live)} "
                f"sources={len(self.sources())}>")

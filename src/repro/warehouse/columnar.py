"""Columnar decode and merge for warehouse segments.

The legacy query path decodes every segment into a full
:class:`~repro.core.profileset.ProfileSet` — one ``Profile`` +
``LatencyBuckets`` object pair per operation, one dict entry per bucket
— and then merges dict-of-dict histograms.  That is fine for a single
capture, but a fleet warehouse answers range queries over hundreds of
segments, and the object churn dominates.

:class:`ColumnarSegment` decodes the same ``OSPROFB1`` payload (CRC and
Section-4 checksums still enforced) straight into flat columns:

* per-row ``ops`` / ``layers`` string lists (one row per operation),
* ``total_ops`` (``array('Q')``) and the encoded ``total_latency``
  (``array('d')``) columns,
* optional per-row ``mins`` / ``maxs``,
* one shared CSR-style postings matrix — ``bucket_ids``
  (``array('H')``) and ``bucket_counts`` (``array('Q')``) with a
  ``row_start`` offset column — holding every (bucket, count) pair of
  the segment contiguously.

:func:`merged_profile_set` then merges any number of columnar segments
(with their commit-log latency residuals) into a ``ProfileSet`` that is
**byte-identical** to what ``ProfileSet.merged`` produces over the
legacy ``Warehouse.load_segment`` path.  The equivalence argument:
bucket counts and op totals are integer sums (order-free); min/max are
plain comparisons; and the exact latency total is carried as a Shewchuk
expansion grown with error-free two-sums, so *any* fold order
represents the same exact real number, and ``math.fsum`` rounds that
number identically no matter which path built the expansion.
"""

from __future__ import annotations

import struct
import zlib
from array import array
from typing import Dict, Iterable, List, Optional, Tuple

from ..core.buckets import (MAX_BUCKET, BucketSpec, LatencyBuckets,
                            _grow_expansion)
from ..core.profile import Profile
from ..core.profileset import _BINARY_MAGIC, ProfileSet

__all__ = ["ColumnarSegment", "group_histogram", "merged_profile_set"]

_U16 = struct.Struct("<H")
_U32 = struct.Struct("<I")
_QDB = struct.Struct("<QdB")
_F64 = struct.Struct("<d")

#: Interleaved (u16 bucket, u64 count) bulk formats, cached per length.
_PAIR_FMTS: Dict[int, str] = {}


def _truncated(wanted: int, pos: int, left: int) -> ValueError:
    return ValueError(
        f"truncated binary profile: wanted {wanted} bytes at offset "
        f"{pos}, only {left} left")


class ColumnarSegment:
    """One decoded segment as flat columns plus a shared bucket matrix.

    Immutable once built; safe to share across queries (the warehouse
    caches instances keyed by segment id + CRC).  ``crc`` is the codec
    trailer of the bytes this was decoded from — the cache validity
    token — and ``nbytes`` their length.
    """

    __slots__ = ("resolution", "name", "attributes", "ops", "layers",
                 "total_ops", "enc_total", "mins", "maxs", "row_start",
                 "bucket_ids", "bucket_counts", "crc", "nbytes")

    def __init__(self):
        self.resolution = 1
        self.name = ""
        self.attributes: Dict[str, str] = {}
        self.ops: List[str] = []
        self.layers: List[str] = []
        self.total_ops = array("Q")
        self.enc_total = array("d")
        self.mins: List[Optional[float]] = []
        self.maxs: List[Optional[float]] = []
        self.row_start = array("L", [0])
        self.bucket_ids = array("H")
        self.bucket_counts = array("Q")
        self.crc = 0
        self.nbytes = 0

    @property
    def nrows(self) -> int:
        return len(self.ops)

    def row_buckets(self, i: int) -> Tuple[memoryview, memoryview]:
        """Zero-copy ``(bucket_ids, counts)`` views of row *i*."""
        a, b = self.row_start[i], self.row_start[i + 1]
        return (memoryview(self.bucket_ids)[a:b],
                memoryview(self.bucket_counts)[a:b])

    # -- decoding ------------------------------------------------------------

    @classmethod
    def from_bytes(cls, data) -> "ColumnarSegment":
        """Decode one ``OSPROFB1`` payload into columns.

        Enforces exactly what ``ProfileSet.from_bytes`` enforces — the
        magic, the CRC-32 trailer, bucket ranges, duplicate ops and
        buckets, the counts-sum-to-total_ops checksum, and a clean end
        of payload — but touches no ``Profile``/``LatencyBuckets``
        objects: strings are sliced once, numeric columns land in
        ``array`` buffers via bulk ``struct.unpack_from``.
        """
        if not isinstance(data, (bytes, bytearray, memoryview)):
            raise ValueError("binary profile must be a bytes-like object")
        data = bytes(data)
        if not data.startswith(_BINARY_MAGIC):
            raise ValueError(
                f"not a binary osprof profile: magic {data[:8]!r}")
        if len(data) < len(_BINARY_MAGIC) + 4:
            raise ValueError("truncated binary profile: missing trailer")
        end = len(data) - 4
        (declared_crc,) = _U32.unpack_from(data, end)
        with memoryview(data) as view:
            actual_crc = zlib.crc32(view[len(_BINARY_MAGIC):end]) & 0xFFFFFFFF
        if declared_crc != actual_crc:
            raise ValueError(
                f"binary profile CRC mismatch: trailer says "
                f"{declared_crc:#010x}, payload hashes to {actual_crc:#010x}")

        cols = cls()
        cols.crc = declared_crc
        cols.nbytes = len(data)
        pos = len(_BINARY_MAGIC)

        def read_str(pos: int) -> Tuple[str, int]:
            if pos + 2 > end:
                raise _truncated(2, pos, end - pos)
            (n,) = _U16.unpack_from(data, pos)
            pos += 2
            if pos + n > end:
                raise _truncated(n, pos, end - pos)
            return data[pos:pos + n].decode("utf-8"), pos + n

        if pos + 1 > end:
            raise _truncated(1, pos, end - pos)
        resolution = data[pos]
        pos += 1
        try:
            BucketSpec(resolution)
        except ValueError as exc:
            raise ValueError(f"bad binary profile header: {exc}") from None
        cols.resolution = resolution
        cols.name, pos = read_str(pos)
        if pos + 2 > end:
            raise _truncated(2, pos, end - pos)
        (nattrs,) = _U16.unpack_from(data, pos)
        pos += 2
        for _ in range(nattrs):
            key, pos = read_str(pos)
            cols.attributes[key], pos = read_str(pos)
        if pos + 4 > end:
            raise _truncated(4, pos, end - pos)
        (nprofiles,) = _U32.unpack_from(data, pos)
        pos += 4

        seen = set()
        for _ in range(nprofiles):
            operation, pos = read_str(pos)
            layer, pos = read_str(pos)
            if operation in seen:
                raise ValueError(f"duplicate op block {operation!r}")
            seen.add(operation)
            if pos + _QDB.size > end:
                raise _truncated(_QDB.size, pos, end - pos)
            total_ops, total_latency, flags = _QDB.unpack_from(data, pos)
            pos += _QDB.size
            min_latency = max_latency = None
            if flags & 1:
                if pos + 8 > end:
                    raise _truncated(8, pos, end - pos)
                (min_latency,) = _F64.unpack_from(data, pos)
                pos += 8
            if flags & 2:
                if pos + 8 > end:
                    raise _truncated(8, pos, end - pos)
                (max_latency,) = _F64.unpack_from(data, pos)
                pos += 8
            if pos + 4 > end:
                raise _truncated(4, pos, end - pos)
            (nbuckets,) = _U32.unpack_from(data, pos)
            pos += 4
            nraw = nbuckets * 10
            if pos + nraw > end:
                raise _truncated(nraw, pos, end - pos)
            if nbuckets:
                fmt = _PAIR_FMTS.get(nbuckets)
                if fmt is None:
                    fmt = _PAIR_FMTS.setdefault(nbuckets,
                                                "<" + "HQ" * nbuckets)
                vals = struct.unpack_from(fmt, data, pos)
                pos += nraw
                ids = vals[0::2]
                cnts = vals[1::2]
                if max(ids) > MAX_BUCKET:
                    raise ValueError(
                        f"bad op {operation!r}: bucket index "
                        f"{max(ids)} out of range")
                if any(ids[k] >= ids[k + 1] for k in range(nbuckets - 1)):
                    # Canonical encodings are strictly ascending; accept
                    # an unsorted (but duplicate-free) stream the way
                    # the object decoder does.
                    if len(set(ids)) != nbuckets:
                        dup = sorted(b for b in set(ids)
                                     if ids.count(b) > 1)[0]
                        raise ValueError(
                            f"duplicate bucket {dup} in op {operation!r}")
                    pairs = sorted(zip(ids, cnts))
                    ids = tuple(p[0] for p in pairs)
                    cnts = tuple(p[1] for p in pairs)
                if sum(cnts) != total_ops:
                    raise ValueError(
                        f"bad op {operation!r}: checksum mismatch: bucket "
                        f"counts sum to {sum(cnts)}, header says "
                        f"{total_ops}")
                cols.bucket_ids.extend(ids)
                cols.bucket_counts.extend(cnts)
            elif total_ops:
                raise ValueError(
                    f"bad op {operation!r}: checksum mismatch: bucket "
                    f"counts sum to 0, header says {total_ops}")
            cols.ops.append(operation)
            cols.layers.append(layer)
            cols.total_ops.append(total_ops)
            cols.enc_total.append(total_latency)
            cols.mins.append(min_latency)
            cols.maxs.append(max_latency)
            cols.row_start.append(len(cols.bucket_ids))
        if pos != end:
            raise ValueError(
                f"{end - pos} trailing bytes after the last profile")
        return cols

    # -- reconstruction ------------------------------------------------------

    def to_profile_set(self) -> ProfileSet:
        """Rebuild the ``ProfileSet`` this segment encodes.

        Equal (and byte-identical on re-encode) to
        ``ProfileSet.from_bytes`` over the original payload.
        """
        spec = BucketSpec(self.resolution)
        pset = ProfileSet(name=self.name, spec=spec,
                          attributes=self.attributes)
        ids, cnts, starts = self.bucket_ids, self.bucket_counts, \
            self.row_start
        for i, operation in enumerate(self.ops):
            prof = Profile(operation, self.layers[i], spec)
            hist = prof.histogram
            hist._counts = {ids[j]: cnts[j]
                            for j in range(starts[i], starts[i + 1])
                            if cnts[j]}
            hist.total_ops = self.total_ops[i]
            hist.total_latency = self.enc_total[i]
            hist.min_latency = self.mins[i]
            hist.max_latency = self.maxs[i]
            pset._profiles[operation] = prof
        return pset

    def __repr__(self) -> str:
        return (f"<ColumnarSegment rows={self.nrows} "
                f"pairs={len(self.bucket_ids)} crc={self.crc:#010x}>")


class _OpAccumulator:
    """Merge state for one operation across segments (first layer wins)."""

    __slots__ = ("layer", "nops", "partials", "dense", "mn", "mx")

    def __init__(self, layer: str):
        self.layer = layer
        self.nops = 0
        self.partials: List[float] = []
        self.dense = [0] * (MAX_BUCKET + 1)
        self.mn: Optional[float] = None
        self.mx: Optional[float] = None


def merged_profile_set(
        segments: Iterable[Tuple[ColumnarSegment,
                                 Dict[str, Tuple[float, ...]]]],
        layer: Optional[str] = None, op: Optional[str] = None,
        name: str = "") -> ProfileSet:
    """Merge columnar segments into one canonical ``ProfileSet``.

    *segments* yields ``(columns, residuals)`` pairs in the
    deterministic ``(epoch, seg_id)`` order the index selects;
    *residuals* is the segment's commit-record latency-residual map
    (``op -> components``, see ``SegmentMeta.resid``), folded into the
    exact total exactly as ``Warehouse.load_segment`` folds it.
    ``layer``/``op`` restrict the merge the way ``Warehouse.query``
    filters do.  The result is byte-identical to ``ProfileSet.merged``
    over the equivalent legacy loads: empty name and attributes, spec
    from the first segment, first-seen layer per operation.
    """
    accs: Dict[str, _OpAccumulator] = {}
    resolution: Optional[int] = None
    for cols, resid in segments:
        if resolution is None:
            resolution = cols.resolution
        elif cols.resolution != resolution:
            raise ValueError(
                "profile resolution differs from set resolution")
        ids, cnts, starts = cols.bucket_ids, cols.bucket_counts, \
            cols.row_start
        for i, operation in enumerate(cols.ops):
            if op is not None and operation != op:
                continue
            if layer is not None and cols.layers[i] != layer:
                continue
            acc = accs.get(operation)
            if acc is None:
                acc = accs[operation] = _OpAccumulator(cols.layers[i])
            acc.nops += cols.total_ops[i]
            _grow_expansion(acc.partials, cols.enc_total[i])
            components = resid.get(operation)
            if components:
                for c in components:
                    _grow_expansion(acc.partials, c)
            dense = acc.dense
            for j in range(starts[i], starts[i + 1]):
                dense[ids[j]] += cnts[j]
            mn = cols.mins[i]
            if mn is not None and (acc.mn is None or mn < acc.mn):
                acc.mn = mn
            mx = cols.maxs[i]
            if mx is not None and (acc.mx is None or mx > acc.mx):
                acc.mx = mx
    spec = BucketSpec(resolution) if resolution is not None \
        else BucketSpec()
    out = ProfileSet(name=name, spec=spec)
    for operation in sorted(accs):
        acc = accs[operation]
        prof = Profile(operation, acc.layer, spec)
        hist = prof.histogram
        hist._counts = {b: c for b, c in enumerate(acc.dense) if c}
        hist.total_ops = acc.nops
        hist._latency_partials = acc.partials
        hist.min_latency = acc.mn
        hist.max_latency = acc.mx
        out._profiles[operation] = prof
    return out


def group_histogram(counts: Dict[int, int],
                    spec: Optional[BucketSpec] = None) -> LatencyBuckets:
    """A bare histogram over sparse *counts* (for metric evaluation).

    Totals are left at the counts sum / zero latency — callers
    (the SQL engine's distribution aggregates) only consume the bucket
    vector, never the latency totals.
    """
    hist = LatencyBuckets(spec)
    hist._counts = {int(b): int(c) for b, c in counts.items() if c}
    hist.total_ops = sum(hist._counts.values())
    return hist

"""RRD-style tier geometry: when segments age, merge them coarser.

The warehouse keeps recent history at full (tier-0) resolution and
progressively merges older segments into coarser epochs, the way
round-robin databases (and 0xtools' always-on sampled history) bound
their footprint while keeping an unbounded lookback.  Tier *t* segments
cover ``fanout**t`` base epochs; each tier keeps its most recent
``keep[t]`` windows hot, and anything older is either promoted into the
next tier's aligned window (:func:`plan_compactions`) or — at the top
tier — evicted by retention (:func:`plan_gc`).

Compaction is pure :meth:`ProfileSet.merged` over the group, sorted by
``(epoch, seg_id)``: histogram addition is commutative and associative,
so a query over compacted history is byte-identical to the same query
over the raw segments it replaced.  Tiers change *time* resolution
only, never latency resolution.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from .index import SegmentMeta, WarehouseIndex

__all__ = ["CompactionPolicy", "CompactionGroup", "plan_compactions",
           "plan_gc"]


@dataclass(frozen=True)
class CompactionPolicy:
    """Tier geometry and per-tier retention.

    ``fanout`` is the epoch-width ratio between adjacent tiers;
    ``keep[t]`` is how many tier-*t* windows stay hot before aging.  A
    segment is *aged* once its window lies entirely outside the keep
    horizon measured from the newest base epoch stored for its source.
    The top tier has no next tier: its aged segments are retention
    evictions, applied only by an explicit ``gc`` (compaction alone
    never discards data).
    """

    fanout: int = 4
    keep: Tuple[int, ...] = (8, 8, 8)

    def __post_init__(self):
        if self.fanout < 2:
            raise ValueError("fanout must be >= 2")
        if not self.keep:
            raise ValueError("keep must name at least one tier")
        if any(k < 1 for k in self.keep):
            raise ValueError("every keep[t] must be >= 1")

    @property
    def tiers(self) -> int:
        return len(self.keep)

    def span(self, tier: int) -> int:
        """Base epochs covered by one tier-*tier* window."""
        if not 0 <= tier < self.tiers:
            raise ValueError(f"tier {tier} outside 0..{self.tiers - 1}")
        return self.fanout ** tier

    def window_start(self, tier: int, epoch: int) -> int:
        """The aligned start of the tier-*tier* window containing *epoch*."""
        span = self.span(tier)
        return (epoch // span) * span

    def aged(self, tier: int, epoch_end: int, horizon: int) -> bool:
        """Is a segment ending at *epoch_end* outside tier's hot window?

        The hot window covers the ``keep[tier]`` most recent tier-sized
        windows ending at *horizon* (the newest base epoch stored).
        """
        return epoch_end < horizon - self.keep[tier] * self.span(tier) + 1


@dataclass(frozen=True)
class CompactionGroup:
    """One planned merge: inputs -> a single coarser output segment."""

    source: str
    tier: int                          #: output tier
    epoch: int                         #: output window start (aligned)
    inputs: Tuple[SegmentMeta, ...]    #: sorted by (epoch, seg_id)


def plan_compactions(index: WarehouseIndex, source: str,
                     policy: CompactionPolicy,
                     horizon: Optional[int] = None) -> List[CompactionGroup]:
    """Plan one round of promotions for *source* (deterministic).

    For every tier below the top, aged segments are grouped by their
    aligned next-tier window; each group becomes one output segment.
    Single-segment groups still promote — that is what moves a straggler
    up the tiers so top-tier retention can eventually apply to it.
    """
    if horizon is None:
        horizon = index.max_epoch(source)
    if horizon is None:
        return []
    groups: List[CompactionGroup] = []
    for tier in range(policy.tiers - 1):
        aged = [meta for meta in index.select(source)
                if meta.tier == tier
                and policy.aged(tier, meta.epoch_end, horizon)]
        by_window: Dict[int, List[SegmentMeta]] = {}
        for meta in aged:
            start = policy.window_start(tier + 1, meta.epoch)
            by_window.setdefault(start, []).append(meta)
        for start in sorted(by_window):
            inputs = sorted(by_window[start],
                            key=lambda m: (m.epoch, m.seg_id))
            groups.append(CompactionGroup(
                source=source, tier=tier + 1, epoch=start,
                inputs=tuple(inputs)))
    return groups


def plan_gc(index: WarehouseIndex, source: str,
            policy: CompactionPolicy,
            horizon: Optional[int] = None) -> List[SegmentMeta]:
    """Top-tier segments past retention — the ones ``gc`` may evict."""
    if horizon is None:
        horizon = index.max_epoch(source)
    if horizon is None:
        return []
    top = policy.tiers - 1
    return [meta for meta in index.select(source)
            if meta.tier == top
            and policy.aged(top, meta.epoch_end, horizon)]

"""``osprof db sql``: a small SQL dialect over the warehouse.

The paper's analysis workflow is comparative — which operation's peak
moved, which layer grew — and at fleet scale those questions span many
sources, epochs and tiers at once.  This module turns the warehouse's
columnar postings into one relation and runs
``SELECT / WHERE / GROUP BY / ORDER BY / LIMIT`` queries with
profile-aware aggregates over it, so "top 10 ops by p99 drift across
sources this hour" is one command instead of a script.

The relation has one row per stored operation profile (or one row per
occupied bucket when the query references the ``bucket``/``count``
columns), with dimensions::

    source  layer  op  epoch  epoch_end  tier  [bucket  count]

Referencing any of the ``state`` / ``wait_site`` / ``samples`` columns
switches the scan to the *sampling* family instead: one row per
``(state, layer, op, wait_site)`` cell of every stored wait-state
sample segment (``Warehouse.ingest_state``), and ``count()`` sums the
``samples`` column.  Latency aggregates are rejected there — sample
segments carry occupancy counts, not latencies — and the two families
never mix in one query.

Aggregates: ``count()``, ``total_latency()``, ``mean_latency()``,
``min_latency()``, ``max_latency()``, ``pNN()`` (e.g. ``p50()``,
``p99()``, ``p99.9()`` — the bucket-midpoint latency where the
cumulative distribution crosses NN%), ``peak_bucket()`` (modal bucket,
ties to the lowest index), ``emd('baseline')`` and
``pNN_drift('baseline')`` (distribution distance / signed percentile
shift against a named warehouse baseline's same-operation profile).

Determinism contract: on profile-level queries (no ``bucket``/``count``
reference), ``total_latency()`` folds the same encoded totals and
commit-log residuals the columnar merge folds, so a single-group
``SELECT total_latency()`` over some filter equals the
``Warehouse.query`` / ``ProfileSet.merged`` total for that filter
bit-for-bit — through compaction and reopen.  Bucket-level queries
estimate latency from bucket midpoints instead (the encoding carries no
per-bucket exact latency), and ``min_latency()``/``max_latency()`` are
rejected there rather than silently estimated.

Grammar (keywords case-insensitive; strings single-quoted)::

    query   := SELECT item ("," item)*
               [WHERE expr]
               [GROUP BY dim ("," dim)*]
               [ORDER BY key [ASC|DESC] ("," key [ASC|DESC])*]
               [LIMIT n]
    item    := dim | func "(" [string] ")"
    expr    := expr OR expr | expr AND expr | NOT expr | "(" expr ")"
             | dim ("=" | "!=" | "<" | "<=" | ">" | ">=") literal
             | dim [NOT] IN "(" literal ("," literal)* ")"

Malformed queries raise :class:`QueryError` (a ``ValueError``), which
the CLI reports as a clean one-line error with a nonzero exit.
"""

from __future__ import annotations

import math
import re
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple

from ..analysis.compare import earth_movers_distance
from ..core.buckets import BucketSpec, _grow_expansion
from .columnar import group_histogram

__all__ = [
    "DIMENSIONS",
    "BUCKET_DIMENSIONS",
    "SAMPLE_DIMENSIONS",
    "QueryError",
    "QueryResult",
    "SelectStatement",
    "execute_sql",
    "parse_sql",
]

#: Profile-level dimension columns, in canonical order.
DIMENSIONS = ("source", "layer", "op", "epoch", "epoch_end", "tier")

#: Extra columns available when the query drills into buckets.
BUCKET_DIMENSIONS = ("bucket", "count")

#: Columns that switch the scan to wait-state sample segments.
SAMPLE_DIMENSIONS = ("state", "wait_site", "samples")

_STRING_DIMS = frozenset(("source", "layer", "op", "state", "wait_site"))
_ALL_DIMS = frozenset(DIMENSIONS) | frozenset(BUCKET_DIMENSIONS) \
    | frozenset(SAMPLE_DIMENSIONS)

#: Zero-argument aggregates (name only); percentile forms are parsed
#: structurally (``p<NN>`` / ``p<NN>_drift``).
_PLAIN_AGGS = frozenset(("count", "total_latency", "mean_latency",
                         "min_latency", "max_latency", "peak_bucket"))
_PERCENTILE_RE = re.compile(r"p(\d+(?:\.\d+)?)(_drift)?\Z")


class QueryError(ValueError):
    """A malformed or unsupported SQL query (clean CLI error, exit 1)."""


@dataclass(frozen=True)
class SelectItem:
    """One projected column: a dimension or an aggregate call."""

    kind: str                       #: ``dim`` or ``agg``
    name: str                       #: dimension or function name
    q: Optional[float] = None       #: percentile (``pNN`` forms)
    baseline: Optional[str] = None  #: baseline argument, if any

    @property
    def label(self) -> str:
        if self.kind == "dim":
            return self.name
        if self.baseline is not None:
            return f"{self.name}('{self.baseline}')"
        return f"{self.name}()"


@dataclass
class SelectStatement:
    """A parsed query, ready for :func:`execute_sql`."""

    items: List[SelectItem]
    where: Optional[tuple] = None
    group_by: List[str] = field(default_factory=list)
    order_by: List[Tuple[SelectItem, bool]] = field(default_factory=list)
    limit: Optional[int] = None


@dataclass
class QueryResult:
    """Column labels plus result rows (lists of str/int/float/None)."""

    columns: List[str]
    rows: List[List]

    def as_dict(self) -> Dict:
        return {"columns": list(self.columns),
                "rows": [list(r) for r in self.rows]}


# -- lexing -------------------------------------------------------------------

_TOKEN_RE = re.compile(r"""
    (?P<ws>\s+)
  | (?P<number>\d+(?:\.\d+)?)
  | (?P<ident>[A-Za-z_][A-Za-z0-9_]*(?:\.\d+)?)
  | (?P<string>'[^']*')
  | (?P<op><=|>=|!=|<>|=|<|>)
  | (?P<punct>[(),])
""", re.VERBOSE)


def _tokenize(text: str) -> List[Tuple[str, str, int]]:
    tokens = []
    pos = 0
    while pos < len(text):
        m = _TOKEN_RE.match(text, pos)
        if m is None:
            raise QueryError(
                f"unexpected character {text[pos]!r} at position {pos}")
        if m.lastgroup != "ws":
            tokens.append((m.lastgroup, m.group(), pos))
        pos = m.end()
    return tokens


class _Parser:
    def __init__(self, text: str):
        self.text = text
        self.tokens = _tokenize(text)
        self.pos = 0

    # -- token plumbing ------------------------------------------------------

    def _peek(self) -> Optional[Tuple[str, str, int]]:
        return self.tokens[self.pos] if self.pos < len(self.tokens) else None

    def _next(self) -> Tuple[str, str, int]:
        tok = self._peek()
        if tok is None:
            raise QueryError("unexpected end of query")
        self.pos += 1
        return tok

    def _at_keyword(self, *words: str) -> bool:
        tok = self._peek()
        return (tok is not None and tok[0] == "ident"
                and tok[1].lower() in words)

    def _expect_keyword(self, word: str) -> None:
        tok = self._next()
        if tok[0] != "ident" or tok[1].lower() != word:
            raise QueryError(
                f"expected {word.upper()} at position {tok[2]}, "
                f"got {tok[1]!r}")

    def _expect_punct(self, char: str) -> None:
        tok = self._next()
        if tok[0] != "punct" or tok[1] != char:
            raise QueryError(
                f"expected {char!r} at position {tok[2]}, got {tok[1]!r}")

    # -- grammar -------------------------------------------------------------

    def parse(self) -> SelectStatement:
        self._expect_keyword("select")
        items = [self._select_item()]
        while self._peek() is not None and self._peek()[1] == ",":
            self._next()
            items.append(self._select_item())
        stmt = SelectStatement(items=items)
        if self._at_keyword("where"):
            self._next()
            stmt.where = self._or_expr()
        if self._at_keyword("group"):
            self._next()
            self._expect_keyword("by")
            stmt.group_by.append(self._dimension())
            while self._peek() is not None and self._peek()[1] == ",":
                self._next()
                stmt.group_by.append(self._dimension())
        if self._at_keyword("order"):
            self._next()
            self._expect_keyword("by")
            stmt.order_by.append(self._order_key())
            while self._peek() is not None and self._peek()[1] == ",":
                self._next()
                stmt.order_by.append(self._order_key())
        if self._at_keyword("limit"):
            self._next()
            tok = self._next()
            if tok[0] != "number" or "." in tok[1]:
                raise QueryError(
                    f"LIMIT expects a non-negative integer, got {tok[1]!r}")
            stmt.limit = int(tok[1])
        tok = self._peek()
        if tok is not None:
            raise QueryError(
                f"unexpected trailing input at position {tok[2]}: "
                f"{tok[1]!r}")
        return stmt

    def _dimension(self) -> str:
        tok = self._next()
        if tok[0] != "ident":
            raise QueryError(
                f"expected a column name at position {tok[2]}, "
                f"got {tok[1]!r}")
        name = tok[1].lower()
        if name not in _ALL_DIMS:
            raise QueryError(
                f"unknown column {tok[1]!r} (columns: "
                f"{', '.join(DIMENSIONS + BUCKET_DIMENSIONS + SAMPLE_DIMENSIONS)})")
        return name

    def _select_item(self) -> SelectItem:
        tok = self._next()
        if tok[0] != "ident":
            raise QueryError(
                f"expected a column or aggregate at position {tok[2]}, "
                f"got {tok[1]!r}")
        name = tok[1].lower()
        nxt = self._peek()
        if nxt is not None and nxt[1] == "(":
            self._next()
            baseline = None
            if self._peek() is not None and self._peek()[0] == "string":
                baseline = self._next()[1][1:-1]
            self._expect_punct(")")
            return self._aggregate(name, baseline, tok[2])
        if name not in _ALL_DIMS:
            raise QueryError(
                f"unknown column {tok[1]!r} (columns: "
                f"{', '.join(DIMENSIONS + BUCKET_DIMENSIONS + SAMPLE_DIMENSIONS)}; "
                f"aggregates are called, e.g. p99())")
        return SelectItem(kind="dim", name=name)

    def _aggregate(self, name: str, baseline: Optional[str],
                   pos: int) -> SelectItem:
        q = None
        drift = False
        if name not in _PLAIN_AGGS and name != "emd":
            m = _PERCENTILE_RE.match(name)
            if m is None:
                raise QueryError(
                    f"unknown aggregate {name!r} at position {pos} "
                    f"(have: count, total_latency, mean_latency, "
                    f"min_latency, max_latency, pNN, pNN_drift, "
                    f"peak_bucket, emd)")
            q = float(m.group(1))
            if not 0 < q < 100:
                raise QueryError(
                    f"percentile {name!r} out of range (0, 100)")
            drift = bool(m.group(2))
            name = f"p{q:g}_drift" if drift else f"p{q:g}"
        needs_baseline = drift or name == "emd"
        if needs_baseline and baseline is None:
            raise QueryError(
                f"{name} requires a baseline name argument, e.g. "
                f"emd('clean')")
        if not needs_baseline and baseline is not None:
            raise QueryError(f"aggregate {name}() takes no argument")
        return SelectItem(kind="agg", name=name, q=q, baseline=baseline)

    def _order_key(self) -> Tuple[SelectItem, bool]:
        item = self._select_item()
        descending = False
        if self._at_keyword("asc", "desc"):
            descending = self._next()[1].lower() == "desc"
        return item, descending

    # -- WHERE expressions ---------------------------------------------------

    def _or_expr(self) -> tuple:
        left = self._and_expr()
        while self._at_keyword("or"):
            self._next()
            left = ("or", left, self._and_expr())
        return left

    def _and_expr(self) -> tuple:
        left = self._unary_expr()
        while self._at_keyword("and"):
            self._next()
            left = ("and", left, self._unary_expr())
        return left

    def _unary_expr(self) -> tuple:
        if self._at_keyword("not"):
            self._next()
            return ("not", self._unary_expr())
        tok = self._peek()
        if tok is not None and tok[1] == "(":
            self._next()
            expr = self._or_expr()
            self._expect_punct(")")
            return expr
        return self._comparison()

    def _literal(self, dim: str):
        tok = self._next()
        if tok[0] == "number":
            value = float(tok[1]) if "." in tok[1] else int(tok[1])
            if dim in _STRING_DIMS:
                raise QueryError(
                    f"type mismatch: column {dim!r} holds strings, "
                    f"got number {tok[1]}")
            return value
        if tok[0] == "string":
            if dim not in _STRING_DIMS:
                raise QueryError(
                    f"type mismatch: column {dim!r} is numeric, "
                    f"got string {tok[1]}")
            return tok[1][1:-1]
        raise QueryError(
            f"expected a literal at position {tok[2]}, got {tok[1]!r}")

    def _comparison(self) -> tuple:
        dim = self._dimension()
        negate = False
        if self._at_keyword("not"):
            self._next()
            negate = True
        if self._at_keyword("in"):
            self._next()
            self._expect_punct("(")
            values = [self._literal(dim)]
            while self._peek() is not None and self._peek()[1] == ",":
                self._next()
                values.append(self._literal(dim))
            self._expect_punct(")")
            expr = ("in", dim, frozenset(values))
            return ("not", expr) if negate else expr
        if negate:
            raise QueryError(f"expected IN after NOT following {dim!r}")
        tok = self._next()
        if tok[0] != "op":
            raise QueryError(
                f"expected a comparison operator after {dim!r} at "
                f"position {tok[2]}, got {tok[1]!r}")
        op = "!=" if tok[1] == "<>" else tok[1]
        return ("cmp", op, dim, self._literal(dim))


def parse_sql(text: str) -> SelectStatement:
    """Parse one query; raises :class:`QueryError` on malformed input.

    Static shape checks (GROUP BY consistency, baseline aggregates
    needing ``op``, bucket-level restrictions) run here too, so a bad
    query fails before any segment is decoded.
    """
    if not text or not text.strip():
        raise QueryError("empty query")
    stmt = _Parser(text).parse()
    _validate(stmt)
    return stmt


# -- execution ----------------------------------------------------------------

_CMP = {
    "=": lambda a, b: a == b,
    "!=": lambda a, b: a != b,
    "<": lambda a, b: a < b,
    "<=": lambda a, b: a <= b,
    ">": lambda a, b: a > b,
    ">=": lambda a, b: a >= b,
}


def _eval(expr: tuple, row: Dict) -> bool:
    kind = expr[0]
    if kind == "and":
        return _eval(expr[1], row) and _eval(expr[2], row)
    if kind == "or":
        return _eval(expr[1], row) or _eval(expr[2], row)
    if kind == "not":
        return not _eval(expr[1], row)
    if kind == "in":
        return row[expr[1]] in expr[2]
    return _CMP[expr[1]](row[expr[2]], expr[3])


def _referenced_dims(expr: Optional[tuple]) -> frozenset:
    if expr is None:
        return frozenset()
    kind = expr[0]
    if kind in ("and", "or"):
        return _referenced_dims(expr[1]) | _referenced_dims(expr[2])
    if kind == "not":
        return _referenced_dims(expr[1])
    if kind == "in":
        return frozenset((expr[1],))
    return frozenset((expr[2],))


class _GroupState:
    """Accumulated merge state of one result group."""

    __slots__ = ("key", "nops", "partials", "counts", "mn", "mx", "est")

    def __init__(self, key: tuple):
        self.key = key
        self.nops = 0
        self.partials: List[float] = []
        self.counts: Dict[int, int] = {}
        self.mn: Optional[float] = None
        self.mx: Optional[float] = None
        self.est = 0.0  # bucket-midpoint latency estimate

    def percentile_bucket(self, q: float) -> Optional[int]:
        if self.nops == 0:
            return None
        target = q / 100.0 * self.nops
        cum = 0
        for b in sorted(self.counts):
            cum += self.counts[b]
            if cum >= target:
                return b
        return max(self.counts)

    def peak_bucket(self) -> Optional[int]:
        if not self.counts:
            return None
        best = None
        best_count = -1
        for b in sorted(self.counts):
            if self.counts[b] > best_count:
                best, best_count = b, self.counts[b]
        return best


def _validate(stmt: SelectStatement) -> Tuple[bool, bool, bool]:
    """Static checks; returns ``(has_aggregates, bucket_level,
    sample_level)``."""
    has_agg = any(item.kind == "agg" for item in stmt.items)
    order_items = [item for item, _ in stmt.order_by]
    referenced = set(item.name for item in stmt.items if item.kind == "dim")
    referenced |= set(item.name for item in order_items
                      if item.kind == "dim")
    referenced |= set(stmt.group_by)
    referenced |= _referenced_dims(stmt.where)
    bucket_level = bool(referenced & set(BUCKET_DIMENSIONS))
    sample_level = bool(referenced & set(SAMPLE_DIMENSIONS))
    if sample_level and bucket_level:
        raise QueryError(
            "bucket/count and state/wait_site/samples columns scan "
            "different segment families; query them separately")
    agg_items = [i for i in stmt.items + order_items if i.kind == "agg"]
    if sample_level:
        for item in agg_items:
            if item.name != "count":
                raise QueryError(
                    f"{item.label} needs latency profiles and is "
                    f"unavailable over sample columns "
                    f"(state/wait_site/samples); count() sums samples")
    if stmt.group_by:
        for item in stmt.items:
            if item.kind == "dim" and item.name not in stmt.group_by:
                raise QueryError(
                    f"column {item.name!r} must appear in GROUP BY or "
                    f"inside an aggregate")
        for item in order_items:
            if item.kind == "dim" and item.name not in stmt.group_by:
                raise QueryError(
                    f"ORDER BY column {item.name!r} must appear in "
                    f"GROUP BY or inside an aggregate")
    elif has_agg:
        bare = [i.name for i in stmt.items if i.kind == "dim"]
        if bare:
            raise QueryError(
                f"column {bare[0]!r} must appear in GROUP BY or inside "
                f"an aggregate")
    else:
        for item in order_items:
            if item.kind == "agg":
                raise QueryError(
                    "ORDER BY aggregate requires GROUP BY or an "
                    "all-aggregate SELECT")
    for item in agg_items:
        if item.baseline is not None and "op" not in stmt.group_by:
            raise QueryError(
                f"{item.label} compares per operation: add op to "
                f"GROUP BY")
        if bucket_level and item.name in ("min_latency", "max_latency"):
            raise QueryError(
                f"{item.name}() is exact per profile and unavailable in "
                f"bucket-level queries (drop the bucket/count reference)")
    return has_agg, bucket_level, sample_level


def _scan_rows(warehouse, stmt: SelectStatement, bucket_level: bool,
               sample_level: bool = False):
    """Yield ``(row_dict, contribution)`` in deterministic scan order.

    *contribution* is ``(cols, i, resid_components)`` for profile-level
    rows (the exact accumulation inputs), ``(bucket, count)`` for
    bucket-level rows, or the cell's sample count for sample-level
    rows.
    """
    if sample_level:
        for source in warehouse.sources():
            for meta in warehouse.segments(source, kind="samples"):
                sprof = warehouse.load_state(meta)
                base = {"source": meta.source, "epoch": meta.epoch,
                        "epoch_end": meta.epoch_end, "tier": meta.tier}
                for (state, layer, op, site), count in sprof:
                    row = dict(base)
                    row["layer"] = layer
                    row["op"] = op
                    row["state"] = state
                    row["wait_site"] = site
                    row["samples"] = count
                    if stmt.where is None or _eval(stmt.where, row):
                        yield row, count
        return
    spec: Optional[BucketSpec] = None
    for source in warehouse.sources():
        for meta in warehouse.segments(source):
            cols = warehouse.load_columns(meta)
            if spec is None:
                spec = BucketSpec(cols.resolution)
            elif cols.resolution != spec.resolution:
                raise QueryError(
                    "segments disagree on bucket resolution; query "
                    "them separately")
            resid = dict(meta.resid)
            base = {"source": meta.source, "epoch": meta.epoch,
                    "epoch_end": meta.epoch_end, "tier": meta.tier}
            for i, operation in enumerate(cols.ops):
                row = dict(base)
                row["op"] = operation
                row["layer"] = cols.layers[i]
                if not bucket_level:
                    if stmt.where is None or _eval(stmt.where, row):
                        yield row, (cols, i, resid.get(operation))
                    continue
                a, b = cols.row_start[i], cols.row_start[i + 1]
                for j in range(a, b):
                    brow = dict(row)
                    brow["bucket"] = cols.bucket_ids[j]
                    brow["count"] = cols.bucket_counts[j]
                    if stmt.where is None or _eval(stmt.where, brow):
                        yield brow, (cols.bucket_ids[j],
                                     cols.bucket_counts[j])


def _spec_of(warehouse) -> BucketSpec:
    for source in warehouse.sources():
        for meta in warehouse.segments(source):
            return BucketSpec(warehouse.load_columns(meta).resolution)
    return BucketSpec()


def _aggregate_value(item: SelectItem, group: _GroupState,
                     spec: BucketSpec, bucket_level: bool,
                     baselines: Dict[str, Dict], group_op: Optional[str]):
    name = item.name
    if name == "count":
        return group.nops
    if name == "total_latency":
        return group.est if bucket_level else math.fsum(group.partials)
    if name == "mean_latency":
        if group.nops == 0:
            return 0.0
        total = group.est if bucket_level else math.fsum(group.partials)
        return total / group.nops
    if name == "min_latency":
        return group.mn
    if name == "max_latency":
        return group.mx
    if name == "peak_bucket":
        return group.peak_bucket()
    if name.startswith("p") and item.baseline is None:
        b = group.percentile_bucket(item.q)
        return None if b is None else spec.mid(b)
    # Baseline-relative aggregates: compare against the named
    # baseline's profile for this group's operation.
    profiles = baselines[item.baseline]
    ref = profiles.get(group_op)
    if ref is None:
        return None
    if name == "emd":
        return earth_movers_distance(
            group_histogram(group.counts, spec), ref.histogram)
    b = group.percentile_bucket(item.q)
    if b is None:
        return None
    ref_state = _GroupState(())
    ref_state.counts = ref.histogram.counts()
    ref_state.nops = ref.histogram.total_ops
    rb = ref_state.percentile_bucket(item.q)
    if rb is None:
        return None
    return spec.mid(b) - spec.mid(rb)


def execute_sql(warehouse, query) -> QueryResult:
    """Run one query (text or parsed statement) against a warehouse.

    Scans the live segments through the warehouse's decoded-columns
    cache, so repeated analytics over an unchanged warehouse never
    re-decode.  Raises :class:`QueryError` for malformed or statically
    invalid queries and ``WarehouseError`` for a missing baseline.
    """
    stmt = parse_sql(query) if isinstance(query, str) else query
    has_agg, bucket_level, sample_level = _validate(stmt)
    labels = [item.label for item in stmt.items]

    baselines: Dict[str, Dict] = {}
    for item in stmt.items + [it for it, _ in stmt.order_by]:
        if item.kind == "agg" and item.baseline is not None \
                and item.baseline not in baselines:
            pset = warehouse.load_baseline(item.baseline)
            baselines[item.baseline] = {p.operation: p for p in pset}

    spec = BucketSpec() if sample_level else _spec_of(warehouse)
    grouped = has_agg or bool(stmt.group_by)
    if not grouped:
        rows = []
        sort_keys = []
        for row, _ in _scan_rows(warehouse, stmt, bucket_level,
                                 sample_level):
            rows.append([row[item.name] for item in stmt.items])
            sort_keys.append([row[item.name]
                              for item, _ in stmt.order_by])
        if stmt.order_by:
            rows = _ordered(sort_keys, rows, stmt)
        if stmt.limit is not None:
            rows = rows[:stmt.limit]
        return QueryResult(columns=labels, rows=rows)

    groups: Dict[tuple, _GroupState] = {}
    if not stmt.group_by:
        # One implicit group, present even over an empty scan — so
        # SELECT count() on an empty warehouse answers 0, not nothing.
        groups[()] = _GroupState(())
    for row, contribution in _scan_rows(warehouse, stmt, bucket_level,
                                        sample_level):
        key = tuple(row[d] for d in stmt.group_by)
        group = groups.get(key)
        if group is None:
            group = groups[key] = _GroupState(key)
        if sample_level:
            # count() over sample rows sums the samples column.
            group.nops += contribution
        elif bucket_level:
            bucket, count = contribution
            group.nops += count
            group.counts[bucket] = group.counts.get(bucket, 0) + count
            group.est += spec.mid(bucket) * count
        else:
            cols, i, components = contribution
            group.nops += cols.total_ops[i]
            _grow_expansion(group.partials, cols.enc_total[i])
            if components:
                for c in components:
                    _grow_expansion(group.partials, c)
            for j in range(cols.row_start[i], cols.row_start[i + 1]):
                b = cols.bucket_ids[j]
                group.counts[b] = group.counts.get(b, 0) \
                    + cols.bucket_counts[j]
            mn, mx = cols.mins[i], cols.maxs[i]
            if mn is not None and (group.mn is None or mn < group.mn):
                group.mn = mn
            if mx is not None and (group.mx is None or mx > group.mx):
                group.mx = mx

    def value_of(item: SelectItem, group: _GroupState):
        if item.kind == "dim":
            return group.key[stmt.group_by.index(item.name)]
        group_op = group.key[stmt.group_by.index("op")] \
            if "op" in stmt.group_by else None
        return _aggregate_value(item, group, spec, bucket_level,
                                baselines, group_op)

    ordered_keys = sorted(groups)
    rows = []
    sort_keys = []
    for key in ordered_keys:
        group = groups[key]
        rows.append([value_of(item, group) for item in stmt.items])
        sort_keys.append([value_of(item, group)
                          for item, _ in stmt.order_by])
    if stmt.order_by:
        rows = _ordered(sort_keys, rows, stmt)
    if stmt.limit is not None:
        rows = rows[:stmt.limit]
    return QueryResult(columns=labels, rows=rows)


def _ordered(sort_keys: List[List], rows: List[List],
             stmt: SelectStatement) -> List[List]:
    """Stable multi-key sort; None sorts last regardless of direction."""
    indexed = list(range(len(rows)))
    for pos in range(len(stmt.order_by) - 1, -1, -1):
        _, descending = stmt.order_by[pos]

        def keyfn(i, pos=pos, descending=descending):
            v = sort_keys[i][pos]
            return (v is None, v)

        none_last = sorted(
            (i for i in indexed if sort_keys[i][pos] is not None),
            key=keyfn, reverse=descending)
        nones = [i for i in indexed if sort_keys[i][pos] is None]
        indexed = none_last + nones
    return [rows[i] for i in indexed]

"""The durable profile warehouse: segment files + commit log + index.

On-disk layout under one root directory (see ``docs/WAREHOUSE.md``)::

    wal.log                        append-only commit journal
    segments/<source>/tN-<epoch>-<id>.ospb   one ProfileSet.to_bytes()
    baselines/<name>.ospb          named reference profiles

Everything mutable goes through a write-then-commit discipline: the
segment payload lands first via atomic rename, then one log record
commits it.  The index is rebuilt from the log on every open, so the
warehouse recovers from a crash at any instant — an uncommitted file is
an orphan (swept by :meth:`Warehouse.gc`), a committed one is fully
visible, and nothing in between exists.

Determinism is inherited from the codec and the shard-merge rules:
segment payloads are canonical ``ProfileSet.to_bytes()`` encodings,
compaction merges groups in ``(epoch, seg_id)`` order with
:meth:`ProfileSet.merged`, and queries merge selected segments the same
way — so ``query()`` over compacted history is byte-identical to the
same query over the raw segments it replaced.
"""

from __future__ import annotations

import os
import re
import threading
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional

from ..core import durable
from ..core.faults import FaultPlan
from ..core.profileset import ProfileSet
from ..sampling.stateprofile import StateProfile
from .columnar import ColumnarSegment, merged_profile_set
from .index import SegmentMeta, WarehouseIndex
from .log import SegmentLog
from .tiers import CompactionGroup, CompactionPolicy, plan_compactions, \
    plan_gc

__all__ = ["ScrubReport", "Warehouse", "WarehouseError"]

#: Query/compaction engines: ``columnar`` (the default) decodes
#: segments once into flat column arrays and merges those; ``legacy``
#: is the original per-segment ProfileSet decode + dict merge, kept as
#: the benchmark baseline and the reference the property tests compare
#: against.  Both produce byte-identical results.
ENGINES = ("columnar", "legacy")

_NAME_RE = re.compile(r"[A-Za-z0-9][A-Za-z0-9._-]{0,63}\Z")
_SUFFIX = ".ospb"


class WarehouseError(ValueError):
    """A warehouse-level failure: bad name, missing segment, damage."""


#: Suffix a scrub appends when it moves a damaged segment file aside.
#: ``<file>.ospb.quarantined`` no longer matches the ``*.ospb`` sweep
#: glob, so forensics evidence survives gc until a repair removes it.
_QUARANTINE_SUFFIX = ".quarantined"


@dataclass
class ScrubReport:
    """What one :meth:`Warehouse.scrub` pass saw and did."""

    scanned: int = 0          #: live segment files verified
    corrupt: int = 0          #: files that failed verification
    repaired: int = 0         #: files restored byte-identically
    journal_records: int = 0  #: CRC-good commit-log records
    journal_bad_bytes: int = 0  #: distrusted journal tail, in bytes
    issues: List[str] = field(default_factory=list)

    @property
    def clean(self) -> bool:
        """No unrepaired damage anywhere (the exit-0 condition)."""
        return self.corrupt == self.repaired \
            and self.journal_bad_bytes == 0


def _check_name(kind: str, name: str) -> str:
    if not _NAME_RE.match(name or ""):
        raise WarehouseError(
            f"bad {kind} name {name!r}: use 1-64 characters from "
            f"[A-Za-z0-9._-], not starting with a separator")
    return name


def _filtered(pset: ProfileSet, layer: Optional[str],
              op: Optional[str]) -> ProfileSet:
    """Restrict a set to one layer and/or operation (canonical copy)."""
    if layer is None and op is None:
        return pset
    out = ProfileSet(spec=pset.spec)
    for prof in pset:
        if op is not None and prof.operation != op:
            continue
        if layer is not None and prof.layer != layer:
            continue
        out.insert(prof.copy())
    return out


class Warehouse:
    """Durable, append-only, queryable store of closed profile segments.

    Thread-safe for one process (a single lock over index + log, like
    the service's store lock); multi-process writers are out of scope —
    the service owns its warehouse directory.  ``fault_plan`` arms the
    ``warehouse.ingest``/``warehouse.compact`` crash sites for the
    crash-safety tests.
    """

    def __init__(self, root, policy: Optional[CompactionPolicy] = None,
                 fault_plan: Optional[FaultPlan] = None,
                 engine: str = "columnar", mirror_dir=None):
        if engine not in ENGINES:
            raise WarehouseError(
                f"unknown warehouse engine {engine!r} "
                f"(choose from {', '.join(ENGINES)})")
        self.root = Path(root)
        self.policy = policy if policy is not None else CompactionPolicy()
        self.engine = engine
        self._plan = fault_plan if fault_plan is not None else FaultPlan()
        self._fault_attempts: Dict[str, int] = {}
        self._lock = threading.Lock()
        durable.ensure_dir(self.root / "segments")
        durable.ensure_dir(self.root / "baselines")
        #: Optional second tree double-committed with every segment
        #: payload: primary file, then mirror file, then the one log
        #: record — so a committed record implies both copies landed,
        #: and ``scrub(repair=True)`` can restore quarantined primaries
        #: byte-identically.
        self.mirror = Path(mirror_dir) if mirror_dir is not None else None
        if self.mirror is not None:
            durable.ensure_dir(self.mirror / "segments")
        self.log = SegmentLog(self.root / "wal.log")
        self.index = WarehouseIndex()
        for record in self.log.recover():
            self.index.apply(record)
        self.orphans_removed = 0  #: uncommitted files swept by gc()
        # Scrub counters (exported by the service metrics page).
        self.scrub_scanned_total = 0
        self.scrub_corrupt_total = 0
        self.scrub_repaired_total = 0
        # Decoded-columns cache: seg_id -> ColumnarSegment.  Segment
        # files are immutable once committed, but a hit still re-reads
        # the 4-byte codec trailer and compares it against the cached
        # entry's CRC, so a file swapped or damaged underneath us is
        # decoded (and CRC-checked) afresh instead of served stale.
        # Entries die with their segment: compaction supersede and gc
        # eviction both invalidate.
        self._columns: Dict[int, ColumnarSegment] = {}
        self.cache_hits_total = 0
        self.cache_misses_total = 0

    # -- counters (exported by the service metrics page) --------------------

    @property
    def segments_total(self) -> int:
        return self.index.segments_total

    @property
    def compactions_total(self) -> int:
        return self.index.compactions_total

    @property
    def gc_evictions_total(self) -> int:
        return self.index.gc_evictions_total

    # -- plumbing ------------------------------------------------------------

    def _fire(self, site: str, key: str) -> None:
        # One ordinal stream per site, shared across keys, so a plan can
        # target e.g. "the crash window of the 3rd ingest".
        attempt = self._fault_attempts.get(site, 0)
        self._fault_attempts[site] = attempt + 1
        self._plan.fire(site, key=key, attempt=attempt)

    def _write_atomic(self, rel: str, payload: bytes) -> None:
        durable.write_atomic(self.root / rel, payload)

    def _write_segment(self, rel: str, payload: bytes) -> None:
        """Land one segment payload: primary tree, then mirror copy."""
        durable.write_atomic(self.root / rel, payload)
        if self.mirror is not None:
            durable.write_atomic(self.mirror / rel, payload)

    def _segment_file(self, source: str, tier: int, epoch: int,
                      seg_id: int) -> str:
        return (f"segments/{source}/t{tier}-{epoch:012d}-"
                f"{seg_id:08d}{_SUFFIX}")

    def _commit(self, meta: SegmentMeta, payload: bytes, site: str,
                inputs: tuple = ()) -> SegmentMeta:
        """The two-step commit shared by ingest and compaction."""
        self._write_segment(meta.file, payload)
        self._fire(site, "after-file")
        record = meta.to_record(inputs=tuple(m.seg_id for m in inputs))
        self.log.append(record)
        self._fire(site, "after-log")
        self.index.apply(record)
        return meta

    # -- ingestion -----------------------------------------------------------

    def ingest(self, source: str, pset: ProfileSet,
               epoch: Optional[int] = None) -> SegmentMeta:
        """Persist one closed segment for *source* at *epoch* (tier 0).

        ``epoch=None`` appends after everything already stored for the
        source.  Multiple segments may share an epoch (concurrent
        collectors); queries merge them.  Returns the committed meta.
        """
        return self.ingest_many(source, [(pset, epoch)])[0]

    def ingest_many(self, source: str, items) -> List[SegmentMeta]:
        """Persist a batch of ``(pset, epoch)`` segments with one commit.

        The write-then-commit discipline holds batch-wide: every
        segment file lands first (atomic rename each), then all commit
        records are journaled through
        :meth:`~repro.warehouse.log.SegmentLog.append_many` — one fsync
        for the whole batch, which is what lets the service flush many
        closed segments per durable write under fleet-scale ingest.  A
        crash mid-batch commits a prefix of the records (each line is
        CRC-framed) and leaves the rest as orphan files for
        :meth:`gc`, exactly the single-ingest crash contract.
        ``epoch=None`` entries append after everything stored, in batch
        order.  Returns the committed metas, batch order.
        """
        _check_name("source", source)
        with self._lock:
            metas: List[SegmentMeta] = []
            payloads: List[bytes] = []
            next_epoch = None
            for offset, (pset, epoch) in enumerate(items):
                if epoch is None:
                    if next_epoch is None:
                        next_epoch = self.index.next_epoch(source)
                    epoch = next_epoch
                    next_epoch += 1
                else:
                    epoch = int(epoch)
                    next_epoch = max(next_epoch, epoch + 1) \
                        if next_epoch is not None else epoch + 1
                if epoch < 0:
                    raise WarehouseError(f"negative epoch {epoch}")
                seg_id = self.index.next_id + offset
                payload = pset.to_bytes()
                resid = []
                for prof in pset:
                    components = prof.histogram.latency_residual()
                    if components:
                        resid.append((prof.operation, tuple(components)))
                metas.append(SegmentMeta(
                    seg_id=seg_id, source=source, tier=0, epoch=epoch,
                    span=1,
                    file=self._segment_file(source, 0, epoch, seg_id),
                    nbytes=len(payload),
                    ops=tuple(sorted((prof.layer, prof.operation)
                                     for prof in pset)),
                    resid=tuple(sorted(resid)),
                    crc=int.from_bytes(payload[-4:], "little")))
                payloads.append(payload)
            for meta, payload in zip(metas, payloads):
                self._write_segment(meta.file, payload)
                self._fire("warehouse.ingest", "after-file")
            records = [meta.to_record(inputs=()) for meta in metas]
            self.log.append_many(records)
            self._fire("warehouse.ingest", "after-log")
            for record in records:
                self.index.apply(record)
            return metas

    def ingest_state(self, source: str, sprof: StateProfile,
                     epoch: Optional[int] = None) -> SegmentMeta:
        """Persist one wait-state sample segment (kind ``"samples"``).

        Sample segments live beside latency segments under the same
        source — same directory, same commit discipline, same scrub
        coverage — but carry :class:`StateProfile` payloads and a
        ``kind="samples"`` journal mark, so latency queries, compaction
        and retention never see them.  ``epoch=None`` appends after
        everything stored for the source (either family).
        """
        _check_name("source", source)
        with self._lock:
            epoch = self.index.next_epoch(source) if epoch is None \
                else int(epoch)
            if epoch < 0:
                raise WarehouseError(f"negative epoch {epoch}")
            seg_id = self.index.next_id
            payload = sprof.to_bytes()
            ops = sorted({(layer, op)
                          for (_state, layer, op, _site) in sprof.cells()})
            meta = SegmentMeta(
                seg_id=seg_id, source=source, tier=0, epoch=epoch,
                span=1,
                file=self._segment_file(source, 0, epoch, seg_id),
                nbytes=len(payload), ops=tuple(ops),
                crc=int.from_bytes(payload[-4:], "little"),
                kind="samples")
            return self._commit(meta, payload, "warehouse.ingest_state")

    # -- reading -------------------------------------------------------------

    def load_segment(self, meta: SegmentMeta) -> ProfileSet:
        """Decode one committed segment (CRC enforced by the codec)."""
        if meta.kind != "profile":
            raise WarehouseError(
                f"segment {meta.seg_id} holds {meta.kind!r}, not a "
                f"latency profile (use load_state)")
        path = self.root / meta.file
        try:
            data = path.read_bytes()
        except FileNotFoundError:
            raise WarehouseError(
                f"committed segment {meta.seg_id} missing on disk: "
                f"{meta.file}") from None
        try:
            pset = ProfileSet.from_bytes(data)
        except ValueError as exc:
            raise WarehouseError(
                f"segment {meta.seg_id} ({meta.file}) damaged: {exc}") \
                from None
        # Restore what the codec's one-float64-per-total rounding
        # dropped at commit time, so merges over this segment stay
        # sum-exact (see SegmentMeta.resid).
        for op, components in meta.resid:
            prof = pset.get(op)
            if prof is not None:
                prof.histogram.correct_total_latency(components)
        return pset

    def _trailer_crc(self, meta: SegmentMeta) -> int:
        """The stored CRC-32 trailer of a segment file (4-byte read)."""
        path = self.root / meta.file
        try:
            with open(path, "rb") as f:
                f.seek(-4, os.SEEK_END)
                trailer = f.read(4)
        except (FileNotFoundError, OSError):
            raise WarehouseError(
                f"committed segment {meta.seg_id} missing on disk: "
                f"{meta.file}") from None
        if len(trailer) != 4:
            raise WarehouseError(
                f"segment {meta.seg_id} ({meta.file}) damaged: "
                f"truncated binary profile: missing trailer")
        return int.from_bytes(trailer, "little")

    def load_columns(self, meta: SegmentMeta) -> ColumnarSegment:
        """Columnar decode of one committed segment, through the cache.

        A hit is validated against the file's CRC trailer (cache key =
        segment id + CRC); a miss — or a trailer that no longer matches
        the cached entry — reads and decodes the file, CRC enforced.
        """
        cached = self._columns.get(meta.seg_id)
        if cached is not None and cached.crc == self._trailer_crc(meta):
            self.cache_hits_total += 1
            return cached
        path = self.root / meta.file
        try:
            data = path.read_bytes()
        except FileNotFoundError:
            raise WarehouseError(
                f"committed segment {meta.seg_id} missing on disk: "
                f"{meta.file}") from None
        try:
            cols = ColumnarSegment.from_bytes(data)
        except ValueError as exc:
            raise WarehouseError(
                f"segment {meta.seg_id} ({meta.file}) damaged: {exc}") \
                from None
        self._columns[meta.seg_id] = cols
        self.cache_misses_total += 1
        return cols

    def _invalidate_columns(self, metas) -> None:
        for meta in metas:
            self._columns.pop(meta.seg_id, None)

    def load_state(self, meta: SegmentMeta) -> StateProfile:
        """Decode one committed wait-state sample segment."""
        if meta.kind != "samples":
            raise WarehouseError(
                f"segment {meta.seg_id} holds {meta.kind!r}, not "
                f"wait-state samples (use load_segment)")
        path = self.root / meta.file
        try:
            data = path.read_bytes()
        except FileNotFoundError:
            raise WarehouseError(
                f"committed segment {meta.seg_id} missing on disk: "
                f"{meta.file}") from None
        try:
            return StateProfile.from_bytes(data)
        except ValueError as exc:
            raise WarehouseError(
                f"segment {meta.seg_id} ({meta.file}) damaged: {exc}") \
                from None

    def sources(self) -> List[str]:
        with self._lock:
            return self.index.sources()

    def segments(self, source: Optional[str] = None,
                 kind: Optional[str] = "profile") -> List[SegmentMeta]:
        """Live segment metas (all sources, or one), epoch order.

        ``kind`` defaults to latency segments; pass ``"samples"`` for
        the sampling family or ``None`` for every live segment.
        """
        with self._lock:
            sources = [source] if source is not None \
                else self.index.sources()
            out: List[SegmentMeta] = []
            for src in sources:
                out.extend(self.index.select(src, kind=kind))
            return out

    def query(self, source: str, layer: Optional[str] = None,
              op: Optional[str] = None, t0: Optional[int] = None,
              t1: Optional[int] = None) -> ProfileSet:
        """Merge everything stored for *source* in base epochs [t0, t1].

        A segment participates if its epoch window *intersects* the
        range, so over compacted history the effective bounds widen to
        the containing tier windows — time resolution coarsens with
        age, latency resolution never does.  The result is canonical
        (empty name, no attributes), byte-comparable with
        :meth:`ProfileSet.merged` over the equivalent raw segments.
        """
        with self._lock:
            metas = self.index.select(source, layer=layer, op=op,
                                      t0=t0, t1=t1)
            if self.engine == "columnar":
                pairs = [(self.load_columns(meta), meta) for meta in metas]
        if self.engine == "columnar":
            return merged_profile_set(
                ((cols, dict(meta.resid)) for cols, meta in pairs),
                layer=layer, op=op)
        psets = [_filtered(self.load_segment(meta), layer, op)
                 for meta in metas]
        return ProfileSet.merged(psets)

    def query_states(self, source: str, t0: Optional[int] = None,
                     t1: Optional[int] = None) -> StateProfile:
        """Merge the wait-state samples stored for *source* in [t0, t1].

        The sampling-family counterpart of :meth:`query`: cell counts
        add across segments in ``(epoch, seg_id)`` order, so the result
        is canonical and byte-comparable against
        :meth:`StateProfile.merged` over the same captures.
        """
        with self._lock:
            metas = self.index.select(source, t0=t0, t1=t1,
                                      kind="samples")
        return StateProfile.merged(self.load_state(meta)
                                   for meta in metas)

    def recent_psets(self, source: str, count: int) -> List[ProfileSet]:
        """The last *count* non-empty segments, oldest first.

        This is the service's warm-start path: the differential
        alerter's rolling baseline is seeded from stored history
        instead of starting blind after a restart.
        """
        if count < 1:
            return []
        with self._lock:
            metas = self.index.select(source)
        out: List[ProfileSet] = []
        for meta in reversed(metas):
            pset = self.load_segment(meta)
            if len(pset):
                out.append(pset)
                if len(out) == count:
                    break
        out.reverse()
        return out

    # -- compaction & retention ----------------------------------------------

    def compact(self, source: Optional[str] = None) -> List[SegmentMeta]:
        """Promote aged segments into coarser tiers; never drops data.

        Runs planning rounds until a fixpoint, so a long-idle warehouse
        catches up in one call (tier-0 -> 1 outputs that are themselves
        aged immediately continue to tier 2).  Returns the new
        super-segment metas.
        """
        created: List[SegmentMeta] = []
        with self._lock:
            sources = [source] if source is not None \
                else self.index.sources()
            for src in sources:
                while True:
                    groups = plan_compactions(self.index, src, self.policy)
                    if not groups:
                        break
                    for group in groups:
                        created.append(self._compact_group(group))
        return created

    def _compact_group(self, group: CompactionGroup) -> SegmentMeta:
        # Lock held.  Merge order is pinned by the plan's (epoch,
        # seg_id) sort, so equal histories compact to identical bytes.
        if self.engine == "columnar":
            merged = merged_profile_set(
                (self.load_columns(meta), dict(meta.resid))
                for meta in group.inputs)
        else:
            merged = ProfileSet.merged(
                self.load_segment(meta) for meta in group.inputs)
        payload = merged.to_bytes()
        resid = []
        for prof in merged:
            components = prof.histogram.latency_residual()
            if components:
                resid.append((prof.operation, tuple(components)))
        resid = tuple(sorted(resid))
        seg_id = self.index.next_id
        meta = SegmentMeta(
            seg_id=seg_id, source=group.source, tier=group.tier,
            epoch=group.epoch, span=self.policy.span(group.tier),
            file=self._segment_file(group.source, group.tier, group.epoch,
                                    seg_id),
            nbytes=len(payload),
            ops=tuple(sorted((prof.layer, prof.operation)
                             for prof in merged)),
            resid=resid,
            crc=int.from_bytes(payload[-4:], "little"))
        self._commit(meta, payload, "warehouse.compact",
                     inputs=group.inputs)
        self._invalidate_columns(group.inputs)
        self._sweep_dead()
        return meta

    def gc(self, source: Optional[str] = None) -> int:
        """Apply top-tier retention and sweep dead/orphan files.

        The only operation that discards committed data, and it says
        so: evictions are logged (one ``gc`` record), counted, and the
        count is returned.  Also removes files superseded by compaction
        and uncommitted orphans left by crashes.
        """
        with self._lock:
            sources = [source] if source is not None \
                else self.index.sources()
            victims: List[SegmentMeta] = []
            for src in sources:
                victims.extend(plan_gc(self.index, src, self.policy))
            if victims:
                record = {"rec": "gc",
                          "ids": sorted(m.seg_id for m in victims)}
                self.log.append(record)
                self.index.apply(record)
                self._invalidate_columns(victims)
            self._sweep_dead()
            self._sweep_orphans()
            return len(victims)

    def _sweep_dead(self) -> None:
        # Lock held.  Unlink files the log already declared dead;
        # idempotent, so a crash between commit and unlink just leaves
        # work for the next sweep.  Mirror copies die with their
        # primaries.
        for rel in list(self.index.dead_files):
            durable.unlink(self.root / rel)
            if self.mirror is not None:
                durable.unlink(self.mirror / rel)
            self.index.dead_files.discard(rel)

    def _sweep_orphans(self) -> None:
        # Lock held.  A file under segments/ that no live meta claims
        # is either committed-dead (already handled) or a crash orphan
        # whose commit record never landed — per the log it does not
        # exist, so remove it.  The mirror tree is swept by the same
        # rule, so an orphaned mirror copy cannot outlive its segment.
        live = self.index.live_files()
        roots = [self.root] if self.mirror is None \
            else [self.root, self.mirror]
        for root in roots:
            for path in (root / "segments").rglob(f"*{_SUFFIX}"):
                rel = path.relative_to(root).as_posix()
                if rel not in live and durable.unlink(path):
                    self.orphans_removed += 1

    # -- scrub & repair ------------------------------------------------------

    def _verify_payload(self, meta: SegmentMeta,
                        data: bytes) -> Optional[str]:
        """Why *data* is not the committed payload (``None`` if it is)."""
        if len(data) != meta.nbytes:
            return f"size {len(data)} != committed {meta.nbytes}"
        if meta.crc is not None and \
                int.from_bytes(data[-4:], "little") != meta.crc:
            return "CRC trailer differs from the committed record"
        decode = StateProfile.from_bytes if meta.kind == "samples" \
            else ProfileSet.from_bytes
        try:
            decode(data)
        except ValueError as exc:
            return str(exc)
        return None

    def _verify_segment(self, meta: SegmentMeta) -> Optional[str]:
        path = self.root / meta.file
        try:
            data = path.read_bytes()
        except (FileNotFoundError, OSError):
            return "missing from disk"
        return self._verify_payload(meta, data)

    def scrub(self, repair: bool = False) -> ScrubReport:
        """Re-verify every committed byte in place; optionally repair.

        Walks every live segment file and re-checks it against what the
        commit log promised — exact size, CRC-32 trailer (for records
        that carry one), and a full codec decode — plus every journal
        frame CRC.  A file that fails is *quarantined*: renamed to
        ``<file>.quarantined`` so it stops matching the sweep glob and
        survives as forensics evidence, while the damage can no longer
        be served.  With ``repair=True`` and a mirror tree attached,
        each quarantined segment is restored from its mirror copy after
        the mirror bytes pass the same verification — restoration is
        byte-identical or it does not happen.

        Counters accumulate on the instance
        (``scrub_{scanned,corrupt,repaired}_total``); the returned
        :class:`ScrubReport` covers this pass only, and
        :attr:`ScrubReport.clean` is the CLI's exit-0 condition.
        """
        report = ScrubReport()
        with self._lock:
            report.journal_records, report.journal_bad_bytes = \
                self.log.verify()
            if report.journal_bad_bytes:
                report.issues.append(
                    f"wal.log: {report.journal_bad_bytes} distrusted "
                    f"tail byte(s) after {report.journal_records} good "
                    f"record(s)")
            metas = [meta for src in self.index.sources()
                     for meta in self.index.select(src, kind=None)]
            for meta in metas:
                report.scanned += 1
                reason = self._verify_segment(meta)
                if reason is None:
                    continue
                report.corrupt += 1
                path = self.root / meta.file
                quarantined = path.with_name(
                    path.name + _QUARANTINE_SUFFIX)
                if path.exists():
                    durable.replace(path, quarantined)
                self._invalidate_columns([meta])
                detail = f"segment {meta.seg_id} ({meta.file}): {reason}"
                if repair and self.mirror is not None:
                    restored = self._restore_from_mirror(meta, quarantined)
                    if restored is None:
                        report.repaired += 1
                        report.issues.append(f"{detail} — repaired "
                                             f"from mirror")
                        continue
                    detail += f"; mirror copy unusable: {restored}"
                report.issues.append(detail)
            self.scrub_scanned_total += report.scanned
            self.scrub_corrupt_total += report.corrupt
            self.scrub_repaired_total += report.repaired
        return report

    def _restore_from_mirror(self, meta: SegmentMeta,
                             quarantined: Path) -> Optional[str]:
        # Lock held.  Returns None on success, else why the mirror copy
        # was rejected.  The mirror bytes must pass the exact checks
        # the primary just failed before they are promoted.
        mirror_path = self.mirror / meta.file
        try:
            data = mirror_path.read_bytes()
        except (FileNotFoundError, OSError):
            return "missing from mirror tree"
        reason = self._verify_payload(meta, data)
        if reason is not None:
            return reason
        durable.write_atomic(self.root / meta.file, data)
        durable.unlink(quarantined)
        return None

    # -- named baselines -----------------------------------------------------

    def _baseline_path(self, name: str) -> Path:
        return self.root / "baselines" / f"{_check_name('baseline', name)}" \
            f"{_SUFFIX}"

    def save_baseline(self, name: str, pset: ProfileSet) -> None:
        """Store a named reference profile (atomic overwrite)."""
        path = self._baseline_path(name)
        self._write_atomic(path.relative_to(self.root).as_posix(),
                           pset.to_bytes())

    def load_baseline(self, name: str) -> ProfileSet:
        path = self._baseline_path(name)
        try:
            data = path.read_bytes()
        except FileNotFoundError:
            raise WarehouseError(
                f"no baseline named {name!r} (have: "
                f"{', '.join(self.baselines()) or 'none'})") from None
        try:
            return ProfileSet.from_bytes(data)
        except ValueError as exc:
            raise WarehouseError(f"baseline {name!r} damaged: {exc}") \
                from None

    def baselines(self) -> List[str]:
        base = self.root / "baselines"
        return sorted(p.stem for p in base.glob(f"*{_SUFFIX}"))

    def remove_baseline(self, name: str) -> bool:
        return durable.unlink(self._baseline_path(name))

    def __repr__(self) -> str:
        return (f"<Warehouse {str(self.root)!r} "
                f"segments={len(self.index)} "
                f"sources={len(self.sources())}>")

"""Durable profile warehouse: segment log, tiered compaction, queries.

The continuous-profiling service keeps only a small rolling window in
memory; this package is where closed segments go to *live*.  It is the
repo's durable history layer, in the spirit of 0xtools' always-on
sampled archives:

* :mod:`repro.warehouse.log` — the append-only, CRC-framed commit
  journal; the single source of truth, replayed on every open,
* :mod:`repro.warehouse.index` — segment metadata + the
  ``(source, layer, op, epoch)`` postings map, a pure reduction of the
  log,
* :mod:`repro.warehouse.tiers` — RRD-style tier geometry: aged
  segments merge into coarser epochs, per-tier retention bounds the
  footprint,
* :mod:`repro.warehouse.warehouse` — the :class:`Warehouse` facade:
  ``ingest`` / ``query`` / ``compact`` / ``gc`` plus named baselines,
* :mod:`repro.warehouse.columnar` — the columnar segment decoder and
  merge engine: struct-packed postings decoded once into flat arrays,
  merged without intermediate :class:`~repro.core.profileset.ProfileSet`
  objects, byte-identical to the legacy path,
* :mod:`repro.warehouse.sql` — the analytics query engine behind
  ``osprof db sql``: SELECT / WHERE / GROUP BY / ORDER BY / LIMIT over
  warehouse dimensions with latency aggregates,
* :mod:`repro.warehouse.gate` — the CI regression gate: score a fresh
  capture against a stored baseline, exit nonzero on breach.

Exposed on the CLI as ``osprof db {ingest,query,sql,compact,gc,scrub,
baseline,gate}`` and wired into ``osprof serve --db``.
"""

from .columnar import ColumnarSegment, group_histogram, merged_profile_set
from .gate import (EXIT_BREACH, Breach, GateReport, Threshold,
                   evaluate_gate, parse_threshold)
from .index import SegmentMeta, WarehouseIndex
from .log import LogError, SegmentLog
from .sql import (QueryError, QueryResult, SelectStatement, execute_sql,
                  parse_sql)
from .tiers import CompactionPolicy, plan_compactions, plan_gc
from .warehouse import ENGINES, ScrubReport, Warehouse, WarehouseError

__all__ = [
    "Breach",
    "ColumnarSegment",
    "CompactionPolicy",
    "ENGINES",
    "EXIT_BREACH",
    "GateReport",
    "LogError",
    "QueryError",
    "QueryResult",
    "ScrubReport",
    "SegmentLog",
    "SegmentMeta",
    "SelectStatement",
    "Threshold",
    "Warehouse",
    "WarehouseError",
    "WarehouseIndex",
    "evaluate_gate",
    "execute_sql",
    "group_histogram",
    "merged_profile_set",
    "parse_sql",
    "parse_threshold",
    "plan_compactions",
    "plan_gc",
]

"""Durable profile warehouse: segment log, tiered compaction, queries.

The continuous-profiling service keeps only a small rolling window in
memory; this package is where closed segments go to *live*.  It is the
repo's durable history layer, in the spirit of 0xtools' always-on
sampled archives:

* :mod:`repro.warehouse.log` — the append-only, CRC-framed commit
  journal; the single source of truth, replayed on every open,
* :mod:`repro.warehouse.index` — segment metadata + the
  ``(source, layer, op, epoch)`` postings map, a pure reduction of the
  log,
* :mod:`repro.warehouse.tiers` — RRD-style tier geometry: aged
  segments merge into coarser epochs, per-tier retention bounds the
  footprint,
* :mod:`repro.warehouse.warehouse` — the :class:`Warehouse` facade:
  ``ingest`` / ``query`` / ``compact`` / ``gc`` plus named baselines,
* :mod:`repro.warehouse.gate` — the CI regression gate: score a fresh
  capture against a stored baseline, exit nonzero on breach.

Exposed on the CLI as ``osprof db {ingest,query,compact,gc,baseline,
gate}`` and wired into ``osprof serve --db``.
"""

from .gate import (EXIT_BREACH, Breach, GateReport, Threshold,
                   evaluate_gate, parse_threshold)
from .index import SegmentMeta, WarehouseIndex
from .log import LogError, SegmentLog
from .tiers import CompactionPolicy, plan_compactions, plan_gc
from .warehouse import Warehouse, WarehouseError

__all__ = [
    "Breach",
    "CompactionPolicy",
    "EXIT_BREACH",
    "GateReport",
    "LogError",
    "SegmentLog",
    "SegmentMeta",
    "Threshold",
    "Warehouse",
    "WarehouseError",
    "WarehouseIndex",
    "evaluate_gate",
    "parse_threshold",
    "plan_compactions",
    "plan_gc",
]

"""The regression gate: score a capture against a stored baseline.

This turns the paper's one-shot comparison tool into a CI artifact:
``osprof db gate`` loads a named baseline from the warehouse, scores a
fresh capture operation-by-operation with the §3.2 metrics — EMD as
the primary cross-bin metric, a bin-by-bin metric (chi-squared by
default) as the secondary — and exits nonzero when any operation
breaches a threshold.  "Did this change shift any latency profile?"
becomes a red or green check on every push.

Thresholds are ``METRIC=VALUE`` pairs over :data:`METRICS`; the
defaults were calibrated on the §6.1 llseek contention scenario, where
the contended capture scores EMD ≈ 5.4 / chi² ≈ 2.0 on ``llseek``
while every unaffected operation stays well under 0.25.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Sequence, Tuple

from ..analysis.compare import METRICS, compare
from ..core.profile import Profile
from ..core.profileset import ProfileSet

__all__ = ["EXIT_BREACH", "Threshold", "Breach", "GateReport",
           "parse_threshold", "evaluate_gate", "DEFAULT_GATE_THRESHOLDS"]

#: Exit code of a threshold breach — distinct from 1 (runtime error)
#: and 2 (usage error), so CI scripts can tell a regression from a
#: broken invocation.
EXIT_BREACH = 3


@dataclass(frozen=True)
class Threshold:
    """One gate rule: flag any operation whose *metric* score > value."""

    metric: str
    value: float

    def __post_init__(self):
        if self.metric not in METRICS:
            raise ValueError(
                f"unknown metric {self.metric!r}; choose from "
                f"{sorted(METRICS)}")
        if self.value < 0:
            raise ValueError(f"threshold must be >= 0, got {self.value}")

    def __str__(self) -> str:
        return f"{self.metric}={self.value:g}"


#: EMD primary (cross-bin), chi-squared secondary (bin-by-bin).
DEFAULT_GATE_THRESHOLDS: Tuple[Threshold, ...] = (
    Threshold("emd", 0.5), Threshold("chi_squared", 1.0))


def parse_threshold(text: str) -> Threshold:
    """Parse a ``METRIC=VALUE`` CLI argument into a :class:`Threshold`."""
    metric, sep, raw = text.partition("=")
    if not sep or not metric or not raw:
        raise ValueError(
            f"bad threshold {text!r}: expected METRIC=VALUE, e.g. emd=0.5")
    try:
        value = float(raw)
    except ValueError:
        raise ValueError(
            f"bad threshold {text!r}: {raw!r} is not a number") from None
    return Threshold(metric, value)


@dataclass(frozen=True)
class Breach:
    """One operation that crossed one threshold."""

    operation: str
    metric: str
    score: float
    limit: float

    def describe(self) -> str:
        return (f"BREACH {self.operation}: {self.metric}={self.score:.4f} "
                f"exceeds threshold {self.limit:g}")


@dataclass
class GateReport:
    """Everything the gate decided, printable and exit-code ready."""

    thresholds: Tuple[Threshold, ...]
    operations_checked: int = 0
    operations_skipped: int = 0      #: below min_ops on both sides
    breaches: List[Breach] = field(default_factory=list)
    scores: List[Tuple[str, str, float]] = field(default_factory=list)

    @property
    def passed(self) -> bool:
        return not self.breaches

    def exit_code(self) -> int:
        return 0 if self.passed else EXIT_BREACH

    def describe(self) -> str:
        rules = ", ".join(str(t) for t in self.thresholds)
        lines = [f"gate: {self.operations_checked} operation(s) checked "
                 f"against [{rules}]"
                 + (f", {self.operations_skipped} below min-ops"
                    if self.operations_skipped else "")]
        for breach in self.breaches:
            lines.append(breach.describe())
        lines.append("gate: FAIL" if self.breaches else "gate: PASS")
        return "\n".join(lines)


def evaluate_gate(baseline: ProfileSet, capture: ProfileSet,
                  thresholds: Sequence[Threshold] = DEFAULT_GATE_THRESHOLDS,
                  min_ops: int = 1) -> GateReport:
    """Score every operation of *capture* against *baseline*.

    The union of operations is checked: one missing entirely on either
    side is compared against an empty profile, so a vanished or brand
    new operation registers as a maximal distribution shift rather
    than being skipped.  Operations with fewer than *min_ops* requests
    on **both** sides are noise and are skipped (counted in the
    report).  Deterministic: operations and thresholds are evaluated
    in sorted/declared order.
    """
    if not thresholds:
        raise ValueError("gate needs at least one threshold")
    report = GateReport(thresholds=tuple(thresholds))
    operations = sorted(set(baseline.operations())
                        | set(capture.operations()))
    for op in operations:
        base = baseline.get(op)
        fresh = capture.get(op)
        base_ops = base.total_ops if base is not None else 0
        fresh_ops = fresh.total_ops if fresh is not None else 0
        if max(base_ops, fresh_ops) < min_ops:
            report.operations_skipped += 1
            continue
        report.operations_checked += 1
        empty = Profile(op, spec=baseline.spec)
        pa = base if base is not None else empty
        pb = fresh if fresh is not None else empty
        for threshold in report.thresholds:
            score = compare(pa, pb, threshold.metric)
            report.scores.append((op, threshold.metric, score))
            if score > threshold.value:
                report.breaches.append(Breach(
                    operation=op, metric=threshold.metric, score=score,
                    limit=threshold.value))
    return report

"""Append-only, CRC-framed commit journal of the profile warehouse.

Every durable warehouse mutation — a segment ingested, a compaction
that supersedes its inputs, a retention eviction — becomes exactly one
record appended to ``wal.log``.  The log is the *only* source of truth:
the in-memory index (:mod:`repro.warehouse.index`) is rebuilt from a
full replay on every open, so a crash at any instant leaves one of two
states, both recoverable:

* the record never landed — the mutation never happened (a segment
  file written just before is an orphan, swept by ``gc``), or
* the record landed — the mutation is complete, because segment files
  are always made durable (temp + ``os.replace``) *before* their
  record is appended.

Framing: a ``# oswal 1`` header line, then one record per line as
``<crc32-hex> <canonical-json>``.  Replay verifies each line's CRC and
stops at the first damaged or torn line; :meth:`SegmentLog.recover`
additionally truncates that distrusted tail so subsequent appends
cannot land after garbage.  This is the same
corruption-is-loud-never-silent stance as the binary profile codec's
CRC-32 trailer.
"""

from __future__ import annotations

import json
import zlib
from pathlib import Path
from typing import Dict, List, Optional, Tuple

from ..core import durable

__all__ = ["LogError", "SegmentLog"]

_HEADER = b"# oswal 1\n"


class LogError(ValueError):
    """The log file is not a warehouse journal at all (bad header)."""


class SegmentLog:
    """One append-only journal file with CRC-checked JSON records."""

    def __init__(self, path):
        self.path = Path(path)
        if not self.path.exists() or self.path.stat().st_size == 0:
            # Atomic (temp + rename), not written in place: a power cut
            # mid-creation must leave the journal absent — recreated on
            # the next open — never present with a torn header, which
            # would read as foreign-file damage instead of recovering.
            durable.write_atomic(self.path, _HEADER)
        self.truncated_bytes = 0  #: distrusted tail dropped by recover()

    # -- writing -------------------------------------------------------------

    def append(self, record: Dict) -> None:
        """Commit one record: a single line, flushed and fsynced.

        The canonical JSON encoding (sorted keys, no whitespace) is the
        CRC input, so a replayed record re-verifies bit-for-bit.
        """
        self.append_many([record])

    def append_many(self, records) -> None:
        """Commit several records with **one** flush+fsync.

        This is the warehouse's batched-flush fast path: a fleet-scale
        ingest closes many segments per interval, and one durable write
        per *batch* instead of per segment keeps the event-loop server
        ahead of the disk.  Durability granularity is unchanged — each
        line carries its own CRC, so a torn tail drops only the
        unfinished suffix of the batch and every preceding record
        stays committed.
        """
        if not records:
            return
        lines = []
        for record in records:
            payload = json.dumps(record, sort_keys=True,
                                 separators=(",", ":")).encode("utf-8")
            crc = zlib.crc32(payload) & 0xFFFFFFFF
            lines.append(b"%08x " % crc + payload + b"\n")
        durable.append_bytes(self.path, b"".join(lines))

    # -- reading -------------------------------------------------------------

    def replay(self) -> List[Dict]:
        """Every committed record, oldest first (read-only scan)."""
        records, _ = self._scan()
        return records

    def recover(self) -> List[Dict]:
        """Replay, then truncate any torn or corrupt tail.

        A crash mid-append leaves a partial last line; everything from
        the first bad byte on is distrusted and cut, so the next
        :meth:`append` lands on a clean record boundary.  The number of
        bytes dropped is kept in :attr:`truncated_bytes`.
        """
        records, good = self._scan()
        size = self.path.stat().st_size
        if good < size:
            self.truncated_bytes = size - good
            durable.truncate(self.path, good)
        return records

    def verify(self) -> Tuple[int, int]:
        """Re-check every frame CRC in place: ``(records, bad bytes)``.

        Read-only — this is ``osprof db scrub``'s journal pass; any
        distrusted tail is only *counted* here (truncating it remains
        the open path's job, via :meth:`recover`).
        """
        records, good = self._scan()
        return len(records), self.path.stat().st_size - good

    def _scan(self) -> Tuple[List[Dict], int]:
        data = self.path.read_bytes()
        if not data.startswith(_HEADER):
            raise LogError(
                f"{self.path}: not an osprof warehouse log "
                f"(header {data[:16]!r})")
        records: List[Dict] = []
        pos = len(_HEADER)
        good = pos
        while True:
            newline = data.find(b"\n", pos)
            if newline < 0:
                break  # torn tail: no record boundary, distrust it
            record = self._decode(data[pos:newline])
            if record is None:
                break  # damaged line: distrust it and everything after
            records.append(record)
            pos = newline + 1
            good = pos
        return records, good

    @staticmethod
    def _decode(line: bytes) -> Optional[Dict]:
        try:
            crc_hex, payload = line.split(b" ", 1)
            if int(crc_hex, 16) != zlib.crc32(payload) & 0xFFFFFFFF:
                return None
            record = json.loads(payload.decode("utf-8"))
        except (ValueError, UnicodeDecodeError):
            return None
        return record if isinstance(record, dict) else None

    def __repr__(self) -> str:
        return f"<SegmentLog {str(self.path)!r}>"

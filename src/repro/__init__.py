"""OSprof reproduction: operating system profiling via latency analysis.

A full-system reproduction of Joukov et al., *Operating System Profiling
via Latency Analysis* (OSDI 2006): the OSprof aggregate-stats library
and analysis toolchain (:mod:`repro.core`, :mod:`repro.analysis`)
running against a deterministic discrete-event OS simulator
(:mod:`repro.sim`, :mod:`repro.disk`, :mod:`repro.vfs`, :mod:`repro.fs`,
:mod:`repro.net`) driven by the paper's workloads
(:mod:`repro.workloads`).

Quick start::

    from repro import System
    sys = System.build()               # 1-CPU machine, ext2, profilers on
    ...                                 # build a tree, spawn workloads
    sys.run(procs)
    print(sys.fs_profiles().dumps())   # OSprof text profiles
"""

from .core import (BucketSpec, LatencyBuckets, Profile, ProfileSet, Profiler,
                   SampledProfiler, ValueCorrelator)
from .system import System

__version__ = "1.0.0"

__all__ = ["BucketSpec", "LatencyBuckets", "Profile", "ProfileSet",
           "Profiler", "SampledProfiler", "ValueCorrelator", "System",
           "__version__"]

"""Periodic wait-state sampling of a running simulated kernel.

:class:`WaitStateSampler` is the always-on half of the profiling story:
every *interval* cycles of **simulated** time it walks the kernel's
process table and records, per live process, ``(state, layer, op,
wait_site)`` into a :class:`~repro.sampling.stateprofile.StateProfile`.
The tick is a self-rescheduling engine event — no wall-clock reads, no
RNG draws, no pipeline interaction — so a sampled run is deterministic
under a fixed seed and the measured latency profiles are byte-identical
with the sampler on or off.

The only wall-clock use is the ``overhead_ns_total`` health counter
(how much real time the capture loop itself costs), which is exported
on the metrics endpoint but never serialized into a profile, keeping
StateProfile bytes pinnable in CI.
"""

from __future__ import annotations

import time
from typing import Dict, Optional

from ..sim.process import ProcessState
from ..sim.scheduler import Kernel
from .stateprofile import StateProfile

__all__ = ["WaitStateSampler", "canonical_wait_site"]

#: Layer recorded for a process outside any instrumented request.
_IDLE_LAYER = "user"

#: Operation recorded for a process outside any instrumented request.
_IDLE_OP = "-"

#: Wait site recorded for a process that is not blocked.
_NO_WAIT = "-"


def canonical_wait_site(site: str) -> str:
    """Collapse per-request condition names into bounded site families.

    Disk completions (``io:r<block>``), page locks (``page:<ino>:<idx>``),
    and network transaction ids (``nfs:xid.../smb:mid...``) mint a fresh
    condition name per request, which would grow a StateProfile without
    bound.  Per-*resource* names — ``sem:i_sem:<ino>``, ``rw:<lock>`` —
    are the diagnostic signal and pass through unchanged.
    """
    if site.startswith("io:w"):
        return "io:write"
    if site.startswith("io:r"):
        return "io:read"
    if site.startswith("page:"):
        return "page"
    if site.startswith("nfs:"):
        return "nfs"
    if site.startswith("smb:"):
        return "smb"
    if site.startswith("exit:"):
        return "exit"
    return site


class WaitStateSampler:
    """Samples per-process wait state on a fixed sim-clock period.

    ``interval`` is in cycles (use :func:`repro.sim.engine.seconds` to
    express it in simulated seconds).  :meth:`start` arms the first
    tick; sampling then continues until :meth:`stop`, surviving
    ``run_until_done`` stop predicates because the tick is an ordinary
    engine event.
    """

    def __init__(self, kernel: Kernel, interval: float,
                 name: str = "state-samples"):
        if interval <= 0:
            raise ValueError("sample interval must be positive")
        self.kernel = kernel
        self.interval = float(interval)
        self.name = name
        self._profile = StateProfile(name=name, interval=self.interval)
        self._tick_event = None
        # Health counters (metrics endpoint; never serialized).
        self.samples_total = 0
        self.intervals_total = 0
        self.overhead_ns_total = 0

    # -- lifecycle -----------------------------------------------------------

    @property
    def running(self) -> bool:
        return self._tick_event is not None

    def start(self) -> None:
        """Arm the sampler; the first capture fires one interval from now."""
        if self._tick_event is not None:
            raise RuntimeError("sampler already started")
        self._tick_event = self.kernel.engine.schedule(
            self.interval, self._tick)

    def stop(self) -> None:
        """Disarm the sampler (idempotent)."""
        if self._tick_event is not None:
            self.kernel.engine.cancel(self._tick_event)
            self._tick_event = None

    # -- the tick ------------------------------------------------------------

    def _tick(self) -> None:
        started = time.perf_counter_ns()
        self._capture()
        self.intervals_total += 1
        self._profile.intervals += 1
        self._tick_event = self.kernel.engine.schedule(
            self.interval, self._tick)
        self.overhead_ns_total += time.perf_counter_ns() - started

    def _capture(self) -> None:
        add = self._profile.add
        for proc in self.kernel.processes:
            if proc.state == ProcessState.DONE:
                continue
            ctx = proc.request_context
            if ctx is not None:
                layer = ctx.layer
                op = ctx.operation
            else:
                layer = _IDLE_LAYER
                op = _IDLE_OP
            if proc.state == ProcessState.BLOCKED:
                site = canonical_wait_site(proc.wait_site or "unknown")
            else:
                site = _NO_WAIT
            add(proc.state, layer, op, site)
            self.samples_total += 1

    # -- results -------------------------------------------------------------

    def profile(self) -> StateProfile:
        """A snapshot copy of the accumulated state profile."""
        snap = StateProfile(name=self.name, interval=self.interval)
        snap.merge(self._profile)
        return snap

    def reset(self) -> None:
        """Clear accumulated counts (health counters keep running)."""
        self._profile = StateProfile(name=self.name, interval=self.interval)

    def metrics(self) -> Dict[str, int]:
        """Health counters in metrics-endpoint naming."""
        return {
            "osprof_samples_total": self.samples_total,
            "osprof_sample_intervals_total": self.intervals_total,
            "osprof_sampler_overhead_ns_total": self.overhead_ns_total,
        }

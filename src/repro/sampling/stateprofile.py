"""Aggregated wait-state samples and their canonical binary codec.

A :class:`StateProfile` is to the sampling family what
:class:`~repro.core.profileset.ProfileSet` is to the latency family: the
unit of storage, transport, and merging.  Each cell counts how many
periodic samples observed a process in a given
``(state, layer, op, wait_site)`` — e.g. two processes contending a
random-read file show up as a dominant
``("blocked", "filesystem", "llseek", "sem:i_sem:<ino>")`` cell.

Binary format (``to_bytes``/``from_bytes``)::

    magic    8s  b"OSPROFS1"
    header   str name, f64 interval (cycles), u64 intervals,
             u16 nattrs, nattrs x (str k, str v), u32 ncells
    cell     str state, str layer, str op, str wait_site, u64 count
    trailer  u32 crc32 of everything after the magic

where ``str`` is ``u16 length + UTF-8 bytes``.  Cells and attributes
are written in sorted order, so encoding is canonical: equal profiles
encode to identical bytes and decode→encode round-trips are
byte-identical — the property the warehouse's checksummed segments and
the CI digest pins rely on.
"""

from __future__ import annotations

import struct
import zlib
from typing import Dict, Iterable, Iterator, List, Optional, Tuple

__all__ = ["StateProfile"]

#: Magic prefix of the binary state-profile codec (version 1).
_BINARY_MAGIC = b"OSPROFS1"

#: A sample cell key: (state, layer, op, wait_site).
CellKey = Tuple[str, str, str, str]


class _Reader:
    """Bounds-checked cursor over a binary state-profile payload."""

    def __init__(self, data: bytes, offset: int = 0):
        self.data = data
        self.offset = offset

    def take(self, n: int) -> bytes:
        if self.offset + n > len(self.data):
            raise ValueError(
                f"truncated state profile: wanted {n} bytes at offset "
                f"{self.offset}, only {len(self.data) - self.offset} left")
        chunk = self.data[self.offset:self.offset + n]
        self.offset += n
        return chunk

    def unpack(self, fmt: str) -> Tuple:
        return struct.unpack(fmt, self.take(struct.calcsize(fmt)))

    def string(self) -> str:
        (length,) = self.unpack("<H")
        return self.take(length).decode("utf-8")


def _pack_str(out: List[bytes], text: str) -> None:
    raw = text.encode("utf-8")
    if len(raw) > 0xFFFF:
        raise ValueError(f"string too long for state profile: {text[:40]!r}...")
    out.append(struct.pack("<H", len(raw)))
    out.append(raw)


class StateProfile:
    """Sample counts keyed by ``(state, layer, op, wait_site)``.

    ``interval`` is the sampling period in cycles (0 when unknown, e.g.
    a merge of differently-spaced sources) and ``intervals`` the number
    of sampling ticks the counts were collected over — together they
    let a consumer turn counts into average-processes-in-state.
    """

    def __init__(self, name: str = "", interval: float = 0.0,
                 attributes: Optional[Dict[str, str]] = None):
        if interval < 0:
            raise ValueError("interval must be non-negative")
        self.name = name
        self.interval = float(interval)
        self.intervals = 0
        self.attributes: Dict[str, str] = dict(attributes or {})
        self._counts: Dict[CellKey, int] = {}

    # -- container behaviour -------------------------------------------------

    def __len__(self) -> int:
        return len(self._counts)

    def __iter__(self) -> Iterator[Tuple[CellKey, int]]:
        return iter(sorted(self._counts.items()))

    def __contains__(self, key: CellKey) -> bool:
        return key in self._counts

    def count(self, state: str, layer: str, op: str, wait_site: str) -> int:
        return self._counts.get((state, layer, op, wait_site), 0)

    def cells(self) -> Dict[CellKey, int]:
        """A copy of the cell map (sorted iteration via ``__iter__``)."""
        return dict(self._counts)

    # -- accumulation --------------------------------------------------------

    def add(self, state: str, layer: str, op: str, wait_site: str,
            count: int = 1) -> None:
        """Record *count* samples of one (state, layer, op, wait_site)."""
        if count < 0:
            raise ValueError("sample count must be non-negative")
        if count == 0:
            return
        key = (state, layer, op, wait_site)
        self._counts[key] = self._counts.get(key, 0) + count

    def merge(self, other: "StateProfile") -> None:
        """Fold every cell of *other* into this profile.

        Intervals add; a mismatched sampling period collapses
        ``interval`` to 0 ("mixed") rather than silently keeping one.
        """
        for key, count in other._counts.items():
            self._counts[key] = self._counts.get(key, 0) + count
        self.intervals += other.intervals
        if self.interval != other.interval:
            self.interval = 0.0

    @classmethod
    def merged(cls, profiles: Iterable["StateProfile"],
               name: str = "") -> "StateProfile":
        """Union of several profiles into a fresh one (order-independent)."""
        out: Optional[StateProfile] = None
        for sprof in profiles:
            if out is None:
                out = cls(name=name, interval=sprof.interval)
            out.merge(sprof)
        if out is None:
            out = cls(name=name)
        return out

    # -- aggregate queries ---------------------------------------------------

    def total_samples(self) -> int:
        return sum(self._counts.values())

    def by_count(self) -> List[Tuple[CellKey, int]]:
        """Cells sorted by descending count (key as tiebreak, stable)."""
        return sorted(self._counts.items(), key=lambda kv: (-kv[1], kv[0]))

    def top(self, n: int) -> List[Tuple[CellKey, int]]:
        """The *n* hottest cells — the rows an ``osprof top`` frame shows."""
        if n < 0:
            raise ValueError("n must be non-negative")
        return self.by_count()[:n]

    def wait_sites(self) -> Dict[str, int]:
        """Sample counts per wait site, blocked states only."""
        sites: Dict[str, int] = {}
        for (state, _layer, _op, site), count in self._counts.items():
            if state == "blocked":
                sites[site] = sites.get(site, 0) + count
        return sites

    def distribution(self) -> Dict[CellKey, float]:
        """Cells as fractions of the total sample count."""
        total = self.total_samples()
        if total == 0:
            return {}
        return {key: count / total for key, count in self._counts.items()}

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, StateProfile):
            return NotImplemented
        return (self.interval == other.interval
                and self.intervals == other.intervals
                and self._counts == other._counts)

    def __repr__(self) -> str:
        return (f"<StateProfile {self.name!r} cells={len(self)} "
                f"samples={self.total_samples()} "
                f"intervals={self.intervals}>")

    # -- binary serialization ------------------------------------------------

    def to_bytes(self) -> bytes:
        """Encode in the compact checksummed binary format.

        Canonical: cells and attributes are sorted, so equal profiles
        always produce identical bytes — a merged fleet profile can be
        compared byte-for-byte against its serial counterpart, and CI
        can pin a fixed-seed capture by digest.
        """
        out: List[bytes] = []
        _pack_str(out, self.name)
        out.append(struct.pack("<dQ", self.interval, self.intervals))
        attrs = sorted(self.attributes.items())
        out.append(struct.pack("<H", len(attrs)))
        for key, value in attrs:
            _pack_str(out, key)
            _pack_str(out, value)
        out.append(struct.pack("<I", len(self._counts)))
        for (state, layer, op, site) in sorted(self._counts):
            _pack_str(out, state)
            _pack_str(out, layer)
            _pack_str(out, op)
            _pack_str(out, site)
            out.append(struct.pack(
                "<Q", self._counts[(state, layer, op, site)]))
        payload = b"".join(out)
        return (_BINARY_MAGIC + payload
                + struct.pack("<I", zlib.crc32(payload) & 0xFFFFFFFF))

    @classmethod
    def from_bytes(cls, data: bytes) -> "StateProfile":
        """Decode :meth:`to_bytes` output, verifying the CRC-32 trailer.

        Raises :class:`ValueError` on a bad magic, a truncated payload,
        a checksum mismatch, or any structurally invalid field.
        """
        if not isinstance(data, (bytes, bytearray, memoryview)):
            raise ValueError("binary state profile must be a bytes-like "
                             "object")
        data = bytes(data)
        if not data.startswith(_BINARY_MAGIC):
            raise ValueError(
                f"not a binary state profile: magic {data[:8]!r}")
        if len(data) < len(_BINARY_MAGIC) + 4:
            raise ValueError("truncated state profile: missing trailer")
        payload = data[len(_BINARY_MAGIC):-4]
        (declared_crc,) = struct.unpack("<I", data[-4:])
        actual_crc = zlib.crc32(payload) & 0xFFFFFFFF
        if declared_crc != actual_crc:
            raise ValueError(
                f"state profile CRC mismatch: trailer says "
                f"{declared_crc:#010x}, payload hashes to {actual_crc:#010x}")
        reader = _Reader(payload)
        name = reader.string()
        interval, intervals = reader.unpack("<dQ")
        if interval < 0:
            raise ValueError(f"bad state profile: negative interval "
                             f"{interval}")
        (nattrs,) = reader.unpack("<H")
        attributes = {}
        for _ in range(nattrs):
            key = reader.string()
            attributes[key] = reader.string()
        sprof = cls(name=name, interval=interval, attributes=attributes)
        sprof.intervals = intervals
        (ncells,) = reader.unpack("<I")
        for _ in range(ncells):
            state = reader.string()
            layer = reader.string()
            op = reader.string()
            site = reader.string()
            (count,) = reader.unpack("<Q")
            key = (state, layer, op, site)
            if key in sprof._counts:
                raise ValueError(f"duplicate cell {key!r}")
            sprof._counts[key] = count
        if reader.offset != len(payload):
            raise ValueError(
                f"{len(payload) - reader.offset} trailing bytes after the "
                f"last cell")
        return sprof

    # -- file helpers --------------------------------------------------------

    def save(self, path: str) -> None:
        with open(path, "wb") as f:
            f.write(self.to_bytes())

    @classmethod
    def load_path(cls, path: str) -> "StateProfile":
        with open(path, "rb") as f:
            return cls.from_bytes(f.read())

    @classmethod
    def is_state_payload(cls, data: bytes) -> bool:
        """True when *data* starts with the state-profile magic."""
        return bytes(data[:len(_BINARY_MAGIC)]) == _BINARY_MAGIC

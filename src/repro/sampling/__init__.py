"""Wait-state sampling: the second, orthogonal profile family.

Latency profiles (:mod:`repro.core`) measure every request; this package
*samples* instead — "what is every process doing right now" — the
always-on production pattern of tools like ``psn``/``xtop``.  The paper
validates measured profiles against sampled ones (Section 5); here the
two families coexist so the sampled view can be checked against measured
ground truth under identical simulated workloads.

* :class:`StateProfile` — aggregated sample counts keyed by
  ``(state, layer, op, wait_site)``, with the same canonical
  CRC-trailed binary codec discipline as
  :class:`~repro.core.profileset.ProfileSet`.
* :class:`WaitStateSampler` — a sim-clock driven periodic sampler over
  a running :class:`~repro.sim.scheduler.Kernel`.
"""

from .stateprofile import StateProfile
from .sampler import WaitStateSampler, canonical_wait_site

__all__ = ["StateProfile", "WaitStateSampler", "canonical_wait_site"]

"""Disk geometry and mechanical timing.

Models the paper's benchmark disk: a Maxtor Atlas 15,000 RPM SCSI drive.
The characteristic times the paper uses for peak attribution:

* track-to-track seek: 0.3 ms,
* full-stroke seek: 8 ms,
* full platter rotation: 4 ms (15 kRPM).

"The OS generally assumes that blocks with close logical block numbers
are also physically close to each other on the disk" — the LBA→track
mapping here is exactly that linear layout, so sequential I/O stays on a
track and random I/O pays seeks, giving the third and fourth peaks of
Figure 7 their positions.
"""

from __future__ import annotations

import math
from typing import Optional

from ..sim.engine import seconds
from ..sim.rng import SimRandom

__all__ = ["DiskGeometry", "BLOCK_SIZE"]

#: Logical block size in bytes (one page-sized FS block).
BLOCK_SIZE = 4096


class DiskGeometry:
    """LBA to track mapping plus seek/rotation timing, all in cycles."""

    def __init__(self, num_blocks: int = 262_144,
                 blocks_per_track: int = 128,
                 track_seek: float = seconds(0.3e-3),
                 full_seek: float = seconds(8e-3),
                 rotation: float = seconds(4e-3)):
        if num_blocks < 1 or blocks_per_track < 1:
            raise ValueError("block counts must be positive")
        if track_seek < 0 or full_seek < track_seek or rotation <= 0:
            raise ValueError("inconsistent mechanical timings")
        self.num_blocks = num_blocks
        self.blocks_per_track = blocks_per_track
        self.num_tracks = (num_blocks + blocks_per_track - 1) \
            // blocks_per_track
        self.track_seek = track_seek
        self.full_seek = full_seek
        self.rotation = rotation

    def track_of(self, block: int) -> int:
        """The track holding a logical block."""
        if not 0 <= block < self.num_blocks:
            raise ValueError(f"block {block} out of range")
        return block // self.blocks_per_track

    def seek_time(self, from_track: int, to_track: int) -> float:
        """Head movement time between tracks.

        Zero for the same track; otherwise the classic
        ``a + b*sqrt(distance)`` curve anchored at the track-to-track
        and full-stroke times.
        """
        distance = abs(to_track - from_track)
        if distance == 0:
            return 0.0
        if self.num_tracks <= 1:
            return self.track_seek
        max_distance = self.num_tracks - 1
        span = self.full_seek - self.track_seek
        return self.track_seek + span * math.sqrt(
            (distance - 1) / max(max_distance - 1, 1))

    def rotational_delay(self, rng: SimRandom) -> float:
        """Random wait for the platter: uniform over one rotation."""
        return rng.uniform(0.0, self.rotation)

    def transfer_time(self, blocks: int = 1) -> float:
        """Media transfer time: the platter passes blocks under the head."""
        if blocks < 1:
            raise ValueError("must transfer at least one block")
        return self.rotation * blocks / self.blocks_per_track

    def track_span(self, track: int) -> range:
        """The logical blocks living on *track* (for readahead caching)."""
        start = track * self.blocks_per_track
        end = min(start + self.blocks_per_track, self.num_blocks)
        return range(start, end)

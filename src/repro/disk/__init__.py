"""Disk substrate: geometry/timing, segment cache, device, driver.

Models the paper's 15 kRPM SCSI benchmark disk: 0.3 ms track-to-track
seek, 8 ms full stroke, 4 ms rotation, an internal track-readahead
cache, an elevator request queue, and the instrumented SCSI driver used
for driver-level profiling.
"""

from .cache import SegmentCache
from .device import DEFAULT_COMMAND_OVERHEAD, Disk, DiskRequest
from .driver import ScsiDriver
from .geometry import BLOCK_SIZE, DiskGeometry

__all__ = ["SegmentCache", "DEFAULT_COMMAND_OVERHEAD", "Disk", "DiskRequest",
           "ScsiDriver", "BLOCK_SIZE", "DiskGeometry"]

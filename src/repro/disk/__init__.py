"""Disk substrate: geometry/timing, cache, device models, engine, driver.

The queue/completion engine (:class:`Disk`) fronts a pluggable
:class:`DeviceModel`.  The default :class:`SpindleModel` is the paper's
15 kRPM SCSI benchmark disk: 0.3 ms track-to-track seek, 8 ms full
stroke, 4 ms rotation, an internal track-readahead cache and an
elevator request queue.  :class:`SSDModel`, :class:`RAID0Model` and
:class:`ThrottledModel` open the scenario matrix beyond one spindle.
The instrumented driver (:class:`ScsiDriver`) profiles any of them
dispatch-to-completion.
"""

from .cache import SegmentCache
from .device import DEFAULT_COMMAND_OVERHEAD, Disk, DiskRequest
from .driver import ScsiDriver
from .geometry import BLOCK_SIZE, DiskGeometry
from .model import (DeviceModel, RAID0Model, SpindleModel, SSDModel,
                    ThrottledModel)

__all__ = ["SegmentCache", "DEFAULT_COMMAND_OVERHEAD", "Disk", "DiskRequest",
           "ScsiDriver", "BLOCK_SIZE", "DiskGeometry", "DeviceModel",
           "SpindleModel", "SSDModel", "RAID0Model", "ThrottledModel"]

"""The instrumented device driver (driver-level profiling layer).

"In Linux, file system writes and asynchronous I/O requests return
immediately after scheduling the I/O request.  Therefore, their latency
contains no information about the associated I/O times.  To detect this
information, we instrumented a SCSI device driver; to do so we added
four calls to the aggregate_stats library" (Section 4).

:class:`ScsiDriver` is that layer: every request is profiled from
*dispatch to hardware completion* — regardless of whether the submitting
process waits — under operations ``disk_read`` / ``disk_write``.
"""

from __future__ import annotations

from typing import Optional

from ..core.pipeline import Pipeline, ProbePoint, wire_probe
from ..core.profile import Layer
from ..core.profiler import Profiler
from ..sim.process import ProcBody
from ..sim.scheduler import Kernel
from .device import Disk, DiskRequest

__all__ = ["ScsiDriver"]


class ScsiDriver:
    """Profiled pass-through between file systems and the disk device.

    Attaches a completion listener to the device so that asynchronous
    writes — whose submitters never wait — are still measured dispatch
    to completion.
    """

    READ_OP = "disk_read"
    WRITE_OP = "disk_write"

    def __init__(self, kernel: Kernel, disk: Disk,
                 profiler: Optional[Profiler] = None,
                 pipeline: Optional[Pipeline] = None,
                 probe: Optional[ProbePoint] = None):
        self.kernel = kernel
        self.disk = disk
        if profiler is None:
            profiler = Profiler(name="scsi", layer=Layer.DRIVER,
                                clock=lambda: kernel.now)
        self.profiler = profiler
        if probe is None:
            owner = pipeline if pipeline is not None \
                else Pipeline(num_cpus=len(kernel.cpus))
            probe = wire_probe(owner, profiler.layer, profiler=profiler,
                               name="driver")
        self.probe_point = probe
        self.pipeline = probe.pipeline
        disk.on_complete.append(self._completed)

    def _completed(self, request: DiskRequest) -> None:
        operation = self.WRITE_OP if request.is_write else self.READ_OP
        self.probe_point.record(operation, request.latency,
                          start=request.submitted_at,
                          context=request.context)

    # -- submission API mirroring the device ----------------------------------

    def _submit(self, block: int, is_write: bool) -> DiskRequest:
        request = self.disk.submit(block, is_write=is_write)
        # Attribute the I/O to the request whose generator is being
        # advanced right now: completion fires in a later event, when
        # the submitter (for async writes) may be long gone.
        proc = self.kernel.stepping
        if proc is not None:
            request.context = proc.request_context
        return request

    def submit_read(self, block: int) -> DiskRequest:
        """Dispatch a read without waiting (readahead-style)."""
        return self._submit(block, is_write=False)

    def submit_write(self, block: int) -> DiskRequest:
        """Dispatch an asynchronous write; profiled at completion."""
        return self._submit(block, is_write=True)

    def read(self, block: int) -> ProcBody:
        """Generator: synchronous profiled read."""
        request = self.submit_read(block)
        yield from self.disk.wait(request)
        return request

    def write(self, block: int) -> ProcBody:
        """Generator: synchronous profiled write."""
        request = self.submit_write(block)
        yield from self.disk.wait(request)
        return request

    def profile_set(self):
        return self.profiler.profile_set()

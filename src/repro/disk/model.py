"""Pluggable device models behind one queue/completion engine.

The paper's case studies all ride on a single hardware assumption — one
15 kRPM SCSI spindle — so the profile corpus could only ever contain the
latency shapes that spindle produces.  This module splits the *device
physics* out of :class:`~repro.disk.device.Disk` into a
:class:`DeviceModel` interface so the same queue/completion engine can
front very different hardware:

* :class:`SpindleModel` — the original mechanical disk (seek + rotation
  + transfer, segment-cache readahead, elevator scheduling).  The
  default, and pinned byte-identical to the pre-refactor ``Disk``.
* :class:`SSDModel` — no seek: constant read/program latency plus
  deterministic erase-block garbage-collection pauses, giving writes the
  bimodal profile real flash shows.
* :class:`RAID0Model` — N child devices with block-interleaved striping
  and per-child queues; a request completes when its child completes.
* :class:`ThrottledModel` — a token-bucket IOPS cap wrapped around any
  inner model, modelling cgroup-style I/O throttling plateaus.

The contract: a model owns *where time goes* (``service_time``), the
queue discipline (``pick_next``), and the request→channel mapping for
devices with internal parallelism; the engine owns queues, completion
conditions, retry-on-media-error, and listener dispatch.  All
randomness flows through the :class:`~repro.sim.rng.SimRandom` the
engine hands in (or streams forked from it), so every model is
seed-deterministic and scenario captures pin byte-for-byte.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from ..sim.engine import CYCLES_PER_SECOND, seconds
from ..sim.rng import SimRandom
from .cache import SegmentCache
from .geometry import DiskGeometry

__all__ = ["DeviceModel", "SpindleModel", "SSDModel", "RAID0Model",
           "ThrottledModel", "DEFAULT_COMMAND_OVERHEAD"]

#: Controller command processing + bus transfer overhead (~45 us): the
#: floor for any spindle request, and nearly all of a cache hit's latency.
DEFAULT_COMMAND_OVERHEAD = seconds(45e-6)


class DeviceModel:
    """Interface between the queue engine and a device's physics.

    Subclasses override :meth:`service_time` (always) and the
    queue-discipline hooks (:meth:`pick_next`, :meth:`channel_of`,
    :meth:`channels`) when the device has a smarter scheduler or
    internal parallelism.  ``attach`` is called once by the engine; the
    base implementation stores the back-reference models use to reach
    the simulated clock and the engine's failure-injection knobs
    (``disk.error_rate``).
    """

    #: Human-readable label (scenario listings, fault keys).
    name = "device"

    #: Block-address space; the engine validates submissions against it
    #: and mkfs-time allocators read ``num_blocks`` from it.
    geometry: DiskGeometry

    def attach(self, disk) -> None:
        """Engine hookup; called once from ``Disk.__init__``."""
        self.disk = disk

    def validate(self, block: int) -> None:
        """Raise ``ValueError`` for an out-of-range block."""
        self.geometry.track_of(block)

    def channels(self) -> int:
        """Independent service channels (1 unless the device is parallel)."""
        return 1

    def channel_of(self, request) -> int:
        """Which channel's queue a request joins."""
        return 0

    def pick_next(self, queue: List, channel: int):
        """Queue discipline: remove and return the next request."""
        return queue.pop(0)

    def service_time(self, request, rng: SimRandom) -> Tuple[float, bool]:
        """Service one request: ``(latency_cycles, cache_hit)``.

        May set ``request._attempt_failed`` to signal a media error the
        engine should retry (the caller only sees the added latency).
        """
        raise NotImplementedError


class SpindleModel(DeviceModel):
    """The paper's 15 kRPM SCSI spindle, extracted verbatim.

    Service time per request:

    * **segment-cache hit** (read of a cached track): command + bus
      overhead only — Figure 7's sharp third peak (~40-75 us), or
    * **media access**: seek (0-8 ms) + rotational delay (0-4 ms) +
      transfer — the broad fourth peak,

    after which the whole track is resident (readahead fill).  The RNG
    draw order is the pre-refactor ``Disk._service_time`` order exactly,
    so default-scenario captures stay byte-identical through the
    engine/model split.
    """

    name = "spindle"

    def __init__(self, geometry: Optional[DiskGeometry] = None,
                 cache_segments: int = 8, elevator: bool = True,
                 command_overhead: float = DEFAULT_COMMAND_OVERHEAD):
        self.geometry = geometry if geometry is not None else DiskGeometry()
        self.cache = SegmentCache(cache_segments)
        self.elevator = elevator
        self.command_overhead = command_overhead
        self.head_track = 0

    def pick_next(self, queue: List, channel: int):
        """Elevator: nearest track first; otherwise FIFO."""
        if not self.elevator or len(queue) == 1:
            return queue.pop(0)
        best_index = 0
        best_distance = None
        for i, req in enumerate(queue):
            distance = abs(self.geometry.track_of(req.block)
                           - self.head_track)
            if best_distance is None or distance < best_distance:
                best_index, best_distance = i, distance
        return queue.pop(best_index)

    def service_time(self, request, rng: SimRandom) -> Tuple[float, bool]:
        return self.service_block(request.block, request, rng)

    def service_block(self, block: int, request,
                      rng: SimRandom) -> Tuple[float, bool]:
        """Service a (possibly translated) block address.

        Split out from :meth:`service_time` so array models (RAID) can
        delegate with a child-local block number while the request keeps
        its global identity.
        """
        disk = self.disk
        track = self.geometry.track_of(block)
        overhead = rng.jitter(self.command_overhead, sigma=0.1)
        if not request.is_write and self.cache.lookup(track):
            return overhead, True
        seek = self.geometry.seek_time(self.head_track, track)
        request.seek_cycles = seek
        disk.total_seek_cycles += seek
        rotation = self.geometry.rotational_delay(rng)
        transfer = self.geometry.transfer_time()
        self.head_track = track
        if disk.error_rate > 0 and rng.chance(disk.error_rate):
            # The media access failed: the sector must be re-read on a
            # later rotation.  No readahead fill for a failed access.
            request._attempt_failed = True
        else:
            request._attempt_failed = False
            self.cache.fill(track)
        return overhead + seek + rotation + transfer, False


class SSDModel(DeviceModel):
    """Flash device: no seek, constant latencies, periodic GC pauses.

    Reads cost a (jittered) constant ``read_latency``.  Programs cost
    ``program_latency`` — except that every ``gc_period``-th programmed
    page fills an erase block and triggers foreground garbage
    collection, stalling that write by ``gc_pause``.  The write profile
    is therefore bimodal: a tall fast peak at the program latency and a
    short slow peak several buckets to the right — the signature shape
    the warehouse gate's EMD/chi-squared metrics are stress-tested
    against.  GC is a pure function of the program counter, so the
    pauses land on the same requests in every same-seed run.
    """

    name = "ssd"

    def __init__(self, num_blocks: int = 262_144,
                 read_latency: float = seconds(55e-6),
                 program_latency: float = seconds(250e-6),
                 gc_pause: float = seconds(2.5e-3),
                 gc_period: int = 64):
        if gc_period < 1:
            raise ValueError("gc_period must be >= 1")
        if read_latency <= 0 or program_latency <= 0 or gc_pause < 0:
            raise ValueError("latencies must be positive")
        # Erase blocks play tracks' role in the address space: the
        # geometry maps blocks to erase blocks and validates ranges,
        # but contributes no mechanical timing.
        self.geometry = DiskGeometry(num_blocks=num_blocks,
                                     blocks_per_track=gc_period)
        self.read_latency = read_latency
        self.program_latency = program_latency
        self.gc_pause = gc_pause
        self.gc_period = gc_period
        self.pages_programmed = 0
        self.gc_pauses = 0

    def service_time(self, request, rng: SimRandom) -> Tuple[float, bool]:
        return self.service_block(request.block, request, rng)

    def service_block(self, block: int, request,
                      rng: SimRandom) -> Tuple[float, bool]:
        disk = self.disk
        if request.is_write:
            latency = rng.jitter(self.program_latency, sigma=0.1)
            self.pages_programmed += 1
            if self.pages_programmed % self.gc_period == 0:
                # The erase block is full: collect before programming.
                latency += rng.jitter(self.gc_pause, sigma=0.1)
                self.gc_pauses += 1
        else:
            latency = rng.jitter(self.read_latency, sigma=0.1)
        if disk.error_rate > 0 and rng.chance(disk.error_rate):
            request._attempt_failed = True
        else:
            request._attempt_failed = False
        return latency, False


class RAID0Model(DeviceModel):
    """Block-interleaved striping over N child devices.

    Stripe ``s = block // stripe_blocks`` lives on child ``s % N`` at
    child-local stripe ``s // N``.  Each child is an independent service
    channel with its own queue (FIFO — the array controller dispatches
    in arrival order; the child's head state still shapes its service
    times), so concurrent requests to different children overlap and
    queueing narrows versus one spindle.  A request completes when its
    child completes — there is no array-level barrier.

    Children default to spindles but can be any models implementing
    ``service_block`` (e.g. an SSD array).  Each child draws from its
    own RNG stream forked at attach, so per-child timing is independent
    of how requests interleave across the array.
    """

    name = "raid0"

    def __init__(self, num_children: int = 2, stripe_blocks: int = 128,
                 num_blocks: int = 262_144, children: Optional[List] = None):
        if num_children < 1:
            raise ValueError("raid0 needs at least one child device")
        if stripe_blocks < 1:
            raise ValueError("stripe_blocks must be >= 1")
        self.stripe_blocks = stripe_blocks
        self.geometry = DiskGeometry(num_blocks=num_blocks,
                                     blocks_per_track=stripe_blocks)
        if children is None:
            stripes = (num_blocks + stripe_blocks - 1) // stripe_blocks
            child_stripes = (stripes + num_children - 1) // num_children
            child_blocks = child_stripes * stripe_blocks
            children = [
                SpindleModel(DiskGeometry(num_blocks=child_blocks,
                                          blocks_per_track=stripe_blocks))
                for _ in range(num_children)]
        elif len(children) != num_children:
            raise ValueError("children must match num_children")
        self.children = children
        self._child_rngs: List[SimRandom] = []

    def attach(self, disk) -> None:
        super().attach(disk)
        self._child_rngs = [disk.rng.fork(f"raid:{i}")
                            for i in range(len(self.children))]
        for child in self.children:
            child.attach(disk)

    def channels(self) -> int:
        return len(self.children)

    def channel_of(self, request) -> int:
        return (request.block // self.stripe_blocks) % len(self.children)

    def child_block(self, block: int) -> int:
        """Translate a global block to its child-local address."""
        stripe, offset = divmod(block, self.stripe_blocks)
        return (stripe // len(self.children)) * self.stripe_blocks + offset

    def service_time(self, request, rng: SimRandom) -> Tuple[float, bool]:
        index = self.channel_of(request)
        return self.children[index].service_block(
            self.child_block(request.block), request,
            self._child_rngs[index])


class ThrottledModel(DeviceModel):
    """Token-bucket IOPS cap around any inner model (cgroup io.max).

    The bucket holds up to ``burst`` tokens and refills continuously at
    ``iops`` tokens per second.  Each request consumes one token; with
    the bucket empty, service is delayed until its token accrues.  Under
    saturation completions pace at exactly ``1/iops``, so latencies
    collapse onto a plateau at ``queue_depth / iops`` — several buckets
    above anything the inner device would produce — which is the
    signature shape of cgroup-style throttling in a latency profile.
    """

    name = "throttled"

    def __init__(self, inner: DeviceModel, iops: float = 600.0,
                 burst: float = 4.0):
        if iops <= 0:
            raise ValueError("iops must be positive")
        if burst < 1:
            raise ValueError("burst must be >= 1 token")
        self.inner = inner
        self.iops = iops
        self.burst = float(burst)
        #: Tokens per simulated cycle.
        self._rate = iops / CYCLES_PER_SECOND
        self._tokens = float(burst)
        self._last = 0.0
        self.throttle_delays = 0
        self.name = f"throttled({inner.name})"

    @property
    def geometry(self) -> DiskGeometry:
        return self.inner.geometry

    def attach(self, disk) -> None:
        super().attach(disk)
        self.inner.attach(disk)

    def validate(self, block: int) -> None:
        self.inner.validate(block)

    def channels(self) -> int:
        return self.inner.channels()

    def channel_of(self, request) -> int:
        return self.inner.channel_of(request)

    def pick_next(self, queue: List, channel: int):
        return self.inner.pick_next(queue, channel)

    def service_time(self, request, rng: SimRandom) -> Tuple[float, bool]:
        now = self.disk.kernel.now
        self._tokens = min(self.burst,
                           self._tokens + (now - self._last) * self._rate)
        if self._tokens >= 1.0:
            self._tokens -= 1.0
            self._last = now
            delay = 0.0
        else:
            # Wait for the fractional remainder of the next token; it
            # is consumed the moment it accrues.
            delay = (1.0 - self._tokens) / self._rate
            self._tokens = 0.0
            self._last = now + delay
            self.throttle_delays += 1
        latency, cache_hit = self.inner.service_time(request, rng)
        return delay + latency, cache_hit

"""The disk device: request queue, head, segment cache, completions.

The device is autonomous: requests are submitted to its queue and served
one at a time without consuming any simulated CPU — the submitting
process may continue (asynchronous write) or block on the request's
completion condition (synchronous read), which is exactly why "file
system writes and asynchronous I/O requests return immediately after
scheduling the I/O request [so] their latency contains no information
about the associated I/O times" (Section 4) — and why the paper added a
driver-level profiler.

Service time per request:

* **segment-cache hit** (read of a cached track): command + bus overhead
  only — Figure 7's sharp third peak (~40-75 us), or
* **media access**: seek (0-8 ms) + rotational delay (0-4 ms) +
  transfer — the broad fourth peak,

after which the whole track is resident (readahead fill).
"""

from __future__ import annotations

from typing import List, Optional

from ..sim.engine import seconds
from ..sim.process import Condition, ProcBody, WaitCondition
from ..sim.rng import SimRandom
from ..sim.scheduler import Kernel
from .cache import SegmentCache
from .geometry import DiskGeometry

__all__ = ["DiskRequest", "Disk", "DEFAULT_COMMAND_OVERHEAD"]

#: Controller command processing + bus transfer overhead (~45 us): the
#: floor for any disk request, and nearly all of a cache hit's latency.
DEFAULT_COMMAND_OVERHEAD = seconds(45e-6)


class DiskRequest:
    """One block I/O request and its completion bookkeeping."""

    __slots__ = ("block", "is_write", "submitted_at", "started_at",
                 "completed_at", "condition", "cache_hit", "seek_cycles",
                 "retries", "failed", "_attempt_failed", "context")

    def __init__(self, block: int, is_write: bool):
        self.block = block
        self.is_write = is_write
        self.submitted_at = 0.0
        self.started_at = 0.0
        self.completed_at = 0.0
        self.condition = Condition(f"io:{'w' if is_write else 'r'}{block}")
        self.cache_hit = False
        self.seek_cycles = 0.0
        #: Media-error recovery bookkeeping (failure injection).
        self.retries = 0
        self.failed = False
        self._attempt_failed = False
        #: RequestContext of the submitting request, stamped by the
        #: driver so completion events keep their cross-layer identity.
        self.context = None

    @property
    def latency(self) -> float:
        """Queue + service time, valid after completion."""
        return self.completed_at - self.submitted_at

    def __repr__(self) -> str:
        kind = "write" if self.is_write else "read"
        return f"<DiskRequest {kind} block={self.block}>"


class Disk:
    """A single-spindle disk with an optional elevator scheduler."""

    def __init__(self, kernel: Kernel,
                 geometry: Optional[DiskGeometry] = None,
                 cache_segments: int = 8,
                 elevator: bool = True,
                 command_overhead: float = DEFAULT_COMMAND_OVERHEAD,
                 rng: Optional[SimRandom] = None,
                 error_rate: float = 0.0,
                 max_retries: int = 3):
        if not 0.0 <= error_rate < 1.0:
            raise ValueError("error_rate must be in [0, 1)")
        if max_retries < 0:
            raise ValueError("max_retries must be non-negative")
        self.kernel = kernel
        self.geometry = geometry if geometry is not None else DiskGeometry()
        self.cache = SegmentCache(cache_segments)
        self.elevator = elevator
        self.command_overhead = command_overhead
        #: Failure injection: probability a media access fails and the
        #: drive retries internally (ECC error, remapped sector...).
        #: Retries are transparent to callers except in latency — the
        #: OSprof-visible symptom of a failing disk.
        self.error_rate = error_rate
        self.max_retries = max_retries
        self.media_errors = 0
        self.retries_performed = 0
        self.rng = rng if rng is not None else kernel.rng.fork("disk")
        self.head_track = 0
        self.busy = False
        self.queue: List[DiskRequest] = []
        self.requests_served = 0
        self.reads = 0
        self.writes = 0
        self.total_seek_cycles = 0.0
        #: Completion listeners, called with each finished request —
        #: how the instrumented driver observes asynchronous writes.
        self.on_complete: List = []

    # -- submission ----------------------------------------------------------

    def submit(self, block: int, is_write: bool = False) -> DiskRequest:
        """Queue a request; returns it immediately (fire-and-forget OK)."""
        request = DiskRequest(block, is_write)
        request.submitted_at = self.kernel.now
        self.geometry.track_of(block)  # validates the block number
        self.queue.append(request)
        if not self.busy:
            self._start_next()
        return request

    def read(self, block: int) -> ProcBody:
        """Generator: submit a read and block until it completes."""
        request = self.submit(block, is_write=False)
        yield WaitCondition(request.condition)
        return request

    def write(self, block: int) -> ProcBody:
        """Generator: submit a write and block until it completes."""
        request = self.submit(block, is_write=True)
        yield WaitCondition(request.condition)
        return request

    def wait(self, request: DiskRequest) -> ProcBody:
        """Generator: block until an already-submitted request completes."""
        if request.completed_at > 0:
            return request
            yield  # pragma: no cover
        yield WaitCondition(request.condition)
        return request

    # -- service loop ------------------------------------------------------------

    def _pick_next(self) -> DiskRequest:
        """Elevator: nearest track first; otherwise FIFO."""
        if not self.elevator or len(self.queue) == 1:
            return self.queue.pop(0)
        best_index = 0
        best_distance = None
        for i, req in enumerate(self.queue):
            distance = abs(self.geometry.track_of(req.block)
                           - self.head_track)
            if best_distance is None or distance < best_distance:
                best_index, best_distance = i, distance
        return self.queue.pop(best_index)

    def _service_time(self, request: DiskRequest) -> float:
        track = self.geometry.track_of(request.block)
        overhead = self.rng.jitter(self.command_overhead, sigma=0.1)
        if not request.is_write and self.cache.lookup(track):
            request.cache_hit = True
            return overhead
        seek = self.geometry.seek_time(self.head_track, track)
        request.seek_cycles = seek
        self.total_seek_cycles += seek
        rotation = self.geometry.rotational_delay(self.rng)
        transfer = self.geometry.transfer_time()
        self.head_track = track
        if self.error_rate > 0 and self.rng.chance(self.error_rate):
            # The media access failed: the sector must be re-read on a
            # later rotation.  No readahead fill for a failed access.
            request._attempt_failed = True
            self.media_errors += 1
        else:
            request._attempt_failed = False
            self.cache.fill(track)
        return overhead + seek + rotation + transfer

    def _start_next(self) -> None:
        if not self.queue:
            return
        self.busy = True
        request = self._pick_next()
        request.started_at = self.kernel.now
        service = self._service_time(request)
        self.kernel.engine.schedule(
            service, lambda r=request: self._complete(r))

    def _complete(self, request: DiskRequest) -> None:
        if request._attempt_failed:
            request._attempt_failed = False
            if request.retries < self.max_retries:
                # Internal retry: service the same request again; the
                # caller only sees the added latency.
                request.retries += 1
                self.retries_performed += 1
                self.queue.insert(0, request)
                self.busy = False
                self._start_next()
                return
            request.failed = True
        request.completed_at = self.kernel.now
        self.requests_served += 1
        if request.is_write:
            self.writes += 1
        else:
            self.reads += 1
        self.kernel.fire_condition(request.condition, request,
                                   wake_all=True)
        for listener in self.on_complete:
            listener(request)
        self.busy = False
        self._start_next()

    # -- introspection -------------------------------------------------------------

    def queue_depth(self) -> int:
        return len(self.queue) + (1 if self.busy else 0)

    def __repr__(self) -> str:
        return (f"<Disk track={self.head_track} queue={len(self.queue)} "
                f"served={self.requests_served}>")

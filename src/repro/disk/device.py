"""The disk device: a model-agnostic queue/completion engine.

The device is autonomous: requests are submitted to its queue and served
without consuming any simulated CPU — the submitting process may
continue (asynchronous write) or block on the request's completion
condition (synchronous read), which is exactly why "file system writes
and asynchronous I/O requests return immediately after scheduling the
I/O request [so] their latency contains no information about the
associated I/O times" (Section 4) — and why the paper added a
driver-level profiler.

Where the time *goes* is delegated to a pluggable
:class:`~repro.disk.model.DeviceModel`: the engine owns per-channel
request queues, completion conditions and listeners, and the
media-error retry loop; the model owns service times, the queue
discipline, and the request→channel mapping (a RAID array services one
channel per child device).  The default model is the paper's 15 kRPM
:class:`~repro.disk.model.SpindleModel`, byte-identical to the
pre-refactor hard-wired spindle.
"""

from __future__ import annotations

from typing import List, Optional

from ..sim.process import Condition, ProcBody, WaitCondition
from ..sim.rng import SimRandom
from ..sim.scheduler import Kernel
from .geometry import DiskGeometry
from .model import DEFAULT_COMMAND_OVERHEAD, DeviceModel, SpindleModel

__all__ = ["DiskRequest", "Disk", "DEFAULT_COMMAND_OVERHEAD"]


class DiskRequest:
    """One block I/O request and its completion bookkeeping."""

    __slots__ = ("block", "is_write", "submitted_at", "started_at",
                 "completed_at", "condition", "cache_hit", "seek_cycles",
                 "retries", "failed", "_attempt_failed", "context")

    def __init__(self, block: int, is_write: bool):
        self.block = block
        self.is_write = is_write
        self.submitted_at = 0.0
        self.started_at = 0.0
        self.completed_at = 0.0
        self.condition = Condition(f"io:{'w' if is_write else 'r'}{block}")
        self.cache_hit = False
        self.seek_cycles = 0.0
        #: Media-error recovery bookkeeping (failure injection).
        self.retries = 0
        self.failed = False
        self._attempt_failed = False
        #: RequestContext of the submitting request, stamped by the
        #: driver so completion events keep their cross-layer identity.
        self.context = None

    @property
    def latency(self) -> float:
        """Queue + service time, valid after completion."""
        return self.completed_at - self.submitted_at

    def __repr__(self) -> str:
        kind = "write" if self.is_write else "read"
        return f"<DiskRequest {kind} block={self.block}>"


class Disk:
    """The block device engine fronting a pluggable device model.

    With no ``model``, builds the classic single-spindle disk from the
    legacy keyword arguments (``geometry``/``cache_segments``/
    ``elevator``/``command_overhead``) — the byte-identity reference.
    With ``model``, those knobs belong to the model and must be left at
    their defaults.

    ``fault_plan`` arms the ``device.service`` site: a matching point
    marks the in-service attempt as a media error, exercising the same
    transparent-retry path organic ``error_rate`` failures take —
    OSprof's visible symptom either way is only the added latency.
    """

    def __init__(self, kernel: Kernel,
                 geometry: Optional[DiskGeometry] = None,
                 cache_segments: int = 8,
                 elevator: bool = True,
                 command_overhead: float = DEFAULT_COMMAND_OVERHEAD,
                 rng: Optional[SimRandom] = None,
                 error_rate: float = 0.0,
                 max_retries: int = 3,
                 model: Optional[DeviceModel] = None,
                 fault_plan=None):
        if not 0.0 <= error_rate < 1.0:
            raise ValueError("error_rate must be in [0, 1)")
        if max_retries < 0:
            raise ValueError("max_retries must be non-negative")
        if model is not None and geometry is not None:
            raise ValueError("give geometry or model, not both")
        self.kernel = kernel
        #: Failure injection: probability a media access fails and the
        #: drive retries internally (ECC error, remapped sector...).
        #: Retries are transparent to callers except in latency — the
        #: OSprof-visible symptom of a failing disk.
        self.error_rate = error_rate
        self.max_retries = max_retries
        self.media_errors = 0
        self.retries_performed = 0
        self.rng = rng if rng is not None else kernel.rng.fork("disk")
        self.total_seek_cycles = 0.0
        self._fault_plan = fault_plan
        if model is None:
            model = SpindleModel(
                geometry=geometry if geometry is not None else DiskGeometry(),
                cache_segments=cache_segments, elevator=elevator,
                command_overhead=command_overhead)
        self.model = model
        model.attach(self)
        channels = model.channels()
        if channels < 1:
            raise ValueError("device model must expose >= 1 channel")
        self.queues: List[List[DiskRequest]] = [[] for _ in range(channels)]
        self.busy_channels: List[bool] = [False] * channels
        self.requests_served = 0
        self.reads = 0
        self.writes = 0
        #: Completion listeners, called with each finished request —
        #: how the instrumented driver observes asynchronous writes.
        self.on_complete: List = []

    # -- model attribute pass-throughs ----------------------------------------

    @property
    def geometry(self) -> DiskGeometry:
        """The model's block-address space (allocators read num_blocks)."""
        return self.model.geometry

    @property
    def cache(self):
        """The spindle segment cache (models without one have no attr)."""
        return self.model.cache

    @property
    def elevator(self) -> bool:
        return self.model.elevator

    @elevator.setter
    def elevator(self, value: bool) -> None:
        self.model.elevator = value

    @property
    def head_track(self) -> int:
        return getattr(self.model, "head_track", 0)

    @property
    def busy(self) -> bool:
        return any(self.busy_channels)

    # -- submission ----------------------------------------------------------

    def submit(self, block: int, is_write: bool = False) -> DiskRequest:
        """Queue a request; returns it immediately (fire-and-forget OK)."""
        request = DiskRequest(block, is_write)
        request.submitted_at = self.kernel.now
        self.model.validate(block)  # raises on a bad block number
        channel = self.model.channel_of(request)
        self.queues[channel].append(request)
        if not self.busy_channels[channel]:
            self._start_next(channel)
        return request

    def read(self, block: int) -> ProcBody:
        """Generator: submit a read and block until it completes."""
        request = self.submit(block, is_write=False)
        yield WaitCondition(request.condition)
        return request

    def write(self, block: int) -> ProcBody:
        """Generator: submit a write and block until it completes."""
        request = self.submit(block, is_write=True)
        yield WaitCondition(request.condition)
        return request

    def wait(self, request: DiskRequest) -> ProcBody:
        """Generator: block until an already-submitted request completes."""
        if request.completed_at > 0:
            return request
            yield  # pragma: no cover
        yield WaitCondition(request.condition)
        return request

    # -- service loop ------------------------------------------------------------

    def _start_next(self, channel: int) -> None:
        queue = self.queues[channel]
        if not queue:
            return
        self.busy_channels[channel] = True
        request = self.model.pick_next(queue, channel)
        request.started_at = self.kernel.now
        service, cache_hit = self.model.service_time(request, self.rng)
        request.cache_hit = cache_hit
        if self._fault_plan is not None:
            point = self._fault_plan.point_at(
                "device.service",
                key="write" if request.is_write else "read",
                attempt=request.retries)
            if point is not None:
                request._attempt_failed = True
        if request._attempt_failed:
            self.media_errors += 1
        self.kernel.engine.schedule(
            service, lambda r=request, c=channel: self._complete(r, c))

    def _complete(self, request: DiskRequest, channel: int) -> None:
        if request._attempt_failed:
            request._attempt_failed = False
            if request.retries < self.max_retries:
                # Internal retry: service the same request again; the
                # caller only sees the added latency.
                request.retries += 1
                self.retries_performed += 1
                self.queues[channel].insert(0, request)
                self.busy_channels[channel] = False
                self._start_next(channel)
                return
            request.failed = True
        request.completed_at = self.kernel.now
        self.requests_served += 1
        if request.is_write:
            self.writes += 1
        else:
            self.reads += 1
        self.kernel.fire_condition(request.condition, request,
                                   wake_all=True)
        for listener in self.on_complete:
            listener(request)
        self.busy_channels[channel] = False
        self._start_next(channel)

    # -- introspection -------------------------------------------------------------

    def queue_depth(self) -> int:
        return (sum(len(queue) for queue in self.queues)
                + sum(1 for b in self.busy_channels if b))

    def __repr__(self) -> str:
        queued = sum(len(queue) for queue in self.queues)
        return (f"<Disk model={self.model.name} queue={queued} "
                f"served={self.requests_served}>")

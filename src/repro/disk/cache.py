"""The drive's internal readahead cache.

Figure 7's third peak — "the fastest I/O requests possible ... satisfied
from the disk cache due to internal disk readahead" — exists because the
drive, having positioned the head on a track, keeps reading and caches
the whole track in its segment buffer.  A later request for a block of
that track is served at bus speed (tens of microseconds), without any
mechanical delay.

:class:`SegmentCache` models that buffer: a small LRU of track-sized
segments.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Optional

__all__ = ["SegmentCache"]


class SegmentCache:
    """LRU cache of whole tracks, keyed by track number."""

    def __init__(self, segments: int = 8):
        if segments < 0:
            raise ValueError("segment count must be non-negative")
        self.capacity = segments
        self._tracks: "OrderedDict[int, bool]" = OrderedDict()
        self.hits = 0
        self.misses = 0

    def lookup(self, track: int) -> bool:
        """True when *track* is resident (counts hit/miss stats)."""
        if track in self._tracks:
            self._tracks.move_to_end(track)
            self.hits += 1
            return True
        self.misses += 1
        return False

    def fill(self, track: int) -> None:
        """Insert a track after a media read (the readahead fill)."""
        if self.capacity == 0:
            return
        if track in self._tracks:
            self._tracks.move_to_end(track)
            return
        if len(self._tracks) >= self.capacity:
            self._tracks.popitem(last=False)
        self._tracks[track] = True

    def resident(self, track: int) -> bool:
        """Non-statistical peek (for tests and assertions)."""
        return track in self._tracks

    def invalidate(self) -> None:
        """Drop everything (e.g. after a write barrier)."""
        self._tracks.clear()

    def hit_rate(self) -> float:
        total = self.hits + self.misses
        if total == 0:
            return 0.0
        return self.hits / total

    def __len__(self) -> int:
        return len(self._tracks)

"""The scenario registry: one table that builds every system.

The paper's six case studies all ran on one hardware configuration — a
single 15 kRPM SCSI spindle — so the alerter/gate corpus could only
ever contain the latency pathologies that spindle produces.  A
*scenario* bundles a device model with the workload and parameters that
surface its signature latency shape, and every consumer — the ``osprof
run`` CLI, shard workers, the fault matrix, pinned captures, and the CI
gate fixtures — constructs its simulated machine from this table, so a
scenario behaves identically no matter which door it enters through.

Clean scenarios pin the healthy profile of each device model;
regression variants (``*-worn``, ``*-degraded``, ``*-tight``) are the
same models with a realistic pathology dialled in, and exist so the
warehouse gate provably breaches (exit 3) when a device regresses —
growing the corpus from the paper's six case studies toward a matrix.

Scenario membership is part of the public CLI surface:
``osprof run --list-scenarios`` prints this table.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Optional

from .disk.model import DeviceModel, RAID0Model, SSDModel, ThrottledModel
from .sim.engine import seconds

__all__ = ["Scenario", "SCENARIOS", "UnknownScenarioError", "get_scenario",
           "build_device", "build_system", "render_scenarios"]


class UnknownScenarioError(ValueError):
    """Raised for a scenario name missing from the registry.

    The message always carries the full registry listing so a CLI user
    sees their options in the error itself.
    """

    def __init__(self, name: str):
        super().__init__(
            f"unknown scenario {name!r}; available scenarios: "
            f"{', '.join(sorted(SCENARIOS))}")
        self.name = name


@dataclass(frozen=True)
class Scenario:
    """One row of the matrix: a device model plus its workload defaults.

    ``device_factory`` returns a *fresh* model per call (models carry
    run state: head positions, GC counters, token buckets) or ``None``
    for the stock spindle — the byte-identity reference configuration,
    constructed exactly as a scenario-less ``System.build``.  The
    workload parameters are defaults: explicit CLI flags and API
    arguments override them.
    """

    name: str
    description: str
    workload: str
    device: str                      #: human-readable device label
    device_factory: Optional[Callable[[], DeviceModel]] = None
    fs_type: str = "ext2"
    processes: int = 2
    iterations: int = 1000
    scale: float = 0.02


def _ssd() -> DeviceModel:
    # A small-over-provisioning consumer drive: foreground GC every 16
    # programs, often enough that the slow mode is a real peak.
    return SSDModel(gc_period=16)


def _ssd_worn() -> DeviceModel:
    # A worn drive: sparse free pool, so GC runs 4x as often and each
    # collection relocates more data; programs slow as cells age.
    return SSDModel(gc_period=4, gc_pause=seconds(10e-3),
                    program_latency=seconds(400e-6))


def _raid0() -> DeviceModel:
    return RAID0Model(num_children=2)


def _raid0_degraded() -> DeviceModel:
    # The array collapsed to one member: same striped address space,
    # no parallelism left — every queue-split benefit gone.
    return RAID0Model(num_children=1)


def _throttled() -> DeviceModel:
    return ThrottledModel(SSDModel(), iops=60.0, burst=4)


def _throttled_tight() -> DeviceModel:
    # The cgroup limit cut to a third: the plateau shifts buckets
    # upward and swallows the device's native latency entirely.
    return ThrottledModel(SSDModel(), iops=20.0, burst=2)


SCENARIOS: Dict[str, Scenario] = {scenario.name: scenario for scenario in (
    Scenario(
        name="spindle-randomread",
        description="baseline: the paper's Section 6.1 random-read "
                    "workload on the stock 15kRPM SCSI spindle",
        workload="randomread", device="spindle (15kRPM SCSI)",
        device_factory=None, processes=2, iterations=800),
    Scenario(
        name="ssd-gc",
        description="flash under a write-heavy workload: bimodal "
                    "disk_write profile from erase-block GC pauses",
        workload="postmark", device="ssd",
        device_factory=_ssd, iterations=1600),
    Scenario(
        name="ssd-gc-worn",
        description="regression variant of ssd-gc: a worn drive with "
                    "4x GC frequency and 4x pause (gate must breach)",
        workload="postmark", device="ssd (worn)",
        device_factory=_ssd_worn, iterations=1600),
    Scenario(
        name="raid0-stripe",
        description="2-spindle RAID-0 under overlapping random reads "
                    "(private files, no shared i_sem): per-child "
                    "queues split the load and the disk_read profile "
                    "narrows versus one spindle",
        workload="randomread-private", device="raid0 (2 spindles)",
        device_factory=_raid0, processes=8, iterations=600),
    Scenario(
        name="raid0-degraded",
        description="regression variant of raid0-stripe: the array "
                    "reduced to one member, all queueing on one "
                    "spindle (gate must breach)",
        workload="randomread-private",
        device="raid0 (1 spindle, degraded)",
        device_factory=_raid0_degraded, processes=8, iterations=600),
    Scenario(
        name="throttled-iops",
        description="cgroup-style 60-IOPS token bucket over an SSD: "
                    "six readers contend for tokens and disk_read "
                    "collapses onto the inter-token plateau",
        workload="randomread", device="throttled(ssd) @60iops",
        device_factory=_throttled, processes=6, iterations=400),
    Scenario(
        name="throttled-iops-tight",
        description="regression variant of throttled-iops: the cap cut "
                    "to 20 IOPS (gate must breach)",
        workload="randomread", device="throttled(ssd) @20iops",
        device_factory=_throttled_tight, processes=6, iterations=400),
)}


def get_scenario(name: str) -> Scenario:
    """Look up a scenario; raise :class:`UnknownScenarioError` if absent."""
    try:
        return SCENARIOS[name]
    except KeyError:
        raise UnknownScenarioError(name) from None


def build_device(scenario: Optional[str]) -> Optional[DeviceModel]:
    """A fresh device model for a scenario (None = stock spindle)."""
    if scenario is None:
        return None
    found = get_scenario(scenario)
    if found.device_factory is None:
        return None
    return found.device_factory()


def build_system(scenario: Optional[str] = None, *,
                 fs_type: str = "ext2", num_cpus: int = 1,
                 seed: int = 2006, patched_llseek: bool = False,
                 kernel_preemption: bool = False,
                 with_timer: bool = False, **build_kwargs):
    """The one construction funnel: registry row -> wired System.

    Every scenario consumer builds its machine here, so the CLI, shard
    workers, the fault matrix, and gate fixtures cannot drift apart in
    how a scenario's device is wired.  ``scenario=None`` is the plain
    default machine (identical to ``System.build`` with no device).
    """
    from .system import System
    return System.build(fs_type=fs_type, num_cpus=num_cpus, seed=seed,
                        patched_llseek=patched_llseek,
                        kernel_preemption=kernel_preemption,
                        with_timer=with_timer,
                        device=build_device(scenario), **build_kwargs)


def render_scenarios() -> str:
    """The ``--list-scenarios`` table: name, device, workload, description."""
    rows = [(s.name, s.device, s.workload, s.description)
            for _, s in sorted(SCENARIOS.items())]
    header = ("scenario", "device model", "workload", "description")
    widths = [max(len(header[i]), *(len(r[i]) for r in rows))
              for i in range(3)]
    lines = ["  ".join(h.ljust(w) for h, w in zip(header[:3], widths))
             + "  " + header[3],
             "  ".join("-" * w for w in widths) + "  " + "-" * 11]
    for name, device, workload, description in rows:
        lines.append(f"{name.ljust(widths[0])}  {device.ljust(widths[1])}  "
                     f"{workload.ljust(widths[2])}  {description}")
    return "\n".join(lines)

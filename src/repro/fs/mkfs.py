"""File system construction: block allocation and tree building.

``mkfs``-time helpers populate a simulated file system *before* the
simulation starts — the equivalent of untarring a source tree onto a
freshly formatted disk, then unmounting and remounting so all caches
are cold (the paper unmounted and remounted before every benchmark run,
and ran ``chill`` to evict OS caches).

Block allocation is first-fit sequential with optional gaps, modelling
Ext2's block groups well enough for seek behaviour: files created
together sit near each other; directories far apart in the tree sit on
distant tracks, so a recursive grep pays real seeks.
"""

from __future__ import annotations

from typing import List, Optional

from ..disk.geometry import BLOCK_SIZE, DiskGeometry
from ..sim.rng import SimRandom
from ..vfs.inode import Inode, InodeTable, S_IFDIR, S_IFREG

__all__ = ["BlockAllocator", "TreeBuilder"]


class BlockAllocator:
    """Sequential first-fit block allocator with fragmentation knobs."""

    def __init__(self, geometry: DiskGeometry,
                 rng: Optional[SimRandom] = None,
                 fragmentation: float = 0.02):
        if not 0.0 <= fragmentation < 1.0:
            raise ValueError("fragmentation must be in [0, 1)")
        self.geometry = geometry
        self.rng = rng if rng is not None else SimRandom(7)
        self.fragmentation = fragmentation
        self._next = 0
        self.allocated = 0

    def allocate(self, count: int = 1) -> List[int]:
        """Allocate *count* (mostly) contiguous blocks."""
        if count < 1:
            raise ValueError("must allocate at least one block")
        blocks = []
        for _ in range(count):
            if self.rng.chance(self.fragmentation):
                # Skip ahead: a hole left by deleted files.
                self._next += self.rng.randint(1, 64)
            if self._next >= self.geometry.num_blocks:
                raise RuntimeError("disk full")
            blocks.append(self._next)
            self._next += 1
            self.allocated += 1
        return blocks

    def free_space(self) -> int:
        return self.geometry.num_blocks - self._next


class TreeBuilder:
    """Creates directories and files directly in an inode table."""

    def __init__(self, inodes: InodeTable, allocator: BlockAllocator):
        self.inodes = inodes
        self.allocator = allocator
        self.files_created = 0
        self.dirs_created = 0

    def make_root(self) -> Inode:
        root = self.inodes.allocate(S_IFDIR)
        root.blocks = self.allocator.allocate(1)
        self.dirs_created += 1
        return root

    def mkdir(self, parent: Inode, name: str) -> Inode:
        """Create a directory and link it into *parent*."""
        if not parent.is_dir:
            raise ValueError("parent is not a directory")
        if parent.lookup_entry(name) is not None:
            raise FileExistsError(name)
        child = self.inodes.allocate(S_IFDIR)
        child.blocks = self.allocator.allocate(1)
        parent.add_entry(name, child.ino)
        self._grow_dir_blocks(parent)
        self.dirs_created += 1
        return child

    def mkfile(self, parent: Inode, name: str, size_bytes: int) -> Inode:
        """Create a regular file of the given size in *parent*."""
        if not parent.is_dir:
            raise ValueError("parent is not a directory")
        if parent.lookup_entry(name) is not None:
            raise FileExistsError(name)
        if size_bytes < 0:
            raise ValueError("size must be non-negative")
        child = self.inodes.allocate(S_IFREG)
        child.size = size_bytes
        pages = max(1, (size_bytes + BLOCK_SIZE - 1) // BLOCK_SIZE)
        if size_bytes == 0:
            pages = 0
        if pages:
            child.blocks = self.allocator.allocate(pages)
        parent.add_entry(name, child.ino)
        self._grow_dir_blocks(parent)
        self.files_created += 1
        return child

    def _grow_dir_blocks(self, directory: Inode) -> None:
        """Ensure the directory has one block per page of entries."""
        needed = max(1, directory.num_pages())
        while len(directory.blocks) < needed:
            directory.blocks.extend(self.allocator.allocate(1))

"""File systems: ext2-like, reiserfs-like, path walking, mkfs, bdflush."""

from .bdflush import DATA_PERIOD, METADATA_PERIOD, make_flush_daemons
from .ext2 import Ext2, READDIR_CHUNK
from .ext3 import Ext3
from .mkfs import BlockAllocator, TreeBuilder
from .filterdrv import MAJOR_FUNCTIONS, FilterDriver
from .namei import LOOKUP_COMPONENT_COST, PathWalker
from .ntfs import FASTIO_OVERHEAD, IRP_OVERHEAD, Ntfs
from .reiserfs import Reiserfs

__all__ = ["DATA_PERIOD", "METADATA_PERIOD", "make_flush_daemons",
           "Ext2", "Ext3", "READDIR_CHUNK", "BlockAllocator", "TreeBuilder",
           "LOOKUP_COMPONENT_COST", "PathWalker", "Reiserfs",
           "MAJOR_FUNCTIONS", "FilterDriver",
           "FASTIO_OVERHEAD", "IRP_OVERHEAD", "Ntfs"]

"""An NTFS-flavoured file system behind a Windows I/O stack.

Two Windows-specific behaviours from the paper:

* **No llseek locking.** "We ran the same workload on a Windows NTFS
  file system and found no lock contention.  This is because keeping
  the current file position consistent is left to user-level
  applications on Windows" (Section 6.1) — so ``llseek`` here is a pure
  position update, contention-free by construction.
* **IRP vs Fast I/O.** "The majority of I/O requests to file systems
  are represented by ... the I/O Request Packet (IRP) ... In certain
  cases, such as when accessing cached data, the overhead associated
  with creating an IRP dominates the cost of the entire operation, so
  Windows supports an alternative mechanism called Fast I/O to bypass
  intermediate layers" (Section 4).  :class:`Ntfs` routes cached reads
  through the cheap Fast I/O path and everything else through IRP
  dispatch, and the :class:`~repro.fs.filterdrv.FilterDriver` profiler
  intercepts both kinds of traffic, as the paper's FileMon-based filter
  driver does.
"""

from __future__ import annotations

from typing import Optional

from ..sim.process import CpuBurst, ProcBody, Process
from ..vfs.file import File, SEEK_CUR, SEEK_END, SEEK_SET
from .ext2 import Ext2

__all__ = ["Ntfs", "IRP_OVERHEAD", "FASTIO_OVERHEAD"]

#: CPU cost of allocating, dispatching, and completing an IRP through
#: the driver stack (the overhead Fast I/O exists to avoid).
IRP_OVERHEAD = 3_500.0

#: CPU cost of a Fast I/O call: a direct function call into the FS.
FASTIO_OVERHEAD = 300.0


class Ntfs(Ext2):
    """Ext2's storage behaviour with Windows dispatch semantics."""

    name = "ntfs"

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self.irp_requests = 0
        self.fastio_requests = 0

    # -- Windows dispatch -------------------------------------------------------

    def _page_resident(self, file: File, size: int) -> bool:
        """Would this read be fully satisfied from the cache manager?"""
        if file.direct or size <= 0 or file.pos >= file.inode.size:
            return True  # trivial completions take the fast path too
        cache = self._pagecache()
        remaining = min(size, file.inode.size - file.pos)
        pos = file.pos
        while remaining > 0:
            page_index = pos // 4096
            page = cache.peek(file.inode.ino, page_index)
            if page is None or not page.resident:
                return False
            in_page = min(remaining, 4096 - pos % 4096)
            pos += in_page
            remaining -= in_page
        return True

    def file_read(self, proc: Process, file: File, size: int) -> ProcBody:
        """Fast I/O for cached data; IRP dispatch otherwise."""
        if self._page_resident(file, size):
            self.fastio_requests += 1
            yield CpuBurst(self.kernel.rng.jitter(FASTIO_OVERHEAD,
                                                  sigma=0.3))
        else:
            self.irp_requests += 1
            yield CpuBurst(self.kernel.rng.jitter(IRP_OVERHEAD,
                                                  sigma=0.3))
        count = yield from super().file_read(proc, file, size)
        return count

    def llseek(self, proc: Process, file: File, offset: int,
               whence: int) -> ProcBody:
        """Pure user-visible position update: no inode lock at all."""
        file.require_open()
        yield CpuBurst(self.kernel.rng.jitter(120.0, sigma=0.25))
        if whence == SEEK_SET:
            file.pos = offset
        elif whence == SEEK_CUR:
            file.pos += offset
        elif whence == SEEK_END:
            file.pos = file.inode.size + offset
        else:
            raise ValueError(f"bad whence {whence}")
        if file.pos < 0:
            raise ValueError("seek before start of file")
        return file.pos

    def fastio_fraction(self) -> float:
        """Share of reads served via Fast I/O (cache-warm workloads -> 1)."""
        total = self.irp_requests + self.fastio_requests
        if total == 0:
            return 0.0
        return self.fastio_requests / total

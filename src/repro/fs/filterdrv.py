"""A Windows file-system filter driver (the FileMon-based profiler).

"The Windows kernel-mode profiler is implemented as a file system
filter driver that stacks on top of local or remote file systems ...
Our file system profiler intercepts all IRPs and Fast I/O traffic that
is destined to local or remote file systems" (Section 4).

:class:`FilterDriver` stacks on a mounted file system the same way:
every operation is intercepted, classified as IRP or Fast I/O (reads on
an :class:`~repro.fs.ntfs.Ntfs` consult its dispatch decision; other
operations are IRPs), and profiled under ``IRP_<MAJOR>`` /
``FASTIO_<MAJOR>`` names — the MajorFunction-style labels a Windows
trace shows.
"""

from __future__ import annotations

from typing import Dict, Optional

from ..core.pipeline import Pipeline, ProbePoint, wire_probe
from ..core.profile import Layer
from ..core.profiler import Profiler
from ..sim.process import ProcBody, Process
from ..sim.scheduler import Kernel
from ..vfs.file import File
from ..vfs.vfs import FileSystem
from .ntfs import Ntfs

__all__ = ["FilterDriver", "MAJOR_FUNCTIONS"]

#: Operation -> IRP MajorFunction name (the Windows I/O manager codes).
MAJOR_FUNCTIONS: Dict[str, str] = {
    "file_read": "MJ_READ",
    "file_write": "MJ_WRITE",
    "readdir": "MJ_DIRECTORY_CONTROL",
    "llseek": "MJ_SET_INFORMATION",
    "fsync": "MJ_FLUSH_BUFFERS",
    "create": "MJ_CREATE",
    "unlink": "MJ_SET_INFORMATION",
}


class FilterDriver:
    """Profiled interception of all I/O destined for one file system."""

    def __init__(self, kernel: Kernel, fs: FileSystem,
                 profiler: Optional[Profiler] = None,
                 pipeline: Optional[Pipeline] = None,
                 probe: Optional[ProbePoint] = None):
        self.kernel = kernel
        self.fs = fs
        if profiler is None:
            profiler = Profiler(name="filter", layer=Layer.FILESYSTEM,
                                clock=lambda: kernel.now)
        self.profiler = profiler
        if probe is None:
            owner = pipeline if pipeline is not None \
                else Pipeline(num_cpus=len(kernel.cpus))
            probe = wire_probe(owner, profiler.layer, profiler=profiler,
                               name="filter")
        self.probe_point = probe
        self.pipeline = probe.pipeline
        self.irps_seen = 0
        self.fastio_seen = 0

    # -- interception ------------------------------------------------------------

    def _classify_read(self, file: File, size: int) -> str:
        if isinstance(self.fs, Ntfs) and \
                self.fs._page_resident(file, size):
            return "FASTIO"
        return "IRP"

    def _record(self, kind: str, major: str, latency: float,
                start: float = 0.0, context=None, cpu: int = 0) -> None:
        if kind == "FASTIO":
            self.fastio_seen += 1
        else:
            self.irps_seen += 1
        self.probe_point.record(f"{kind}_{major}", latency, start=start,
                          context=context, cpu=cpu)

    def _intercept(self, proc: Process, kind: str, major: str,
                   body: ProcBody) -> ProcBody:
        probe = self.probe_point
        context = probe.push_context(proc, f"{kind}_{major}") \
            if probe.active else None
        start = self.kernel.read_tsc(proc)
        try:
            result = yield from body
        finally:
            self._record(kind, major,
                         self.kernel.read_tsc(proc) - start,
                         start=start, context=context,
                         cpu=proc.cpu if proc.cpu is not None else 0)
            if context is not None:
                ProbePoint.pop_context(proc, context)
        return result

    # -- the intercepted operations ------------------------------------------------

    def read(self, proc: Process, file: File, size: int) -> ProcBody:
        kind = self._classify_read(file, size)
        return (yield from self._intercept(
            proc, kind, MAJOR_FUNCTIONS["file_read"],
            self.fs.file_read(proc, file, size)))

    def write(self, proc: Process, file: File, size: int) -> ProcBody:
        return (yield from self._intercept(
            proc, "IRP", MAJOR_FUNCTIONS["file_write"],
            self.fs.file_write(proc, file, size)))

    def readdir(self, proc: Process, file: File) -> ProcBody:
        return (yield from self._intercept(
            proc, "IRP", MAJOR_FUNCTIONS["readdir"],
            self.fs.readdir(proc, file)))

    def llseek(self, proc: Process, file: File, offset: int,
               whence: int) -> ProcBody:
        return (yield from self._intercept(
            proc, "FASTIO", MAJOR_FUNCTIONS["llseek"],
            self.fs.llseek(proc, file, offset, whence)))

    def fsync(self, proc: Process, file: File) -> ProcBody:
        return (yield from self._intercept(
            proc, "IRP", MAJOR_FUNCTIONS["fsync"],
            self.fs.fsync(proc, file)))

    # -- results ---------------------------------------------------------------------

    def profile_set(self):
        return self.profiler.profile_set()

    def fastio_share(self) -> float:
        total = self.irps_seen + self.fastio_seen
        if total == 0:
            return 0.0
        return self.fastio_seen / total

"""Path resolution over a simulated file system.

A deliberately dcache-friendly walker: component lookup is an in-memory
scan of the directory's entries plus a per-component CPU charge.  Cold
directory *data* still costs I/O — the first traversal of a directory
happens through ``readdir``/``readpage`` in the workloads, exactly as a
real recursive grep touches directories before opening files in them.
"""

from __future__ import annotations

from typing import List, Optional

from ..sim.process import CpuBurst, ProcBody, Process
from ..sim.scheduler import Kernel
from ..vfs.inode import Inode, InodeTable

__all__ = ["PathWalker", "LOOKUP_COMPONENT_COST"]

#: CPU cost per path component (hash, compare, dcache bookkeeping).
LOOKUP_COMPONENT_COST = 700.0


class PathWalker:
    """Resolves ``/``-separated paths starting at a root inode."""

    def __init__(self, kernel: Kernel, inodes: InodeTable, root: Inode):
        self.kernel = kernel
        self.inodes = inodes
        self.root = root

    @staticmethod
    def split(path: str) -> List[str]:
        """Path components, ignoring empty segments and leading slash."""
        return [c for c in path.split("/") if c]

    def walk(self, proc: Process, path: str) -> ProcBody:
        """Generator: resolve *path* to an inode; KeyError if missing."""
        current = self.root
        for component in self.split(path):
            yield CpuBurst(self.kernel.rng.jitter(LOOKUP_COMPONENT_COST,
                                                  sigma=0.3))
            if not current.is_dir:
                raise NotADirectoryError(component)
            entry = current.lookup_entry(component)
            if entry is None:
                raise KeyError(f"no such file or directory: {path!r} "
                               f"(at {component!r})")
            current = self.inodes.get(entry.ino)
        return current

    def exists(self, path: str) -> bool:
        """Non-simulated existence check (for tests and setup code)."""
        current = self.root
        for component in self.split(path):
            if not current.is_dir:
                return False
            entry = current.lookup_entry(component)
            if entry is None:
                return False
            current = self.inodes.get(entry.ino)
        return True

"""The buffer flush daemon (``bdflush``/``kupdated``).

"On Linux, atime updates are handled by the Linux buffer flushing
daemon, bdflush.  This daemon writes data out to disk only after a
certain amount of time has passed since the buffer was released; the
default is thirty seconds for data and five seconds for metadata.  This
means that every five and thirty seconds, file system behavior may
change due to the influence of bdflush" (Section 6.3).

Two :class:`~repro.sim.interrupts.PeriodicDaemon` instances are built
here: a 5 s metadata flusher that calls the file system's
``write_super`` (on Reiserfs: the journal commit under the big lock)
and a 30 s data flusher that writes back dirty page-cache pages.
"""

from __future__ import annotations

from typing import Optional, Tuple

from ..sim.engine import seconds
from ..sim.interrupts import PeriodicDaemon
from ..sim.process import CpuBurst, ProcBody, Process
from ..sim.scheduler import Kernel
from ..vfs.vfs import Vfs

__all__ = ["make_flush_daemons", "METADATA_PERIOD", "DATA_PERIOD"]

#: Default metadata flush interval (5 s).
METADATA_PERIOD = seconds(5.0)

#: Default data writeback interval (30 s).
DATA_PERIOD = seconds(30.0)

#: CPU spent scanning the dirty lists per wakeup.
SCAN_COST = 20_000.0


def make_flush_daemons(kernel: Kernel, vfs: Vfs,
                       metadata_period: float = METADATA_PERIOD,
                       data_period: float = DATA_PERIOD
                       ) -> Tuple[PeriodicDaemon, PeriodicDaemon]:
    """Create (metadata, data) flush daemons for a mounted file system.

    The daemons are returned un-started; call ``.start()`` on each.
    """
    fs = vfs.fs

    def metadata_flush(proc: Process) -> ProcBody:
        yield CpuBurst(kernel.rng.jitter(SCAN_COST, sigma=0.3))
        # write_super is a VFS operation: FoSgen instruments it like any
        # other, which is how Figure 9's top panel was captured.
        yield from vfs.instrument(proc, "write_super",
                                  fs.write_super(proc))
        return None

    def data_flush(proc: Process) -> ProcBody:
        yield CpuBurst(kernel.rng.jitter(SCAN_COST, sigma=0.3))
        dirty = vfs.pagecache.dirty_pages()
        flushed = 0
        for page in dirty:
            ino, page_index = page.key
            try:
                inode = fs.inodes.get(ino)  # type: ignore[attr-defined]
                block = inode.block_for(page_index)
            except (AttributeError, KeyError, ValueError):
                continue
            yield from fs.driver.write(block)  # type: ignore[attr-defined]
            vfs.pagecache.clean(page)
            flushed += 1
        return flushed

    metadata_daemon = PeriodicDaemon(kernel, "bdflush-meta",
                                     metadata_period, metadata_flush)
    data_daemon = PeriodicDaemon(kernel, "bdflush-data",
                                 data_period, data_flush)
    return metadata_daemon, data_daemon

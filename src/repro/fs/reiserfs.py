"""A Reiserfs-3.6-like journaled file system (the Figure 9 case study).

On Linux 2.4.24, Reiserfs serialized much of its operation on a
per-superblock lock; ``write_super`` — invoked by the buffer flush
daemon every 5 seconds for metadata — holds that lock while committing
the journal to disk.  Reads arriving during a commit stall behind it,
which is the "known lock contention between write_super and read
operations" the paper visualizes with 2.5-second sampled profiles.

:class:`Reiserfs` extends the Ext2 substrate with:

* ``journal_lock`` — the big per-FS lock,
* a read path that takes the lock around its page-cache work, and
* ``write_super`` — journal commit: several synchronous disk writes
  performed under the lock (tens of milliseconds).
"""

from __future__ import annotations

from typing import List, Optional

from ..disk.driver import ScsiDriver
from ..sim.process import CpuBurst, ProcBody, Process
from ..sim.scheduler import Kernel
from ..sim.sync import Semaphore
from ..vfs.file import File
from ..vfs.inode import InodeTable
from .ext2 import Ext2
from .mkfs import BlockAllocator

__all__ = ["Reiserfs"]


class Reiserfs(Ext2):
    """Ext2 semantics plus a journal big-lock shared with the read path."""

    name = "reiserfs"

    JOURNAL_SETUP_COST = 15_000.0  # transaction assembly CPU
    DEFAULT_JOURNAL_BLOCKS = 8     # blocks per commit

    def __init__(self, kernel: Kernel, driver: ScsiDriver,
                 inodes: InodeTable, allocator: BlockAllocator,
                 journal_blocks: int = DEFAULT_JOURNAL_BLOCKS,
                 **kwargs):
        super().__init__(kernel, driver, inodes, allocator, **kwargs)
        if journal_blocks < 1:
            raise ValueError("journal must span at least one block")
        self.journal_lock = Semaphore(kernel, name="reiserfs_journal")
        self.journal_area = allocator.allocate(journal_blocks)
        self.commits = 0
        self.blocks_committed = 0

    def file_read(self, proc: Process, file: File, size: int) -> ProcBody:
        """Read under the big lock — stalls during journal commits."""
        yield from self.journal_lock.acquire(proc)
        try:
            count = yield from super().file_read(proc, file, size)
        finally:
            yield from self.journal_lock.release(proc)
        return count

    def write_super(self, proc: Process) -> ProcBody:
        """Commit the journal: the 5-second metadata flush work.

        Called by the flush daemon.  Holds ``journal_lock`` across
        several synchronous writes to the journal area plus the
        superblock, so concurrent reads observe multi-millisecond
        stalls — Figure 9's periodic stripes.
        """
        yield from self.journal_lock.acquire(proc)
        try:
            yield CpuBurst(self.kernel.rng.jitter(self.JOURNAL_SETUP_COST,
                                                  sigma=0.3))
            dirty = [inode for inode in self.inodes.dirty_inodes()]
            for journal_block in self.journal_area:
                yield from self.driver.write(journal_block)
            for inode in dirty:
                inode.dirty = False
            self.commits += 1
            self.blocks_committed += len(self.journal_area)
        finally:
            yield from self.journal_lock.release(proc)
        return len(dirty)

"""An Ext3-like journaled file system (ordered mode).

The paper profiles "Ext2, Ext3, Reiserfs, NTFS, and CIFS"; Ext3 is
Ext2 plus a journal, and — unlike the Reiserfs 3.6 substrate — its
journal commit does *not* serialize the read path.  The observable
differences from Ext2:

* ``fsync`` commits a journal transaction (ordered mode: data blocks
  are written back first, then the commit record), so fsync latency
  grows by the commit I/O, and
* the metadata flush daemon's ``write_super`` performs a real commit,
  like Reiserfs — but readers never wait behind it.

Profiling fsync-heavy workloads on Ext2 vs Ext3 shows the journal's
cost as a rightward fsync peak shift with the read profile unchanged —
the complement of the Reiserfs case study.
"""

from __future__ import annotations

from ..disk.driver import ScsiDriver
from ..sim.process import CpuBurst, ProcBody, Process
from ..sim.scheduler import Kernel
from ..vfs.file import File
from ..vfs.inode import InodeTable
from .ext2 import Ext2
from .mkfs import BlockAllocator

__all__ = ["Ext3"]


class Ext3(Ext2):
    """Ext2 semantics plus an ordered-mode journal."""

    name = "ext3"

    TRANSACTION_SETUP_COST = 8_000.0  # handle + descriptor blocks
    DEFAULT_JOURNAL_BLOCKS = 4        # blocks per commit record batch

    def __init__(self, kernel: Kernel, driver: ScsiDriver,
                 inodes: InodeTable, allocator: BlockAllocator,
                 journal_blocks: int = DEFAULT_JOURNAL_BLOCKS,
                 **kwargs):
        super().__init__(kernel, driver, inodes, allocator, **kwargs)
        if journal_blocks < 1:
            raise ValueError("journal must span at least one block")
        self.journal_area = allocator.allocate(journal_blocks)
        self.commits = 0

    def _commit(self, proc: Process) -> ProcBody:
        """Write the journal descriptor + commit record synchronously."""
        yield CpuBurst(self.kernel.rng.jitter(
            self.TRANSACTION_SETUP_COST, sigma=0.3))
        for journal_block in self.journal_area:
            yield from self.driver.write(journal_block)
        self.commits += 1
        return None

    def fsync(self, proc: Process, file: File) -> ProcBody:
        """Ordered mode: data writeback first, then the commit record."""
        flushed = yield from super().fsync(proc, file)
        yield from self._commit(proc)
        return flushed

    def write_super(self, proc: Process) -> ProcBody:
        """The periodic metadata commit — without a read-path lock."""
        dirty = self.inodes.dirty_inodes()
        yield from self._commit(proc)
        for inode in dirty:
            inode.dirty = False
        return len(dirty)

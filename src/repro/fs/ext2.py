"""An Ext2-like file system.

Implements the operation structure behind the paper's Figure 7 grep
analysis:

* ``readdir`` returns a bounded batch of entries per call.  Calls past
  the end of directory return immediately (**first peak**, buckets 6-7);
  calls served from the page cache cost a couple of thousand cycles
  (**second peak**, buckets 9-14); a call whose page is missing invokes
  ``readpage`` — which *initiates* disk I/O and returns — then sleeps on
  the page, landing in the **third peak** (drive segment-cache hit,
  buckets 16-17) or the **fourth** (real seek + rotation, 18-23).
* ``read`` follows the same page-cache path for buffered I/O; with
  O_DIRECT it bypasses the cache and holds the inode's ``i_sem`` across
  the disk access — the contention ``llseek`` then suffers (Section 6.1).
* ``llseek`` uses ``generic_file_llseek`` (or the patched variant when
  the file system is mounted with ``patched_llseek=True``).
* ``write`` is write-back: it dirties page-cache pages and returns;
  ``fsync`` and the flush daemon push them to disk.
"""

from __future__ import annotations

from typing import List, Optional

from ..disk.driver import ScsiDriver
from ..disk.geometry import BLOCK_SIZE
from ..sim.process import CpuBurst, ProcBody, Process
from ..sim.scheduler import Kernel
from ..vfs.file import File
from ..vfs.inode import ENTRIES_PER_PAGE, Inode, InodeTable, S_IFREG
from ..vfs.llseek import generic_file_llseek, generic_file_llseek_patched
from ..vfs.vfs import FileSystem
from .mkfs import BlockAllocator

__all__ = ["Ext2", "READDIR_CHUNK"]

#: Directory entries returned per readdir call (getdents batch).  Less
#: than a page's worth, so one page yields one miss + several cached
#: hits — the ratio of Figure 7's second peak to its third and fourth.
READDIR_CHUNK = 16

#: OS readahead window: starts at 4 pages on a detected sequential
#: streak and doubles to 32 (Linux's classic on-demand readahead).
RA_INITIAL = 4
RA_MAX = 32


class Ext2(FileSystem):
    """The buffered, non-journaled baseline file system."""

    name = "ext2"

    # CPU costs (cycles at 1.7 GHz), chosen so peaks land in the paper's
    # buckets: see module docstring.
    EOF_CHECK_COST = 90.0        # readdir past EOF -> buckets 6-7
    CACHED_DIR_COST = 2_400.0    # cached readdir -> buckets 9-14
    READPAGE_SETUP_COST = 1_300.0  # block mapping, buffer heads
    READPAGE_SUBMIT_COST = 600.0   # queueing the bio
    COPY_BASE_COST = 900.0       # per-call copy/bookkeeping floor
    COPY_PER_BYTE = 0.25         # memcpy throughput ~4 B/cycle... /page
    ZERO_READ_COST = 40.0        # a zero-byte read body (Figure 3)
    CREATE_COST = 6_000.0
    UNLINK_COST = 5_000.0
    WRITE_PAGE_COST = 2_000.0

    def __init__(self, kernel: Kernel, driver: ScsiDriver,
                 inodes: InodeTable, allocator: BlockAllocator,
                 patched_llseek: bool = False,
                 readdir_chunk: int = READDIR_CHUNK,
                 readahead: bool = True):
        super().__init__()
        if readdir_chunk < 1:
            raise ValueError("readdir_chunk must be positive")
        self.kernel = kernel
        self.driver = driver
        self.inodes = inodes
        self.allocator = allocator
        self.patched_llseek = patched_llseek
        self.readdir_chunk = readdir_chunk
        #: OS-level readahead on sequential buffered reads.
        self.readahead = readahead
        self.readahead_pages = 0

    # -- helpers ---------------------------------------------------------------

    def _pagecache(self):
        assert self.vfs is not None, "file system not mounted"
        return self.vfs.pagecache

    def _get_page(self, proc: Process, inode: Inode,
                  page_index: int) -> ProcBody:
        """Page-cache lookup; on miss run instrumented readpage, then wait."""
        cache = self._pagecache()
        page = cache.lookup(inode.ino, page_index)
        if page is None:
            assert self.vfs is not None
            page = yield from self.vfs.instrument(
                proc, "readpage",
                self.readpage(proc, inode, page_index))
        if not page.resident:
            yield from cache.wait(page)
        return page

    # -- operations -------------------------------------------------------------

    def readpage(self, proc: Process, inode: Inode,
                 page_index: int) -> ProcBody:
        """Initiate the read of one page; does NOT wait for completion."""
        yield CpuBurst(self.kernel.rng.jitter(self.READPAGE_SETUP_COST,
                                              sigma=0.4))
        block = inode.block_for(page_index)
        request = self.driver.submit_read(block)
        page = self._pagecache().install_inflight(inode.ino, page_index,
                                                  request)
        yield CpuBurst(self.kernel.rng.jitter(self.READPAGE_SUBMIT_COST,
                                              sigma=0.4))
        return page

    def readdir(self, proc: Process, file: File) -> ProcBody:
        """Return the next batch of entries; [] past end of directory."""
        inode = file.inode
        if not inode.is_dir:
            raise ValueError("readdir on a non-directory")
        yield CpuBurst(self.kernel.rng.jitter(self.EOF_CHECK_COST,
                                              sigma=0.25))
        if file.pos >= inode.size:
            return []
        page_index = file.pos // ENTRIES_PER_PAGE
        offset_in_page = file.pos % ENTRIES_PER_PAGE
        cached = self._pagecache().peek(inode.ino, page_index)
        was_cached = cached is not None and cached.resident
        page = yield from self._get_page(proc, inode, page_index)
        if was_cached:
            yield CpuBurst(self.kernel.rng.jitter(self.CACHED_DIR_COST,
                                                  sigma=0.6))
        page_entries = inode.dir_page_entries(page_index)
        batch = page_entries[offset_in_page:
                             offset_in_page + self.readdir_chunk]
        file.pos += len(batch)
        inode.touch_atime(self.kernel.now)
        return batch

    def file_read(self, proc: Process, file: File, size: int) -> ProcBody:
        """Read *size* bytes at the file position (buffered or direct)."""
        inode = file.inode
        if inode.is_dir:
            raise ValueError("file_read on a directory")
        if size < 0:
            raise ValueError("size must be non-negative")
        if size == 0 or file.pos >= inode.size:
            # The zero-byte read of Figure 3: return right away.
            yield CpuBurst(self.kernel.rng.jitter(self.ZERO_READ_COST,
                                                  sigma=0.25))
            return 0
        size = min(size, inode.size - file.pos)
        if file.direct:
            count = yield from self._direct_read(proc, file, size)
        else:
            count = yield from self._buffered_read(proc, file, size)
        inode.touch_atime(self.kernel.now)
        return count

    def _buffered_read(self, proc: Process, file: File,
                       size: int) -> ProcBody:
        inode = file.inode
        remaining = size
        while remaining > 0:
            page_index = file.pos // BLOCK_SIZE
            in_page = min(remaining, BLOCK_SIZE - file.pos % BLOCK_SIZE)
            yield from self._get_page(proc, inode, page_index)
            self._maybe_readahead(file, page_index)
            copy = self.COPY_BASE_COST + self.COPY_PER_BYTE * in_page
            yield CpuBurst(self.kernel.rng.jitter(copy, sigma=0.3))
            file.pos += in_page
            remaining -= in_page
        return size

    def _maybe_readahead(self, file: File, page_index: int) -> None:
        """Asynchronously pre-read ahead of a sequential streak.

        Classic on-demand readahead: a read adjacent to the previous one
        opens (then doubles) a window of pages that are submitted to the
        disk without waiting — so the *next* reads find them resident or
        in flight, and the read profile's disk peak collapses into the
        cached peak.  Random access closes the window.
        """
        if not self.readahead:
            return
        inode = file.inode
        if page_index == file.ra_last_page + 1:
            if file.ra_window == 0:
                file.ra_window = RA_INITIAL
            else:
                file.ra_window = min(file.ra_window * 2, RA_MAX)
        elif page_index != file.ra_last_page:
            file.ra_window = 0
        file.ra_last_page = page_index
        if file.ra_window == 0:
            return
        cache = self._pagecache()
        last = min(inode.num_pages() - 1, page_index + file.ra_window)
        for ahead in range(page_index + 1, last + 1):
            if cache.peek(inode.ino, ahead) is not None:
                continue
            request = self.driver.submit_read(inode.block_for(ahead))
            cache.install_inflight(inode.ino, ahead, request)
            self.readahead_pages += 1

    def _direct_read(self, proc: Process, file: File,
                     size: int) -> ProcBody:
        """O_DIRECT: bypass the page cache, hold i_sem across the I/O.

        Linux 2.6.11's direct-I/O path serialized on the inode
        semaphore; this is the long hold that the unpatched llseek of
        the *other* process piles up behind.
        """
        inode = file.inode
        yield from inode.i_sem.acquire(proc)
        try:
            remaining = size
            while remaining > 0:
                page_index = file.pos // BLOCK_SIZE
                in_page = min(remaining,
                              BLOCK_SIZE - file.pos % BLOCK_SIZE)
                block = inode.block_for(page_index)
                yield CpuBurst(self.kernel.rng.jitter(
                    self.READPAGE_SETUP_COST, sigma=0.3))
                yield from self.driver.read(block)
                file.pos += in_page
                remaining -= in_page
        finally:
            yield from inode.i_sem.release(proc)
        return size

    def file_write(self, proc: Process, file: File, size: int) -> ProcBody:
        """Write-back write: dirty pages in the cache and return."""
        inode = file.inode
        if inode.is_dir:
            raise ValueError("file_write on a directory")
        if size <= 0:
            raise ValueError("write size must be positive")
        cache = self._pagecache()
        remaining = size
        while remaining > 0:
            page_index = file.pos // BLOCK_SIZE
            in_page = min(remaining, BLOCK_SIZE - file.pos % BLOCK_SIZE)
            while page_index >= len(inode.blocks):
                inode.blocks.extend(self.allocator.allocate(1))
            cache.mark_dirty(inode.ino, page_index)
            cost = self.WRITE_PAGE_COST + self.COPY_PER_BYTE * in_page
            yield CpuBurst(self.kernel.rng.jitter(cost, sigma=0.3))
            file.pos += in_page
            remaining -= in_page
        inode.size = max(inode.size, file.pos)
        inode.mtime = self.kernel.now
        inode.dirty = True
        return size

    def fsync(self, proc: Process, file: File) -> ProcBody:
        """Synchronously write back the file's dirty pages."""
        inode = file.inode
        cache = self._pagecache()
        flushed = 0
        for page_index in range(inode.num_pages()):
            page = cache.peek(inode.ino, page_index)
            if page is None or not page.dirty:
                continue
            block = inode.block_for(page_index)
            yield from self.driver.write(block)
            cache.clean(page)
            flushed += 1
        inode.dirty = False
        return flushed

    def llseek(self, proc: Process, file: File, offset: int,
               whence: int) -> ProcBody:
        if self.patched_llseek:
            return (yield from generic_file_llseek_patched(
                self.kernel, proc, file, offset, whence))
        return (yield from generic_file_llseek(
            self.kernel, proc, file, offset, whence))

    # -- namespace operations (Postmark needs these) ------------------------------

    def create(self, proc: Process, directory: Inode,
               name: str) -> ProcBody:
        """Create an empty regular file in *directory*."""
        if not directory.is_dir:
            raise ValueError("create in a non-directory")
        if directory.lookup_entry(name) is not None:
            raise FileExistsError(name)
        yield from directory.i_sem.acquire(proc)
        try:
            yield CpuBurst(self.kernel.rng.jitter(self.CREATE_COST,
                                                  sigma=0.4))
            inode = self.inodes.allocate(S_IFREG)
            directory.add_entry(name, inode.ino)
            directory.dirty = True
            self._pagecache().mark_dirty(
                directory.ino, max(0, directory.num_pages() - 1))
        finally:
            yield from directory.i_sem.release(proc)
        return inode

    def unlink(self, proc: Process, directory: Inode,
               name: str) -> ProcBody:
        """Remove a file's directory entry."""
        if not directory.is_dir:
            raise ValueError("unlink in a non-directory")
        yield from directory.i_sem.acquire(proc)
        try:
            entry = directory.lookup_entry(name)
            if entry is None:
                raise FileNotFoundError(name)
            yield CpuBurst(self.kernel.rng.jitter(self.UNLINK_COST,
                                                  sigma=0.4))
            directory.entries = [e for e in directory.entries
                                 if e.name != name]
            directory.size = len(directory.entries)
            directory.dirty = True
        finally:
            yield from directory.i_sem.release(proc)
        return entry.ino

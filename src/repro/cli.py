"""The ``osprof`` command line: run, render, compare, analyze.

The paper shipped "several scripts to generate formatted text views and
Gnuplot scripts" plus the automated comparison tool.  This module rolls
them into one CLI over the library:

* ``osprof run <workload>`` — run a workload on a simulated machine and
  write the captured profile set (text or binary format) to stdout or a
  file; ``--shards``/``--workers`` split the run across worker
  processes and merge the per-shard profiles.
* ``osprof merge <dump>...`` — fold several saved profile sets into one.
* ``osprof render <dump>`` — ASCII figures from a saved profile set.
* ``osprof peaks <dump>`` — peak detection + characteristic-time
  attribution.
* ``osprof compare <a> <b>`` — the three-phase automated selector over
  two profile sets, with a choice of metric.
* ``osprof sampled <workload>`` — run with time-segmented (3-D)
  profiling and render the Figure 9-style density map.
* ``osprof gnuplot <dump>`` — Gnuplot-ready data blocks.
* ``osprof serve`` — run the continuous profiling service: TCP
  ingestion of binary profiles, a rolling time-segmented store, and
  online differential alerting.
* ``osprof relay --upstream <host:port>`` — run a leaf of the fleet
  aggregation tree: accept pushes like a server, spool them durably,
  and forward canonically merged batches upstream.
* ``osprof push <host:port>`` — stream saved dumps, or live workload
  segments (``--workload``), to a running service.
* ``osprof top <host:port>`` — live auto-refreshing view of the
  service's sampled wait states: the hottest (state, layer, op,
  wait_site) cells of the rolling state window, fed by
  ``osprof run --sample-interval`` + ``osprof push --samples``.
* ``osprof watch <host:port>`` — follow the service's alert log (and
  optionally its plaintext metrics page).
* ``osprof trace <workload>`` — per-request cross-layer event slices
  from the probe pipeline's unified stream.
* ``osprof db {ingest,query,sql,compact,gc,scrub,baseline,gate}`` —
  the durable profile warehouse: persist closed segments, query time
  ranges, run SQL-style analytics over the stored history (local
  directory or live service), tier-compact aged history, re-verify
  every committed byte in place (``scrub``, exit 3 on unrepaired
  damage; ``--repair`` restores from a ``--mirror`` tree), manage
  named baselines, and gate a fresh capture against a stored baseline
  (nonzero exit on breach).

All dump-reading commands auto-detect the format, so text and binary
profiles mix freely.

Examples::

    osprof run grep --scale 0.02 -o before.prof
    osprof run grep --scale 0.02 --patched-llseek -o after.prof
    osprof run randomread --shards 4 --workers 4 --format binary -o rr.ospb
    osprof run --list-scenarios
    osprof run --scenario ssd-gc --layer driver -o ssd.prof
    osprof merge rr.ospb other.prof -o merged.prof
    osprof compare before.prof after.prof --metric emd
    osprof compare before.prof after.prof --threshold emd=0.5
    osprof render after.prof --op readdir
    osprof serve --port 7461 --segment-seconds 5 --db /var/osprof/db &
    osprof relay --upstream 127.0.0.1:7461 --port 7462 --dir /var/osprof/leaf &
    osprof push 127.0.0.1:7462 --workload randomread --segments 3
    osprof watch 127.0.0.1:7461 --once --metrics
    osprof db ingest --db wh --source web rr.ospb
    osprof db query --db wh --source web --since 0 --until 99 -o out.prof
    osprof db sql "SELECT op, count() GROUP BY op ORDER BY count() DESC" \\
        --db wh
    osprof db baseline save clean --db wh --from before.prof
    osprof db gate after.prof --db wh --baseline clean
"""

from __future__ import annotations

import argparse
import csv
import json
import sys
from typing import List, Optional

from .analysis.compare import METRICS
from .analysis.peaks import find_peaks
from .analysis.priorknowledge import CharacteristicTimes
from .analysis.report import gnuplot_data, render_profile
from .analysis.select import ProfileSelector, SelectionConfig
from .core.profileset import ProfileSet
from .system import System
from .workloads.runner import WORKLOAD_NAMES as WORKLOADS

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="osprof",
        description="OSprof: latency profiling of a simulated OS")
    sub = parser.add_subparsers(dest="command", required=True)

    run = sub.add_parser("run", help="run a workload and dump profiles")
    run.add_argument("workload", choices=WORKLOADS, nargs="?",
                     default=None,
                     help="workload to drive (optional when --scenario "
                          "supplies one)")
    run.add_argument("--scenario", default=None, metavar="NAME",
                     help="build the machine from a scenario registry "
                          "row (device model + workload defaults); see "
                          "--list-scenarios")
    run.add_argument("--list-scenarios", action="store_true",
                     help="print the scenario registry and exit")
    # fs/scale/processes/iterations default to None here so cmd_run can
    # resolve precedence: explicit flag > scenario default > global
    # default (ext2 / 0.02 / 2 / 1000).
    run.add_argument("--fs", choices=("ext2", "reiserfs"),
                     default=None)
    run.add_argument("--cpus", type=int, default=1)
    run.add_argument("--seed", type=int, default=2006)
    run.add_argument("--scale", type=float, default=None,
                     help="source tree scale (grep)")
    run.add_argument("--processes", type=int, default=None)
    run.add_argument("--iterations", type=int, default=None)
    run.add_argument("--patched-llseek", action="store_true")
    run.add_argument("--kernel-preemption", action="store_true")
    run.add_argument("--layer", choices=("user", "fs", "driver"),
                     default="fs", help="which profile layer to dump")
    run.add_argument("--shards", type=int, default=None,
                     help="split the workload into N shards "
                          "(default: --workers)")
    run.add_argument("--workers", type=int, default=1,
                     help="worker processes collecting shards in parallel")
    run.add_argument("--format", choices=("text", "binary"),
                     default="text", help="output format")
    run.add_argument("-o", "--output", default="-",
                     help="output file ('-' = stdout)")
    run.add_argument("--deadline", type=float, default=None,
                     help="per-shard attempt deadline in seconds "
                          "(pooled runs; hung workers are retried)")
    run.add_argument("--shard-retries", type=int, default=2,
                     help="retries per crashed/hung/corrupt shard")
    run.add_argument("--salvage", action="store_true",
                     help="merge surviving shards if one fails every "
                          "retry, marking the result degraded")
    run.add_argument("--spool-dir", default=None,
                     help="append the collected profile to an on-disk "
                          "push spool (drained by 'osprof push "
                          "--spool-dir')")
    run.add_argument("--sample-interval", type=float, default=None,
                     metavar="SECONDS",
                     help="also arm the wait-state sampler, ticking "
                          "every SECONDS of simulated time (single "
                          "shard only; the measured profile is "
                          "byte-identical either way)")
    run.add_argument("--samples-output", default=None, metavar="PATH",
                     help="where the sampled state profile lands "
                          "(default: <output>.osps, or samples.osps "
                          "when dumping to stdout)")

    merge = sub.add_parser("merge",
                           help="merge several profile dumps into one")
    merge.add_argument("dumps", nargs="+",
                       help="profile dumps (text or binary, auto-detected)")
    merge.add_argument("--format", choices=("text", "binary"),
                       default="text", help="output format")
    merge.add_argument("-o", "--output", default="-",
                       help="output file ('-' = stdout)")

    render = sub.add_parser("render", help="ASCII figures from a dump")
    render.add_argument("dump")
    render.add_argument("--op", action="append", default=None,
                        help="operation(s) to render (default: all)")
    render.add_argument("--top", type=int, default=None,
                        help="only the N highest-latency operations")

    peaks = sub.add_parser("peaks", help="peak detection + attribution")
    peaks.add_argument("dump")
    peaks.add_argument("--min-ops", type=int, default=5)

    compare = sub.add_parser("compare",
                             help="automated profile-pair selection")
    compare.add_argument("dump_a")
    compare.add_argument("dump_b")
    compare.add_argument("--metric", choices=sorted(METRICS),
                         default="emd")
    compare.add_argument("--limit", type=int, default=None)
    compare.add_argument("--threshold", action="append", default=None,
                         metavar="METRIC=VALUE",
                         help="fail (exit 3) if any operation's score "
                              "under METRIC exceeds VALUE; repeatable")
    compare.add_argument("--min-ops", type=int, default=1,
                         help="operations sparser than this on both "
                              "sides are skipped by --threshold")

    gnuplot = sub.add_parser("gnuplot", help="Gnuplot data blocks")
    gnuplot.add_argument("dump")

    sampled = sub.add_parser("sampled",
                             help="3-D sampled profiling of a workload")
    sampled.add_argument("workload", choices=("grep", "compile"))
    sampled.add_argument("--fs", choices=("ext2", "reiserfs", "ntfs"),
                         default="reiserfs")
    sampled.add_argument("--seed", type=int, default=2006)
    sampled.add_argument("--scale", type=float, default=0.02)
    sampled.add_argument("--interval", type=float, default=2.5,
                         help="segment length in seconds")
    sampled.add_argument("--duration", type=float, default=12.0,
                         help="run length in seconds")
    sampled.add_argument("--op", action="append", default=None,
                         help="operation(s) to render")
    sampled.add_argument("--splot", action="store_true",
                         help="emit gnuplot splot data instead of ASCII")

    serve = sub.add_parser(
        "serve", help="run the continuous profiling service")
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=7461,
                       help="TCP port (0 = pick a free one)")
    serve.add_argument("--segment-seconds", type=float, default=10.0,
                       help="rolling store segment length")
    serve.add_argument("--retention", type=int, default=360,
                       help="closed segments kept in the ring")
    serve.add_argument("--baseline", type=int, default=4,
                       help="segments merged into the alert baseline")
    serve.add_argument("--metric", choices=sorted(METRICS), default="emd")
    serve.add_argument("--threshold", type=float, default=0.5,
                       help="metric score that raises an alert")
    serve.add_argument("--min-ops", type=int, default=50,
                       help="operations sparser than this never alert")
    serve.add_argument("--read-timeout", type=float, default=60.0,
                       help="per-connection read timeout in seconds")
    serve.add_argument("--max-frame-mb", type=float, default=64.0,
                       help="largest accepted frame payload (MB)")
    serve.add_argument("--max-pending", type=int, default=8,
                       help="in-flight pushes before RETRY_AFTER "
                            "backpressure")
    serve.add_argument("--drain-timeout", type=float, default=5.0,
                       help="seconds to wait for in-flight connections "
                            "on shutdown")
    serve.add_argument("--db", default=None, metavar="DIR",
                       help="durable warehouse directory: closed "
                            "segments are flushed to it and the alert "
                            "baseline is seeded from its history")
    serve.add_argument("--db-mirror", default=None, metavar="DIR",
                       help="mirror tree double-committed with every "
                            "warehouse segment (see 'osprof db scrub')")
    serve.add_argument("--db-source", default="service",
                       help="warehouse source name for flushed segments")
    serve.add_argument("--engine", choices=("async", "thread"),
                       default="async",
                       help="transport: single-threaded asyncio event "
                            "loop (default) or thread-per-connection")
    serve.add_argument("--flush-batch", type=int, default=1,
                       help="closed segments accumulated before one "
                            "batched warehouse commit (single fsync)")

    relay = sub.add_parser(
        "relay", help="run a leaf of the fleet aggregation tree")
    relay.add_argument("--upstream", required=True, metavar="HOST:PORT",
                       help="parent to forward merged batches to "
                            "(a root service or another relay)")
    relay.add_argument("--host", default="127.0.0.1")
    relay.add_argument("--port", type=int, default=7462,
                       help="TCP port to accept pushes on (0 = free)")
    relay.add_argument("--dir", default=None, metavar="DIR",
                       help="durable relay state + spool directory "
                            "(default: a temp dir, not crash-safe)")
    relay.add_argument("--batch", type=int, default=64,
                       help="spooled pushes merged into one upstream "
                            "push")
    relay.add_argument("--flush-interval", type=float, default=1.0,
                       help="seconds between partial-batch forwards")
    relay.add_argument("--read-timeout", type=float, default=60.0,
                       help="per-connection read timeout in seconds")
    relay.add_argument("--max-frame-mb", type=float, default=64.0,
                       help="largest accepted frame payload (MB)")
    relay.add_argument("--max-pending", type=int, default=64,
                       help="in-flight pushes before RETRY_AFTER "
                            "backpressure")
    relay.add_argument("--retries", type=int, default=4,
                       help="retry budget per upstream push")
    relay.add_argument("--drain-timeout", type=float, default=5.0,
                       help="seconds to wait for in-flight connections "
                            "on shutdown")

    push = sub.add_parser(
        "push", help="stream profiles to a running service")
    push.add_argument("endpoint", help="service address, host:port")
    push.add_argument("dumps", nargs="*",
                      help="saved profile dumps to push "
                           "(text or binary, auto-detected)")
    push.add_argument("--workload", choices=WORKLOADS, default=None,
                      help="collect live segments instead of "
                           "pushing saved dumps")
    push.add_argument("--segments", type=int, default=1,
                      help="live segments to collect and push")
    push.add_argument("--fs", choices=("ext2", "reiserfs"), default="ext2")
    push.add_argument("--cpus", type=int, default=1)
    push.add_argument("--seed", type=int, default=2006)
    push.add_argument("--scale", type=float, default=0.02)
    push.add_argument("--processes", type=int, default=2)
    push.add_argument("--iterations", type=int, default=1000)
    push.add_argument("--layer", choices=("user", "fs", "driver"),
                      default="fs")
    push.add_argument("--patched-llseek", action="store_true")
    push.add_argument("--retries", type=int, default=4,
                      help="retry budget per push before giving up")
    push.add_argument("--backoff", type=float, default=0.05,
                      help="base reconnect backoff in seconds "
                           "(grows exponentially, full jitter)")
    push.add_argument("--spool-dir", default=None,
                      help="crash-safe on-disk spool; pushes survive a "
                           "down server and drain on reconnect (alone: "
                           "just drain the spool)")
    push.add_argument("--samples", action="append", default=None,
                      metavar="PATH",
                      help="also push saved wait-state sample profiles "
                           "(.osps from 'osprof run --sample-interval'); "
                           "repeatable")

    trace = sub.add_parser(
        "trace", help="cross-layer request traces of a workload")
    trace.add_argument("workload", choices=WORKLOADS, nargs="?",
                       default=None,
                       help="workload to trace (optional when "
                            "--scenario supplies one)")
    trace.add_argument("--scenario", default=None, metavar="NAME",
                       help="trace on a scenario's device model "
                            "(see 'osprof run --list-scenarios')")
    trace.add_argument("--fs", choices=("ext2", "reiserfs"),
                       default=None)
    trace.add_argument("--cpus", type=int, default=1)
    trace.add_argument("--seed", type=int, default=2006)
    trace.add_argument("--scale", type=float, default=None)
    trace.add_argument("--processes", type=int, default=None)
    trace.add_argument("--iterations", type=int, default=None)
    trace.add_argument("--requests", type=int, default=10,
                       help="print the N slowest requests")
    trace.add_argument("--limit", type=int, default=200_000,
                       help="cap on retained trace events")

    top = sub.add_parser(
        "top", help="live sampled wait-state view of a running service")
    top.add_argument("endpoint", help="service address, host:port")
    top.add_argument("--lines", type=int, default=10,
                     help="hottest (state, wait_site) rows per frame")
    top.add_argument("--interval", type=float, default=2.0,
                     help="seconds between refreshes")
    top.add_argument("--once", action="store_true",
                     help="print one frame and exit (no screen clear)")

    watch = sub.add_parser(
        "watch", help="follow a service's alert log")
    watch.add_argument("endpoint", help="service address, host:port")
    watch.add_argument("--poll", type=float, default=2.0,
                       help="seconds between polls")
    watch.add_argument("--once", action="store_true",
                       help="print the current state and exit")
    watch.add_argument("--metrics", action="store_true",
                       help="also print the plaintext metrics page")
    watch.add_argument("--reconnect-cap", type=float, default=5.0,
                       help="cap on the reconnect backoff in seconds")

    db = sub.add_parser("db", help="durable profile warehouse")
    dbsub = db.add_subparsers(dest="db_command", required=True)

    def _db_dir(p):
        p.add_argument("--db", required=True, metavar="DIR",
                       help="warehouse directory")
        p.add_argument("--mirror", default=None, metavar="DIR",
                       help="mirror tree double-committed with every "
                            "segment (the redundancy 'scrub --repair' "
                            "restores from)")

    def _db_policy(p):
        p.add_argument("--fanout", type=int, default=4,
                       help="epoch-width ratio between adjacent tiers")
        p.add_argument("--keep", default="8,8,8",
                       help="comma-separated per-tier retention "
                            "(windows kept hot before aging)")

    ingest = dbsub.add_parser(
        "ingest", help="persist profile dumps as warehouse segments")
    _db_dir(ingest)
    ingest.add_argument("dumps", nargs="+",
                        help="profile dumps (text or binary)")
    ingest.add_argument("--source", required=True,
                        help="source name the segments file under")
    ingest.add_argument("--epoch", type=int, default=None,
                        help="base epoch of the first dump (later dumps "
                             "get consecutive epochs); default appends "
                             "after everything stored")

    query = dbsub.add_parser(
        "query", help="merge a source's stored history over a range")
    _db_dir(query)
    query.add_argument("--source", required=True)
    query.add_argument("--layer", default=None,
                       help="restrict to one capture layer")
    query.add_argument("--op", default=None,
                       help="restrict to one operation")
    query.add_argument("--since", type=int, default=None, metavar="T0",
                       help="first base epoch (inclusive)")
    query.add_argument("--until", type=int, default=None, metavar="T1",
                       help="last base epoch (inclusive)")
    query.add_argument("--format", choices=("text", "binary"),
                       default="text")
    query.add_argument("-o", "--output", default="-")

    dbsql = dbsub.add_parser(
        "sql", help="run an analytics query over the stored history")
    dbsql.add_argument("query",
                       help="the SELECT statement (quote it; see "
                            "docs/QUERY.md)")
    dbsql.add_argument("--db", default=None, metavar="DIR",
                       help="warehouse directory to query")
    dbsql.add_argument("--endpoint", default=None, metavar="HOST:PORT",
                       help="query a live 'osprof serve --db' service "
                            "instead of a local directory")
    dbsql.add_argument("--format", choices=("table", "csv", "json"),
                       default="table",
                       help="output format (default: table)")

    compact = dbsub.add_parser(
        "compact", help="merge aged segments into coarser tiers")
    _db_dir(compact)
    _db_policy(compact)
    compact.add_argument("--source", default=None,
                         help="one source (default: all)")

    gc = dbsub.add_parser(
        "gc", help="apply top-tier retention and sweep dead files")
    _db_dir(gc)
    _db_policy(gc)
    gc.add_argument("--source", default=None,
                    help="one source (default: all)")

    scrub = dbsub.add_parser(
        "scrub", help="re-verify every committed byte in place "
                      "(exit 3 on unrepaired damage)")
    _db_dir(scrub)
    scrub.add_argument("--repair", action="store_true",
                       help="restore quarantined segments from the "
                            "--mirror tree (byte-identity re-checked)")

    baseline = dbsub.add_parser(
        "baseline", help="manage named reference profiles")
    blsub = baseline.add_subparsers(dest="baseline_command", required=True)
    bl_save = blsub.add_parser("save", help="store a named baseline")
    _db_dir(bl_save)
    bl_save.add_argument("name")
    bl_save.add_argument("--from", dest="from_file", default=None,
                         metavar="DUMP",
                         help="take the baseline from a profile dump")
    bl_save.add_argument("--source", default=None,
                         help="or build it from a warehouse query")
    bl_save.add_argument("--layer", default=None)
    bl_save.add_argument("--op", default=None)
    bl_save.add_argument("--since", type=int, default=None)
    bl_save.add_argument("--until", type=int, default=None)
    bl_list = blsub.add_parser("list", help="list stored baselines")
    _db_dir(bl_list)
    bl_rm = blsub.add_parser("rm", help="remove a stored baseline")
    _db_dir(bl_rm)
    bl_rm.add_argument("name")

    gate = dbsub.add_parser(
        "gate", help="score a capture against a stored baseline "
                     "(exit 3 on threshold breach)")
    _db_dir(gate)
    gate.add_argument("capture", help="fresh profile dump to judge")
    gate.add_argument("--baseline", required=True,
                      help="stored baseline name")
    gate.add_argument("--threshold", action="append", default=None,
                      metavar="METRIC=VALUE",
                      help="breach rule; repeatable "
                           "(default: emd=0.5 chi_squared=1.0)")
    gate.add_argument("--min-ops", type=int, default=1,
                      help="operations sparser than this on both sides "
                           "are skipped")
    return parser


def _load(path: str) -> ProfileSet:
    return ProfileSet.load_path(path)


def _write_pset(pset: ProfileSet, output: str, format: str) -> None:
    if output == "-":
        if format == "binary":
            sys.stdout.buffer.write(pset.to_bytes())
        else:
            sys.stdout.write(pset.dumps())
        return
    pset.save(output, format=format)
    print(f"wrote {len(pset)} operation profiles "
          f"({pset.total_ops()} requests) to {output}",
          file=sys.stderr)


def cmd_run(args) -> int:
    from .core.shard import DEGRADED_ATTRIBUTE, collect_sharded
    from .scenarios import (UnknownScenarioError, get_scenario,
                            render_scenarios)
    if args.list_scenarios:
        print(render_scenarios())
        return 0
    scenario = None
    if args.scenario is not None:
        try:
            scenario = get_scenario(args.scenario)
        except UnknownScenarioError as exc:
            print(f"osprof run: {exc}", file=sys.stderr)
            return 2
    workload = args.workload
    if workload is None:
        if scenario is None:
            print("osprof run: give a workload or --scenario",
                  file=sys.stderr)
            return 2
        workload = scenario.workload

    # Explicit flags beat scenario defaults beat the global defaults.
    def resolve(explicit, scenario_value, fallback):
        if explicit is not None:
            return explicit
        if scenario_value is not None:
            return scenario_value
        return fallback

    fs_type = resolve(args.fs, scenario.fs_type if scenario else None,
                      "ext2")
    scale = resolve(args.scale, scenario.scale if scenario else None,
                    0.02)
    processes = resolve(args.processes,
                        scenario.processes if scenario else None, 2)
    iterations = resolve(args.iterations,
                         scenario.iterations if scenario else None, 1000)
    shards = args.shards if args.shards is not None else max(args.workers, 1)
    if args.sample_interval is not None:
        from .sim.engine import seconds
        from .workloads.runner import collect_sampled_run
        if args.sample_interval <= 0:
            print("osprof run: --sample-interval must be positive",
                  file=sys.stderr)
            return 2
        if shards != 1:
            print("osprof run: --sample-interval needs a single shard "
                  "(drop --shards/--workers)", file=sys.stderr)
            return 2
        # Same seed derivation as the one-shard plan, so the measured
        # profile is byte-identical to an unsampled `osprof run`.
        from .sim.rng import derive_seed
        layers, sprof, health = collect_sampled_run(
            workload,
            state_sample_interval=seconds(args.sample_interval),
            seed=derive_seed(args.seed, "shard:0"),
            fs_type=fs_type, num_cpus=args.cpus,
            scale=scale, processes=processes, iterations=iterations,
            patched_llseek=args.patched_llseek,
            kernel_preemption=args.kernel_preemption,
            scenario=args.scenario)
        pset = layers[args.layer]
        samples_path = args.samples_output
        if samples_path is None:
            samples_path = "samples.osps" if args.output == "-" \
                else args.output + ".osps"
        sprof.save(samples_path)
        print(f"sampled {sprof.total_samples()} state samples over "
              f"{sprof.intervals} interval(s) "
              f"({health['osprof_sampler_overhead_ns_total']} ns "
              f"sampler overhead) to {samples_path}", file=sys.stderr)
    else:
        pset = collect_sharded(
            workload, shards=shards, workers=args.workers,
            seed=args.seed, layer=args.layer, fs_type=fs_type,
            num_cpus=args.cpus, scale=scale,
            processes=processes, iterations=iterations,
            patched_llseek=args.patched_llseek,
            kernel_preemption=args.kernel_preemption,
            scenario=args.scenario,
            deadline=args.deadline, max_retries=args.shard_retries,
            salvage=args.salvage)
    if DEGRADED_ATTRIBUTE in pset.attributes:
        print(f"warning: profile is degraded "
              f"({pset.attributes[DEGRADED_ATTRIBUTE]})", file=sys.stderr)
    if args.spool_dir is not None:
        from .service.spool import Spool
        seq = Spool(args.spool_dir).append(pset.to_bytes())
        print(f"spooled {len(pset)} operation profiles "
              f"({pset.total_ops()} requests) to {args.spool_dir} "
              f"as seq {seq}", file=sys.stderr)
        if args.output != "-":
            _write_pset(pset, args.output, args.format)
        return 0
    _write_pset(pset, args.output, args.format)
    return 0


def cmd_merge(args) -> int:
    merged = _load(args.dumps[0])
    for path in args.dumps[1:]:
        other = _load(path)
        if other.spec != merged.spec:
            print(f"{path}: resolution {other.spec.resolution} differs "
                  f"from {merged.spec.resolution}", file=sys.stderr)
            return 1
        merged.merge(other)
    bad = merged.verify_checksums()
    if bad:
        print(f"merged profile fails checksum for: {bad}", file=sys.stderr)
        return 1
    _write_pset(merged, args.output, args.format)
    return 0


def cmd_render(args) -> int:
    pset = _load(args.dump)
    profiles = pset.by_total_latency()
    if args.op:
        wanted = set(args.op)
        profiles = [p for p in profiles if p.operation in wanted]
        missing = wanted - {p.operation for p in profiles}
        if missing:
            print(f"unknown operations: {sorted(missing)}",
                  file=sys.stderr)
            return 1
    if args.top is not None:
        profiles = profiles[:args.top]
    for prof in profiles:
        print(render_profile(prof))
        print()
    return 0


def cmd_peaks(args) -> int:
    pset = _load(args.dump)
    table = CharacteristicTimes()
    for prof in pset.by_total_latency():
        peaks = find_peaks(prof, min_ops=args.min_ops)
        if not peaks:
            continue
        print(f"{prof.operation}:")
        for peak in peaks:
            names = [t.name
                     for t in table.candidates(peak.apex, tolerance=1)]
            label = ", ".join(names) if names else "-"
            print(f"  buckets {peak.low}-{peak.high} apex={peak.apex} "
                  f"ops={peak.ops}  [{label}]")
    return 0


def cmd_compare(args) -> int:
    set_a = _load(args.dump_a)
    set_b = _load(args.dump_b)
    selector = ProfileSelector(SelectionConfig(metric=args.metric))
    reports = selector.select(set_a, set_b)
    if args.limit is not None:
        reports = reports[:args.limit]
    if not reports:
        print("no interesting differences")
    for report in reports:
        print(report.describe())
    if args.threshold:
        # Scriptable mode: judge every operation pair against the given
        # METRIC=VALUE rules and exit 3 on breach, so `osprof compare`
        # can gate a shell pipeline without parsing its prose.
        from .warehouse.gate import evaluate_gate, parse_threshold
        thresholds = [parse_threshold(text) for text in args.threshold]
        gate = evaluate_gate(set_a, set_b, thresholds,
                             min_ops=args.min_ops)
        print(gate.describe())
        return gate.exit_code()
    return 0


def cmd_sampled(args) -> int:
    from .analysis.report import gnuplot_sampled_data, render_sampled
    from .fs import make_flush_daemons
    from .sim.engine import seconds
    from .workloads import build_source_tree, compile_body, grep_body

    system = System.build(fs_type=args.fs, seed=args.seed,
                          with_timer=False,
                          sample_interval=seconds(args.interval),
                          pagecache_pages=512)
    root, _ = build_source_tree(system, scale=args.scale,
                                seed=args.seed)
    if args.fs == "reiserfs":
        metadata_daemon, data_daemon = make_flush_daemons(
            system.kernel, system.vfs)
        metadata_daemon.start()
        data_daemon.start()

    if args.workload == "grep":
        def looped(proc):
            while True:
                yield from grep_body(system, proc, root)
    else:
        def looped(proc):
            while True:
                yield from compile_body(system, proc, root)

    system.kernel.spawn(looped, args.workload)
    system.run(until=seconds(args.duration))
    system.shutdown()
    series = system.sampled.series()
    operations = args.op if args.op else series.operations()
    for op in operations:
        if args.splot:
            sys.stdout.write(gnuplot_sampled_data(
                series, op, interval_seconds=args.interval))
        else:
            print(render_sampled(series, op,
                                 interval_seconds=args.interval))
            print()
    return 0


def cmd_serve(args) -> int:
    from .service.server import ProfileServer, ProfileService, ServiceConfig
    config = ServiceConfig(
        segment_seconds=args.segment_seconds, retention=args.retention,
        baseline_segments=args.baseline, metric=args.metric,
        threshold=args.threshold, min_ops=args.min_ops,
        read_timeout=args.read_timeout,
        max_frame_bytes=int(args.max_frame_mb * (1 << 20)),
        max_pending=args.max_pending,
        flush_batch=args.flush_batch)
    warehouse = None
    if args.db is not None:
        from .warehouse import Warehouse
        warehouse = Warehouse(args.db, mirror_dir=args.db_mirror)
    elif args.db_mirror is not None:
        print("osprof serve: --db-mirror needs --db", file=sys.stderr)
        return 2
    service = ProfileService(config, warehouse=warehouse,
                             warehouse_source=args.db_source)
    if args.engine == "async":
        from .service.aio_server import AsyncProfileServer
        server = AsyncProfileServer(service, host=args.host,
                                    port=args.port)
        thread = server.serve_in_thread()
    else:
        server = ProfileServer(service, host=args.host, port=args.port)
        thread = None
    host, port = server.address
    print(f"osprof service listening on {host}:{port} "
          f"(engine={args.engine} "
          f"segment={config.segment_seconds:g}s "
          f"retention={config.retention} metric={config.metric})",
          file=sys.stderr)
    if warehouse is not None:
        print(f"warehouse at {args.db}: "
              f"{warehouse.segments_total} segment(s) on record, "
              f"baseline seeded from {service.baseline_seeded} "
              f"segment(s)", file=sys.stderr)
    try:
        if thread is not None:
            while thread.is_alive():
                thread.join(timeout=1.0)
        else:
            server.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        drained = server.drain(timeout=args.drain_timeout)
        if not drained:
            print(f"osprof serve: {server.active_connections} "
                  f"connection(s) still active after "
                  f"{args.drain_timeout:g}s drain", file=sys.stderr)
        server.server_close()
        service.flush()
    return 0


def cmd_relay(args) -> int:
    import tempfile

    from .service.client import parse_endpoint
    from .service.relay import RelayServer, RelayService
    from .service.server import ServiceConfig
    upstream = parse_endpoint(args.upstream)
    root = args.dir
    if root is None:
        root = tempfile.mkdtemp(prefix="osprof-relay-")
        print(f"osprof relay: no --dir given, spooling to {root} "
              f"(not crash-safe across reboots)", file=sys.stderr)
    config = ServiceConfig(read_timeout=args.read_timeout,
                           max_frame_bytes=int(
                               args.max_frame_mb * (1 << 20)),
                           max_pending=args.max_pending)
    relay = RelayService(root, upstream=upstream, config=config,
                         batch=args.batch, retries=args.retries)
    server = RelayServer(relay, host=args.host, port=args.port,
                         flush_interval=args.flush_interval)
    thread = server.serve_in_thread()
    host, port = server.address
    print(f"osprof relay {relay.relay_id} listening on {host}:{port} "
          f"(forwarding batches of {args.batch} to "
          f"{upstream[0]}:{upstream[1]})", file=sys.stderr)
    pending = relay.pending_entries()
    if pending:
        print(f"osprof relay: {len(pending)} spooled push(es) from a "
              f"previous run will be forwarded", file=sys.stderr)
        server.signal_forward()
    try:
        while thread.is_alive():
            thread.join(timeout=1.0)
    except KeyboardInterrupt:
        pass
    finally:
        drained = server.drain(timeout=args.drain_timeout)
        if not drained:
            print(f"osprof relay: {server.active_connections} "
                  f"connection(s) still active after "
                  f"{args.drain_timeout:g}s drain", file=sys.stderr)
        server.server_close()
        left = len(relay.pending_entries())
        if left:
            print(f"osprof relay: {left} push(es) still spooled "
                  f"(upstream unreachable); they survive in {root}",
                  file=sys.stderr)
    return 0


def cmd_push(args) -> int:
    from .service.client import (Backoff, ResilientServiceClient,
                                 ServiceUnavailableError, parse_endpoint)
    from .workloads.runner import iter_segment_profiles
    sources = sum(
        [bool(args.dumps), bool(args.workload), bool(args.spool_dir),
         bool(args.samples)])
    if bool(args.dumps) and bool(args.workload):
        print("osprof push: give saved dumps or --workload, not both",
              file=sys.stderr)
        return 2
    if sources == 0:
        print("osprof push: give saved dumps, --workload, --samples, "
              "or --spool-dir", file=sys.stderr)
        return 2
    host, port = parse_endpoint(args.endpoint)
    client = ResilientServiceClient(
        host, port, retries=args.retries,
        backoff=Backoff(base=args.backoff), spool_dir=args.spool_dir)
    unavailable = False
    with client:
        try:
            if args.dumps:
                for path in args.dumps:
                    status = client.push(_load(path))
                    print(f"{path}: {status}", file=sys.stderr)
            elif args.workload:
                stream = iter_segment_profiles(
                    args.workload, segments=args.segments, seed=args.seed,
                    layer=args.layer, fs_type=args.fs, num_cpus=args.cpus,
                    scale=args.scale, processes=args.processes,
                    iterations=args.iterations,
                    patched_llseek=args.patched_llseek)
                for index, pset in enumerate(stream):
                    status = client.push(pset)
                    print(f"segment {index}: {status}", file=sys.stderr)
            elif args.spool_dir:
                delivered = client.drain()
                print(f"drained {delivered} spooled push(es)",
                      file=sys.stderr)
            if args.samples:
                from .sampling import StateProfile
                for path in args.samples:
                    status = client.push_state(StateProfile.load_path(path))
                    print(f"{path}: {status}", file=sys.stderr)
        except ServiceUnavailableError as exc:
            # With a spool the data is safe on disk; without one this
            # is a real failure the caller must see.
            print(f"osprof push: {exc}", file=sys.stderr)
            unavailable = True
    if unavailable:
        if args.spool_dir is not None:
            print(f"pending pushes kept in {args.spool_dir}; rerun "
                  f"'osprof push {args.endpoint} --spool-dir "
                  f"{args.spool_dir}' to drain", file=sys.stderr)
            return 0
        return 1
    if client.spool is not None and len(client.spool):
        print(f"{len(client.spool)} push(es) still spooled in "
              f"{args.spool_dir}", file=sys.stderr)
    if client.spool is not None and client.spool.corrupted:
        print(f"warning: {client.spool.corrupted} corrupt spooled "
              f"push(es) quarantined in {args.spool_dir} (*.corrupt)",
              file=sys.stderr)
    return 0


def _render_top_frame(sprof, lines: int, endpoint: str) -> str:
    """One ``osprof top`` frame over a merged state snapshot."""
    from .sim.engine import seconds as _seconds
    total = sprof.total_samples()
    header = (f"osprof top — {endpoint}  "
              f"{total} samples / {sprof.intervals} interval(s)")
    if sprof.interval:
        header += f" @ {sprof.interval / _seconds(1.0) * 1e3:g} ms"
    out = [header]
    out.append(f"{'SAMPLES':>9}  {'%':>5}  {'STATE':<9}  {'LAYER':<12}  "
               f"{'OP':<10}  WAIT_SITE")
    for (state, layer, op, site), count in sprof.top(lines):
        share = 100.0 * count / total if total else 0.0
        out.append(f"{count:>9}  {share:>5.1f}  {state:<9}  {layer:<12}  "
                   f"{op:<10}  {site}")
    if not total:
        out.append("(no state samples pushed yet)")
    return "\n".join(out)


def cmd_top(args) -> int:
    """``osprof top``: auto-refreshing sampled wait-state view.

    Each frame asks the service for its merged rolling state window
    (``STATE_SNAPSHOT``) and prints the ``--lines`` hottest
    ``(state, layer, op, wait_site)`` cells by sample count — the
    "what is the system waiting on right now" view, fed by
    ``osprof run --sample-interval`` pushes.
    """
    import time as _time

    from .service.client import ServiceClient, parse_endpoint
    if args.lines < 1:
        print("osprof top: --lines must be >= 1", file=sys.stderr)
        return 2
    host, port = parse_endpoint(args.endpoint)
    client = ServiceClient(host, port)
    try:
        while True:
            frame = _render_top_frame(client.state_snapshot(),
                                      args.lines, args.endpoint)
            if args.once:
                print(frame)
                return 0
            # ANSI clear + home keeps the view in place, like top(1).
            sys.stdout.write("\x1b[2J\x1b[H" + frame + "\n")
            sys.stdout.flush()
            _time.sleep(args.interval)
    except KeyboardInterrupt:
        return 0
    finally:
        client.close()


def cmd_watch(args) -> int:
    import time as _time

    from .service.client import Backoff, ServiceClient, parse_endpoint
    from .service.protocol import ProtocolError
    host, port = parse_endpoint(args.endpoint)
    cursor = 0
    backoff = Backoff(cap=max(args.reconnect_cap, 0.05))
    attempts = 0
    client: Optional[ServiceClient] = None
    try:
        while True:
            try:
                if client is None:
                    client = ServiceClient(host, port)
                    if attempts:
                        print(f"reconnected after {attempts} attempt(s)",
                              file=sys.stderr)
                        attempts = 0
                cursor, alerts = client.alerts(cursor)
                for alert in alerts:
                    print(alert.describe())
                if args.metrics:
                    metrics = client.metrics()
                    sys.stdout.write(metrics)
                    sampler = {}
                    for line in metrics.splitlines():
                        # A relay quarantining spooled pushes means
                        # data is being delayed — loud, not buried in
                        # the counter dump.
                        if line.startswith("osprof_spool_corrupt_total"):
                            count = int(line.rsplit(" ", 1)[-1])
                            if count:
                                print(f"warning: {count} corrupt "
                                      f"spooled push(es) quarantined",
                                      file=sys.stderr)
                        for key in ("osprof_samples_total",
                                    "osprof_sample_intervals_total",
                                    "osprof_sampler_overhead_ns_total"):
                            if line.startswith(key + " "):
                                sampler[key] = int(line.rsplit(" ", 1)[-1])
                    if sampler.get("osprof_samples_total"):
                        print(f"sampler: "
                              f"{sampler['osprof_samples_total']} "
                              f"samples over "
                              f"{sampler.get('osprof_sample_intervals_total', 0)} "
                              f"interval(s), "
                              f"{sampler.get('osprof_sampler_overhead_ns_total', 0) / 1e6:.1f} "
                              f"ms capture overhead", file=sys.stderr)
                if args.once:
                    if not alerts:
                        print("no alerts")
                    return 0
                sys.stdout.flush()
                _time.sleep(args.poll)
            except (OSError, ProtocolError):
                # The service went away mid-watch; keep following and
                # reconnect quietly (a watcher should outlive restarts).
                if args.once:
                    raise
                if client is not None:
                    client.close()
                    client = None
                _time.sleep(backoff.delay(attempts))
                attempts += 1
    finally:
        if client is not None:
            client.close()


def cmd_trace(args) -> int:
    """Per-request slices of the unified probe event stream.

    A global :class:`~repro.core.pipeline.TraceSink` sees every layer's
    events with their shared request ids, so each printed request shows
    its syscall, file-system, and driver activity as one tree.
    """
    from .core.pipeline import TraceSink
    from .scenarios import (UnknownScenarioError, build_system,
                            get_scenario)
    from .workloads.runner import run_named_workload

    scenario = None
    if args.scenario is not None:
        try:
            scenario = get_scenario(args.scenario)
        except UnknownScenarioError as exc:
            print(f"osprof trace: {exc}", file=sys.stderr)
            return 2
    workload = args.workload
    if workload is None:
        if scenario is None:
            print("osprof trace: give a workload or --scenario",
                  file=sys.stderr)
            return 2
        workload = scenario.workload
    fs_type = args.fs if args.fs is not None else \
        (scenario.fs_type if scenario else "ext2")
    scale = args.scale if args.scale is not None else \
        (scenario.scale if scenario else 0.02)
    processes = args.processes if args.processes is not None else \
        (scenario.processes if scenario else 2)
    iterations = args.iterations if args.iterations is not None else \
        (scenario.iterations if scenario else 1000)
    system = build_system(args.scenario, fs_type=fs_type,
                          num_cpus=args.cpus, seed=args.seed,
                          with_timer=False)
    sink = TraceSink(limit=args.limit)
    system.pipeline.add_global_sink(sink)
    run_named_workload(system, workload, seed=args.seed,
                       scale=scale, processes=processes,
                       iterations=iterations)
    system.pipeline.flush(final=True)

    def root_latency(events) -> float:
        return max((e.latency for e in events if e.depth == 0),
                   default=0.0)

    ranked = sorted(sink.requests().items(),
                    key=lambda kv: root_latency(kv[1]), reverse=True)
    for rid, events in ranked[:args.requests]:
        root = next((e for e in events if e.depth == 0), events[0])
        print(f"request #{rid}: {root.layer}:{root.operation} "
              f"{root.latency:.0f} cycles, {len(events)} events")
        for event in events:
            indent = "  " * (event.depth + 1)
            print(f"{indent}{event.layer}:{event.operation} "
                  f"{event.latency:.0f}")
        print()
    if sink.dropped:
        print(f"(dropped {sink.dropped} events past --limit "
              f"{args.limit})", file=sys.stderr)
    return 0


def cmd_gnuplot(args) -> int:
    pset = _load(args.dump)
    for prof in pset.by_total_latency():
        sys.stdout.write(gnuplot_data(prof))
        sys.stdout.write("\n")
    return 0


def _open_warehouse(args):
    from .warehouse import CompactionPolicy, Warehouse
    policy = None
    if getattr(args, "keep", None) is not None \
            and getattr(args, "fanout", None) is not None:
        try:
            keep = tuple(int(k) for k in args.keep.split(","))
        except ValueError:
            raise ValueError(
                f"bad --keep {args.keep!r}: expected comma-separated "
                f"integers, e.g. 8,8,8") from None
        policy = CompactionPolicy(fanout=args.fanout, keep=keep)
    return Warehouse(args.db, policy=policy,
                     mirror_dir=getattr(args, "mirror", None))


def cmd_db(args) -> int:
    """Dispatch for the warehouse subcommands (``osprof db ...``)."""
    if args.db_command == "sql":
        return cmd_db_sql(args)
    warehouse = _open_warehouse(args)
    if args.db_command == "ingest":
        epoch = args.epoch
        for path in args.dumps:
            meta = warehouse.ingest(args.source, _load(path), epoch=epoch)
            print(f"{path}: segment {meta.seg_id} source={meta.source} "
                  f"epoch={meta.epoch} ({meta.nbytes} bytes)",
                  file=sys.stderr)
            if epoch is not None:
                epoch += 1
        return 0
    if args.db_command == "query":
        pset = warehouse.query(args.source, layer=args.layer, op=args.op,
                               t0=args.since, t1=args.until)
        _write_pset(pset, args.output, args.format)
        return 0
    if args.db_command == "compact":
        created = warehouse.compact(source=args.source)
        for meta in created:
            print(f"compacted -> segment {meta.seg_id} tier={meta.tier} "
                  f"epochs {meta.epoch}..{meta.epoch_end} "
                  f"source={meta.source}", file=sys.stderr)
        print(f"{len(created)} compaction(s)", file=sys.stderr)
        return 0
    if args.db_command == "gc":
        evicted = warehouse.gc(source=args.source)
        print(f"evicted {evicted} segment(s) past retention"
              + (f", removed {warehouse.orphans_removed} orphan file(s)"
                 if warehouse.orphans_removed else ""),
              file=sys.stderr)
        return 0
    if args.db_command == "scrub":
        return cmd_db_scrub(args, warehouse)
    if args.db_command == "baseline":
        return cmd_db_baseline(args, warehouse)
    if args.db_command == "gate":
        return cmd_db_gate(args, warehouse)
    raise ValueError(f"unknown db command {args.db_command!r}")


def cmd_db_sql(args) -> int:
    """``osprof db sql``: analytics queries over a warehouse or service."""
    if (args.db is None) == (args.endpoint is None):
        print("osprof db sql: give exactly one of --db or --endpoint",
              file=sys.stderr)
        return 2
    if args.endpoint is not None:
        from .service.client import ServiceClient, parse_endpoint
        host, port = parse_endpoint(args.endpoint)
        client = ServiceClient(host, port)
        try:
            columns, rows = client.sql(args.query)
        finally:
            client.close()
    else:
        from .warehouse import Warehouse, execute_sql
        result = execute_sql(Warehouse(args.db), args.query)
        columns, rows = result.columns, list(result.rows)
    _write_sql_result(columns, rows, args.format)
    return 0


def _write_sql_result(columns, rows, fmt: str) -> None:
    if fmt == "json":
        json.dump({"columns": list(columns),
                   "rows": [list(r) for r in rows]},
                  sys.stdout, indent=2)
        sys.stdout.write("\n")
        return
    if fmt == "csv":
        writer = csv.writer(sys.stdout)
        writer.writerow(columns)
        for row in rows:
            writer.writerow(["" if v is None else v for v in row])
        return
    cells = [[("-" if v is None
               else f"{v:.6g}" if isinstance(v, float) else str(v))
              for v in row] for row in rows]
    widths = [max([len(name)] + [len(r[i]) for r in cells])
              for i, name in enumerate(columns)]
    print("  ".join(n.ljust(w) for n, w in zip(columns, widths)).rstrip())
    print("  ".join("-" * w for w in widths))
    for row in cells:
        print("  ".join(c.ljust(w) for c, w in zip(row, widths)).rstrip())
    print(f"({len(rows)} row{'' if len(rows) == 1 else 's'})",
          file=sys.stderr)


def cmd_db_scrub(args, warehouse) -> int:
    """``osprof db scrub``: verify committed bytes, optionally repair.

    Exit 0 when everything verified (or every damaged segment was
    restored byte-identically from the mirror), exit 3 when unrepaired
    damage remains — same contract as ``osprof db gate``.
    """
    if args.repair and warehouse.mirror is None:
        print("osprof db scrub: --repair needs --mirror (nothing to "
              "restore from)", file=sys.stderr)
        return 2
    report = warehouse.scrub(repair=args.repair)
    for issue in report.issues:
        print(f"osprof db scrub: {issue}", file=sys.stderr)
    print(f"scanned {report.scanned} segment(s), "
          f"{report.journal_records} journal record(s): "
          f"{report.corrupt} corrupt, {report.repaired} repaired",
          file=sys.stderr)
    return 0 if report.clean else 3


def cmd_db_baseline(args, warehouse) -> int:
    if args.baseline_command == "save":
        if (args.from_file is None) == (args.source is None):
            print("osprof db baseline save: give exactly one of --from "
                  "or --source", file=sys.stderr)
            return 2
        if args.from_file is not None:
            pset = _load(args.from_file)
        else:
            pset = warehouse.query(args.source, layer=args.layer,
                                   op=args.op, t0=args.since,
                                   t1=args.until)
        warehouse.save_baseline(args.name, pset)
        print(f"baseline {args.name!r}: {len(pset)} operation profiles "
              f"({pset.total_ops()} requests)", file=sys.stderr)
        return 0
    if args.baseline_command == "list":
        for name in warehouse.baselines():
            print(name)
        return 0
    if args.baseline_command == "rm":
        if not warehouse.remove_baseline(args.name):
            print(f"no baseline named {args.name!r}", file=sys.stderr)
            return 1
        return 0
    raise ValueError(f"unknown baseline command {args.baseline_command!r}")


def cmd_db_gate(args, warehouse) -> int:
    from .warehouse.gate import (DEFAULT_GATE_THRESHOLDS, evaluate_gate,
                                 parse_threshold)
    baseline = warehouse.load_baseline(args.baseline)
    capture = _load(args.capture)
    thresholds = ([parse_threshold(text) for text in args.threshold]
                  if args.threshold else DEFAULT_GATE_THRESHOLDS)
    report = evaluate_gate(baseline, capture, thresholds,
                           min_ops=args.min_ops)
    print(report.describe())
    return report.exit_code()


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    handler = {
        "run": cmd_run,
        "merge": cmd_merge,
        "render": cmd_render,
        "peaks": cmd_peaks,
        "compare": cmd_compare,
        "gnuplot": cmd_gnuplot,
        "sampled": cmd_sampled,
        "serve": cmd_serve,
        "relay": cmd_relay,
        "push": cmd_push,
        "top": cmd_top,
        "watch": cmd_watch,
        "trace": cmd_trace,
        "db": cmd_db,
    }[args.command]
    try:
        return handler(args)
    except KeyboardInterrupt:
        return 130
    except (ValueError, OSError) as exc:
        # Corrupt dumps, impossible shard plans, unreadable paths: one
        # clear line, not a traceback.
        print(f"osprof: error: {exc}", file=sys.stderr)
        return 1


if __name__ == "__main__":
    sys.exit(main())

"""Multi-node profile aggregation (the paper's stated future work).

"Because of the compactness of our profiles, we believe that OSprof is
suitable for clusters and distributed systems.  We plan to expand
OSprof for use on such large systems" (Section 7).

This module implements that extension on top of the existing library:

* :func:`aggregate` — merge complete profiles from N nodes into one
  cluster-wide view (OSprof profiles merge losslessly: bucket counts
  add).
* :func:`outlier_nodes` — find nodes whose profiles deviate from the
  cluster consensus, per operation, using any comparison metric
  (default EMD, the paper's best).  This is the cluster analogue of the
  paper's differential analysis: instead of before/after, it compares
  each node against everyone else.
* :class:`ClusterReport` — the ranked findings, with the same
  filter-then-rate structure as the single-node selector.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..core.profile import Profile
from ..core.profileset import ProfileSet
from .compare import compare

__all__ = ["NodeProfiles", "ClusterFinding", "ClusterReport",
           "aggregate", "outlier_nodes"]


@dataclass
class NodeProfiles:
    """One node's complete profile, tagged with its identity."""

    node: str
    profiles: ProfileSet


@dataclass
class ClusterFinding:
    """One (node, operation) pair that deviates from the consensus."""

    node: str
    operation: str
    score: float
    node_ops: int
    consensus_ops: float

    def describe(self) -> str:
        return (f"{self.node}/{self.operation}: score={self.score:.4f} "
                f"(node ops={self.node_ops}, "
                f"cluster mean={self.consensus_ops:.0f})")


@dataclass
class ClusterReport:
    """Ranked deviations across the whole cluster."""

    findings: List[ClusterFinding] = field(default_factory=list)

    def worst(self, limit: int = 5) -> List[ClusterFinding]:
        return self.findings[:limit]

    def nodes_flagged(self) -> List[str]:
        seen = []
        for finding in self.findings:
            if finding.node not in seen:
                seen.append(finding.node)
        return seen


def aggregate(nodes: Sequence[NodeProfiles],
              name: str = "cluster") -> ProfileSet:
    """Merge every node's profiles into one cluster-wide set."""
    if not nodes:
        raise ValueError("need at least one node")
    spec = nodes[0].profiles.spec
    total = ProfileSet(name=name, spec=spec)
    for node in nodes:
        total.merge(node.profiles)
    return total


def _consensus_without(nodes: Sequence[NodeProfiles], excluded: str,
                       operation: str) -> Optional[Profile]:
    """The merged profile of *operation* over every node but one."""
    merged: Optional[Profile] = None
    for node in nodes:
        if node.node == excluded:
            continue
        prof = node.profiles.get(operation)
        if prof is None:
            continue
        if merged is None:
            merged = prof.copy()
        else:
            merged.merge(prof)
    return merged


def outlier_nodes(nodes: Sequence[NodeProfiles],
                  metric: str = "emd",
                  min_ops: int = 10,
                  threshold: float = 0.0) -> ClusterReport:
    """Rank (node, operation) pairs by deviation from the consensus.

    For each operation on each node, the node's profile is compared
    (leave-one-out) against the merged profile of all *other* nodes.
    Normalized metrics make the comparison size-insensitive, so a slow
    node stands out even in a large cluster.
    """
    if len(nodes) < 2:
        raise ValueError("outlier analysis needs at least two nodes")
    names = [n.node for n in nodes]
    if len(set(names)) != len(names):
        raise ValueError("node names must be unique")
    findings: List[ClusterFinding] = []
    operations = sorted({op for node in nodes
                         for op in node.profiles.operations()})
    for operation in operations:
        for node in nodes:
            prof = node.profiles.get(operation)
            if prof is None or prof.total_ops < min_ops:
                continue
            consensus = _consensus_without(nodes, node.node, operation)
            if consensus is None or consensus.total_ops < min_ops:
                continue
            score = compare(prof, consensus, metric)
            if score >= threshold:
                mean_ops = consensus.total_ops / (len(nodes) - 1)
                findings.append(ClusterFinding(
                    node=node.node, operation=operation, score=score,
                    node_ops=prof.total_ops, consensus_ops=mean_ops))
    findings.sort(key=lambda f: f.score, reverse=True)
    return ClusterReport(findings=findings)

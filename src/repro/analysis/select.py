"""Automated selection of "interesting" profiles (Section 3.2).

The paper's tool compares two complete sets of profiles (e.g. before and
after a configuration change, or one vs. two processes) and selects the
small subset a human should look at.  It operates in three phases:

1. **Filter** — drop pairs whose total latencies are very similar, or
   whose total latency / operation count is negligible relative to the
   rest of the set (threshold configurable).
2. **Peak diff** — identify peaks in each remaining pair and report
   differences in peak count and location.
3. **Rate** — score the remaining pairs with one of the comparison
   metrics and rank.

The same machinery sorts a *single* complete profile by total latency to
find the operations worth optimizing (preprocessing, Section 3.1).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..core.profile import Profile
from ..core.profileset import ProfileSet
from .compare import compare
from .peaks import Peak, find_peaks

__all__ = ["SelectionConfig", "ProfilePairReport", "ProfileSelector",
           "top_contributors"]


@dataclass
class SelectionConfig:
    """Thresholds for the three selection phases.

    ``latency_similarity`` — phase 1 drops a pair when the relative
    difference of total latencies is below this value.
    ``negligible_fraction`` — phase 1 drops operations contributing less
    than this fraction of the set's total latency *and* total ops.
    ``min_ops`` — operations with fewer requests than this are noise.
    ``metric`` — phase 3 rating method (default EMD, the paper's best).
    ``report_threshold`` — pairs scoring below this are not reported.
    """

    latency_similarity: float = 0.1
    negligible_fraction: float = 0.01
    min_ops: int = 10
    metric: str = "emd"
    report_threshold: float = 0.0
    peak_location_tolerance: int = 1


@dataclass
class ProfilePairReport:
    """Everything the tool reports about one selected operation pair."""

    operation: str
    score: float
    peaks_a: List[Peak] = field(default_factory=list)
    peaks_b: List[Peak] = field(default_factory=list)
    total_latency_a: float = 0.0
    total_latency_b: float = 0.0
    total_ops_a: int = 0
    total_ops_b: int = 0

    @property
    def peak_count_changed(self) -> bool:
        return len(self.peaks_a) != len(self.peaks_b)

    def moved_peaks(self, tolerance: int = 1) -> List[Tuple[int, int]]:
        """Apex pairs (a, b) that moved by more than *tolerance* buckets."""
        moved = []
        for pa, pb in zip(self.peaks_a, self.peaks_b):
            if abs(pa.apex - pb.apex) > tolerance:
                moved.append((pa.apex, pb.apex))
        return moved

    def describe(self) -> str:
        """One-line human summary, the tool's console output."""
        parts = [f"{self.operation}: score={self.score:.4f}"]
        if self.peak_count_changed:
            parts.append(
                f"peaks {len(self.peaks_a)} -> {len(self.peaks_b)}")
        moved = self.moved_peaks()
        if moved:
            locs = ", ".join(f"{a}->{b}" for a, b in moved)
            parts.append(f"moved: {locs}")
        parts.append(
            f"latency {self.total_latency_a:.3g} vs {self.total_latency_b:.3g}")
        return "  ".join(parts)


def top_contributors(pset: ProfileSet, fraction: float = 0.9,
                     max_profiles: Optional[int] = None) -> List[Profile]:
    """Profiles that together account for *fraction* of the total latency.

    This is the preprocessing step: "selecting a subset of profiles that
    contribute the most to the total latency."
    """
    if not 0.0 < fraction <= 1.0:
        raise ValueError("fraction must be in (0, 1]")
    ranked = pset.by_total_latency()
    grand_total = pset.total_latency()
    if grand_total <= 0:
        return ranked[:max_profiles] if max_profiles else ranked
    selected: List[Profile] = []
    accumulated = 0.0
    for prof in ranked:
        selected.append(prof)
        accumulated += prof.total_latency
        if accumulated >= fraction * grand_total:
            break
        if max_profiles is not None and len(selected) >= max_profiles:
            break
    return selected


class ProfileSelector:
    """The three-phase automated profile-pair selector."""

    def __init__(self, config: Optional[SelectionConfig] = None):
        self.config = config if config is not None else SelectionConfig()

    # -- phase 1 -------------------------------------------------------------

    def filter_pairs(self, set_a: ProfileSet,
                     set_b: ProfileSet) -> List[str]:
        """Operations surviving the similarity/negligibility filter."""
        cfg = self.config
        total_latency = max(set_a.total_latency(), set_b.total_latency())
        total_ops = max(set_a.total_ops(), set_b.total_ops())
        survivors = []
        for op in sorted(set(set_a.operations()) | set(set_b.operations())):
            pa, pb = set_a.get(op), set_b.get(op)
            lat_a = pa.total_latency if pa else 0.0
            lat_b = pb.total_latency if pb else 0.0
            ops_a = pa.total_ops if pa else 0
            ops_b = pb.total_ops if pb else 0
            # Negligible on both axes relative to the whole set?
            lat_share = (max(lat_a, lat_b) / total_latency
                         if total_latency > 0 else 0.0)
            ops_share = (max(ops_a, ops_b) / total_ops
                         if total_ops > 0 else 0.0)
            if lat_share < cfg.negligible_fraction \
                    and ops_share < cfg.negligible_fraction:
                continue
            if max(ops_a, ops_b) < cfg.min_ops:
                continue
            # Very similar total latencies?
            denom = max(lat_a, lat_b)
            if denom > 0 and abs(lat_a - lat_b) / denom \
                    < cfg.latency_similarity:
                continue
            survivors.append(op)
        return survivors

    # -- phases 2 + 3 ----------------------------------------------------------

    def report_pair(self, op: str, pa: Optional[Profile],
                    pb: Optional[Profile]) -> ProfilePairReport:
        """Peak analysis and metric rating for one operation pair."""
        empty = Profile(op)
        pa = pa if pa is not None else empty
        pb = pb if pb is not None else empty
        score = compare(pa, pb, self.config.metric)
        return ProfilePairReport(
            operation=op,
            score=score,
            peaks_a=find_peaks(pa),
            peaks_b=find_peaks(pb),
            total_latency_a=pa.total_latency,
            total_latency_b=pb.total_latency,
            total_ops_a=pa.total_ops,
            total_ops_b=pb.total_ops,
        )

    def select(self, set_a: ProfileSet,
               set_b: ProfileSet) -> List[ProfilePairReport]:
        """Full pipeline: filter, peak-diff, rate, rank (highest first)."""
        reports = []
        for op in self.filter_pairs(set_a, set_b):
            report = self.report_pair(op, set_a.get(op), set_b.get(op))
            if report.score >= self.config.report_threshold:
                reports.append(report)
        reports.sort(key=lambda r: r.score, reverse=True)
        return reports

    def interesting(self, set_a: ProfileSet, set_b: ProfileSet,
                    limit: Optional[int] = None) -> List[str]:
        """Just the operation names, most interesting first."""
        names = [r.operation for r in self.select(set_a, set_b)]
        return names[:limit] if limit is not None else names

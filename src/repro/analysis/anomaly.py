"""Change-point detection over sampled (3-D) profiles.

Section 2 credits Chen et al. with "observ[ing] changes in the
distribution of latency over time ... to detect possible problems in
network services"; OSprof's sampled profiles make the same analysis a
one-liner over its own data: each time segment is a complete profile,
so consecutive segments can be compared with any histogram metric
(default EMD) and spikes in the distance series mark behaviour changes
— a daemon waking up, a cache filling, a server degrading.

:func:`change_points` returns the segments whose distribution differs
from the previous segment by more than a threshold (absolute, or
self-calibrated from the series' own median level).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from ..core.profile import Profile
from ..core.sampling import SampledProfileSeries
from .compare import compare

__all__ = ["ChangePoint", "distance_series", "change_points"]


@dataclass
class ChangePoint:
    """A segment whose latency distribution broke from its predecessor."""

    segment: int
    operation: str
    score: float
    threshold: float

    def describe(self) -> str:
        return (f"segment {self.segment}: {self.operation} "
                f"score={self.score:.4f} (threshold {self.threshold:.4f})")


def distance_series(series: SampledProfileSeries, operation: str,
                    metric: str = "emd",
                    min_ops: int = 1) -> List[Optional[float]]:
    """Distance between each segment and its predecessor.

    Entry ``i`` compares segment ``i`` with segment ``i-1`` (entry 0 is
    always None).  Segments where either side has fewer than *min_ops*
    samples yield None — too sparse to compare meaningfully.
    """
    out: List[Optional[float]] = [None]
    for i in range(1, len(series)):
        prev = series[i - 1].get(operation)
        cur = series[i].get(operation)
        if prev is None or cur is None \
                or prev.total_ops < min_ops or cur.total_ops < min_ops:
            out.append(None)
            continue
        out.append(compare(prev, cur, metric))
    return out


def _median(values: Sequence[float]) -> float:
    ordered = sorted(values)
    n = len(ordered)
    if n == 0:
        return 0.0
    mid = n // 2
    if n % 2:
        return ordered[mid]
    return (ordered[mid - 1] + ordered[mid]) / 2.0


def change_points(series: SampledProfileSeries, operation: str,
                  metric: str = "emd",
                  threshold: Optional[float] = None,
                  sensitivity: float = 3.0,
                  min_ops: int = 10) -> List[ChangePoint]:
    """Segments where the latency distribution jumped.

    With ``threshold=None`` the cutoff self-calibrates to
    ``sensitivity x median`` of the non-None distance series — robust
    against series that are noisy throughout (median ignores the
    spikes being hunted).
    """
    distances = distance_series(series, operation, metric, min_ops)
    observed = [d for d in distances if d is not None]
    if not observed:
        return []
    if threshold is None:
        base = _median(observed)
        if base == 0.0:
            base = max(observed) / (2 * sensitivity) or 1e-9
        threshold = sensitivity * base
    points = []
    for segment, distance in enumerate(distances):
        if distance is not None and distance > threshold:
            points.append(ChangePoint(segment=segment,
                                      operation=operation,
                                      score=distance,
                                      threshold=threshold))
    return points

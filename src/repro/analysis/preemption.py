"""The forcible-preemption model of Section 3.3 (Equation 3).

A request profiled in a fully preemptive kernel can be forcibly
preempted only during its CPU component.  With

* ``Q`` — the scheduling quantum in cycles,
* ``Y`` — the probability a process yields during a request,
* ``t_cpu`` — CPU time of the profiled request,
* ``t_period`` — average total (user + system) CPU time between requests,

the probability that a profiled request is forcibly preempted is::

    Pr(fp) = (t_cpu / t_period) * (1 - Y) ** (Q / t_period)     (Eq. 3)

The paper plugs in Y=0.01, t_cpu = t_period/2 = 2^10, Q = 2^26 and gets
~2.3e-280 — i.e. preemption effects are negligible for normal workloads.
For Y=0 workloads (e.g. zero-byte reads) the expected number of
preempted requests out of bucket ``b`` is ``n_b * t_cpu(b) / Q`` where
``t_cpu(b) = 3/2 * 2^b`` is the bucket's average latency; summing over
buckets predicts the population of the quantum bucket (their 26th),
which their measurement matched within 33%.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Optional

from ..core.buckets import BucketSpec, LatencyBuckets
from ..core.profile import Profile

__all__ = ["forced_preemption_probability", "expected_preempted_requests",
           "quantum_bucket", "PreemptionPrediction", "predict_preemption"]


def forced_preemption_probability(t_cpu: float, t_period: float,
                                  quantum: float,
                                  yield_probability: float) -> float:
    """Evaluate Equation 3.

    All times in cycles.  ``yield_probability`` is Y in [0, 1].
    """
    if t_cpu < 0 or t_period <= 0 or quantum <= 0:
        raise ValueError("times must be positive (t_cpu non-negative)")
    if not 0.0 <= yield_probability <= 1.0:
        raise ValueError("yield probability must be within [0, 1]")
    if t_cpu > t_period:
        raise ValueError("t_cpu cannot exceed t_period")
    base = 1.0 - yield_probability
    exponent = quantum / t_period
    if base == 0.0:
        survive = 1.0 if exponent == 0 else 0.0
    else:
        # Compute in log space: (1-Y)**(Q/t_period) underflows floats for
        # realistic parameters (the paper's example is 2.3e-280).
        log_survive = exponent * math.log(base)
        survive = math.exp(log_survive) if log_survive > -745 else 0.0
    return (t_cpu / t_period) * survive


def quantum_bucket(quantum: float,
                   spec: Optional[BucketSpec] = None) -> int:
    """The bucket a full scheduling quantum falls into (paper: bucket 26)."""
    spec = spec if spec is not None else BucketSpec()
    return spec.bucket(quantum)


def expected_preempted_requests(source, quantum: float) -> float:
    """Expected preempted requests for a non-yielding (Y=0) workload.

    Sums ``n_b * t_cpu(b) / Q`` over the profile's buckets, with
    ``t_cpu(b) = 3/2 * 2^(b/r)`` the bucket's average latency.  Buckets
    at or beyond the quantum bucket are excluded: those requests *are*
    the preempted ones.
    """
    hist = source.histogram if isinstance(source, Profile) else source
    qb = quantum_bucket(quantum, hist.spec)
    expected = 0.0
    for b, count in hist.counts().items():
        if b >= qb:
            continue
        t_cpu = 1.5 * hist.spec.low(b)
        expected += count * t_cpu / quantum
    return expected


@dataclass
class PreemptionPrediction:
    """Model-vs-measurement comparison for the quantum bucket."""

    quantum_bucket: int
    expected: float
    measured: int

    @property
    def relative_error(self) -> float:
        """|measured - expected| / expected (inf when nothing expected)."""
        if self.expected == 0:
            return math.inf if self.measured else 0.0
        return abs(self.measured - self.expected) / self.expected

    def within(self, tolerance: float) -> bool:
        """True when the measurement matches within ±tolerance (e.g. 0.33)."""
        return self.relative_error <= tolerance


def predict_preemption(source, quantum: float) -> PreemptionPrediction:
    """Compare Equation-3 theory against a measured profile.

    *source* must be a profile captured on a preemptive kernel for a
    Y=0 workload.  The measured count is the population of the quantum
    bucket and everything to its right (preempted requests may span
    several buckets when multiple quanta elapse).
    """
    hist = source.histogram if isinstance(source, Profile) else source
    qb = quantum_bucket(quantum, hist.spec)
    measured = sum(c for b, c in hist.counts().items() if b >= qb)
    expected = expected_preempted_requests(hist, quantum)
    return PreemptionPrediction(quantum_bucket=qb, expected=expected,
                                measured=measured)

"""Prior-knowledge-based peak attribution (Section 3.1).

"Many OS operations have characteristic times ... a context switch takes
approximately 5-6 us, a full stroke disk head seek takes approximately
8 ms, a full disk rotation takes approximately 4 ms, the network latency
between our test machines is about 112 us, and the scheduling quantum is
about 58 ms.  Therefore, if some of the profiles have peaks close to
these times, then we can hypothesize right away that they are related to
the corresponding OS activity."

:class:`CharacteristicTimes` is that lookup table, pre-populated with
the paper's values (convertible to cycles at any clock rate) and
extensible with times calibrated on the system under test.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..core.buckets import BucketSpec
from ..core.profiler import NOMINAL_HZ
from .peaks import Peak, find_peaks

__all__ = ["CharacteristicTime", "CharacteristicTimes", "PAPER_TIMES"]


@dataclass(frozen=True)
class CharacteristicTime:
    """A named OS activity and its typical duration in seconds."""

    name: str
    seconds: float
    description: str = ""

    def cycles(self, hz: float = NOMINAL_HZ) -> float:
        return self.seconds * hz

    def bucket(self, spec: Optional[BucketSpec] = None,
               hz: float = NOMINAL_HZ) -> int:
        spec = spec if spec is not None else BucketSpec()
        return spec.bucket(self.cycles(hz))


#: The paper's measured characteristic times for its test setup.
PAPER_TIMES: Tuple[CharacteristicTime, ...] = (
    CharacteristicTime("context_switch", 5.5e-6,
                       "process context switch (5-6 us)"),
    CharacteristicTime("track_seek", 0.3e-3,
                       "track-to-track disk head seek"),
    CharacteristicTime("full_seek", 8e-3,
                       "full stroke disk head seek"),
    CharacteristicTime("disk_rotation", 4e-3,
                       "full platter rotation at 15 kRPM"),
    CharacteristicTime("network_rtt", 112e-6,
                       "LAN latency between test machines"),
    CharacteristicTime("scheduling_quantum", 58e-3,
                       "scheduler time slice"),
    CharacteristicTime("timer_interrupt", 4e-3,
                       "timer interrupt period (250 Hz-ish)"),
    CharacteristicTime("delayed_ack", 200e-3,
                       "TCP delayed acknowledgement timer"),
)


class CharacteristicTimes:
    """Lookup table mapping latency peaks to hypothesized OS activities."""

    def __init__(self, times: Optional[List[CharacteristicTime]] = None,
                 hz: float = NOMINAL_HZ,
                 spec: Optional[BucketSpec] = None):
        self.hz = hz
        self.spec = spec if spec is not None else BucketSpec()
        self._times: Dict[str, CharacteristicTime] = {}
        for t in (times if times is not None else list(PAPER_TIMES)):
            self._times[t.name] = t

    def add(self, name: str, seconds: float, description: str = "") -> None:
        """Register a characteristic time calibrated on this system."""
        if seconds <= 0:
            raise ValueError("characteristic times must be positive")
        self._times[name] = CharacteristicTime(name, seconds, description)

    def get(self, name: str) -> CharacteristicTime:
        return self._times[name]

    def names(self) -> List[str]:
        return sorted(self._times)

    def bucket_of(self, name: str) -> int:
        """The bucket a given activity's characteristic time falls into."""
        return self._times[name].bucket(self.spec, self.hz)

    def candidates(self, bucket: int,
                   tolerance: int = 1) -> List[CharacteristicTime]:
        """Activities whose characteristic bucket is within *tolerance*.

        Returned nearest-first; ties broken by name for determinism.
        """
        scored = []
        for t in self._times.values():
            tb = t.bucket(self.spec, self.hz)
            distance = abs(tb - bucket)
            if distance <= tolerance:
                scored.append((distance, t.name, t))
        scored.sort()
        return [t for _, _, t in scored]

    def attribute(self, source, tolerance: int = 1,
                  **peak_kwargs) -> Dict[int, List[str]]:
        """Hypothesize activities for every peak of a profile.

        Returns ``{apex_bucket: [activity names]}``; peaks with no
        matching characteristic time map to an empty list (meaning the
        analyst needs differential analysis instead).
        """
        result: Dict[int, List[str]] = {}
        for peak in find_peaks(source, **peak_kwargs):
            names = [t.name
                     for t in self.candidates(peak.apex, tolerance)]
            result[peak.apex] = names
        return result

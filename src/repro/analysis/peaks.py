"""Peak detection on logarithmic latency histograms.

The automated analysis tool's second phase "examines the changes between
bins to identify individual peaks, and reports differences in the number
of peaks and their locations" (Section 3.2).  On OSprof histograms the
y-axis spans many decades, so peak segmentation is done on
``log10(count + 1)`` — the same transform under which the paper's plots
are read by eye.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..core.buckets import LatencyBuckets
from ..core.profile import Profile

__all__ = ["Peak", "find_peaks", "peak_signature", "peaks_differ"]


@dataclass
class Peak:
    """One contiguous mode of a latency histogram.

    ``low``/``high`` are the inclusive bucket bounds, ``apex`` the bucket
    with the highest count, ``ops`` the total operations in the peak and
    ``mean_latency`` the count-weighted mean of bucket midpoints.
    """

    low: int
    high: int
    apex: int
    ops: int
    mean_latency: float

    def width(self) -> int:
        return self.high - self.low + 1

    def contains(self, bucket: int) -> bool:
        return self.low <= bucket <= self.high


def _log_counts(hist: LatencyBuckets,
                lo: int, hi: int) -> List[float]:
    return [math.log10(hist.count(b) + 1.0) for b in range(lo, hi + 1)]


def find_peaks(source, min_separation: float = 0.5,
               min_ops: int = 1) -> List[Peak]:
    """Segment a histogram (or Profile) into peaks.

    A new peak starts after a *valley*: a bucket whose log-count is at
    least ``min_separation`` decades below the running local maximum,
    provided the curve then rises by the same margin.  Empty buckets
    always separate peaks.  Peaks with fewer than ``min_ops`` operations
    are discarded (they are noise at the scale the paper plots).
    """
    hist = source.histogram if isinstance(source, Profile) else source
    if hist.total_ops == 0:
        return []
    lo, hi = hist.span()
    logs = _log_counts(hist, lo, hi)

    # First cut: split on empty buckets.
    segments: List[Tuple[int, int]] = []
    start: Optional[int] = None
    for i, b in enumerate(range(lo, hi + 1)):
        if hist.count(b) > 0:
            if start is None:
                start = b
        else:
            if start is not None:
                segments.append((start, b - 1))
                start = None
    if start is not None:
        segments.append((start, hi))

    # Second cut: split segments at interior valleys.
    peaks: List[Peak] = []
    for seg_lo, seg_hi in segments:
        peaks.extend(_split_segment(hist, logs, lo, seg_lo, seg_hi,
                                    min_separation))
    return [p for p in peaks if p.ops >= min_ops]


def _split_segment(hist: LatencyBuckets, logs: Sequence[float],
                   base: int, seg_lo: int, seg_hi: int,
                   min_separation: float) -> List[Peak]:
    """Split one contiguous non-empty run of buckets at its valleys."""
    cut_points: List[int] = []
    running_max = logs[seg_lo - base]
    valley_bucket = None
    valley_depth = running_max
    for b in range(seg_lo + 1, seg_hi + 1):
        v = logs[b - base]
        if v < valley_depth:
            valley_depth = v
            valley_bucket = b
        drop = running_max - valley_depth
        rise = v - valley_depth
        if (valley_bucket is not None and drop >= min_separation
                and rise >= min_separation):
            cut_points.append(valley_bucket)
            running_max = v
            valley_depth = v
            valley_bucket = None
        elif v > running_max:
            running_max = v
            if valley_bucket is None or v >= valley_depth:
                valley_depth = min(valley_depth, v)

    bounds: List[Tuple[int, int]] = []
    prev = seg_lo
    for cut in cut_points:
        bounds.append((prev, cut))
        prev = cut + 1
    bounds.append((prev, seg_hi))
    return [_make_peak(hist, lo, hi) for lo, hi in bounds if lo <= hi]


def _make_peak(hist: LatencyBuckets, lo: int, hi: int) -> Peak:
    counts = {b: hist.count(b) for b in range(lo, hi + 1)}
    ops = sum(counts.values())
    apex = max(counts, key=lambda b: (counts[b], -b))
    if ops:
        mean = sum(hist.spec.mid(b) * c for b, c in counts.items()) / ops
    else:
        mean = 0.0
    return Peak(low=lo, high=hi, apex=apex, ops=ops, mean_latency=mean)


def peak_signature(source, **kwargs) -> List[int]:
    """The apex bucket indices of a histogram's peaks, left to right."""
    return [p.apex for p in find_peaks(source, **kwargs)]


def peaks_differ(a, b, location_tolerance: int = 1,
                 **kwargs) -> bool:
    """True when two histograms have different peak structure.

    Differences in the *number* of peaks always count; matching peak
    counts differ when any apex moved by more than
    ``location_tolerance`` buckets.  This is the phase-2 report of the
    paper's automated tool.
    """
    sig_a = peak_signature(a, **kwargs)
    sig_b = peak_signature(b, **kwargs)
    if len(sig_a) != len(sig_b):
        return True
    return any(abs(x - y) > location_tolerance
               for x, y in zip(sig_a, sig_b))

"""Profile rendering and consistency checking.

The paper generated all of its figures automatically with scripts that
also "check the profiles for consistency" against the aggregate-stats
checksums (Section 4).  This module renders profiles as the same kind of
log-log bar charts — in ASCII for terminals and tests — plus Gnuplot-
compatible data dumps and the Figure 9-style sampled-profile density
maps.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from ..core.buckets import LatencyBuckets, format_seconds
from ..core.profile import Profile
from ..core.profileset import ProfileSet
from ..core.profiler import NOMINAL_HZ
from ..core.sampling import SampledProfileSeries

__all__ = ["render_profile", "render_profile_set", "render_profile_diff",
           "render_sampled", "gnuplot_data", "gnuplot_sampled_data",
           "check_consistency", "ConsistencyError"]

_BAR = "#"
_HEIGHT = 10  # rows in an ASCII chart (one per decade, capped)


class ConsistencyError(Exception):
    """A profile failed its checksum verification."""


def check_consistency(pset: ProfileSet) -> None:
    """Raise :class:`ConsistencyError` if any profile fails its checksum.

    Mirrors the paper's plot scripts: "results in all of the buckets are
    summed and then compared with the checksums.  This verification
    catches potential code instrumentation errors."
    """
    bad = pset.verify_checksums()
    if bad:
        raise ConsistencyError(
            f"checksum mismatch in operations: {', '.join(bad)}")


def _log10_ceil(n: int) -> int:
    decades = 0
    while 10 ** decades <= n:
        decades += 1
    return decades


def render_profile(prof: Profile, width: Optional[int] = None,
                   hz: float = NOMINAL_HZ,
                   first: Optional[int] = None,
                   last: Optional[int] = None) -> str:
    """ASCII log-log bar chart of one profile, like the paper's figures.

    Rows are decades of the operation count (log10 y-axis); columns are
    buckets (log2 x-axis).  A latency-label ruler mirrors the "28ns
    903ns 28us ..." annotations of the figures.
    """
    hist = prof.histogram
    lines = [f"{prof.operation.upper()}  "
             f"(ops={hist.total_ops}, mean={hist.mean_latency():.0f} cycles)"]
    if hist.total_ops == 0:
        lines.append("  <empty>")
        return "\n".join(lines)
    lo, hi = hist.span()
    lo = lo if first is None else first
    hi = hi if last is None else last
    buckets = list(range(lo, hi + 1))
    max_count = max(hist.count(b) for b in buckets) or 1
    height = min(_HEIGHT, max(1, _log10_ceil(max_count)))

    rows: List[str] = []
    for row in range(height, 0, -1):
        threshold = 10 ** (row - 1)
        cells = []
        for b in buckets:
            cells.append(_BAR if hist.count(b) >= threshold else " ")
        rows.append(f"{threshold:>8} |" + " ".join(cells))
    lines.extend(rows)
    axis = "         +" + "-" * (2 * len(buckets))
    lines.append(axis)
    tick_row = [" "] * (2 * len(buckets))
    label_row = [" "] * (2 * len(buckets))
    for i, b in enumerate(buckets):
        if b % 5 == 0:
            pos = 2 * i
            text = str(b)
            for j, ch in enumerate(text):
                if pos + j < len(tick_row):
                    tick_row[pos + j] = ch
            label = format_seconds(hist.spec.low(b) / hz)
            for j, ch in enumerate(label):
                if pos + j < len(label_row):
                    label_row[pos + j] = ch
    lines.append("          " + "".join(tick_row))
    lines.append("          " + "".join(label_row))
    lines.append("          bucket = floor(log2(latency in cycles))")
    return "\n".join(lines)


def render_profile_set(pset: ProfileSet, top: Optional[int] = None,
                       hz: float = NOMINAL_HZ) -> str:
    """Render a complete profile, highest-latency operations first."""
    check_consistency(pset)
    ranked = pset.by_total_latency()
    if top is not None:
        ranked = ranked[:top]
    blocks = [render_profile(p, hz=hz) for p in ranked]
    header = (f"== complete profile {pset.name!r}: {len(pset)} operations, "
              f"{pset.total_ops()} requests ==")
    return header + "\n\n" + "\n\n".join(blocks)


def render_sampled(series: SampledProfileSeries, operation: str,
                   interval_seconds: Optional[float] = None) -> str:
    """Figure 9-style density map of a sampled profile.

    Cells use the paper's three densities: ``.`` for 1-10 operations,
    ``o`` for 11-100, ``@`` for more than 100.
    """
    cells = series.cells(operation)
    if not cells:
        return f"{operation.upper()}  <no samples>"
    buckets = sorted({b for _, b in cells})
    lo, hi = buckets[0], buckets[-1]
    lines = [f"{operation.upper()}  (segments={len(series)}, "
             f"buckets {lo}..{hi})"]
    for seg in range(len(series)):
        row = []
        for b in range(lo, hi + 1):
            count = cells.get((seg, b), 0)
            if count == 0:
                row.append(" ")
            elif count <= 10:
                row.append(".")
            elif count <= 100:
                row.append("o")
            else:
                row.append("@")
        if interval_seconds is not None:
            label = f"{seg * interval_seconds:6.1f}s"
        else:
            label = f"seg{seg:3d}"
        lines.append(f"{label} |{''.join(row)}|")
    lines.append("        bucket " + str(lo) + " .. " + str(hi))
    lines.append("        key: '.' 1-10 ops, 'o' 11-100, '@' >100")
    return "\n".join(lines)


def gnuplot_data(prof: Profile) -> str:
    """Bucket/count pairs in the whitespace format Gnuplot consumes."""
    lines = [f"# {prof.operation} layer={prof.layer} "
             f"total_ops={prof.total_ops}"]
    for b, c in sorted(prof.counts().items()):
        lines.append(f"{b} {c}")
    return "\n".join(lines) + "\n"


def gnuplot_sampled_data(series: SampledProfileSeries, operation: str,
                         interval_seconds: Optional[float] = None) -> str:
    """3-D (splot) data for a sampled profile: bucket, time, count.

    The format the paper's scripts fed Gnuplot for Figure 9: one line
    per populated (bucket, segment) cell, blank lines between segments
    (Gnuplot's grid-data convention).
    """
    cells = series.cells(operation)
    lines = [f"# {operation}: bucket  elapsed  operations"]
    for segment in range(len(series)):
        row = sorted((b, c) for (s, b), c in cells.items()
                     if s == segment)
        elapsed = (segment * interval_seconds
                   if interval_seconds is not None else segment)
        for bucket, count in row:
            lines.append(f"{bucket} {elapsed} {count}")
        lines.append("")
    return "\n".join(lines) + "\n"


def render_profile_diff(before: Profile, after: Profile,
                        min_delta: int = 1) -> str:
    """Differential view of one operation under changed conditions.

    One line per bucket whose population changed by at least
    ``min_delta``: ``+`` bars for requests that appeared, ``-`` bars for
    requests that vanished (log10-scaled bar lengths).  The textual form
    of the paper's differential profile analysis (Section 3.1).
    """
    from .compare import count_difference

    deltas = {b: d for b, d in count_difference(before, after).items()
              if abs(d) >= min_delta}
    header = (f"{before.operation.upper()}  diff "
              f"({before.total_ops} -> {after.total_ops} ops)")
    if not deltas:
        return header + "\n  <no change>"
    lines = [header]
    for bucket in sorted(deltas):
        delta = deltas[bucket]
        magnitude = _log10_ceil(abs(delta))
        bar = ("+" if delta > 0 else "-") * max(1, magnitude)
        lines.append(f"  bucket {bucket:3d}: {delta:+8d} {bar}")
    return "\n".join(lines)

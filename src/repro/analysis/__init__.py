"""Profile analysis: peaks, comparison metrics, selection, theory.

* :mod:`~repro.analysis.peaks` — peak segmentation on log histograms.
* :mod:`~repro.analysis.compare` — chi-squared, Minkowski, intersection,
  KL/Jeffrey, EMD, and scalar total-ops/total-latency differences.
* :mod:`~repro.analysis.select` — the 3-phase automated interesting-
  profile selector.
* :mod:`~repro.analysis.priorknowledge` — characteristic-time peak
  attribution.
* :mod:`~repro.analysis.preemption` — Equation 3 and its validation.
* :mod:`~repro.analysis.groundtruth` — synthetic labelled pairs for the
  Section 5.3 accuracy study.
* :mod:`~repro.analysis.report` — ASCII/Gnuplot rendering, checksums.
"""

from .anomaly import ChangePoint, change_points, distance_series
from .cluster import (ClusterFinding, ClusterReport, NodeProfiles,
                      aggregate, outlier_nodes)
from .compare import (METRICS, chi_squared, compare, earth_movers_distance,
                      intersection_distance, jeffrey_divergence,
                      kullback_leibler, minkowski, total_latency_difference,
                      total_ops_difference)
from .investigate import Finding, Investigation
from .groundtruth import (MethodAccuracy, PairGenerator, PeakSpec,
                          ProfilePairSample, evaluate_methods)
from .peaks import Peak, find_peaks, peak_signature, peaks_differ
from .preemption import (PreemptionPrediction, expected_preempted_requests,
                         forced_preemption_probability, predict_preemption,
                         quantum_bucket)
from .priorknowledge import (PAPER_TIMES, CharacteristicTime,
                             CharacteristicTimes)
from .report import (ConsistencyError, check_consistency, gnuplot_data,
                     render_profile, render_profile_set, render_sampled)
from .select import (ProfilePairReport, ProfileSelector, SelectionConfig,
                     top_contributors)

__all__ = [
    "ChangePoint", "change_points", "distance_series",
    "ClusterFinding", "ClusterReport", "NodeProfiles", "aggregate",
    "outlier_nodes",
    "METRICS", "chi_squared", "compare", "earth_movers_distance",
    "intersection_distance", "jeffrey_divergence", "kullback_leibler",
    "minkowski", "total_latency_difference", "total_ops_difference",
    "Finding", "Investigation",
    "MethodAccuracy", "PairGenerator", "PeakSpec", "ProfilePairSample",
    "evaluate_methods",
    "Peak", "find_peaks", "peak_signature", "peaks_differ",
    "PreemptionPrediction", "expected_preempted_requests",
    "forced_preemption_probability", "predict_preemption", "quantum_bucket",
    "PAPER_TIMES", "CharacteristicTime", "CharacteristicTimes",
    "ConsistencyError", "check_consistency", "gnuplot_data",
    "render_profile", "render_profile_set", "render_sampled",
    "ProfilePairReport", "ProfileSelector", "SelectionConfig",
    "top_contributors",
]

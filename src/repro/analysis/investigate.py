"""The repetitive-refinement investigation loop (Section 3.5).

"Workload selection is a repetitive-refinement visualization process,
but we found that a small number of profiles tended to be enough to
reveal highly useful information."

:class:`Investigation` packages that loop: run the same workload under
two conditions (two system configurations, two process counts, a code
change), let the automated selector pick the operations worth looking
at, and produce a human-ready report — the rendered profiles, their
differential view, and characteristic-time hypotheses for every moved
or new peak.  It is the programmatic form of what
``examples/find_lock_contention.py`` walks through by hand.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional

from ..core.profileset import ProfileSet
from .peaks import find_peaks
from .priorknowledge import CharacteristicTimes
from .report import render_profile, render_profile_diff
from .select import ProfilePairReport, ProfileSelector, SelectionConfig

__all__ = ["Finding", "Investigation"]


@dataclass
class Finding:
    """Everything gathered about one flagged operation."""

    report: ProfilePairReport
    rendered_before: str
    rendered_after: str
    diff: str
    hypotheses: List[str] = field(default_factory=list)

    @property
    def operation(self) -> str:
        return self.report.operation

    def summary(self) -> str:
        lines = [self.report.describe()]
        if self.hypotheses:
            lines.append("  candidate causes: "
                         + "; ".join(self.hypotheses))
        return "\n".join(lines)


class Investigation:
    """Compare two captured conditions and explain what changed."""

    def __init__(self, before: ProfileSet, after: ProfileSet,
                 config: Optional[SelectionConfig] = None,
                 characteristic_times: Optional[CharacteristicTimes]
                 = None):
        self.before = before
        self.after = after
        self.selector = ProfileSelector(config)
        self.times = (characteristic_times
                      if characteristic_times is not None
                      else CharacteristicTimes())

    @classmethod
    def run(cls, make_system: Callable[[], object],
            workload: Callable[[object], None],
            change: Callable[[object], None],
            profiles: Callable[[object], ProfileSet]
            = lambda s: s.fs_profiles(),
            **kwargs) -> "Investigation":
        """Build both conditions from factories and compare.

        ``make_system()`` builds a fresh system; ``change(system)`` is
        applied only to the second one before ``workload(system)``
        runs.  The two systems are otherwise identical, so any profile
        difference is attributable to the change — the controlled
        experiment of differential analysis.
        """
        baseline = make_system()
        workload(baseline)
        modified = make_system()
        change(modified)
        workload(modified)
        return cls(profiles(baseline), profiles(modified), **kwargs)

    def findings(self, limit: Optional[int] = None) -> List[Finding]:
        """The flagged operations, fully annotated, ranked by score."""
        reports = self.selector.select(self.before, self.after)
        if limit is not None:
            reports = reports[:limit]
        out = []
        for report in reports:
            op = report.operation
            prof_before = self.before.get(op)
            prof_after = self.after.get(op)
            hypotheses = []
            peaks_before = {p.apex for p in (report.peaks_a or [])}
            for peak in report.peaks_b:
                if peak.apex in peaks_before:
                    continue
                names = [t.name for t in
                         self.times.candidates(peak.apex, tolerance=1)]
                if names:
                    hypotheses.append(
                        f"new peak @bucket {peak.apex}: "
                        + "/".join(names))
                else:
                    hypotheses.append(
                        f"new peak @bucket {peak.apex}: no "
                        "characteristic time matches (differential "
                        "analysis needed)")
            from ..core.profile import Profile
            empty = Profile(op)
            out.append(Finding(
                report=report,
                rendered_before=render_profile(prof_before or empty),
                rendered_after=render_profile(prof_after or empty),
                diff=render_profile_diff(prof_before or empty,
                                         prof_after or empty),
                hypotheses=hypotheses))
        return out

    def report(self, limit: Optional[int] = None) -> str:
        """One printable report of the whole investigation."""
        findings = self.findings(limit)
        if not findings:
            return "No interesting differences between the conditions."
        blocks = [f"{len(findings)} operation(s) changed:"]
        for finding in findings:
            blocks.append("=" * 60)
            blocks.append(finding.summary())
            blocks.append("")
            blocks.append(finding.diff)
        return "\n".join(blocks)

"""Labelled profile-pair generator for the Section 5.3 accuracy study.

The paper had three graduate students label over 250 profile pairs as
"important" (should be reported by an automated tool) or not, then
scored each comparison method by its false-classification rate:
chi-squared 5%, total operation counts 4%, total latency 3%, and EMD
best at 2%.

We cannot re-run the user study, so we synthesize it: pairs are
generated from peak-structured histograms shaped like real OSprof
profiles, and labelled by construction —

* **unimportant** pairs differ only by sampling noise (the same
  multi-peak population resampled, with small run-to-run count
  variation), and
* **important** pairs additionally undergo a structural change a human
  would flag: a new contention peak appears, a peak migrates several
  buckets (an I/O mode shift), or a peak's mass changes drastically.

:func:`evaluate_methods` then scores every metric exactly as the study
did: classify each pair as important/unimportant by thresholding the
metric, and report the total false-classification rate.  Thresholds are
calibrated per metric on a held-out calibration set, mirroring the
paper's "the threshold is configurable".
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..core.buckets import BucketSpec, LatencyBuckets
from .compare import METRICS

__all__ = ["PeakSpec", "ProfilePairSample", "PairGenerator",
           "MethodAccuracy", "evaluate_methods"]


@dataclass(frozen=True)
class PeakSpec:
    """Population parameters of one latency mode.

    ``center`` is the mean bucket, ``spread`` the standard deviation (in
    buckets) of the underlying Gaussian in log-latency space, ``weight``
    the fraction of requests taking this path.
    """

    center: float
    spread: float
    weight: float


@dataclass
class ProfilePairSample:
    """One labelled pair: two histograms plus the ground-truth label."""

    a: LatencyBuckets
    b: LatencyBuckets
    important: bool
    change: str  # "noise", "new_peak", "moved_peak", "mass_shift"


class PairGenerator:
    """Deterministic generator of labelled profile pairs."""

    def __init__(self, seed: int = 2006, ops: int = 20000,
                 spec: Optional[BucketSpec] = None):
        self._rng = random.Random(seed)
        self.ops = ops
        self.spec = spec if spec is not None else BucketSpec()

    # -- population sampling ---------------------------------------------------

    def _random_population(self) -> List[PeakSpec]:
        """1-3 peaks at realistic OSprof locations (buckets ~6-26).

        Centers are real-valued: actual latency modes never align with
        bucket boundaries, so resampling splits a mode's mass across
        two bins differently each run — the noise bin-by-bin metrics
        struggle with.
        """
        rng = self._rng
        n_peaks = rng.randint(1, 3)
        centers: List[float] = []
        while len(centers) < n_peaks:
            c = rng.uniform(6.0, 26.0)
            if all(abs(c - o) >= 3.0 for o in centers):
                centers.append(c)
        weights = [rng.uniform(0.2, 1.0) for _ in centers]
        total = sum(weights)
        return [PeakSpec(center=c, spread=rng.uniform(0.5, 1.0),
                         weight=w / total)
                for c, w in zip(centers, weights)]

    def _sample(self, population: Sequence[PeakSpec],
                ops: Optional[int] = None) -> LatencyBuckets:
        """Draw one *run* of the workload from a peak population.

        Besides multinomial sampling, each run carries the noise real
        OSprof captures show between repetitions of the same workload:

        * the operation count varies (+/-10%),
        * every mode drifts slightly in log-latency (cache and layout
          effects; ~10% latency change = ~0.15 bucket), and
        * 1-3% of samples land in arbitrary mid-range buckets (timer
          interrupts, background daemons, occasional slow paths).
        """
        rng = self._rng
        n = ops if ops is not None else self.ops
        n = max(1, int(n * rng.uniform(0.90, 1.10)))
        hist = LatencyBuckets(self.spec)
        drifted = [PeakSpec(p.center + rng.uniform(-0.15, 0.15),
                            p.spread * rng.uniform(0.9, 1.1),
                            p.weight)
                   for p in population]
        weights = [p.weight for p in drifted]
        stray = int(n * rng.uniform(0.01, 0.03))
        for _ in range(n - stray):
            peak = rng.choices(drifted, weights=weights)[0]
            bucket = int(round(rng.gauss(peak.center, peak.spread)))
            bucket = max(0, min(bucket, 40))
            hist.add_to_bucket(bucket)
        for _ in range(max(0, stray)):
            hist.add_to_bucket(rng.randint(4, 18))
        return hist

    # -- structural changes ------------------------------------------------------

    def _new_peak(self, population: List[PeakSpec]) -> List[PeakSpec]:
        """A contention/I/O path appears: 5-12% of requests, well to
        the right of the existing modes (waiting is always slower)."""
        rng = self._rng
        right = max(p.center for p in population)
        center = min(31.0, right + rng.uniform(5.0, 10.0))
        share = rng.uniform(0.05, 0.12)
        scaled = [PeakSpec(p.center, p.spread, p.weight * (1 - share))
                  for p in population]
        scaled.append(PeakSpec(center, rng.uniform(0.5, 1.0), share))
        return scaled

    def _moved_peak(self, population: List[PeakSpec]) -> List[PeakSpec]:
        """One mode migrates 2-4 buckets, usually rightward (an I/O
        mode shift: cache hits become seeks far more often than the
        reverse)."""
        rng = self._rng
        index = rng.randrange(len(population))
        direction = 1 if rng.random() < 0.85 else -1
        shift = direction * rng.uniform(2.0, 4.0)
        moved = []
        for i, p in enumerate(population):
            if i == index:
                center = min(31.0, max(2.0, p.center + shift))
                moved.append(PeakSpec(center, p.spread, p.weight))
            else:
                moved.append(p)
        return moved

    def _mass_shift(self, population: List[PeakSpec]) -> List[PeakSpec]:
        """Requests migrate between existing paths (3-5x odds change),
        usually toward the slowest path (growing contention)."""
        rng = self._rng
        if len(population) == 1:
            # With a single path a mass shift is a big op-count change.
            return population
        slowest = max(range(len(population)),
                      key=lambda i: population[i].center)
        factor = rng.uniform(3.0, 5.0)
        if rng.random() < 0.15:
            factor = 1.0 / factor
        weights = [p.weight * (factor if i == slowest else 1.0)
                   for i, p in enumerate(population)]
        total = sum(weights)
        return [PeakSpec(p.center, p.spread, w / total)
                for p, w in zip(population, weights)]

    # -- pair generation --------------------------------------------------------

    def pair(self) -> ProfilePairSample:
        """Generate one labelled pair (~50% important)."""
        rng = self._rng
        population = self._random_population()
        a = self._sample(population)
        if rng.random() < 0.5:
            b = self._sample(population)
            return ProfilePairSample(a, b, important=False, change="noise")
        kind = rng.choice(["new_peak", "moved_peak", "mass_shift"])
        if kind == "new_peak":
            changed = self._new_peak(population)
        elif kind == "moved_peak":
            changed = self._moved_peak(population)
        else:
            changed = self._mass_shift(population)
            if changed is population:  # degenerate single-peak case
                kind = "new_peak"
                changed = self._new_peak(population)
        # Important changes also change the op count: a stalled path
        # completes fewer requests in the same wall time.
        ops = int(self.ops * rng.uniform(0.55, 0.85))
        b = self._sample(changed, ops)
        return ProfilePairSample(a, b, important=True, change=kind)

    def pairs(self, count: int) -> List[ProfilePairSample]:
        if count < 1:
            raise ValueError("count must be >= 1")
        return [self.pair() for _ in range(count)]


@dataclass
class MethodAccuracy:
    """Accuracy of one comparison method on a labelled pair set."""

    method: str
    threshold: float
    false_positives: int
    false_negatives: int
    total: int

    @property
    def false_rate(self) -> float:
        """Combined false-classification rate, as Section 5.3 reports."""
        if self.total == 0:
            return 0.0
        return (self.false_positives + self.false_negatives) / self.total


def _best_threshold(scores: List[float], labels: List[bool]) -> float:
    """Threshold minimizing misclassifications on the calibration set."""
    candidates = sorted(set(scores))
    best_t, best_err = 0.0, len(labels) + 1
    for i, t in enumerate(candidates):
        # classify score >= t as important
        err = sum(1 for s, lab in zip(scores, labels)
                  if (s >= t) != lab)
        if err < best_err:
            best_err, best_t = err, t
    # Also consider a threshold above every score.
    top = (candidates[-1] + 1.0) if candidates else 1.0
    err = sum(1 for lab in labels if lab)
    if err < best_err:
        best_t = top
    return best_t


def evaluate_methods(pairs: Sequence[ProfilePairSample],
                     calibration: Sequence[ProfilePairSample],
                     methods: Optional[Sequence[str]] = None
                     ) -> Dict[str, MethodAccuracy]:
    """Score comparison methods against ground truth.

    A per-method threshold is fit on *calibration* pairs, then each
    method classifies the evaluation *pairs*; false positives and
    negatives are tallied exactly as the paper defines them.
    """
    names = list(methods) if methods is not None else sorted(METRICS)
    results: Dict[str, MethodAccuracy] = {}
    for name in names:
        fn = METRICS[name]
        calib_scores = [fn(p.a, p.b) for p in calibration]
        calib_labels = [p.important for p in calibration]
        threshold = _best_threshold(calib_scores, calib_labels)
        fp = fn_count = 0
        for p in pairs:
            predicted = fn(p.a, p.b) >= threshold
            if predicted and not p.important:
                fp += 1
            elif not predicted and p.important:
                fn_count += 1
        results[name] = MethodAccuracy(
            method=name, threshold=threshold,
            false_positives=fp, false_negatives=fn_count,
            total=len(pairs))
    return results

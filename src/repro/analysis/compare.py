"""Histogram comparison metrics (Section 3.2, "Comparing two profiles").

Bin-by-bin metrics — chi-squared, Minkowski-form distance, histogram
intersection, Kullback–Leibler and Jeffrey divergence — plus the
cross-bin Earth Mover's Distance (EMD) the paper recommends, and the two
trivial scalar comparisons (normalized difference of total operations
and of total latency) that it also evaluated.

All metrics operate on a pair of histograms aligned to a common bucket
range; counts are normalized to mass 1 where the metric requires it
(EMD: "the histograms are normalized so that we have exactly enough
earth to fill the holes").

Every metric returns a *difference score*: 0 for identical profiles,
growing with dissimilarity, so the automated selector can rank with a
single convention.
"""

from __future__ import annotations

import math
from typing import Callable, Dict, List, Sequence, Tuple

from ..core.buckets import LatencyBuckets
from ..core.profile import Profile

__all__ = [
    "aligned_counts",
    "count_difference",
    "chi_squared",
    "minkowski",
    "intersection_distance",
    "kullback_leibler",
    "jeffrey_divergence",
    "earth_movers_distance",
    "total_ops_difference",
    "total_latency_difference",
    "METRICS",
    "compare",
]

_EPS = 1e-12


def _hist(source) -> LatencyBuckets:
    return source.histogram if isinstance(source, Profile) else source


def aligned_counts(a, b) -> Tuple[List[float], List[float]]:
    """Dense count vectors for two histograms over their joint bucket range."""
    ha, hb = _hist(a), _hist(b)
    buckets = set(ha.counts()) | set(hb.counts())
    if not buckets:
        return [], []
    lo, hi = min(buckets), max(buckets)
    va = [float(ha.count(i)) for i in range(lo, hi + 1)]
    vb = [float(hb.count(i)) for i in range(lo, hi + 1)]
    return va, vb


def _normalize(v: Sequence[float]) -> List[float]:
    total = sum(v)
    if total <= 0:
        return [0.0] * len(v)
    return [x / total for x in v]


def chi_squared(a, b) -> float:
    """Symmetric chi-squared statistic on normalized histograms."""
    va, vb = aligned_counts(a, b)
    pa, pb = _normalize(va), _normalize(vb)
    score = 0.0
    for x, y in zip(pa, pb):
        denom = x + y
        if denom > _EPS:
            score += (x - y) ** 2 / denom
    return score


def minkowski(a, b, order: int = 2) -> float:
    """Minkowski-form distance L_order between normalized histograms."""
    if order < 1:
        raise ValueError("order must be >= 1")
    va, vb = aligned_counts(a, b)
    pa, pb = _normalize(va), _normalize(vb)
    return sum(abs(x - y) ** order for x, y in zip(pa, pb)) ** (1.0 / order)


def intersection_distance(a, b) -> float:
    """1 - histogram intersection (Swain & Ballard), on normalized mass."""
    va, vb = aligned_counts(a, b)
    if sum(va) <= 0 and sum(vb) <= 0:
        return 0.0  # two empty profiles are identical, not disjoint
    pa, pb = _normalize(va), _normalize(vb)
    return 1.0 - sum(min(x, y) for x, y in zip(pa, pb))


def kullback_leibler(a, b) -> float:
    """KL divergence D(a || b) with epsilon smoothing of empty bins."""
    va, vb = aligned_counts(a, b)
    pa, pb = _normalize(va), _normalize(vb)
    score = 0.0
    for x, y in zip(pa, pb):
        if x > _EPS:
            score += x * math.log((x + _EPS) / (y + _EPS))
    return max(score, 0.0)


def jeffrey_divergence(a, b) -> float:
    """Jeffrey divergence: the symmetrized, numerically stable KL variant."""
    va, vb = aligned_counts(a, b)
    pa, pb = _normalize(va), _normalize(vb)
    score = 0.0
    for x, y in zip(pa, pb):
        m = (x + y) / 2.0
        if m <= _EPS:
            continue
        if x > _EPS:
            score += x * math.log(x / m)
        if y > _EPS:
            score += y * math.log(y / m)
    return max(score, 0.0)


def earth_movers_distance(a, b) -> float:
    """Exact 1-D Earth Mover's Distance between normalized histograms.

    For one-dimensional histograms with unit ground distance between
    adjacent bins, the transportation problem has the closed form
    ``sum(|CDF_a - CDF_b|)`` — the amount of earth crossing each bin
    boundary.  Units: mass × bins moved, matching "moving one unit by
    one bin".
    """
    va, vb = aligned_counts(a, b)
    pa, pb = _normalize(va), _normalize(vb)
    carried = 0.0
    work = 0.0
    for x, y in zip(pa, pb):
        carried += x - y
        work += abs(carried)
    return work


def total_ops_difference(a, b) -> float:
    """Normalized difference of operation counts: |na-nb| / max(na, nb)."""
    ha, hb = _hist(a), _hist(b)
    na, nb = ha.total_ops, hb.total_ops
    denom = max(na, nb)
    if denom == 0:
        return 0.0
    return abs(na - nb) / denom


def total_latency_difference(a, b) -> float:
    """Normalized difference of total latencies."""
    ha, hb = _hist(a), _hist(b)
    la, lb = ha.total_latency, hb.total_latency
    denom = max(la, lb)
    if denom <= 0:
        return 0.0
    return abs(la - lb) / denom


def count_difference(a, b) -> Dict[int, int]:
    """Per-bucket signed count difference (b minus a).

    The raw material of differential analysis: positive entries are
    requests that appeared under the changed conditions, negative ones
    disappeared.  Buckets equal in both histograms are omitted.
    """
    ha, hb = _hist(a), _hist(b)
    deltas: Dict[int, int] = {}
    for bucket in set(ha.counts()) | set(hb.counts()):
        delta = hb.count(bucket) - ha.count(bucket)
        if delta:
            deltas[bucket] = delta
    return deltas


#: Registry used by the automated selector and the §5.3 accuracy bench.
METRICS: Dict[str, Callable] = {
    "chi_squared": chi_squared,
    "minkowski": minkowski,
    "intersection": intersection_distance,
    "kullback_leibler": kullback_leibler,
    "jeffrey": jeffrey_divergence,
    "emd": earth_movers_distance,
    "total_ops": total_ops_difference,
    "total_latency": total_latency_difference,
}


def compare(a, b, method: str = "emd") -> float:
    """Compare two histograms/profiles with a named metric."""
    try:
        fn = METRICS[method]
    except KeyError:
        raise ValueError(
            f"unknown comparison method {method!r}; "
            f"choose from {sorted(METRICS)}") from None
    return fn(a, b)

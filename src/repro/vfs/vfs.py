"""The VFS: operation dispatch with file-system-level instrumentation.

The VFS owns the mount, dispatches ``read``/``llseek``/``readdir``/...
to the mounted file system, and wraps every dispatched operation with
the FSPROF instrumentation (:class:`~repro.vfs.instrument.FsInstrument`)
— the layer FoSgen instruments in real kernels.

Like real VFS dispatch, every operation charges a small fixed CPU cost
on top of the file system's own work; this is the per-layer latency
that comparing user-level and FS-level profiles isolates (Section 3.1).
"""

from __future__ import annotations

from typing import List, Optional

from ..core.pipeline import NullSink
from ..sim.process import CpuBurst, ProcBody, Process
from ..sim.scheduler import Kernel
from .file import File
from .inode import DirEntry, Inode
from .instrument import FsInstrument
from .pagecache import PageCache

__all__ = ["FileSystem", "Vfs", "VFS_DISPATCH_COST"]

#: CPU cost of VFS-level dispatch (fd lookup, permission check).
VFS_DISPATCH_COST = 60.0


class FileSystem:
    """Interface every simulated file system implements.

    All operations are generator coroutines; ``vfs`` wires itself in via
    :meth:`bind` so file systems can reach the shared page cache and the
    instrumentation for nested operations (readdir -> readpage).
    """

    name = "fs"

    def __init__(self):
        self.vfs: Optional["Vfs"] = None
        self.root: Optional[Inode] = None

    def bind(self, vfs: "Vfs") -> None:
        self.vfs = vfs

    # Operations; subclasses override what they support.

    def file_read(self, proc: Process, file: File, size: int) -> ProcBody:
        raise NotImplementedError
        yield  # pragma: no cover

    def file_write(self, proc: Process, file: File, size: int) -> ProcBody:
        raise NotImplementedError
        yield  # pragma: no cover

    def readdir(self, proc: Process, file: File) -> ProcBody:
        raise NotImplementedError
        yield  # pragma: no cover

    def readpage(self, proc: Process, inode: Inode,
                 page_index: int) -> ProcBody:
        raise NotImplementedError
        yield  # pragma: no cover

    def llseek(self, proc: Process, file: File, offset: int,
               whence: int) -> ProcBody:
        raise NotImplementedError
        yield  # pragma: no cover

    def fsync(self, proc: Process, file: File) -> ProcBody:
        raise NotImplementedError
        yield  # pragma: no cover

    def write_super(self, proc: Process) -> ProcBody:
        """Flush superblock/journal; a no-op unless journaled."""
        return None
        yield  # pragma: no cover


class Vfs:
    """Mount point + instrumented dispatch."""

    def __init__(self, kernel: Kernel, fs: FileSystem,
                 pagecache: Optional[PageCache] = None,
                 fsprof: Optional[FsInstrument] = None):
        self.kernel = kernel
        self.fs = fs
        self.pagecache = pagecache if pagecache is not None \
            else PageCache(kernel)
        # Uninstrumented mounts route through a NullSink-backed probe:
        # same code path as profiled mounts, measured-zero overhead.
        self.fsprof = fsprof if fsprof is not None \
            else FsInstrument(kernel, variant="off", sinks=(NullSink(),))
        fs.bind(self)

    # -- plumbing --------------------------------------------------------------

    def _dispatch(self, proc: Process, operation: str,
                  body: ProcBody) -> ProcBody:
        yield CpuBurst(self.kernel.rng.jitter(VFS_DISPATCH_COST))
        result = yield from self.fsprof.invoke(proc, operation, body)
        return result

    def instrument(self, proc: Process, operation: str,
                   body: ProcBody) -> ProcBody:
        """Instrument a nested FS-internal operation (e.g. readpage)."""
        return self.fsprof.invoke(proc, operation, body)

    # -- operations ---------------------------------------------------------------

    def open_inode(self, inode: Inode, flags: int = 0) -> File:
        """Create an open file description (no I/O: dcache-hot open)."""
        return File(inode, flags)

    def read(self, proc: Process, file: File, size: int) -> ProcBody:
        file.require_open()
        return (yield from self._dispatch(
            proc, "read", self.fs.file_read(proc, file, size)))

    def write(self, proc: Process, file: File, size: int) -> ProcBody:
        file.require_open()
        return (yield from self._dispatch(
            proc, "write", self.fs.file_write(proc, file, size)))

    def llseek(self, proc: Process, file: File, offset: int,
               whence: int = 0) -> ProcBody:
        file.require_open()
        return (yield from self._dispatch(
            proc, "llseek", self.fs.llseek(proc, file, offset, whence)))

    def readdir(self, proc: Process, file: File) -> ProcBody:
        file.require_open()
        return (yield from self._dispatch(
            proc, "readdir", self.fs.readdir(proc, file)))

    def fsync(self, proc: Process, file: File) -> ProcBody:
        file.require_open()
        return (yield from self._dispatch(
            proc, "fsync", self.fs.fsync(proc, file)))

    def close(self, proc: Process, file: File) -> ProcBody:
        yield CpuBurst(self.kernel.rng.jitter(VFS_DISPATCH_COST / 2.0))
        file.closed = True
        return None

"""FoSgen: automatic file-system instrumentation.

The paper's FoSgen parses a file system's source, finds the VFS
operation vectors, and inserts FSPROF_PRE/FSPROF_POST macros at every
operation's entry and return points — instrumenting "more than a dozen
Linux 2.4.24, 2.6.11, and FreeBSD 6.0 file systems" without manual
work, including wrapping generic kernel functions in per-FS wrappers.

This module is the runtime-Python analogue: :func:`instrument_filesystem`
discovers the operations a :class:`~repro.vfs.vfs.FileSystem` subclass
implements (its "operation vector" is the set of base-class methods it
overrides or inherits) and rebinds each to a wrapper that routes the
call through an :class:`~repro.vfs.instrument.FsInstrument`.  Like
FoSgen, it needs no cooperation from the file system being wrapped, and
wrapping a *generic* inherited method creates a per-FS wrapper without
touching the shared implementation.
"""

from __future__ import annotations

from typing import Iterable, List, Optional

from ..sim.process import ProcBody, Process
from .instrument import FsInstrument
from .vfs import FileSystem

__all__ = ["OPERATION_VECTOR", "discover_operations",
           "instrument_filesystem", "uninstrument_filesystem"]

#: The VFS operation vector FoSgen scans for (struct file_operations,
#: inode_operations, super_operations in the paper's kernels).
OPERATION_VECTOR = (
    "file_read", "file_write", "readdir", "readpage", "llseek",
    "fsync", "write_super", "create", "unlink",
)

_WRAPPED_MARKER = "_fosgen_original"


def discover_operations(fs: FileSystem,
                        vector: Iterable[str] = OPERATION_VECTOR
                        ) -> List[str]:
    """The operations *fs* actually implements.

    An operation is implemented when the instance (or its class chain
    below :class:`FileSystem`) provides it — the equivalent of FoSgen
    finding a non-NULL slot in the operation vector.  Base-class stubs
    that merely raise ``NotImplementedError`` are skipped.
    """
    implemented = []
    for name in vector:
        method = getattr(type(fs), name, None)
        if method is None:
            continue
        base = getattr(FileSystem, name, None)
        if method is base and name != "write_super":
            # Inherited the abstract stub: slot is empty.  write_super
            # has a real (no-op) default, which FoSgen would wrap.
            continue
        implemented.append(name)
    return implemented


def _make_wrapper(fs: FileSystem, name: str, original,
                  instrument: FsInstrument):
    def wrapper(proc: Process, *args, **kwargs) -> ProcBody:
        body = original(proc, *args, **kwargs)
        return instrument.invoke(proc, name, body)

    wrapper.__name__ = f"fosgen_{name}"
    wrapper.__doc__ = (f"FoSgen wrapper around "
                       f"{type(fs).__name__}.{name}")
    setattr(wrapper, _WRAPPED_MARKER, original)
    return wrapper


def instrument_filesystem(fs: FileSystem, instrument: FsInstrument,
                          vector: Iterable[str] = OPERATION_VECTOR
                          ) -> List[str]:
    """Wrap every implemented operation of *fs* with FSPROF macros.

    Returns the list of instrumented operation names.  Idempotent:
    already-wrapped operations are left alone.  Instance-level
    rebinding means two mounts of the same class can carry different
    instrumentation, exactly like FoSgen instrumenting one file
    system's source tree and not another's.
    """
    wrapped = []
    for name in discover_operations(fs, vector):
        current = getattr(fs, name)
        if hasattr(current, _WRAPPED_MARKER):
            continue
        setattr(fs, name, _make_wrapper(fs, name, current, instrument))
        wrapped.append(name)
    return wrapped


def uninstrument_filesystem(fs: FileSystem,
                            vector: Iterable[str] = OPERATION_VECTOR
                            ) -> List[str]:
    """Remove FoSgen wrappers, restoring the original bindings."""
    restored = []
    for name in vector:
        current = getattr(fs, name, None)
        original = getattr(current, _WRAPPED_MARKER, None)
        if original is not None:
            # The wrapper was bound on the instance; deleting exposes
            # the class method again unless the original was itself an
            # instance attribute.
            try:
                delattr(fs, name)
            except AttributeError:
                setattr(fs, name, original)
            restored.append(name)
    return restored

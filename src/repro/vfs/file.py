"""Open file objects.

A :class:`File` is the ``struct file`` of the simulation: an inode
reference plus the per-open file position that ``llseek`` updates and
``read``/``readdir`` advance.  Note the position lives in the *file*,
not the process — which is precisely why the paper found it surprising
that ``generic_file_llseek`` grabbed an inode-wide semaphore just to
update it (Section 6.1).
"""

from __future__ import annotations

from .inode import Inode

__all__ = ["File", "O_DIRECT", "SEEK_SET", "SEEK_CUR", "SEEK_END"]

O_DIRECT = 0x4000

SEEK_SET = 0
SEEK_CUR = 1
SEEK_END = 2


class File:
    """An open file description: inode + position + flags.

    ``ra_last_page``/``ra_window`` hold the kernel's per-open readahead
    state: the last page synchronously read and the current readahead
    window (0 = not in a sequential streak).  ``fs_private`` belongs to
    the file system the file lives on.
    """

    __slots__ = ("inode", "pos", "flags", "closed", "ra_last_page",
                 "ra_window", "fs_private")

    def __init__(self, inode: Inode, flags: int = 0):
        self.inode = inode
        self.pos = 0
        self.flags = flags
        self.closed = False
        self.ra_last_page = -2  # not adjacent to any page
        self.ra_window = 0
        #: Per-open state owned by the mounted file system (e.g. a
        #: network FS's directory-listing buffer).  Keyed state MUST
        #: live here, not in an id(file)-keyed dict: ids are reused
        #: after garbage collection.
        self.fs_private = None

    @property
    def direct(self) -> bool:
        """True when opened with O_DIRECT (bypass the page cache)."""
        return bool(self.flags & O_DIRECT)

    def require_open(self) -> None:
        if self.closed:
            raise ValueError("operation on closed file")

    def __repr__(self) -> str:
        mode = " O_DIRECT" if self.direct else ""
        return f"<File ino={self.inode.ino} pos={self.pos}{mode}>"

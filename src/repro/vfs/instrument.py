"""File-system-level instrumentation: the FSPROF macro pair.

FoSgen "discovers implementations of all file system operations and
inserts FSPROF_PRE(op) and FSPROF_POST(op) macros at their entry and
return points" (Section 4).  :class:`FsInstrument` is the runtime those
macros call into: a TSC read at entry, a TSC read plus bucket update at
return, with the same per-hook CPU costs as the syscall layer so the
Section 5.2 overhead decomposition applies at this layer too.

Nested instrumented operations (``readdir`` calling ``readpage``)
compose naturally — each wrapped generator measures its own interval,
the paper's "layered profiling ... extended to the granularity of a
single function call."
"""

from __future__ import annotations

from typing import Optional, Sequence

from ..core.pipeline import (EventSink, Pipeline, ProbePoint, wire_probe)
from ..core.profile import Layer
from ..core.profiler import Profiler
from ..core.sampling import SampledProfiler
from ..sim.process import CpuBurst, ProcBody, Process
from ..sim.scheduler import Kernel
from ..sim.syscalls import PROFILER_HOOK_COST

__all__ = ["FsInstrument"]


class FsInstrument:
    """Wraps FS operation generators with latency capture.

    ``variant`` mirrors :class:`~repro.sim.syscalls.SyscallLayer`:
    ``off`` (no hooks), ``empty`` (hook call cost only), ``tsc_only``
    (hooks + TSC reads, nothing stored), ``full`` (the real profiler).

    Events emit through a :class:`~repro.core.pipeline.ProbePoint`;
    pass ``probe`` (or ``pipeline`` plus profiler/sampled targets) to
    share one machine-wide pipeline, or ``sinks`` for custom routing.
    With no targets at all the probe is wired to a
    :class:`~repro.core.pipeline.NullSink` and the record path is
    deactivated entirely.
    """

    VARIANTS = ("off", "empty", "tsc_only", "full")

    def __init__(self, kernel: Kernel,
                 profiler: Optional[Profiler] = None,
                 sampled: Optional[SampledProfiler] = None,
                 variant: str = "full",
                 pipeline: Optional[Pipeline] = None,
                 probe: Optional[ProbePoint] = None,
                 sinks: Sequence[EventSink] = ()):
        if variant not in self.VARIANTS:
            raise ValueError(f"variant must be one of {self.VARIANTS}")
        self.kernel = kernel
        self.profiler = profiler
        self.sampled = sampled
        self.variant = variant
        self.operations_profiled = 0
        if probe is None:
            owner = pipeline if pipeline is not None \
                else Pipeline(num_cpus=len(kernel.cpus))
            layer_label = profiler.layer if profiler is not None \
                else Layer.FILESYSTEM
            probe = wire_probe(owner, layer_label, profiler=profiler,
                               sampled=sampled, extra_sinks=sinks,
                               name="fs")
        self.probe_point = probe
        self.pipeline = probe.pipeline

    def _hook_cost(self) -> float:
        if self.variant == "off":
            return 0.0
        cost = PROFILER_HOOK_COST["call"]
        if self.variant in ("tsc_only", "full"):
            cost += PROFILER_HOOK_COST["tsc_read"]
        if self.variant == "full":
            cost += PROFILER_HOOK_COST["store"] / 2.0
        return cost

    def invoke(self, proc: Process, operation: str,
               body: ProcBody) -> ProcBody:
        """FSPROF_PRE(op); body; FSPROF_POST(op)."""
        hook = self._hook_cost()
        probe = self.probe_point
        context = probe.push_context(proc, operation) if probe.active \
            else None
        try:
            if hook > 0:
                yield CpuBurst(self.kernel.rng.jitter(hook))
            start = self.kernel.read_tsc(proc)
            try:
                result = yield from body
            finally:
                end = self.kernel.read_tsc(proc)
                if self.variant == "full":
                    self.operations_profiled += 1
                    probe.record(operation, end - start, start=start,
                                 context=context,
                                 cpu=proc.cpu if proc.cpu is not None
                                 else 0)
            if hook > 0:
                yield CpuBurst(self.kernel.rng.jitter(hook))
        finally:
            if context is not None:
                ProbePoint.pop_context(proc, context)
        return result

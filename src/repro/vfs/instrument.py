"""File-system-level instrumentation: the FSPROF macro pair.

FoSgen "discovers implementations of all file system operations and
inserts FSPROF_PRE(op) and FSPROF_POST(op) macros at their entry and
return points" (Section 4).  :class:`FsInstrument` is the runtime those
macros call into: a TSC read at entry, a TSC read plus bucket update at
return, with the same per-hook CPU costs as the syscall layer so the
Section 5.2 overhead decomposition applies at this layer too.

Nested instrumented operations (``readdir`` calling ``readpage``)
compose naturally — each wrapped generator measures its own interval,
the paper's "layered profiling ... extended to the granularity of a
single function call."
"""

from __future__ import annotations

from typing import Optional

from ..core.profiler import Profiler
from ..core.sampling import SampledProfiler
from ..sim.process import CpuBurst, ProcBody, Process
from ..sim.scheduler import Kernel
from ..sim.syscalls import PROFILER_HOOK_COST

__all__ = ["FsInstrument"]


class FsInstrument:
    """Wraps FS operation generators with latency capture.

    ``variant`` mirrors :class:`~repro.sim.syscalls.SyscallLayer`:
    ``off`` (no hooks), ``empty`` (hook call cost only), ``tsc_only``
    (hooks + TSC reads, nothing stored), ``full`` (the real profiler).
    """

    VARIANTS = ("off", "empty", "tsc_only", "full")

    def __init__(self, kernel: Kernel,
                 profiler: Optional[Profiler] = None,
                 sampled: Optional[SampledProfiler] = None,
                 variant: str = "full"):
        if variant not in self.VARIANTS:
            raise ValueError(f"variant must be one of {self.VARIANTS}")
        self.kernel = kernel
        self.profiler = profiler
        self.sampled = sampled
        self.variant = variant
        self.operations_profiled = 0

    def _hook_cost(self) -> float:
        if self.variant == "off":
            return 0.0
        cost = PROFILER_HOOK_COST["call"]
        if self.variant in ("tsc_only", "full"):
            cost += PROFILER_HOOK_COST["tsc_read"]
        if self.variant == "full":
            cost += PROFILER_HOOK_COST["store"] / 2.0
        return cost

    def invoke(self, proc: Process, operation: str,
               body: ProcBody) -> ProcBody:
        """FSPROF_PRE(op); body; FSPROF_POST(op)."""
        hook = self._hook_cost()
        if hook > 0:
            yield CpuBurst(self.kernel.rng.jitter(hook))
        start = self.kernel.read_tsc(proc)
        try:
            result = yield from body
        finally:
            end = self.kernel.read_tsc(proc)
            if self.variant == "full":
                latency = end - start
                self.operations_profiled += 1
                if self.profiler is not None:
                    self.profiler.record(operation, latency)
                if self.sampled is not None:
                    self.sampled.record(operation, start,
                                        max(latency, 0.0))
        if hook > 0:
            yield CpuBurst(self.kernel.rng.jitter(hook))
        return result

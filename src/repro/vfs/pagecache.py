"""The page cache: resident pages, in-flight fills, dirty tracking.

``readpage`` in Linux "just initiates the I/O and does not wait for its
completion" (Section 6.2) — the *caller* then sleeps on the page lock.
The same split lives here: :meth:`install_inflight` records a page whose
disk read has been dispatched, the disk's completion listener marks it
resident and fires its condition, and :meth:`wait` is the page-lock
sleep.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, List, Optional, Tuple

from ..disk.device import Disk, DiskRequest
from ..sim.process import Condition, ProcBody, WaitCondition
from ..sim.scheduler import Kernel

__all__ = ["Page", "PageCache"]

PageKey = Tuple[int, int]  # (inode number, page index)


class Page:
    """One cached page and its I/O state."""

    __slots__ = ("key", "resident", "dirty", "condition")

    def __init__(self, key: PageKey):
        self.key = key
        self.resident = False
        self.dirty = False
        self.condition = Condition(f"page:{key[0]}:{key[1]}")

    def __repr__(self) -> str:
        state = "resident" if self.resident else "in-flight"
        if self.dirty:
            state += " dirty"
        return f"<Page ino={self.key[0]} idx={self.key[1]} {state}>"


class PageCache:
    """LRU page cache shared by all file systems on one kernel."""

    def __init__(self, kernel: Kernel, capacity_pages: int = 65_536):
        if capacity_pages < 1:
            raise ValueError("capacity must be positive")
        self.kernel = kernel
        self.capacity = capacity_pages
        self._pages: "OrderedDict[PageKey, Page]" = OrderedDict()
        self._inflight_by_request: Dict[int, Page] = {}
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self._disks_hooked: List[int] = []

    def attach_disk(self, disk: Disk) -> None:
        """Subscribe to a disk's completions to finish page fills."""
        if id(disk) in self._disks_hooked:
            return
        self._disks_hooked.append(id(disk))
        disk.on_complete.append(self._io_done)

    # -- lookup ------------------------------------------------------------

    def lookup(self, ino: int, page_index: int) -> Optional[Page]:
        """Find a page (resident or in-flight); updates LRU + stats."""
        key = (ino, page_index)
        page = self._pages.get(key)
        if page is not None:
            self._pages.move_to_end(key)
            self.hits += 1
            return page
        self.misses += 1
        return None

    def peek(self, ino: int, page_index: int) -> Optional[Page]:
        """Non-statistical lookup (assertions, writeback scans)."""
        return self._pages.get((ino, page_index))

    # -- fills ----------------------------------------------------------------

    def install_inflight(self, ino: int, page_index: int,
                         request: DiskRequest) -> Page:
        """Register a page whose read has just been dispatched."""
        key = (ino, page_index)
        existing = self._pages.get(key)
        if existing is not None:
            return existing
        self._evict_if_full()
        page = Page(key)
        self._pages[key] = page
        self._inflight_by_request[id(request)] = page
        return page

    def install_resident(self, ino: int, page_index: int,
                         dirty: bool = False) -> Page:
        """Insert an already-valid page (e.g. just-written data)."""
        key = (ino, page_index)
        page = self._pages.get(key)
        if page is None:
            self._evict_if_full()
            page = Page(key)
            self._pages[key] = page
        page.resident = True
        page.dirty = page.dirty or dirty
        self._pages.move_to_end(key)
        return page

    def _evict_if_full(self) -> None:
        while len(self._pages) >= self.capacity:
            victim_key = None
            for key, page in self._pages.items():
                if page.resident and not page.dirty:
                    victim_key = key
                    break
            if victim_key is None:
                # Nothing clean to drop; allow temporary overcommit
                # rather than deadlocking on in-flight/dirty pages.
                return
            del self._pages[victim_key]
            self.evictions += 1

    def _io_done(self, request: DiskRequest) -> None:
        page = self._inflight_by_request.pop(id(request), None)
        if page is None:
            return
        page.resident = True
        self.kernel.fire_condition(page.condition, page, wake_all=True)

    # -- waiting -----------------------------------------------------------------

    def wait(self, page: Page) -> ProcBody:
        """Generator: sleep until the page's fill completes."""
        if page.resident:
            return page
            yield  # pragma: no cover
        yield WaitCondition(page.condition)
        return page

    # -- dirty page management ------------------------------------------------------

    def mark_dirty(self, ino: int, page_index: int) -> Page:
        page = self.install_resident(ino, page_index, dirty=True)
        return page

    def dirty_pages(self) -> List[Page]:
        return [p for p in self._pages.values() if p.dirty]

    def clean(self, page: Page) -> None:
        """Mark a dirty page written back."""
        page.dirty = False

    # -- stats -------------------------------------------------------------------

    def hit_rate(self) -> float:
        total = self.hits + self.misses
        if total == 0:
            return 0.0
        return self.hits / total

    def resident_count(self) -> int:
        return sum(1 for p in self._pages.values() if p.resident)

    def __len__(self) -> int:
        return len(self._pages)

"""VFS substrate: inodes, page cache, files, dispatch, instrumentation."""

from .file import File, O_DIRECT, SEEK_CUR, SEEK_END, SEEK_SET
from .fosgen import (OPERATION_VECTOR, discover_operations,
                     instrument_filesystem, uninstrument_filesystem)
from .inode import (ENTRIES_PER_PAGE, DirEntry, Inode, InodeTable, S_IFDIR,
                    S_IFREG)
from .instrument import FsInstrument
from .llseek import (LLSEEK_BODY_COST, generic_file_llseek,
                     generic_file_llseek_patched)
from .pagecache import Page, PageCache
from .vfs import FileSystem, VFS_DISPATCH_COST, Vfs

__all__ = [
    "File", "O_DIRECT", "SEEK_CUR", "SEEK_END", "SEEK_SET",
    "OPERATION_VECTOR", "discover_operations", "instrument_filesystem",
    "uninstrument_filesystem",
    "ENTRIES_PER_PAGE", "DirEntry", "Inode", "InodeTable", "S_IFDIR",
    "S_IFREG",
    "FsInstrument",
    "LLSEEK_BODY_COST", "generic_file_llseek", "generic_file_llseek_patched",
    "Page", "PageCache",
    "FileSystem", "VFS_DISPATCH_COST", "Vfs",
]

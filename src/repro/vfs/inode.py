"""Inodes and directory entries.

Each inode carries the ``i_sem`` semaphore that Linux 2.6 used to
serialize operations on the object — the semaphore behind the paper's
Section 6.1 llseek contention discovery.  Directory inodes hold their
entries in page-sized chunks so ``readdir`` walks them the way Ext2
walks directory blocks.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..disk.geometry import BLOCK_SIZE
from ..sim.scheduler import Kernel
from ..sim.sync import Semaphore

__all__ = ["Inode", "InodeTable", "DirEntry", "ENTRIES_PER_PAGE",
           "S_IFREG", "S_IFDIR"]

S_IFREG = "file"
S_IFDIR = "dir"

#: Ext2 packs variable-size dirents; ~64 per 4 KB block is typical for
#: kernel-source-like names.
ENTRIES_PER_PAGE = 64


class DirEntry:
    """One directory entry: a name and the inode it references."""

    __slots__ = ("name", "ino")

    def __init__(self, name: str, ino: int):
        self.name = name
        self.ino = ino

    def __repr__(self) -> str:
        return f"DirEntry({self.name!r}, ino={self.ino})"


class Inode:
    """An in-memory inode: metadata, block map, and the i_sem semaphore."""

    def __init__(self, kernel: Kernel, ino: int, kind: str):
        if kind not in (S_IFREG, S_IFDIR):
            raise ValueError(f"unknown inode kind {kind!r}")
        self.kernel = kernel
        self.ino = ino
        self.kind = kind
        self.size = 0  # bytes for files, entry count for directories
        self.blocks: List[int] = []  # disk blocks, one per page
        self.entries: List[DirEntry] = []  # directories only
        self.i_sem = Semaphore(kernel, name=f"i_sem:{ino}")
        self.atime = 0.0
        self.mtime = 0.0
        self.dirty = False
        self.nlink = 1

    @property
    def is_dir(self) -> bool:
        return self.kind == S_IFDIR

    def num_pages(self) -> int:
        """Pages of data (file bytes or directory entries)."""
        if self.is_dir:
            return (len(self.entries) + ENTRIES_PER_PAGE - 1) \
                // ENTRIES_PER_PAGE
        return (self.size + BLOCK_SIZE - 1) // BLOCK_SIZE

    def block_for(self, page_index: int) -> int:
        """The disk block backing one page of this inode."""
        if not 0 <= page_index < len(self.blocks):
            raise ValueError(
                f"inode {self.ino}: page {page_index} beyond mapped "
                f"blocks ({len(self.blocks)})")
        return self.blocks[page_index]

    def dir_page_entries(self, page_index: int) -> List[DirEntry]:
        """The directory entries stored in one page."""
        if not self.is_dir:
            raise ValueError("not a directory")
        start = page_index * ENTRIES_PER_PAGE
        return self.entries[start:start + ENTRIES_PER_PAGE]

    def add_entry(self, name: str, ino: int) -> None:
        if not self.is_dir:
            raise ValueError("not a directory")
        self.entries.append(DirEntry(name, ino))
        self.size = len(self.entries)

    def lookup_entry(self, name: str) -> Optional[DirEntry]:
        if not self.is_dir:
            raise ValueError("not a directory")
        for entry in self.entries:
            if entry.name == name:
                return entry
        return None

    def touch_atime(self, now: float) -> None:
        """Mark access time; dirties metadata for the flush daemon."""
        self.atime = now
        self.dirty = True

    def __repr__(self) -> str:
        return f"<Inode {self.ino} {self.kind} size={self.size}>"


class InodeTable:
    """Allocates inode numbers and tracks live inodes."""

    def __init__(self, kernel: Kernel):
        self.kernel = kernel
        self._inodes: Dict[int, Inode] = {}
        self._next_ino = 2  # inode 2 is the root, as in Ext2

    def allocate(self, kind: str) -> Inode:
        inode = Inode(self.kernel, self._next_ino, kind)
        self._inodes[inode.ino] = inode
        self._next_ino += 1
        return inode

    def get(self, ino: int) -> Inode:
        return self._inodes[ino]

    def __len__(self) -> int:
        return len(self._inodes)

    def dirty_inodes(self) -> List[Inode]:
        """Inodes with pending metadata updates (atime etc.)."""
        return [inode for inode in self._inodes.values() if inode.dirty]

"""``generic_file_llseek``: the Section 6.1 case study.

The Linux-provided llseek method — "used by most of the Linux file
systems including Ext2 and Ext3" — updates the per-open file position,
but in 2.6.11 it did so while holding the inode's ``i_sem``.  Two
processes randomly reading the same file with O_DIRECT therefore
contend: one process's llseek waits for the other's direct-I/O read
(which holds ``i_sem`` across the disk access), producing an llseek
profile whose right peak mirrors the read profile.

The paper's fix — "to be consistent with the semantics of other Linux
VFS methods, we need only protect directory objects and not file
objects" — cut the uncontended path from ~400 to ~120 cycles (~70%).
Both variants are implemented; a kernel is built with one or the other.
"""

from __future__ import annotations

from ..sim.process import CpuBurst, ProcBody, Process
from ..sim.scheduler import Kernel
from .file import SEEK_CUR, SEEK_END, SEEK_SET, File

__all__ = ["generic_file_llseek", "generic_file_llseek_patched",
           "LLSEEK_BODY_COST"]

#: CPU cost of the position arithmetic itself (the patched fast path);
#: with two ~125-cycle semaphore calls around it the unpatched
#: uncontended path is ~360 cycles — the paper's 400 -> 120 ratio.
LLSEEK_BODY_COST = 110.0


def _update_position(kernel: Kernel, file: File, offset: int,
                     whence: int) -> ProcBody:
    yield CpuBurst(kernel.rng.jitter(LLSEEK_BODY_COST))
    if whence == SEEK_SET:
        new_pos = offset
    elif whence == SEEK_CUR:
        new_pos = file.pos + offset
    elif whence == SEEK_END:
        new_pos = file.inode.size + offset
    else:
        raise ValueError(f"bad whence {whence}")
    if new_pos < 0:
        raise ValueError("seek before start of file")
    file.pos = new_pos
    return new_pos


def generic_file_llseek(kernel: Kernel, proc: Process, file: File,
                        offset: int, whence: int = SEEK_SET) -> ProcBody:
    """The 2.6.11 behaviour: take ``i_sem`` for *every* object."""
    file.require_open()
    sem = file.inode.i_sem
    yield from sem.acquire(proc)
    try:
        new_pos = yield from _update_position(kernel, file, offset, whence)
    finally:
        yield from sem.release(proc)
    return new_pos


def generic_file_llseek_patched(kernel: Kernel, proc: Process, file: File,
                                offset: int,
                                whence: int = SEEK_SET) -> ProcBody:
    """The submitted fix: serialize only directory position updates."""
    file.require_open()
    if file.inode.is_dir:
        return (yield from generic_file_llseek(kernel, proc, file,
                                               offset, whence))
    new_pos = yield from _update_position(kernel, file, offset, whence)
    return new_pos

"""Workload generators: grep, random-read, Postmark, micro-benchmarks."""

from .compile import (CompileConfig, CompileResult, compile_body,
                      run_compile)
from .grep import GrepResult, grep_body, run_grep, run_parallel_grep
from .microbench import (CLONE_BODY_COST, CLONE_LOCKED_COST, CloneStress,
                         run_zero_byte_reads, zero_byte_read_body)
from .postmark import PostmarkConfig, PostmarkReport, run_postmark
from .randomread import (RandomReadConfig, random_read_body,
                         run_random_read)
from .runner import (PROFILE_LAYERS, WORKLOAD_NAMES, collect_profiles,
                     run_named_workload)
from .sourcetree import TreeStats, build_source_tree
from .trace import Trace, TraceRecord, TraceRecorder, replay_trace
from .webserver import (WebServerConfig, WebServerResult,
                        build_document_set, run_webserver)

__all__ = [
    "CompileConfig", "CompileResult", "compile_body", "run_compile",
    "GrepResult", "grep_body", "run_grep", "run_parallel_grep",
    "CLONE_BODY_COST", "CLONE_LOCKED_COST", "CloneStress",
    "run_zero_byte_reads", "zero_byte_read_body",
    "PostmarkConfig", "PostmarkReport", "run_postmark",
    "RandomReadConfig", "random_read_body", "run_random_read",
    "PROFILE_LAYERS", "WORKLOAD_NAMES", "collect_profiles",
    "run_named_workload",
    "TreeStats", "build_source_tree",
    "Trace", "TraceRecord", "TraceRecorder", "replay_trace",
    "WebServerConfig", "WebServerResult", "build_document_set",
    "run_webserver",
]

"""Run a named workload on a freshly built machine.

One registry shared by the ``osprof run`` CLI path and the shard engine
(:mod:`repro.core.shard`), so a serial run and every parallel shard
execute exactly the same code with exactly the same parameters — the
precondition for merged shard profiles matching serial ones
bucket-for-bucket.
"""

from __future__ import annotations

from typing import Dict, Iterator, Optional, Tuple

from ..core.profileset import ProfileSet
from ..sampling.stateprofile import StateProfile
from ..system import System

__all__ = ["WORKLOAD_NAMES", "PROFILE_LAYERS", "run_named_workload",
           "collect_profiles", "collect_layer_profiles",
           "collect_sampled_run", "iter_segment_profiles"]

#: Workloads the runner (and therefore ``osprof run``) knows how to drive.
#: ``randomread-private`` is the random-read loop with one file per
#: process instead of the paper's single shared file: no shared i_sem,
#: so direct reads overlap and the device sees real queue depth.
WORKLOAD_NAMES = ("grep", "randomread", "randomread-private", "postmark",
                  "zerobyte", "clone")

#: Profiling layers a collection can be read from (Figure 2).
PROFILE_LAYERS = ("user", "fs", "driver")


def run_named_workload(system: System, workload: str, *,
                       seed: int = 2006, scale: float = 0.02,
                       processes: int = 2, iterations: int = 1000) -> None:
    """Drive *workload* to completion on an already-built *system*.

    ``scale``/``seed`` shape the grep source tree; ``processes`` and
    ``iterations`` parameterize the request-driven workloads.
    """
    if workload == "grep":
        from .grep import run_grep
        from .sourcetree import build_source_tree
        root, _ = build_source_tree(system, scale=scale, seed=seed)
        run_grep(system, root)
    elif workload == "randomread":
        from .randomread import RandomReadConfig, run_random_read
        run_random_read(system, RandomReadConfig(
            processes=processes, iterations=iterations))
    elif workload == "randomread-private":
        from .randomread import RandomReadConfig, run_random_read
        run_random_read(system, RandomReadConfig(
            processes=processes, iterations=iterations,
            files=processes))
    elif workload == "postmark":
        from .postmark import PostmarkConfig, run_postmark
        run_postmark(system, PostmarkConfig(
            files=max(10, iterations // 10), transactions=iterations))
    elif workload == "zerobyte":
        from .microbench import run_zero_byte_reads
        run_zero_byte_reads(system, processes=processes,
                            iterations=iterations)
    elif workload == "clone":
        from .microbench import CloneStress
        CloneStress(system).run(processes=processes, iterations=iterations)
    else:
        raise ValueError(
            f"unknown workload {workload!r}; expected one of "
            f"{', '.join(WORKLOAD_NAMES)}")


def collect_profiles(workload: str, *, layer: str = "fs",
                     fs_type: str = "ext2", num_cpus: int = 1,
                     seed: int = 2006, scale: float = 0.02,
                     processes: int = 2, iterations: int = 1000,
                     patched_llseek: bool = False,
                     kernel_preemption: bool = False,
                     scenario: Optional[str] = None) -> ProfileSet:
    """Build a machine, run *workload*, return one layer's profile set.

    A thin selection over :func:`collect_layer_profiles` — all three
    profiling layers are always attached, so extracting one costs
    nothing extra and both entry points share a single construction
    path through the scenario registry.
    """
    if layer not in PROFILE_LAYERS:
        raise ValueError(
            f"unknown layer {layer!r}; expected one of "
            f"{', '.join(PROFILE_LAYERS)}")
    return collect_layer_profiles(
        workload, fs_type=fs_type, num_cpus=num_cpus, seed=seed,
        scale=scale, processes=processes, iterations=iterations,
        patched_llseek=patched_llseek,
        kernel_preemption=kernel_preemption, scenario=scenario)[layer]


def collect_layer_profiles(workload: str, *, fs_type: str = "ext2",
                           num_cpus: int = 1, seed: int = 2006,
                           scale: float = 0.02, processes: int = 2,
                           iterations: int = 1000,
                           patched_llseek: bool = False,
                           kernel_preemption: bool = False,
                           scenario: Optional[str] = None,
                           ) -> Dict[str, ProfileSet]:
    """One run, all of Figure 2's layers: layer name -> profile set.

    Because every layer emits through the same machine-wide pipeline,
    a single workload execution yields the user, file-system, and
    driver profiles together — the cross-layer comparison input of
    Section 3.1 without three per-layer reruns (and without the
    cross-run seed-alignment caveats those carry).

    ``scenario`` mounts that registry row's device model (SSD, RAID-0,
    throttled...); the workload and its parameters stay whatever the
    caller passed — scenario *defaults* are resolved by the CLI.
    """
    from ..scenarios import build_system
    system = build_system(scenario, fs_type=fs_type, num_cpus=num_cpus,
                          seed=seed, patched_llseek=patched_llseek,
                          kernel_preemption=kernel_preemption,
                          with_timer=False)
    run_named_workload(system, workload, seed=seed, scale=scale,
                       processes=processes, iterations=iterations)
    return {"user": system.user_profiles(),
            "fs": system.fs_profiles(),
            "driver": system.driver_profiles()}


def collect_sampled_run(workload: str, *,
                        state_sample_interval: float,
                        fs_type: str = "ext2", num_cpus: int = 1,
                        seed: int = 2006, scale: float = 0.02,
                        processes: int = 2, iterations: int = 1000,
                        patched_llseek: bool = False,
                        kernel_preemption: bool = False,
                        scenario: Optional[str] = None,
                        ) -> Tuple[Dict[str, ProfileSet], StateProfile,
                                   Dict[str, int]]:
    """One run with the wait-state sampler armed alongside measurement.

    Same construction funnel as :func:`collect_layer_profiles` plus a
    :class:`~repro.sampling.WaitStateSampler` ticking every
    ``state_sample_interval`` cycles.  Returns the measured per-layer
    profile sets (byte-identical to an unsampled run under the same
    seed — the sampler never perturbs the simulation), the accumulated
    :class:`StateProfile`, and the sampler's health-counter dict.
    """
    from ..scenarios import build_system
    system = build_system(scenario, fs_type=fs_type, num_cpus=num_cpus,
                          seed=seed, patched_llseek=patched_llseek,
                          kernel_preemption=kernel_preemption,
                          with_timer=False,
                          state_sample_interval=state_sample_interval)
    run_named_workload(system, workload, seed=seed, scale=scale,
                       processes=processes, iterations=iterations)
    layers = {"user": system.user_profiles(),
              "fs": system.fs_profiles(),
              "driver": system.driver_profiles()}
    return layers, system.state_profile(), system.state_sampler.metrics()


def iter_segment_profiles(workload: str, *, segments: int = 1,
                          seed: int = 2006,
                          **kwargs) -> Iterator[ProfileSet]:
    """Yield *segments* independent profile sets of one workload.

    Segment *i* runs on a fresh machine seeded
    ``derive_seed(seed, "segment:i")`` — the same derivation discipline
    as the shard engine, so a segment stream is reproducible from
    ``(workload, seed)`` alone.  This is the collector loop behind
    ``osprof push --workload``: each yielded set is one push to the
    continuous profiling service.
    """
    from ..sim.rng import derive_seed
    if segments < 1:
        raise ValueError("segments must be >= 1")
    for index in range(segments):
        yield collect_profiles(workload,
                               seed=derive_seed(seed, f"segment:{index}"),
                               **kwargs)

"""A Postmark-like mail-server workload (Section 5.2).

Postmark v1.5 "performs a series of file system operations such as
create, delete, append, and read."  The paper configured 20,000 files
and 200,000 transactions so the working set exceeded OS caches; this
module reproduces the transaction mix at a configurable scale and
reports the elapsed/user/system/wait split the paper's Section 5
evaluation tables are built from.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from ..disk.geometry import BLOCK_SIZE
from ..sim.process import CpuBurst, ProcBody, Process
from ..system import System
from ..vfs.inode import Inode

__all__ = ["PostmarkConfig", "PostmarkReport", "run_postmark"]


@dataclass
class PostmarkConfig:
    """Scaled-down Postmark defaults (paper: 20,000 / 200,000)."""

    files: int = 500
    transactions: int = 2000
    min_size: int = 500
    max_size: int = 9_770  # Postmark's default upper bound
    read_chunk: int = BLOCK_SIZE
    seed: int = 1997  # Postmark's publication year, why not


@dataclass
class PostmarkReport:
    """The time split Section 5 reports (all in seconds)."""

    elapsed: float
    user: float
    system: float
    wait: float
    transactions: int
    creates: int
    deletes: int
    reads: int
    appends: int

    def system_fraction(self) -> float:
        if self.elapsed == 0:
            return 0.0
        return self.system / self.elapsed


def _postmark_body(system: System, proc: Process, workdir: Inode,
                   config: PostmarkConfig,
                   counters: PostmarkReport) -> ProcBody:
    rng = system.kernel.rng.fork(f"postmark:{config.seed}:{proc.pid}")
    fs = system.fs

    # Phase 1: create the initial pool.
    pool: List[Inode] = []
    for i in range(config.files):
        inode = yield from system.syscalls.invoke(
            proc, "create",
            fs.create(proc, workdir, f"pm{proc.pid}_{i}"))
        size = rng.randint(config.min_size, config.max_size)
        f = system.vfs.open_inode(inode)
        yield from system.syscalls.invoke(
            proc, "write", system.vfs.write(proc, f, size))
        pool.append(inode)
        counters.creates += 1

    # Phase 2: the transaction mix (half read/append, half create/delete,
    # like Postmark's default biases).  Each transaction carries a bit
    # of user-mode bookkeeping, as the real benchmark binary does.
    serial = config.files
    for _ in range(config.transactions):
        counters.transactions += 1
        yield CpuBurst(rng.jitter(3_000, sigma=0.3))
        roll = rng.random()
        if roll < 0.25 and pool:
            # read a whole file
            target = rng.choice(pool)
            f = system.vfs.open_inode(target)
            while True:
                n = yield from system.syscalls.invoke(
                    proc, "read",
                    system.vfs.read(proc, f, config.read_chunk))
                if n == 0:
                    break
            counters.reads += 1
        elif roll < 0.5 and pool:
            # append
            target = rng.choice(pool)
            f = system.vfs.open_inode(target)
            f.pos = target.size
            size = rng.randint(config.min_size, config.max_size)
            yield from system.syscalls.invoke(
                proc, "write", system.vfs.write(proc, f, size))
            if rng.chance(0.2):
                # Mail servers fsync a fraction of their appends.
                yield from system.syscalls.invoke(
                    proc, "fsync", system.vfs.fsync(proc, f))
            counters.appends += 1
        elif roll < 0.75:
            # create
            inode = yield from system.syscalls.invoke(
                proc, "create",
                fs.create(proc, workdir, f"pm{proc.pid}_{serial}"))
            serial += 1
            size = rng.randint(config.min_size, config.max_size)
            f = system.vfs.open_inode(inode)
            yield from system.syscalls.invoke(
                proc, "write", system.vfs.write(proc, f, size))
            pool.append(inode)
            counters.creates += 1
        elif pool:
            # delete
            index = rng.randint(0, len(pool) - 1)
            target = pool.pop(index)
            name = None
            entry = None
            for e in workdir.entries:
                if e.ino == target.ino:
                    name = e.name
                    break
            if name is not None:
                yield from system.syscalls.invoke(
                    proc, "unlink", fs.unlink(proc, workdir, name))
                counters.deletes += 1
    return counters


def run_postmark(system: System,
                 config: Optional[PostmarkConfig] = None) -> PostmarkReport:
    """Run Postmark in one process; returns the measured time split."""
    config = config if config is not None else PostmarkConfig()
    workdir = system.tree.mkdir(system.root, "postmark")
    report = PostmarkReport(elapsed=0.0, user=0.0, system=0.0, wait=0.0,
                            transactions=0, creates=0, deletes=0,
                            reads=0, appends=0)
    started = system.kernel.now
    proc = system.kernel.spawn(
        lambda p: _postmark_body(system, p, workdir, config, report),
        "postmark")
    system.run([proc])
    hz = 1.7e9
    report.elapsed = (system.kernel.now - started) / hz
    report.user = proc.user_time / hz
    report.system = proc.sys_time / hz
    report.wait = proc.wait_time / hz
    return report

"""A static web-server workload: Zipf-popular reads over a document set.

The paper motivates OSprof with server workloads ("network services",
"electronic mail servers"); this generator produces the other classic:
a static HTTP server's file-read stream.  Requests pick documents with
Zipf(α) popularity — the empirical law of web traffic — so the hot set
lives in the page cache while the long tail hits the disk, producing
the textbook bimodal read profile whose cache/disk mass ratio *is* the
hit rate.  Useful for cache-sizing experiments: shrink the page cache
and watch mass migrate between the peaks.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from ..disk.geometry import BLOCK_SIZE
from ..sim.process import CpuBurst, ProcBody, Process
from ..system import System
from ..vfs.inode import Inode

__all__ = ["WebServerConfig", "WebServerResult", "build_document_set",
           "run_webserver"]

#: CPU per request outside the kernel: parsing, headers, logging.
REQUEST_CPU = 25_000.0


@dataclass
class WebServerConfig:
    """Server and traffic parameters."""

    documents: int = 200
    requests: int = 2000
    zipf_alpha: float = 1.1
    min_size: int = 2_000
    max_size: int = 200_000
    workers: int = 2
    seed: int = 80


@dataclass
class WebServerResult:
    """Aggregate serving stats."""

    requests: int = 0
    bytes_served: int = 0


def build_document_set(system: System,
                       config: WebServerConfig) -> List[Inode]:
    """Create the document tree (sizes heavy-tailed like real sites)."""
    rng = system.kernel.rng.fork(f"docs:{config.seed}")
    docroot = system.tree.mkdir(system.root, "htdocs")
    documents = []
    for i in range(config.documents):
        if rng.chance(0.1):
            size = rng.randint(config.max_size // 2, config.max_size)
        else:
            size = rng.randint(config.min_size, config.max_size // 10)
        documents.append(
            system.tree.mkfile(docroot, f"doc{i}.html", size))
    return documents


def _zipf_index(rng, n: int, alpha: float) -> int:
    """Inverse-CDF Zipf sampling over ranks 1..n (deterministic rng)."""
    # Precomputing the CDF per call would be wasteful; use rejection on
    # the continuous bounded Pareto approximation instead.
    while True:
        u = rng.random()
        x = (1.0 - u) ** (-1.0 / alpha)  # Pareto(alpha) >= 1
        index = int(x) - 1
        if index < n:
            return index


def run_webserver(system: System,
                  config: Optional[WebServerConfig] = None
                  ) -> WebServerResult:
    """Serve the request stream; returns aggregate stats.

    ``config.workers`` concurrent server processes share the document
    set, the page cache, and the disk — enough concurrency for queueing
    to matter without modelling sockets (the client side is the think
    time between requests).
    """
    config = config if config is not None else WebServerConfig()
    if config.workers < 1 or config.requests < 1:
        raise ValueError("workers and requests must be positive")
    documents = build_document_set(system, config)
    result = WebServerResult()
    share = config.requests // config.workers

    def worker(proc: Process, worker_index: int) -> ProcBody:
        rng = system.kernel.rng.fork(
            f"www:{config.seed}:{worker_index}")
        count = share + (config.requests % config.workers
                         if worker_index == 0 else 0)
        for _ in range(count):
            document = documents[_zipf_index(rng, len(documents),
                                             config.zipf_alpha)]
            handle = system.vfs.open_inode(document)
            while True:
                n = yield from system.syscalls.invoke(
                    proc, "read",
                    system.vfs.read(proc, handle, BLOCK_SIZE))
                if n == 0:
                    break
                result.bytes_served += n
            yield CpuBurst(rng.jitter(REQUEST_CPU, sigma=0.3))
            result.requests += 1
        return None

    procs = [system.kernel.spawn(
        lambda p, w=w: worker(p, w), f"httpd{w}")
        for w in range(config.workers)]
    system.run(procs)
    return result

"""VFS trace capture and replay.

The paper's related work surveys trace tools (Ellard & Seltzer's NFS
tracers); the profiling counterpart is *workload portability*: capture
the request stream of a live workload once, then replay it bit-exactly
against differently-configured systems (patched llseek, different
quantum, failing disk) and diff the profiles.  Replay needs no workload
generator — only the trace and an identically-built file tree (same
``build_source_tree`` seed, or any deterministic tree construction).

A trace records, per request: the operation, the inode, the file
position before the call, the byte count, and the *think time* (cycles
between the previous request's completion and this request's start),
so the replayed process reproduces the original pacing on a machine
with identical timing, and adapts naturally when the substrate is
faster or slower.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Dict, List, Optional, TextIO, Tuple

from ..sim.process import CpuBurst, ProcBody, Process
from ..system import System
from ..vfs.file import File

__all__ = ["TraceRecord", "Trace", "TraceRecorder", "replay_trace"]

_REPLAYABLE = ("read", "llseek", "readdir", "write", "fsync")


@dataclass
class TraceRecord:
    """One request: (operation, inode, position, count, think)."""

    operation: str
    ino: int
    pos: int
    count: int
    think: float  # cycles of user time before this request

    def to_line(self) -> str:
        return json.dumps([self.operation, self.ino, self.pos,
                           self.count, round(self.think, 1)])

    @classmethod
    def from_line(cls, line: str) -> "TraceRecord":
        operation, ino, pos, count, think = json.loads(line)
        return cls(operation, ino, pos, count, think)


class Trace:
    """An ordered request stream, serializable one JSON record per line."""

    def __init__(self, records: Optional[List[TraceRecord]] = None,
                 tree_seed: Optional[int] = None,
                 tree_scale: Optional[float] = None):
        self.records: List[TraceRecord] = records or []
        #: How to rebuild the tree the inode numbers refer to.
        self.tree_seed = tree_seed
        self.tree_scale = tree_scale

    def __len__(self) -> int:
        return len(self.records)

    def dump(self, out: TextIO) -> None:
        header = {"format": "osprof-trace-1",
                  "tree_seed": self.tree_seed,
                  "tree_scale": self.tree_scale}
        out.write("# " + json.dumps(header) + "\n")
        for record in self.records:
            out.write(record.to_line() + "\n")

    @classmethod
    def load(cls, inp: TextIO) -> "Trace":
        header_line = inp.readline().strip()
        if not header_line.startswith("# "):
            raise ValueError("missing trace header")
        header = json.loads(header_line[2:])
        if header.get("format") != "osprof-trace-1":
            raise ValueError("not an osprof trace")
        trace = cls(tree_seed=header.get("tree_seed"),
                    tree_scale=header.get("tree_scale"))
        for line in inp:
            line = line.strip()
            if line:
                trace.records.append(TraceRecord.from_line(line))
        return trace


class TraceRecorder:
    """Wraps a System's syscall layer to capture every request.

    Attach before running the workload; detach (or just stop using the
    system) afterwards.  Think time is measured from the completion of
    the previous recorded request to the start of the next, at the
    syscall boundary — the user-mode time the replayer must burn.
    """

    def __init__(self, system: System,
                 tree_seed: Optional[int] = None,
                 tree_scale: Optional[float] = None):
        self.system = system
        self.trace = Trace(tree_seed=tree_seed, tree_scale=tree_scale)
        self._last_completion: Optional[float] = None
        self._original_invoke = system.syscalls.invoke
        system.syscalls.invoke = self._recording_invoke  # type: ignore

    def detach(self) -> Trace:
        """Stop recording and return the captured trace."""
        self.system.syscalls.invoke = self._original_invoke  # type: ignore
        return self.trace

    def _recording_invoke(self, proc: Process, operation: str,
                          body) -> ProcBody:
        start = self.system.kernel.now
        think = 0.0
        if self._last_completion is not None:
            think = max(0.0, start - self._last_completion)
        # The target File is buried in the body generator's closure;
        # workloads pass it via gi_frame locals when using vfs methods.
        ino, pos, count = self._peek_args(body, operation)
        result = yield from self._original_invoke(proc, operation, body)
        self._last_completion = self.system.kernel.now
        if operation in _REPLAYABLE and ino is not None:
            self.trace.records.append(TraceRecord(
                operation=operation, ino=ino, pos=pos,
                count=count if count is not None else 0, think=think))
        return result

    @staticmethod
    def _peek_args(body, operation: str
                   ) -> Tuple[Optional[int], int, Optional[int]]:
        frame = getattr(body, "gi_frame", None)
        if frame is None:
            return None, 0, None
        local = frame.f_locals
        file = local.get("file")
        if not isinstance(file, File):
            return None, 0, None
        count = local.get("size")
        if operation == "llseek":
            count = local.get("offset", 0)
        return file.inode.ino, file.pos, count


def replay_trace(system: System, trace: Trace,
                 name: str = "replay") -> Process:
    """Replay a trace against *system* (same tree layout required).

    Each record re-opens the file handle state (per-inode handles are
    kept across records, as real processes keep fds open), burns the
    recorded think time, seeks to the recorded position, and issues the
    operation.  Returns the replayer process after running it.
    """
    handles: Dict[int, File] = {}

    def body(proc: Process) -> ProcBody:
        for record in trace.records:
            if record.think > 0:
                yield CpuBurst(record.think)
            inode = system.inodes.get(record.ino)
            handle = handles.get(record.ino)
            if handle is None:
                handle = system.vfs.open_inode(inode)
                handles[record.ino] = handle
            handle.pos = record.pos
            if record.operation == "read":
                yield from system.syscalls.invoke(
                    proc, "read",
                    system.vfs.read(proc, handle, record.count or 0))
            elif record.operation == "write":
                yield from system.syscalls.invoke(
                    proc, "write",
                    system.vfs.write(proc, handle, record.count or 1))
            elif record.operation == "llseek":
                yield from system.syscalls.invoke(
                    proc, "llseek",
                    system.vfs.llseek(proc, handle, record.count, 0))
            elif record.operation == "readdir":
                yield from system.syscalls.invoke(
                    proc, "readdir",
                    system.vfs.readdir(proc, handle))
            elif record.operation == "fsync":
                yield from system.syscalls.invoke(
                    proc, "fsync", system.vfs.fsync(proc, handle))
        return len(trace.records)

    proc = system.kernel.spawn(body, name)
    system.run([proc])
    return proc

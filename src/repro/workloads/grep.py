"""The recursive grep workload (Sections 6.2, 6.4).

``grep -r <nonexistent-string>`` over a source tree: depth-first
directory traversal via repeated ``readdir`` calls (always ending with
one past-EOF call per directory page run), then every regular file read
in page-sized chunks with user-space pattern matching between reads.

This single workload exposes all four readdir peaks of Figure 7 and, on
a CIFS mount, the FindFirst/FindNext pathology of Figure 10.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from ..disk.geometry import BLOCK_SIZE
from ..sim.process import CpuBurst, ProcBody, Process
from ..system import System
from ..vfs.inode import Inode

__all__ = ["GrepResult", "grep_body", "run_grep"]

#: User-space pattern matching cost per byte scanned (cycles).  ~1.7
#: cycles/byte is a realistic grep throughput at 1.7 GHz (~1 GB/s).
MATCH_COST_PER_BYTE = 1.0


@dataclass
class GrepResult:
    """Counts the traversal produced (filled in by the grep process)."""

    directories: int = 0
    files: int = 0
    bytes_scanned: int = 0
    readdir_calls: int = 0
    read_calls: int = 0


def grep_body(system: System, proc: Process, root: Inode,
              result: Optional[GrepResult] = None,
              chunk: int = BLOCK_SIZE) -> ProcBody:
    """Process body: scan *root* recursively like grep -r.

    Directories are fully listed first (files read as encountered),
    then subdirectories are descended depth-first — the traversal order
    of POSIX ftw-based grep.
    """
    if result is None:
        result = GrepResult()
    stack: List[Inode] = [root]
    while stack:
        directory = stack.pop()
        result.directories += 1
        dirfile = system.vfs.open_inode(directory)
        subdirs: List[Inode] = []
        while True:
            entries = yield from system.syscalls.invoke(
                proc, "readdir",
                system.vfs.readdir(proc, dirfile))
            result.readdir_calls += 1
            if not entries:
                break
            for entry in entries:
                inode = system.inodes.get(entry.ino)
                if inode.is_dir:
                    subdirs.append(inode)
                else:
                    scanned = yield from _grep_file(system, proc, inode,
                                                    result, chunk)
                    result.bytes_scanned += scanned
        yield from system.syscalls.invoke(
            proc, "close", system.vfs.close(proc, dirfile))
        # Depth-first: most recently seen subdir next.
        stack.extend(reversed(subdirs))
    return result


def _grep_file(system: System, proc: Process, inode: Inode,
               result: GrepResult, chunk: int) -> ProcBody:
    file = system.vfs.open_inode(inode)
    result.files += 1
    scanned = 0
    while True:
        count = yield from system.syscalls.invoke(
            proc, "read", system.vfs.read(proc, file, chunk))
        result.read_calls += 1
        if count == 0:
            break
        scanned += count
        # User-space scan of the chunk (outside the kernel).
        yield CpuBurst(system.kernel.rng.jitter(
            MATCH_COST_PER_BYTE * count, sigma=0.2))
    yield from system.syscalls.invoke(
        proc, "close", system.vfs.close(proc, file))
    return scanned


def run_grep(system: System, root: Inode,
             chunk: int = BLOCK_SIZE) -> GrepResult:
    """Spawn one grep process, run it to completion, return its counts."""
    result = GrepResult()
    proc = system.kernel.spawn(
        lambda p: grep_body(system, p, root, result, chunk), "grep")
    system.run([proc])
    return result


def run_parallel_grep(system: System, root: Inode, jobs: int,
                      chunk: int = BLOCK_SIZE) -> List[GrepResult]:
    """xargs-style parallel grep: each job scans a share of the tree.

    The top-level subdirectories (plus the root itself for its own
    files) are dealt round-robin to *jobs* workers, the way
    ``find | xargs -P`` splits work.  With several jobs the disk queue
    actually fills, so elevator scheduling, drive-cache competition and
    CPU scheduling appear in the profiles.
    """
    if jobs < 1:
        raise ValueError("jobs must be positive")
    subtrees: List[List[Inode]] = [[] for _ in range(jobs)]
    top = [system.inodes.get(e.ino) for e in root.entries]
    subdirs = [i for i in top if i.is_dir]
    for index, subdir in enumerate(subdirs):
        subtrees[index % jobs].append(subdir)

    results = [GrepResult() for _ in range(jobs)]
    procs = []

    def root_files_body(proc: Process, result: GrepResult) -> ProcBody:
        """Scan the root directory's own files (no recursion)."""
        dirfile = system.vfs.open_inode(root)
        result.directories += 1
        while True:
            entries = yield from system.syscalls.invoke(
                proc, "readdir", system.vfs.readdir(proc, dirfile))
            result.readdir_calls += 1
            if not entries:
                break
            for entry in entries:
                inode = system.inodes.get(entry.ino)
                if not inode.is_dir:
                    scanned = yield from _grep_file(system, proc, inode,
                                                    result, chunk)
                    result.bytes_scanned += scanned
        yield from system.syscalls.invoke(
            proc, "close", system.vfs.close(proc, dirfile))
        return result

    def job_body(proc: Process, j: int) -> ProcBody:
        if j == 0:
            # Job 0 also takes the root directory's own files.
            yield from root_files_body(proc, results[0])
        for subtree in subtrees[j]:
            yield from grep_body(system, proc, subtree, results[j],
                                 chunk)
        return results[j]

    for j in range(jobs):
        procs.append(system.kernel.spawn(
            lambda p, j=j: job_body(p, j), f"grep{j}"))
    system.run(procs)
    return results

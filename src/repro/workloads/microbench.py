"""Micro-workloads: zero-byte reads, clone stress, empty probes.

* :func:`zero_byte_read_body` — Figure 3's workload: a tight loop of
  ``read`` syscalls returning 0 bytes.  Y = 0 (the process never yields)
  so it is the one workload where forcible preemption and timer
  interrupts become visible in the profile.
* :func:`clone_stress` — Figure 1's workload: N processes concurrently
  calling ``clone``; the kernel's process-table lock turns the profile
  bimodal under contention.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from ..sim.process import CpuBurst, ProcBody, Process
from ..sim.sync import Semaphore
from ..system import System
from ..vfs.inode import Inode

__all__ = ["zero_byte_read_body", "run_zero_byte_reads", "CloneStress",
           "CLONE_BODY_COST", "CLONE_LOCKED_COST"]

#: User-space loop overhead between zero-byte read syscalls (cycles).
LOOP_COST = 180.0


def zero_byte_read_body(system: System, proc: Process, inode: Inode,
                        iterations: int) -> ProcBody:
    """Tight loop of reads of zero bytes from an (empty) file."""
    file = system.vfs.open_inode(inode)
    file.pos = inode.size  # always at EOF: every read returns 0
    for _ in range(iterations):
        yield from system.syscalls.invoke(
            proc, "read", system.vfs.read(proc, file, 4096))
        yield CpuBurst(system.kernel.rng.jitter(LOOP_COST, sigma=0.2))
    return iterations


def run_zero_byte_reads(system: System, processes: int = 2,
                        iterations: int = 100_000) -> List[Process]:
    """Figure 3's workload: N tight-loop readers of an empty file."""
    if processes < 1 or iterations < 1:
        raise ValueError("processes and iterations must be positive")
    inode = system.tree.mkfile(system.root, "empty", 0)
    procs = [
        system.kernel.spawn(
            lambda p: zero_byte_read_body(system, p, inode, iterations),
            f"zbr{i}")
        for i in range(processes)
    ]
    system.run(procs)
    return procs


#: CPU cost of an uncontended clone: copying task structures (~10 us —
#: Figure 1's left peak sits around buckets 13-15).
CLONE_BODY_COST = 17_000.0

#: Portion of clone executed under the process-table lock.  A small
#: fraction of the body, so only some concurrent clones collide — the
#: paper's Figure 1 shows the contended (right) peak roughly a decade
#: below the uncontended one.
CLONE_LOCKED_COST = 2_500.0


class CloneStress:
    """Figure 1: concurrent ``clone`` calls contending on a kernel lock.

    The lock is a sleeping mutex (FreeBSD sx-style): a contended clone
    waits for the holder's locked section plus wakeup/context-switch
    latency, producing a right peak well separated from the uncontended
    one.
    """

    def __init__(self, system: System):
        self.system = system
        self.proc_table_lock = Semaphore(system.kernel,
                                         name="proc_table", fair=False)
        self.clones = 0

    def _clone_op(self, proc: Process) -> ProcBody:
        kernel = self.system.kernel
        # Unlocked part: allocate and copy task state.
        yield CpuBurst(kernel.rng.jitter(
            (CLONE_BODY_COST - CLONE_LOCKED_COST) / 2.0, sigma=0.2))
        yield from self.proc_table_lock.acquire(proc)
        try:
            yield CpuBurst(kernel.rng.jitter(CLONE_LOCKED_COST,
                                             sigma=0.2))
        finally:
            yield from self.proc_table_lock.release(proc)
        yield CpuBurst(kernel.rng.jitter(
            (CLONE_BODY_COST - CLONE_LOCKED_COST) / 2.0, sigma=0.2))
        self.clones += 1
        return None

    def body(self, proc: Process, iterations: int) -> ProcBody:
        """One stress process: clone in a loop with a little user work."""
        for _ in range(iterations):
            yield from self.system.syscalls.invoke(
                proc, "clone", self._clone_op(proc))
            yield CpuBurst(self.system.kernel.rng.jitter(2_500.0,
                                                         sigma=0.3))
        return iterations

    def run(self, processes: int, iterations: int = 2000) -> List[Process]:
        if processes < 1 or iterations < 1:
            raise ValueError("processes and iterations must be positive")
        procs = [
            self.system.kernel.spawn(
                lambda p: self.body(p, iterations), f"clone{i}")
            for i in range(processes)
        ]
        self.system.run(procs)
        return procs

"""One-stop assembly of a simulated machine with OSprof attached.

:class:`System` wires together everything a profiling experiment needs —
engine, kernel/scheduler, disk + driver, inode table, file system, VFS,
page cache, syscall layer, and the three profiling layers of Figure 2
(user, file system, driver) — with the paper's hardware parameters as
defaults (1.7 GHz CPU, 58 ms quantum, 15 kRPM disk).

Typical use::

    from repro import System

    sys = System.build(fs_type="ext2", num_cpus=2)
    root = sys.tree.make_root()
    f = sys.tree.mkfile(root, "data", 1 << 20)
    ... spawn workload processes via sys.kernel.spawn ...
    sys.run()
    print(sys.fs_profiles()["read"])
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from .core.buckets import BucketSpec
from .core.pipeline import Pipeline
from .core.procfs import ProcFs
from .core.profile import Layer
from .core.profiler import Profiler
from .core.profileset import ProfileSet
from .core.sampling import SampledProfiler
from .disk.device import Disk
from .disk.driver import ScsiDriver
from .disk.geometry import DiskGeometry
from .disk.model import DeviceModel
from .fs.ext2 import Ext2
from .fs.ext3 import Ext3
from .fs.mkfs import BlockAllocator, TreeBuilder
from .fs.namei import PathWalker
from .fs.ntfs import Ntfs
from .fs.reiserfs import Reiserfs
from .sampling.sampler import WaitStateSampler
from .sim.engine import Engine, seconds
from .sim.interrupts import TimerInterrupt
from .sim.process import Process
from .sim.rng import SimRandom
from .sim.scheduler import DEFAULT_QUANTUM, Kernel
from .sim.syscalls import SyscallLayer
from .vfs.inode import Inode, InodeTable
from .vfs.instrument import FsInstrument
from .vfs.pagecache import PageCache
from .vfs.vfs import Vfs

__all__ = ["System"]


class System:
    """A fully wired simulated machine plus its profiling layers."""

    def __init__(self, kernel: Kernel, disk: Disk, driver: ScsiDriver,
                 inodes: InodeTable, allocator: BlockAllocator,
                 fs, vfs: Vfs, syscalls: SyscallLayer,
                 user_profiler: Profiler, fs_profiler: Profiler,
                 timer: Optional[TimerInterrupt],
                 sampled: Optional[SampledProfiler] = None,
                 pipeline: Optional[Pipeline] = None,
                 state_sampler: Optional[WaitStateSampler] = None):
        self.kernel = kernel
        self.engine = kernel.engine
        self.disk = disk
        self.driver = driver
        self.inodes = inodes
        self.allocator = allocator
        self.fs = fs
        self.vfs = vfs
        self.syscalls = syscalls
        self.user_profiler = user_profiler
        self.fs_profiler = fs_profiler
        self.driver_profiler = driver.profiler
        self.timer = timer
        self.sampled = sampled
        #: Wait-state sampler (armed when built with
        #: ``state_sample_interval``); None on measurement-only systems.
        self.state_sampler = state_sampler
        #: The machine-wide probe/event pipeline every instrumented
        #: layer emits through; one request-id space across layers.
        self.pipeline = pipeline if pipeline is not None \
            else syscalls.pipeline
        self.tree = TreeBuilder(inodes, allocator)
        self._root: Optional[Inode] = None
        #: The /proc reporting interface of Section 4: each profiling
        #: layer is readable at /proc/osprof/<layer>, and writing
        #: "reset" clears it between workload phases.
        self.procfs = ProcFs()
        self.procfs.register("user", user_profiler)
        self.procfs.register("fs", fs_profiler)
        self.procfs.register("driver", driver.profiler)

    # -- construction -----------------------------------------------------------

    @classmethod
    def build(cls, fs_type: str = "ext2", num_cpus: int = 1,
              kernel_preemption: bool = False,
              quantum: float = DEFAULT_QUANTUM,
              patched_llseek: bool = False,
              seed: int = 2006,
              instrumentation: str = "full",
              pagecache_pages: int = 65_536,
              with_timer: bool = True,
              sample_interval: Optional[float] = None,
              state_sample_interval: Optional[float] = None,
              spec: Optional[BucketSpec] = None,
              geometry: Optional[DiskGeometry] = None,
              device: Optional[DeviceModel] = None,
              fs_factory=None) -> "System":
        """Assemble a machine; see class docstring for the layout.

        ``fs_type`` is ``"ext2"``, ``"ext3"``, ``"reiserfs"``, or ``"ntfs"``.  ``instrumentation``
        selects the Section 5.2 overhead variant for both the syscall
        and the FS layer (``off``/``empty``/``tsc_only``/``full``).
        ``sample_interval`` (cycles), when given, additionally attaches
        a :class:`SampledProfiler` at the FS layer for Figure 9-style
        3-D profiles.  ``state_sample_interval`` (cycles) arms a
        :class:`~repro.sampling.WaitStateSampler` that periodically
        captures every process's (state, layer, op, wait_site) — the
        sampled view is read back via ``system.state_sampler.profile()``
        and never perturbs the measured profiles.  ``device`` mounts a non-default device model
        (SSD, RAID-0, throttled...) behind the same driver; ``geometry``
        only reshapes the default spindle and is mutually exclusive
        with it.  Scenario names resolve to devices one level up, in
        :func:`repro.scenarios.build_system`.
        """
        if device is not None and geometry is not None:
            raise ValueError("give geometry or device, not both")
        rng = SimRandom(seed)
        kernel = Kernel(num_cpus=num_cpus, quantum=quantum,
                        kernel_preemption=kernel_preemption, rng=rng)
        # One pipeline spans the machine: every layer's probe shares its
        # request-id space and drains through the same batch buffers.
        pipeline = Pipeline(num_cpus=num_cpus)
        if device is not None:
            disk = Disk(kernel, model=device)
        else:
            disk = Disk(kernel, geometry=geometry)
        driver_profiler = Profiler(name="driver", layer=Layer.DRIVER,
                                   clock=lambda: kernel.engine.now,
                                   spec=spec)
        driver = ScsiDriver(kernel, disk, profiler=driver_profiler,
                            pipeline=pipeline)
        inodes = InodeTable(kernel)
        allocator = BlockAllocator(disk.geometry,
                                   rng.fork("alloc"))
        if fs_factory is not None:
            fs = fs_factory(kernel, driver, inodes, allocator)
        elif fs_type == "ext2":
            fs = Ext2(kernel, driver, inodes, allocator,
                      patched_llseek=patched_llseek)
        elif fs_type == "reiserfs":
            fs = Reiserfs(kernel, driver, inodes, allocator,
                          patched_llseek=patched_llseek)
        elif fs_type == "ext3":
            fs = Ext3(kernel, driver, inodes, allocator,
                      patched_llseek=patched_llseek)
        elif fs_type == "ntfs":
            fs = Ntfs(kernel, driver, inodes, allocator)
        else:
            raise ValueError(f"unknown fs_type {fs_type!r}")

        fs_profiler = Profiler(name="fs", layer=Layer.FILESYSTEM,
                               clock=lambda: kernel.engine.now, spec=spec)
        sampled = None
        if sample_interval is not None:
            sampled = SampledProfiler(clock=lambda: kernel.engine.now,
                                      interval=sample_interval,
                                      name="fs-sampled", spec=spec)
        fsprof = FsInstrument(kernel, profiler=fs_profiler,
                              sampled=sampled, variant=instrumentation,
                              pipeline=pipeline)
        pagecache = PageCache(kernel, capacity_pages=pagecache_pages)
        pagecache.attach_disk(disk)
        vfs = Vfs(kernel, fs, pagecache=pagecache, fsprof=fsprof)

        user_profiler = Profiler(name="user", layer=Layer.USER,
                                 clock=lambda: kernel.engine.now,
                                 spec=spec)
        syscalls = SyscallLayer(kernel, profiler=user_profiler,
                                instrumentation=instrumentation,
                                pipeline=pipeline)
        timer = None
        if with_timer:
            timer = TimerInterrupt(kernel)
            timer.start()
        state_sampler = None
        if state_sample_interval is not None:
            state_sampler = WaitStateSampler(kernel,
                                             interval=state_sample_interval)
            state_sampler.start()
        return cls(kernel, disk, driver, inodes, allocator, fs, vfs,
                   syscalls, user_profiler, fs_profiler, timer, sampled,
                   pipeline=pipeline, state_sampler=state_sampler)

    # -- file tree helpers ---------------------------------------------------------

    @property
    def root(self) -> Inode:
        """The root directory inode (created on first use)."""
        if self._root is None:
            self._root = self.tree.make_root()
            self.fs.root = self._root
        return self._root

    def walker(self) -> PathWalker:
        return PathWalker(self.kernel, self.inodes, self.root)

    # -- running --------------------------------------------------------------------

    def run(self, procs: Optional[Sequence[Process]] = None,
            until: Optional[float] = None) -> None:
        """Run to completion of *procs* (or until a time bound)."""
        if procs is not None:
            self.kernel.run_until_done(procs)
        else:
            self.kernel.run(until=until)

    def shutdown(self) -> None:
        """Close any still-running workload processes (after run(until=...))."""
        self.kernel.shutdown()

    # -- results ----------------------------------------------------------------------

    def user_profiles(self) -> ProfileSet:
        return self.user_profiler.profile_set()

    def fs_profiles(self) -> ProfileSet:
        return self.fs_profiler.profile_set()

    def driver_profiles(self) -> ProfileSet:
        return self.driver_profiler.profile_set()

    def state_profile(self):
        """The sampled wait-state profile, or None without a sampler."""
        if self.state_sampler is None:
            return None
        return self.state_sampler.profile()

    def elapsed_seconds(self) -> float:
        return self.kernel.now / 1.7e9

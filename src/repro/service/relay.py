"""The aggregation tree: leaf relays between collectors and the root.

One event-loop server (:mod:`repro.service.aio_server`) absorbs
thousands of pushers, but a planet-sized fleet still cannot point every
collector at one socket.  ``osprof relay`` is the middle of the tree
Atys-style continuous profiling needs: a **leaf relay** accepts pushes
from many clients exactly like a real server (same wire protocol, same
idempotent ``(client_id, seq)`` dedup, same backpressure), but instead
of keeping a rolling store it spools the accepted segments on disk,
merges them canonically in deterministic batches, and forwards **one**
merged, idempotent stream to its upstream — another relay, or the root
service.  Because profile merging is associative and canonical
(``ProfileSet.merged``), the root's merged contents are byte-identical
to a flat merge of every client's raw segments, no matter how the tree
batched them.

Crash safety is spool-first, everywhere:

* an accepted push is on disk (atomic rename) **before** it is acked,
  framed as its original ``PUSH_SEQ`` payload so identity survives;
* forwarding follows a write-ahead marker protocol in
  :class:`RelayState` (one atomically-replaced JSON file): a batch is
  chosen and persisted as *in-flight* (its upper spool sequence and
  its upstream sequence number) **before** the upstream push, so a
  relay that dies mid-forward replays exactly the same batch under
  exactly the same sequence and the upstream ledger absorbs the
  duplicate — merged exactly once, end to end;
* spool entries are deleted only after their batch's commit record
  landed, and leftovers below the committed watermark are purged on
  restart.

The downstream dedup ledger survives restarts the same way: high-water
marks of *forwarded* entries are folded into the state file at batch
commit, and marks of still-spooled entries are rebuilt by scanning the
spool — so no acked push is ever double-merged, even across a crash.
"""

from __future__ import annotations

import json
import threading
import time
from pathlib import Path
from typing import List, Optional, Tuple

from ..core import durable
from ..core.faults import FaultPlan
from ..core.profileset import ProfileSet
from .aio_server import AsyncProfileServer
from .client import Backoff, ResilientServiceClient
from .protocol import FrameType, decode_json, decode_push_seq, encode_json, \
    encode_push_seq
from .server import ServiceConfig
from .spool import Spool
from .store import PushLedger

__all__ = ["RelayState", "RelayService", "RelayServer"]

_STATE_FILE = "relay-state.json"
#: Client id recorded for plain (unsequenced) ``PUSH`` entries; they
#: carry no idempotence contract, so they never enter the ledger.
_ANON = "-"


class RelayState:
    """The relay's durable forwarding state (one atomic JSON file).

    ``forwarded`` is the spool watermark: every entry at or below it
    has been committed upstream and may be (or already was) deleted.
    ``up_seq`` is the last upstream sequence number this relay used.
    ``inflight`` is the write-ahead record of the batch currently (or
    last) being pushed: ``(upper, seq)``.  ``ledger`` holds downstream
    high-water marks of entries that no longer sit in the spool.
    """

    def __init__(self, root):
        self.path = Path(root) / _STATE_FILE
        self.relay_id: str = ""
        self.forwarded = 0
        self.up_seq = 0
        self.inflight: Optional[Tuple[int, int]] = None  # (upper, seq)
        self.ledger: dict = {}
        if self.path.exists():
            self._load()

    def _load(self) -> None:
        try:
            raw = json.loads(self.path.read_text(encoding="utf-8"))
        except (OSError, json.JSONDecodeError) as exc:
            raise ValueError(
                f"corrupt relay state {self.path}: {exc}") from None
        self.relay_id = str(raw.get("relay_id", ""))
        self.forwarded = int(raw.get("forwarded", 0))
        self.up_seq = int(raw.get("up_seq", 0))
        inflight = raw.get("inflight")
        self.inflight = (int(inflight[0]), int(inflight[1])) \
            if inflight else None
        self.ledger = {str(k): int(v)
                       for k, v in raw.get("ledger", {}).items()}

    def save(self) -> None:
        """Persist durably (fsync + rename + dir fsync) at WAL points."""
        blob = json.dumps({
            "relay_id": self.relay_id,
            "forwarded": self.forwarded,
            "up_seq": self.up_seq,
            "inflight": list(self.inflight) if self.inflight else None,
            "ledger": self.ledger,
        }, sort_keys=True).encode("utf-8")
        durable.write_atomic(self.path, blob)


class RelayService:
    """Accept, dedup, spool, merge, forward — the relay's brain.

    Transport-agnostic like :class:`~repro.service.server.ProfileService`
    (and presenting the same hardening surface: ``config``, ingest
    slots, degradation counters), so :class:`RelayServer` can serve it
    over the same event loop.  ``upstream`` is ``(host, port)``;
    ``batch`` caps how many spooled entries one upstream push carries.

    ``fault_plan`` arms the leaf→root hop's ``client.connect`` /
    ``client.send`` / ``client.recv`` fault sites — the forwarding
    client is a full :class:`ResilientServiceClient`, so the healing
    story upstream is the same one collectors get downstream.
    """

    def __init__(self, root, upstream: Tuple[str, int],
                 config: Optional[ServiceConfig] = None,
                 batch: int = 64,
                 relay_id: Optional[str] = None,
                 retries: int = 4,
                 backoff: Optional[Backoff] = None,
                 timeout: float = 30.0,
                 sleep=time.sleep,
                 fault_plan: Optional[FaultPlan] = None):
        if batch < 1:
            raise ValueError("relay batch must be >= 1")
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.upstream = upstream
        self.config = config if config is not None else ServiceConfig()
        self.batch = batch
        self.spool = Spool(self.root / "spool")
        self.state = RelayState(self.root)
        if relay_id:
            self.state.relay_id = relay_id
        elif not self.state.relay_id:
            # Reuse the spool's persisted identity: stable across
            # restarts, unique across relays.
            self.state.relay_id = f"relay-{self.spool.client_id}"
        self.state.save()
        self._retries = retries
        self._backoff = backoff
        self._timeout = timeout
        self._sleep = sleep
        self._plan = fault_plan
        self._upstream_client: Optional[ResilientServiceClient] = None
        # Accepts happen on the serving thread, forwards on another;
        # the lock guards the ledger and counters, the forward lock
        # serializes whole forwarding rounds.
        self._lock = threading.Lock()
        self._forward_lock = threading.Lock()
        self.ledger = PushLedger()
        self.ledger.update_from(self.state.ledger)
        self._rebuild_from_spool()
        if self.config.max_pending < 1:
            raise ValueError("max_pending must be >= 1")
        self._ingest_slots = threading.BoundedSemaphore(
            self.config.max_pending)
        # Counters (guarded by _lock).
        self.accepted = 0
        self.accepted_bytes = 0
        self.accepted_ops = 0
        self.duplicates = 0
        self.rejected = 0
        self.forwarded_entries = 0
        self.forwarded_batches = 0
        self.forward_errors = 0
        self.backpressure_rejections = 0
        self.frames_oversize = 0
        self.read_timeouts = 0

    @property
    def relay_id(self) -> str:
        return self.state.relay_id

    def _rebuild_from_spool(self) -> None:
        # Entries at or below the committed watermark are leftovers of
        # a crash between batch commit and deletion: purge them.  The
        # rest re-seed the dedup ledger (their acks may never have
        # reached the client, so replays must be recognized).
        for seq in self.spool.pending():
            if seq <= self.state.forwarded:
                self.spool.remove(seq)
                continue
            try:
                client_id, client_seq, _ = decode_push_seq(
                    self.spool.payload(seq))
            except ValueError:
                continue
            if client_id != _ANON:
                self.ledger.record(client_id, client_seq)

    # -- the accept path (called by the transport) --------------------------

    def accept_sequenced(self, client_id: str, seq: int,
                         payload: bytes) -> Tuple[str, bool]:
        """Idempotent accept: validate, dedup, spool, ack.

        Raises :class:`ValueError` on a payload that does not decode
        (the transport reports it as ``bad-payload:`` so the client
        resends the pristine copy under the same sequence).  The spool
        write lands before the ack, so an accepted push survives a
        relay crash; the ledger entry is rebuilt from the spool on
        restart, so the ack's loss cannot double-merge either.
        """
        pset = ProfileSet.from_bytes(payload)  # ValueError -> bad-payload
        with self._lock:
            if not self.ledger.is_new(client_id, seq):
                self.duplicates += 1
                return (f"duplicate of push seq {seq}; already relayed",
                        False)
            self.spool.append(encode_push_seq(client_id, seq, payload))
            self.ledger.record(client_id, seq)
            self.accepted += 1
            self.accepted_bytes += len(payload)
            self.accepted_ops += pset.total_ops()
        return (f"relayed {pset.total_ops()} ops over {len(pset)} "
                f"operations (seq {seq})", True)

    def accept_payload(self, payload: bytes) -> ProfileSet:
        """Accept one plain (unsequenced) push; no dedup contract."""
        pset = ProfileSet.from_bytes(payload)
        with self._lock:
            # Anonymous entries carry no idempotence contract; the
            # constant seq is a placeholder that never touches a ledger.
            self.spool.append(encode_push_seq(_ANON, 1, payload))
            self.accepted += 1
            self.accepted_bytes += len(payload)
            self.accepted_ops += pset.total_ops()
        return pset

    def note_rejected(self) -> None:
        with self._lock:
            self.rejected += 1

    # -- self-defence accounting (same surface as ProfileService) -----------

    def try_acquire_ingest_slot(self) -> bool:
        return self._ingest_slots.acquire(blocking=False)

    def release_ingest_slot(self) -> None:
        self._ingest_slots.release()

    def note_backpressure(self) -> None:
        with self._lock:
            self.backpressure_rejections += 1

    def note_oversize_frame(self) -> None:
        with self._lock:
            self.frames_oversize += 1

    def note_read_timeout(self) -> None:
        with self._lock:
            self.read_timeouts += 1

    # -- forwarding ----------------------------------------------------------

    def pending_entries(self) -> List[int]:
        """Spool sequences accepted but not yet committed upstream."""
        return [seq for seq in self.spool.pending()
                if seq > self.state.forwarded]

    def _client(self) -> ResilientServiceClient:
        if self._upstream_client is None:
            host, port = self.upstream
            self._upstream_client = ResilientServiceClient(
                host, port, client_id=self.relay_id,
                retries=self._retries, backoff=self._backoff,
                timeout=self._timeout, sleep=self._sleep,
                fault_plan=self._plan)
        return self._upstream_client

    def _load_entry(self, seq: int) -> Optional[Tuple[str, int, ProfileSet]]:
        """Decode one spooled entry, quarantining at-rest damage.

        A spool file that no longer decodes (bit rot, torn write that
        survived a crash) must not wedge the forwarder in a permanent
        retry loop: it is moved aside as ``.corrupt`` (kept for
        forensics, counted by ``osprof_spool_corrupt_total``) and the
        batch proceeds without it — delayed or quarantined, never
        silently wrong.
        """
        try:
            client_id, client_seq, profile = decode_push_seq(
                self.spool.payload(seq))
            return client_id, client_seq, ProfileSet.from_bytes(profile)
        except (OSError, ValueError):
            self.spool.quarantine(seq)
            return None

    def _merge_batch(self, entries: List[int]) -> ProfileSet:
        loaded = filter(None, (self._load_entry(seq) for seq in entries))
        return ProfileSet.merged([pset for _, _, pset in loaded])

    def forward(self) -> int:
        """Push every complete-able batch upstream; returns entries sent.

        One round: (re)establish the in-flight marker, merge the
        marked batch canonically, push it under its write-ahead
        sequence number, commit (fold ledger marks, advance the
        watermark), delete the entries — then repeat until the spool
        has nothing older than the watermark.  Raises
        :class:`~repro.service.client.ServiceUnavailableError` when the
        upstream stays unreachable; everything undelivered stays
        spooled and the marker makes the retry idempotent.
        """
        with self._forward_lock:
            total = 0
            while True:
                state = self.state
                if state.inflight is None:
                    pending = self.pending_entries()
                    if not pending:
                        break
                    chosen = pending[:self.batch]
                    # Write-ahead: the batch's composition (everything
                    # in (forwarded, upper]) and its upstream sequence
                    # are durable before the push, so a crash replays
                    # this exact batch under this exact number.
                    state.inflight = (chosen[-1], state.up_seq + 1)
                    state.save()
                upper, up_seq = state.inflight
                entries = [seq for seq in self.spool.pending()
                           if state.forwarded < seq <= upper]
                # Decode once: a damaged entry is quarantined here and
                # drops out of the batch (and of the ledger fold below),
                # so at-rest corruption delays one entry, not the tree.
                loaded = [(seq, entry) for seq in entries
                          for entry in [self._load_entry(seq)]
                          if entry is not None]
                if loaded:
                    merged = ProfileSet.merged(
                        [pset for _, (_, _, pset) in loaded])
                    try:
                        self._client().push_with_seq(up_seq,
                                                     merged.to_bytes())
                    except Exception:
                        with self._lock:
                            self.forward_errors += 1
                        self._drop_client()
                        raise
                # Commit: fold the batch's downstream marks into the
                # durable ledger (their spool entries are about to go),
                # advance the watermark, clear the marker — atomically.
                for _, (client_id, client_seq, _) in loaded:
                    if client_id != _ANON and \
                            client_seq > state.ledger.get(client_id, 0):
                        state.ledger[client_id] = client_seq
                state.forwarded = upper
                state.up_seq = up_seq
                state.inflight = None
                state.save()
                for seq, _ in loaded:
                    self.spool.remove(seq)
                with self._lock:
                    self.forwarded_entries += len(loaded)
                    self.forwarded_batches += 1
                total += len(loaded)
            return total

    def _drop_client(self) -> None:
        if self._upstream_client is not None:
            self._upstream_client.close()
            self._upstream_client = None

    def close(self) -> None:
        self._drop_client()

    # -- queries (same dispatch surface as ProfileService) -------------------

    def tick(self) -> list:
        return []

    def snapshot(self) -> ProfileSet:
        """Canonical merge of everything accepted but not yet forwarded."""
        with self._forward_lock:
            return self._merge_batch(self.pending_entries())

    def alerts_since(self, cursor: int):
        # Relays do not analyze; watch the root instead.
        return cursor, []

    def metrics_text(self) -> str:
        with self._lock:
            lines = [
                "# OSprof profile relay",
                f"osprof_relay_upstream "
                f"{self.upstream[0]}:{self.upstream[1]}",
                f"osprof_relay_batch {self.batch}",
                f"osprof_relay_accepted_total {self.accepted}",
                f"osprof_relay_accepted_bytes_total {self.accepted_bytes}",
                f"osprof_relay_accepted_ops_total {self.accepted_ops}",
                f"osprof_relay_duplicates_total {self.duplicates}",
                f"osprof_relay_rejected_total {self.rejected}",
                f"osprof_relay_spool_pending {len(self.pending_entries())}",
                f"osprof_relay_forwarded_entries_total "
                f"{self.forwarded_entries}",
                f"osprof_relay_forwarded_batches_total "
                f"{self.forwarded_batches}",
                f"osprof_relay_forward_errors_total {self.forward_errors}",
                f"osprof_spool_corrupt_total {self.spool.corrupted}",
                f"osprof_relay_upstream_seq {self.state.up_seq}",
                f"osprof_relay_clients {len(self.ledger)}",
                f"osprof_backpressure_total {self.backpressure_rejections}",
                f"osprof_frames_oversize_total {self.frames_oversize}",
                f"osprof_read_timeouts_total {self.read_timeouts}",
            ]
            return "\n".join(lines) + "\n"


class RelayServer(AsyncProfileServer):
    """Event-loop front end for a :class:`RelayService`.

    Reuses the entire asyncio transport (read timeouts, header-only
    frame guard, bounded-slot backpressure, drain) and swaps the
    dispatch: pushes are spooled-and-acked instead of merged into a
    store, and a **forwarder thread** ships complete batches upstream
    off the event loop (the one blocking hop a leaf has).  With
    ``flush_interval`` set, partial batches are flushed on that cadence
    too, so a trickle of collectors still reaches the root.
    """

    def __init__(self, relay: RelayService, host: str = "127.0.0.1",
                 port: int = 0, flush_interval: Optional[float] = 1.0):
        super().__init__(service=relay, host=host, port=port)
        self.relay = relay
        self.flush_interval = flush_interval
        self._forward_wake = threading.Event()
        self._forward_stop = threading.Event()
        self._forwarder: Optional[threading.Thread] = None

    # -- forwarder thread ----------------------------------------------------

    def _forward_loop(self) -> None:
        while not self._forward_stop.is_set():
            self._forward_wake.wait(timeout=self.flush_interval)
            self._forward_wake.clear()
            if self._forward_stop.is_set():
                break
            try:
                self.relay.forward()
            except Exception:
                # Upstream unreachable (or still faulted): everything
                # stays spooled; the next wake retries. Counted by the
                # relay's forward_errors.
                continue

    def _start_forwarder(self) -> None:
        if self.flush_interval is None or self._forwarder is not None:
            return
        self._forwarder = threading.Thread(
            target=self._forward_loop, name="osprof-relay-forward",
            daemon=True)
        self._forwarder.start()

    def serve_in_thread(self) -> threading.Thread:
        thread = super().serve_in_thread()
        self._start_forwarder()
        return thread

    def serve_forever(self) -> None:
        self._start_forwarder()
        super().serve_forever()

    def signal_forward(self) -> None:
        """Wake the forwarder (a batch may be complete)."""
        self._forward_wake.set()

    def drain(self, timeout: float = 5.0) -> bool:
        """Transport drain, then a final forward of everything spooled.

        Raises nothing on an unreachable upstream — the spool keeps the
        data and the return value only reports the transport's drain;
        check ``relay.pending_entries()`` for leftovers.
        """
        drained = super().drain(timeout)
        self._forward_stop.set()
        self._forward_wake.set()
        if self._forwarder is not None:
            self._forwarder.join(timeout=max(timeout, 1.0))
        try:
            self.relay.forward()
        except Exception:
            pass
        return drained

    def server_close(self) -> None:
        self._forward_stop.set()
        self._forward_wake.set()
        super().server_close()
        self.relay.close()

    # -- dispatch ------------------------------------------------------------

    async def _dispatch(self, writer, ftype: int, payload: bytes) -> None:
        relay = self.relay
        if ftype == FrameType.PUSH:
            async def work():
                try:
                    pset = relay.accept_payload(payload)
                except ValueError:
                    relay.note_rejected()
                    raise
                await self._send(writer, FrameType.OK,
                                 f"relayed {pset.total_ops()} ops over "
                                 f"{len(pset)} operations".encode("utf-8"))
            if await self._ingest_gated(writer, work):
                self._maybe_forward()
        elif ftype == FrameType.PUSH_SEQ:
            client_id, seq, profile = decode_push_seq(payload)

            async def work():
                try:
                    status, _ = relay.accept_sequenced(client_id, seq,
                                                       profile)
                except ValueError as exc:
                    relay.note_rejected()
                    await self._send(writer, FrameType.ERROR,
                                     f"bad-payload: {exc}".encode("utf-8"))
                    return
                await self._send(writer, FrameType.OK,
                                 status.encode("utf-8"))
            if await self._ingest_gated(writer, work):
                self._maybe_forward()
        elif ftype == FrameType.METRICS:
            await self._send(writer, FrameType.TEXT,
                             self.metrics_text().encode("utf-8"))
        elif ftype == FrameType.SNAPSHOT:
            await self._send(writer, FrameType.PROFILE,
                             relay.snapshot().to_bytes())
        elif ftype == FrameType.ALERTS:
            request = decode_json(payload) if payload else {}
            cursor = int(request.get("cursor", 0))
            next_cursor, alerts = relay.alerts_since(cursor)
            await self._send(writer, FrameType.ALERT_LOG, encode_json(
                {"cursor": next_cursor, "alerts": alerts}))
        else:
            await self._send(writer, FrameType.ERROR,
                             f"unsupported frame type "
                             f"{FrameType.name(ftype)}".encode("utf-8"))

    def _maybe_forward(self) -> None:
        if len(self.relay.pending_entries()) >= self.relay.batch:
            self.signal_forward()

    def metrics_text(self) -> str:
        return (self.relay.metrics_text()
                + f"osprof_aio_connections_active "
                  f"{self.active_connections}\n"
                + f"osprof_aio_connections_total {self.connections_total}\n"
                + f"osprof_aio_parser_buffered_max "
                  f"{self.max_parser_buffered}\n")

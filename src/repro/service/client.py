"""Collector-side clients of the continuous profiling service.

:class:`ServiceClient` speaks the :mod:`repro.service.protocol` framing
over one persistent TCP connection — the cheap, streaming path a
long-lived collector wants — and maps the reply frames back to Python
objects (status strings, :class:`~repro.core.profileset.ProfileSet`,
:class:`~repro.service.alerts.Alert`).  An ``ERROR`` frame raises
:class:`ServiceError`; a framing violation raises
:class:`~repro.service.protocol.ProtocolError`.

:class:`ResilientServiceClient` is the self-healing wrapper a
production collector should use: it classifies failures into retryable
and fatal (:func:`is_retryable`), reconnects with exponentially growing
full-jitter backoff (:class:`Backoff`), stamps every push with a client
id and monotonic sequence number so the server can deduplicate replays
(idempotent pushes over ``PUSH_SEQ``), honors the server's
``RETRY_AFTER`` backpressure replies, and — when given a spool
directory — buffers pushes in a crash-safe on-disk
:class:`~repro.service.spool.Spool` that drains on reconnect, so no
segment is ever lost while the server is down.  When every retry is
exhausted it raises a typed :class:`ServiceUnavailableError` with the
last attempt's cause chained.
"""

from __future__ import annotations

import os
import random
import socket
import time
import uuid
from typing import Callable, List, Optional, Tuple

from ..core.faults import FaultPlan, FaultySocket
from ..core.profileset import ProfileSet
from ..sampling.stateprofile import StateProfile
from .alerts import Alert
from .protocol import (FrameType, ProtocolError, decode_json,
                       decode_retry_after, encode_json, encode_push_seq,
                       encode_state_push, recv_frame, send_frame)
from .spool import Spool

__all__ = [
    "ServiceClient",
    "ServiceError",
    "ServiceUnavailableError",
    "RetryAfter",
    "Backoff",
    "ResilientServiceClient",
    "is_retryable",
    "parse_endpoint",
]


class ServiceError(ValueError):
    """The server answered with an ERROR frame (its message is carried)."""


class ServiceUnavailableError(ConnectionError):
    """The service stayed unreachable through every retry.

    Raised by :class:`ResilientServiceClient` after its attempt budget
    is spent; the last attempt's underlying failure is chained as
    ``__cause__`` so the real reason (refused, reset, timed out, server
    kept answering ``bad-payload``) is never lost.
    """


class RetryAfter(Exception):
    """The server asked the client to back off (``RETRY_AFTER`` reply).

    Not an error: the push was *not* ingested and should be resent
    after ``seconds``.  :class:`ResilientServiceClient` handles this
    internally; raw :class:`ServiceClient` users see it raised.
    """

    def __init__(self, seconds: float):
        super().__init__(f"server busy; retry after {seconds:g}s")
        self.seconds = seconds


def parse_endpoint(endpoint: str) -> Tuple[str, int]:
    """Parse ``host:port`` (the CLI's service address argument)."""
    host, sep, port = endpoint.rpartition(":")
    if not sep or not host:
        raise ValueError(
            f"bad service endpoint {endpoint!r}; expected host:port")
    try:
        return host, int(port)
    except ValueError:
        raise ValueError(
            f"bad service endpoint {endpoint!r}: port {port!r} is not "
            f"an integer") from None


def is_retryable(exc: BaseException) -> bool:
    """Classify a push/connect failure: worth retrying, or fatal?

    Retryable: the transport failed (``OSError`` — refused, reset,
    timed out, unreachable), the stream desynchronized
    (:class:`ProtocolError` — reconnecting resynchronizes it), the
    server shed load (:class:`RetryAfter`), or the server reported a
    payload damaged in transit (a :class:`ServiceError` whose message
    starts with ``bad-payload:`` — resending the pristine copy under
    the same sequence number is safe and correct).

    Fatal: name resolution failures (``socket.gaierror`` — a
    configuration error no retry fixes) and every other
    :class:`ServiceError` (the server *processed* the request and
    rejected it; resending the same thing changes nothing).
    """
    if isinstance(exc, RetryAfter):
        return True
    if isinstance(exc, ServiceError):
        return str(exc).startswith("bad-payload:")
    if isinstance(exc, socket.gaierror):
        return False
    if isinstance(exc, (OSError, ProtocolError)):
        return True
    return False


class Backoff:
    """Exponentially growing delays with full jitter.

    ``delay(attempt)`` draws uniformly from
    ``[0, min(cap, base * 2**attempt)]`` — the "full jitter" policy,
    which decorrelates a fleet of collectors all reconnecting to a
    server that just came back.  The RNG is injectable so tests (and
    deterministic deployments) reproduce schedules exactly.
    """

    def __init__(self, base: float = 0.05, cap: float = 2.0,
                 rng: Optional[random.Random] = None):
        if base <= 0:
            raise ValueError("backoff base must be positive")
        if cap < base:
            raise ValueError("backoff cap must be >= base")
        self.base = base
        self.cap = cap
        self._rng = rng if rng is not None else random.Random()

    def delay(self, attempt: int) -> float:
        return self._rng.uniform(
            0.0, min(self.cap, self.base * (2 ** max(attempt, 0))))


class ServiceClient:
    """One connection to a :class:`~repro.service.server.ProfileServer`."""

    def __init__(self, host: str, port: int, timeout: float = 30.0,
                 sock: Optional[socket.socket] = None):
        if sock is not None:
            self._sock = sock
        else:
            self._sock = socket.create_connection((host, port),
                                                  timeout=timeout)
        self.close_error: Optional[OSError] = None

    # -- plumbing ----------------------------------------------------------

    def _roundtrip(self, ftype: int, payload: bytes,
                   expect: int) -> bytes:
        send_frame(self._sock, ftype, payload)
        frame = recv_frame(self._sock)
        if frame is None:
            raise ProtocolError("server closed the connection mid-request")
        rtype, rpayload = frame
        if rtype == FrameType.ERROR:
            raise ServiceError(rpayload.decode("utf-8", "replace"))
        if rtype == FrameType.RETRY_AFTER:
            raise RetryAfter(decode_retry_after(rpayload))
        if rtype != expect:
            raise ProtocolError(
                f"expected {FrameType.name(expect)} reply, got "
                f"{FrameType.name(rtype)}")
        return rpayload

    # -- requests ----------------------------------------------------------

    def push(self, pset: ProfileSet) -> str:
        """Stream one profile set to the server; returns its status line."""
        reply = self._roundtrip(FrameType.PUSH, pset.to_bytes(),
                                FrameType.OK)
        return reply.decode("utf-8", "replace")

    def push_payload(self, payload: bytes) -> str:
        """Push an already-encoded binary profile (e.g. a saved .ospb)."""
        reply = self._roundtrip(FrameType.PUSH, payload, FrameType.OK)
        return reply.decode("utf-8", "replace")

    def push_sequenced(self, client_id: str, seq: int,
                       payload: bytes) -> str:
        """Idempotent push: the server dedups on ``(client_id, seq)``.

        Resending the same sequence after an ambiguous failure is safe —
        a replay of an already-merged push is acknowledged without
        merging twice.  Raises :class:`RetryAfter` under backpressure.
        """
        reply = self._roundtrip(FrameType.PUSH_SEQ,
                                encode_push_seq(client_id, seq, payload),
                                FrameType.OK)
        return reply.decode("utf-8", "replace")

    def push_state(self, sprof: StateProfile,
                   overhead_ns: int = 0) -> str:
        """Push one wait-state sample profile; returns the status line.

        ``overhead_ns`` is the sampler's wall-clock capture cost, which
        rides beside the (deterministic) profile bytes so the server
        can accumulate ``osprof_sampler_overhead_ns_total``.
        """
        reply = self._roundtrip(
            FrameType.STATE_PUSH,
            encode_state_push(overhead_ns, sprof.to_bytes()),
            FrameType.OK)
        return reply.decode("utf-8", "replace")

    def state_snapshot(self) -> StateProfile:
        """The merged rolling state window, decoded and CRC-verified."""
        return StateProfile.from_bytes(
            self._roundtrip(FrameType.STATE_SNAPSHOT, b"",
                            FrameType.STATE_PROFILE))

    def metrics(self) -> str:
        """The server's plaintext metrics page."""
        return self._roundtrip(FrameType.METRICS, b"",
                               FrameType.TEXT).decode("utf-8", "replace")

    def snapshot(self) -> ProfileSet:
        """The merged rolling profile, decoded and CRC-verified."""
        return ProfileSet.from_bytes(
            self._roundtrip(FrameType.SNAPSHOT, b"", FrameType.PROFILE))

    def alerts(self, cursor: int = 0) -> Tuple[int, List[Alert]]:
        """Alerts at or after *cursor*; returns ``(next_cursor, alerts)``."""
        reply = decode_json(self._roundtrip(
            FrameType.ALERTS, encode_json({"cursor": cursor}),
            FrameType.ALERT_LOG))
        try:
            records = reply["alerts"]
            next_cursor = int(reply["cursor"])
        except (KeyError, TypeError, ValueError) as exc:
            raise ProtocolError(f"bad alert log reply: {exc}") from None
        return next_cursor, [Alert.from_dict(r) for r in records]

    def sql(self, query: str) -> Tuple[List[str], List[List]]:
        """Run an ``osprof db sql`` query against the server's warehouse.

        Returns ``(columns, rows)``.  Query errors (bad syntax, unknown
        column, missing baseline, server started without ``--db``)
        arrive as :class:`ServiceError` with the server's message.
        """
        reply = decode_json(self._roundtrip(
            FrameType.SQL, encode_json({"sql": query}), FrameType.TABLE))
        try:
            return list(reply["columns"]), [list(r) for r in reply["rows"]]
        except (KeyError, TypeError) as exc:
            raise ProtocolError(f"bad sql reply: {exc}") from None

    # -- lifecycle ---------------------------------------------------------

    def close(self) -> None:
        """Close the connection.

        A close-time ``OSError`` is recorded on :attr:`close_error`
        (inspectable, never silently discarded) rather than raised —
        by the time we are closing, the data either made it or the
        caller already saw the real failure.
        """
        try:
            self._sock.close()
        except OSError as exc:
            self.close_error = exc

    def __enter__(self) -> "ServiceClient":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


class ResilientServiceClient:
    """A self-healing push client: backoff, idempotence, spooling.

    Every push is stamped ``(client_id, seq)`` and sent over
    ``PUSH_SEQ``; a connection that dies before the reply is answered
    by reconnecting (full-jitter backoff) and resending the *same*
    sequence, which the server's ledger deduplicates — so a push is
    merged exactly once no matter how many times the wire fails.

    With ``spool_dir`` set, pushes are written to the crash-safe
    on-disk :class:`~repro.service.spool.Spool` first and drained in
    order; a push while the server is down simply stays spooled (status
    ``"spooled seq N"``) instead of raising, and the next successful
    push — or an explicit :meth:`drain` — delivers the backlog with
    zero loss.  Without a spool, exhausting ``retries`` raises
    :class:`ServiceUnavailableError` with the last cause chained.

    ``rng`` and ``sleep`` are injectable for deterministic tests;
    ``fault_plan`` arms deliberate connect/send/recv failures
    (see :mod:`repro.core.faults`).
    """

    def __init__(self, host: str, port: int, *,
                 client_id: Optional[str] = None,
                 retries: int = 4,
                 backoff: Optional[Backoff] = None,
                 timeout: float = 30.0,
                 spool_dir: Optional[str] = None,
                 rng: Optional[random.Random] = None,
                 sleep: Callable[[float], None] = time.sleep,
                 fault_plan: Optional[FaultPlan] = None):
        if retries < 0:
            raise ValueError("retries must be >= 0")
        self.host = host
        self.port = port
        self.retries = retries
        self.timeout = timeout
        self._sleep = sleep
        self._backoff = backoff if backoff is not None else Backoff(rng=rng)
        self._plan = fault_plan
        # Shared across reconnects so armed send/recv ordinals are
        # lifetime-monotonic (a first-send fault fires once, not once
        # per connection — which would defeat healing).
        self._fault_counters = {"send": 0, "recv": 0}
        self._client: Optional[ServiceClient] = None
        self.spool = Spool(spool_dir, client_id=client_id) \
            if spool_dir is not None else None
        if self.spool is not None:
            self.client_id = self.spool.client_id
            self._seq = None  # spool owns the sequence numbers
        else:
            # The random suffix matters: sequence numbers restart at 1
            # for every spool-less client, so two clients sharing an
            # identity would wrongly dedup each other's pushes.
            self.client_id = client_id if client_id else (
                f"{socket.gethostname()}.{os.getpid()}."
                f"{uuid.uuid4().hex[:8]}")
            self._seq = 0
        # Health counters (exposed for tests and operator curiosity).
        self.reconnects = 0
        self.retries_performed = 0
        self.spooled = 0

    # -- connection management ---------------------------------------------

    def _connect_once(self, attempt: int) -> ServiceClient:
        if self._plan is not None:
            self._plan.fire("client.connect", attempt=attempt,
                            sleep=self._sleep)
        sock = socket.create_connection((self.host, self.port),
                                        timeout=self.timeout)
        if self._plan is not None:
            sock = FaultySocket(sock, self._plan, sleep=self._sleep,
                                counters=self._fault_counters)
        return ServiceClient(self.host, self.port, sock=sock)

    def _ensure_connected(self, attempt: int) -> ServiceClient:
        if self._client is None:
            self._client = self._connect_once(attempt)
            if attempt > 0 or self.reconnects or self.retries_performed:
                self.reconnects += 1
        return self._client

    def _drop_connection(self) -> None:
        if self._client is not None:
            self._client.close()
            self._client = None

    # -- the retry engine ---------------------------------------------------

    def _attempt_all(self, operation: Callable[[ServiceClient], str]) -> str:
        """Run *operation* against a live connection, healing as needed."""
        last: Optional[BaseException] = None
        for attempt in range(self.retries + 1):
            try:
                client = self._ensure_connected(attempt)
                return operation(client)
            except RetryAfter as exc:
                # Backpressure: not a failure, but it consumes an
                # attempt so a saturated server cannot pin us forever.
                last = exc
                self.retries_performed += 1
                self._sleep(exc.seconds)
            except (OSError, ProtocolError, ServiceError) as exc:
                if not is_retryable(exc):
                    raise
                last = exc
                self._drop_connection()
                self.retries_performed += 1
                if attempt < self.retries:
                    self._sleep(self._backoff.delay(attempt))
        raise ServiceUnavailableError(
            f"service {self.host}:{self.port} unavailable after "
            f"{self.retries + 1} attempt(s)") from last

    # -- pushes -------------------------------------------------------------

    def push(self, pset: ProfileSet) -> str:
        """Push one profile set, healing transport failures.

        Spool mode: the set is persisted first, then the whole backlog
        is drained; if the service is down the push stays spooled and
        the returned status says so (no exception, no loss).
        """
        return self.push_payload(pset.to_bytes())

    def push_payload(self, payload: bytes) -> str:
        if self.spool is None:
            assert self._seq is not None
            self._seq += 1
            return self._send_sequenced(self._seq, payload)
        seq = self.spool.append(payload)
        self.spooled += 1
        try:
            delivered = self.drain()
        except ServiceUnavailableError:
            return (f"spooled seq {seq} "
                    f"({len(self.spool)} pending; service unavailable)")
        return f"pushed seq {seq} (drained {delivered})"

    def drain(self) -> int:
        """Deliver every spooled payload in order; returns the count.

        Raises :class:`ServiceUnavailableError` (cause chained) if the
        service cannot be reached — whatever was not delivered stays
        spooled for the next call.
        """
        if self.spool is None:
            return 0
        return self.spool.drain(
            lambda seq, payload: self._send_sequenced(seq, payload))

    def _send_sequenced(self, seq: int, payload: bytes) -> str:
        return self._attempt_all(
            lambda client: client.push_sequenced(self.client_id, seq,
                                                 payload))

    def push_with_seq(self, seq: int, payload: bytes) -> str:
        """Push under an explicitly chosen sequence number.

        The relay's forwarding path owns its own durable sequence
        allocation (a crash must replay the *same* batch under the
        *same* number), so it bypasses the internal counter/spool and
        still gets the full healing loop: reconnect with backoff,
        ``RETRY_AFTER`` honor, and typed exhaustion.  Do not mix with
        :meth:`push` on one client — two sequence allocators sharing an
        identity would corrupt the server's dedup ledger.
        """
        return self._attempt_all(
            lambda client: client.push_sequenced(self.client_id, seq,
                                                 payload))

    def push_state(self, sprof: StateProfile,
                   overhead_ns: int = 0) -> str:
        """Push one wait-state profile, healing transport failures.

        State pushes are not sequenced: an ambiguous failure retried
        here may double-count samples server-side, which the sampled
        view tolerates (counts are a view, not a ledger).
        """
        return self._attempt_all(
            lambda client: client.push_state(sprof,
                                             overhead_ns=overhead_ns))

    # -- queries (same healing loop) ----------------------------------------

    def metrics(self) -> str:
        return self._attempt_all(lambda client: client.metrics())

    def snapshot(self) -> ProfileSet:
        payload: List[ProfileSet] = []

        def grab(client: ServiceClient) -> str:
            payload.append(client.snapshot())
            return ""
        self._attempt_all(grab)
        return payload[0]

    # -- lifecycle ----------------------------------------------------------

    def close(self) -> None:
        self._drop_connection()

    def __enter__(self) -> "ResilientServiceClient":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

"""Collector-side client of the continuous profiling service.

:class:`ServiceClient` speaks the :mod:`repro.service.protocol` framing
over one persistent TCP connection — the cheap, streaming path a
long-lived collector wants — and maps the reply frames back to Python
objects (status strings, :class:`~repro.core.profileset.ProfileSet`,
:class:`~repro.service.alerts.Alert`).  An ``ERROR`` frame raises
:class:`ServiceError`; a framing violation raises
:class:`~repro.service.protocol.ProtocolError`.
"""

from __future__ import annotations

import socket
from typing import List, Optional, Tuple

from ..core.profileset import ProfileSet
from .alerts import Alert
from .protocol import (FrameType, ProtocolError, decode_json, encode_json,
                       recv_frame, send_frame)

__all__ = ["ServiceClient", "ServiceError", "parse_endpoint"]


class ServiceError(ValueError):
    """The server answered with an ERROR frame (its message is carried)."""


def parse_endpoint(endpoint: str) -> Tuple[str, int]:
    """Parse ``host:port`` (the CLI's service address argument)."""
    host, sep, port = endpoint.rpartition(":")
    if not sep or not host:
        raise ValueError(
            f"bad service endpoint {endpoint!r}; expected host:port")
    try:
        return host, int(port)
    except ValueError:
        raise ValueError(
            f"bad service endpoint {endpoint!r}: port {port!r} is not "
            f"an integer") from None


class ServiceClient:
    """One connection to a :class:`~repro.service.server.ProfileServer`."""

    def __init__(self, host: str, port: int, timeout: float = 30.0):
        self._sock = socket.create_connection((host, port),
                                              timeout=timeout)

    # -- plumbing ----------------------------------------------------------

    def _roundtrip(self, ftype: int, payload: bytes,
                   expect: int) -> bytes:
        send_frame(self._sock, ftype, payload)
        frame = recv_frame(self._sock)
        if frame is None:
            raise ProtocolError("server closed the connection mid-request")
        rtype, rpayload = frame
        if rtype == FrameType.ERROR:
            raise ServiceError(rpayload.decode("utf-8", "replace"))
        if rtype != expect:
            raise ProtocolError(
                f"expected {FrameType.name(expect)} reply, got "
                f"{FrameType.name(rtype)}")
        return rpayload

    # -- requests ----------------------------------------------------------

    def push(self, pset: ProfileSet) -> str:
        """Stream one profile set to the server; returns its status line."""
        reply = self._roundtrip(FrameType.PUSH, pset.to_bytes(),
                                FrameType.OK)
        return reply.decode("utf-8", "replace")

    def push_payload(self, payload: bytes) -> str:
        """Push an already-encoded binary profile (e.g. a saved .ospb)."""
        reply = self._roundtrip(FrameType.PUSH, payload, FrameType.OK)
        return reply.decode("utf-8", "replace")

    def metrics(self) -> str:
        """The server's plaintext metrics page."""
        return self._roundtrip(FrameType.METRICS, b"",
                               FrameType.TEXT).decode("utf-8", "replace")

    def snapshot(self) -> ProfileSet:
        """The merged rolling profile, decoded and CRC-verified."""
        return ProfileSet.from_bytes(
            self._roundtrip(FrameType.SNAPSHOT, b"", FrameType.PROFILE))

    def alerts(self, cursor: int = 0) -> Tuple[int, List[Alert]]:
        """Alerts at or after *cursor*; returns ``(next_cursor, alerts)``."""
        reply = decode_json(self._roundtrip(
            FrameType.ALERTS, encode_json({"cursor": cursor}),
            FrameType.ALERT_LOG))
        try:
            records = reply["alerts"]
            next_cursor = int(reply["cursor"])
        except (KeyError, TypeError, ValueError) as exc:
            raise ProtocolError(f"bad alert log reply: {exc}") from None
        return next_cursor, [Alert.from_dict(r) for r in records]

    # -- lifecycle ---------------------------------------------------------

    def close(self) -> None:
        try:
            self._sock.close()
        except OSError:
            pass

    def __enter__(self) -> "ServiceClient":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

"""Rolling time-segmented (3-D) profile store.

"OSprof is capable of taking successive snapshots by using new sets of
buckets to capture latency at predefined time intervals" (Section 3.1).
:class:`SegmentStore` keeps that idea running indefinitely: wall time is
divided into fixed-length segments, every pushed
:class:`~repro.core.profileset.ProfileSet` is merged into the segment
containing its arrival time, and only the most recent ``retention``
closed segments are kept — a ring buffer of complete profiles, each as
cheap as the paper's "≈1 KB per operation" dumps.

Because profile merging is plain histogram addition (commutative and
associative), the merge of everything retained is byte-identical to a
serial merge of the same pushes, no matter how many collectors pushed
concurrently or in what order the segments rotated.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, List, Optional

from ..core.buckets import BucketSpec
from ..core.profileset import ProfileSet

__all__ = ["Segment", "SegmentStore", "PushLedger"]


class PushLedger:
    """Per-client idempotency index for sequenced pushes.

    A resilient client stamps every push with ``(client_id, seq)`` and,
    after an ambiguous failure (connection died before the reply), sends
    the *same* sequence again.  The ledger records the highest sequence
    each client has successfully ingested, so the replay is recognized
    and skipped — exactly-once merging over an at-least-once transport.

    Sequences are per-client and strictly monotonic (clients send one
    push at a time), so a single high-water mark per client suffices;
    record a sequence only after its ingest succeeded, so a push the
    server rejected (corrupt payload) may be retried under its number.
    """

    def __init__(self):
        self._last: dict = {}

    def is_new(self, client_id: str, seq: int) -> bool:
        """Would this ``(client, seq)`` be a first-time ingest?"""
        return seq > self._last.get(client_id, 0)

    def record(self, client_id: str, seq: int) -> None:
        """Mark ``(client, seq)`` ingested (monotonic: never regresses)."""
        if seq > self._last.get(client_id, 0):
            self._last[client_id] = seq

    def last(self, client_id: str) -> int:
        """Highest sequence ingested for *client_id* (0 if none)."""
        return self._last.get(client_id, 0)

    def as_dict(self) -> dict:
        """The high-water marks as a plain dict (for persistence).

        A relay folds this into its durable state file so a restart
        keeps deduplicating its downstream clients — see
        :mod:`repro.service.relay`.
        """
        return dict(self._last)

    def update_from(self, marks: dict) -> None:
        """Fold persisted high-water marks back in (monotonic merge)."""
        for client_id, seq in marks.items():
            self.record(str(client_id), int(seq))

    def __len__(self) -> int:
        return len(self._last)


@dataclass
class Segment:
    """One closed (or still-filling) time slice of the rolling store."""

    index: int            #: segment number since the store's epoch
    started: float        #: clock value at the segment's lower edge
    pset: ProfileSet = field(default_factory=ProfileSet)
    ingests: int = 0      #: pushes merged into this segment

    def is_empty(self) -> bool:
        return len(self.pset) == 0


class SegmentStore:
    """Ring buffer of per-interval profile sets.

    ``segment_length`` is the slice width in clock units (seconds for
    the default ``time.monotonic`` clock); ``retention`` bounds how many
    *closed* segments are kept.  The clock is injectable, so tests (and
    simulated deployments) drive rotation deterministically.
    """

    def __init__(self, segment_length: float, retention: int,
                 spec: Optional[BucketSpec] = None,
                 clock: Callable[[], float] = time.monotonic,
                 on_evict: Optional[Callable[[Segment], None]] = None):
        if segment_length <= 0:
            raise ValueError("segment_length must be positive")
        if retention < 1:
            raise ValueError("retention must be >= 1")
        self.segment_length = segment_length
        self.retention = retention
        self.spec = spec if spec is not None else BucketSpec()
        self.clock = clock
        self.on_evict = on_evict
        self._epoch = clock()
        self._closed: List[Segment] = []
        self._current = Segment(index=0, started=self._epoch,
                                pset=self._new_pset(0))
        self.segments_closed = 0
        self.segments_evicted = 0

    def _new_pset(self, index: int) -> ProfileSet:
        return ProfileSet(name="", spec=self.spec)

    def _index_for(self, now: float) -> int:
        elapsed = now - self._epoch
        if elapsed <= 0:
            return 0
        return int(elapsed // self.segment_length)

    # -- rotation ----------------------------------------------------------

    def advance(self, now: Optional[float] = None) -> List[Segment]:
        """Close segments whose window has passed; return the closed ones.

        Idle gaps do not materialize empty segments — the next segment
        simply starts at the index the clock dictates, so a quiet hour
        costs nothing.

        Eviction is observable: every segment dropped past
        ``retention`` is handed to the ``on_evict`` callback before it
        is forgotten, so a durability layer (the warehouse flush hook
        in :mod:`repro.service.server`) can guarantee nothing leaves
        memory unseen.  An ``on_evict`` that raises propagates — losing
        data silently is worse than failing the rotation.
        """
        now = self.clock() if now is None else now
        target = self._index_for(now)
        closed: List[Segment] = []
        if target > self._current.index:
            closed.append(self._current)
            self._closed.append(self._current)
            self.segments_closed += 1
            while len(self._closed) > self.retention:
                evicted = self._closed.pop(0)
                self.segments_evicted += 1
                if self.on_evict is not None:
                    self.on_evict(evicted)
            self._current = Segment(
                index=target,
                started=self._epoch + target * self.segment_length,
                pset=self._new_pset(target))
        return closed

    # -- ingestion ---------------------------------------------------------

    def ingest(self, pset: ProfileSet,
               now: Optional[float] = None) -> List[Segment]:
        """Merge one pushed profile set into the current segment.

        Returns whatever segments this push's arrival time closed, so
        the caller can run differential analysis on them immediately.
        A resolution mismatch raises :class:`ValueError` — collectors
        must agree on the bucket spec.
        """
        if pset.spec != self.spec:
            raise ValueError(
                f"pushed profile resolution {pset.spec.resolution} differs "
                f"from the store's {self.spec.resolution}")
        now = self.clock() if now is None else now
        closed = self.advance(now)
        self._current.pset.merge(pset)
        self._current.ingests += 1
        return closed

    # -- queries -----------------------------------------------------------

    @property
    def current(self) -> Segment:
        return self._current

    def closed_segments(self) -> List[Segment]:
        """The retained closed segments, oldest first."""
        return list(self._closed)

    def segments(self) -> List[Segment]:
        """Retained closed segments plus the currently filling one."""
        return list(self._closed) + [self._current]

    def __len__(self) -> int:
        return len(self._closed) + 1

    def merged(self) -> ProfileSet:
        """Everything retained, folded into one complete profile.

        Canonical output: the result has an empty name and no
        attributes, so it is byte-comparable (via ``to_bytes``) with a
        serial merge of the same inputs.
        """
        return ProfileSet.merged((seg.pset for seg in self.segments()),
                                 spec=self.spec)

    def total_ops(self) -> int:
        return sum(seg.pset.total_ops() for seg in self.segments())

    def __repr__(self) -> str:
        return (f"<SegmentStore segments={len(self)} "
                f"retention={self.retention} "
                f"length={self.segment_length}s ops={self.total_ops()}>")

"""Online differential analysis: score each segment against a baseline.

The paper's automated comparison tool (Section 3.2) rates successive
profile pairs; its case studies show what the interesting differences
look like — the §6.1 ``llseek`` profile grows a *second peak* when a
second process contends on the ``i_sem`` inode semaphore.  This module
runs that comparison continuously: every closed store segment is scored
against a rolling baseline (the merge of the previous few segments),
and a structured :class:`Alert` fires when

* an operation's histogram grew **new peaks** relative to the baseline
  (the lock-contention signature: phase 2 of the paper's tool),
* the **EMD** (or any configured metric) between baseline and segment
  exceeds a threshold (phase 3), or
* an operation with real volume appears that the baseline never saw.

The baseline is a deque of recent segment profiles merged on demand, so
slow drift is absorbed while one-segment breaks stand out — the same
reasoning as :func:`repro.analysis.anomaly.change_points`, but online
and per-operation.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Deque, Dict, List, Optional

from ..analysis.compare import METRICS, compare
from ..analysis.peaks import find_peaks
from ..core.profileset import ProfileSet

__all__ = ["Alert", "DifferentialAlerter"]

#: Alert kinds, in decreasing order of specificity.
NEW_PEAK = "new-peak"
DISTRIBUTION_SHIFT = "distribution-shift"
NEW_OPERATION = "new-operation"


@dataclass
class Alert:
    """One behaviour change, attributed to a segment and an operation."""

    segment: int        #: index of the segment that broke from baseline
    operation: str      #: the affected operation
    kind: str           #: NEW_PEAK, DISTRIBUTION_SHIFT or NEW_OPERATION
    score: float        #: metric score vs. the baseline
    threshold: float    #: the configured cutoff the score is judged by
    detail: str         #: human-readable specifics (peak locations etc.)

    def describe(self) -> str:
        return (f"segment {self.segment}: {self.operation} [{self.kind}] "
                f"score={self.score:.4f} (threshold {self.threshold:.4f}) "
                f"{self.detail}")

    def to_dict(self) -> Dict:
        return {"segment": self.segment, "operation": self.operation,
                "kind": self.kind, "score": self.score,
                "threshold": self.threshold, "detail": self.detail}

    @classmethod
    def from_dict(cls, data: Dict) -> "Alert":
        try:
            return cls(segment=int(data["segment"]),
                       operation=str(data["operation"]),
                       kind=str(data["kind"]),
                       score=float(data["score"]),
                       threshold=float(data["threshold"]),
                       detail=str(data.get("detail", "")))
        except (KeyError, TypeError, ValueError) as exc:
            raise ValueError(f"bad alert record {data!r}: {exc}") from None


class DifferentialAlerter:
    """Scores closed segments against a rolling baseline, emits alerts.

    ``baseline_segments`` sets the memory: a new segment is compared
    with the merge of up to that many preceding (non-empty) segments.
    ``min_ops`` suppresses operations too sparse to have a meaningful
    distribution in either the segment or the baseline; ``peak_min_ops``
    is the noise floor for peak detection, as in the offline tools.
    """

    def __init__(self, baseline_segments: int = 4, metric: str = "emd",
                 threshold: float = 0.5, min_ops: int = 50,
                 peak_min_ops: int = 5,
                 peak_location_tolerance: int = 1):
        if baseline_segments < 1:
            raise ValueError("baseline_segments must be >= 1")
        if metric not in METRICS:
            raise ValueError(
                f"unknown metric {metric!r}; choose from {sorted(METRICS)}")
        if threshold <= 0:
            raise ValueError("threshold must be positive")
        self.baseline_segments = baseline_segments
        self.metric = metric
        self.threshold = threshold
        self.min_ops = min_ops
        self.peak_min_ops = peak_min_ops
        self.peak_location_tolerance = peak_location_tolerance
        self._recent: Deque[ProfileSet] = deque(maxlen=baseline_segments)

    def baseline(self) -> Optional[ProfileSet]:
        """The current rolling baseline (None before any segment closed)."""
        if not self._recent:
            return None
        return ProfileSet.merged(self._recent)

    def seed(self, psets) -> int:
        """Preload the rolling baseline from stored history, no alerts.

        A restarted service hands the warehouse's most recent segments
        here (oldest first) so the first live segment is judged against
        real history instead of seeding a blind baseline.  Empty sets
        are skipped — an idle gap must not dilute the reference.
        Returns the number of sets absorbed.
        """
        absorbed = 0
        for pset in psets:
            if len(pset):
                self._recent.append(pset)
                absorbed += 1
        return absorbed

    def observe(self, segment_index: int, pset: ProfileSet) -> List[Alert]:
        """Score one closed segment, then absorb it into the baseline.

        The first segment ever seen produces no alerts (there is nothing
        to compare against); it seeds the baseline instead.
        """
        baseline = self.baseline()
        alerts: List[Alert] = []
        if baseline is not None:
            for prof in pset.by_total_latency():
                if prof.total_ops < self.min_ops:
                    continue
                alert = self._score(segment_index, baseline, prof)
                if alert is not None:
                    alerts.append(alert)
        if len(pset):
            self._recent.append(pset)
        return alerts

    def _score(self, segment_index: int, baseline: ProfileSet,
               prof) -> Optional[Alert]:
        base = baseline.get(prof.operation)
        if base is None or base.total_ops < self.min_ops:
            return Alert(
                segment=segment_index, operation=prof.operation,
                kind=NEW_OPERATION, score=float("inf"),
                threshold=self.threshold,
                detail=f"{prof.total_ops} ops, unseen in baseline")
        score = compare(base, prof, self.metric)
        base_peaks = find_peaks(base, min_ops=self.peak_min_ops)
        seg_peaks = find_peaks(prof, min_ops=self.peak_min_ops)
        if len(seg_peaks) > len(base_peaks):
            base_apexes = [p.apex for p in base_peaks]
            fresh = [p.apex for p in seg_peaks
                     if not any(abs(p.apex - a)
                                <= self.peak_location_tolerance
                                for a in base_apexes)]
            return Alert(
                segment=segment_index, operation=prof.operation,
                kind=NEW_PEAK, score=score, threshold=self.threshold,
                detail=(f"peaks {len(base_peaks)} -> {len(seg_peaks)}, "
                        f"new apex at bucket(s) {fresh or '?'}") )
        if score > self.threshold:
            return Alert(
                segment=segment_index, operation=prof.operation,
                kind=DISTRIBUTION_SHIFT, score=score,
                threshold=self.threshold,
                detail=f"{self.metric} above threshold")
        return None

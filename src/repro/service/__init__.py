"""Continuous profiling service (the paper's §3.5 sampling, productionized).

The paper turns OSprof into a continuous monitor by collecting many
small time-segmented profiles and comparing successive pairs with the
automated tool of Section 4.  This package is that idea as a
long-running network service:

* :mod:`repro.service.protocol` — the length-prefixed TCP framing that
  carries binary :class:`~repro.core.profileset.ProfileSet` payloads,
* :mod:`repro.service.store` — a rolling time-segmented 3-D profile
  store (ring buffer of per-interval profile sets),
* :mod:`repro.service.alerts` — online differential analysis: each
  closed segment is scored against a rolling baseline and structured
  alerts fire on new peaks or metric threshold crossings,
* :mod:`repro.service.server` — the ingestion server plus a plaintext
  metrics endpoint, and
* :mod:`repro.service.client` — the collector-side client used by the
  ``osprof push`` / ``osprof watch`` CLI subcommands.
"""

from .alerts import Alert, DifferentialAlerter
from .client import ServiceClient, parse_endpoint
from .protocol import FrameType, ProtocolError, recv_frame, send_frame
from .server import ProfileServer, ProfileService, ServiceConfig
from .store import Segment, SegmentStore

__all__ = [
    "Alert",
    "DifferentialAlerter",
    "FrameType",
    "ProfileServer",
    "ProfileService",
    "ProtocolError",
    "Segment",
    "SegmentStore",
    "ServiceClient",
    "ServiceConfig",
    "parse_endpoint",
    "recv_frame",
    "send_frame",
]

"""Crash-safe on-disk spool of pending profile pushes.

When the continuous-profiling service is unreachable, a collector must
not drop segments — the whole differential-analysis pipeline assumes
lossless collection.  :class:`Spool` is the write-ahead buffer that
makes that hold across *collector* crashes too: every pending push is a
file on disk, written atomically (temp + ``os.replace``), named by its
per-client sequence number, and drained in order when the connection
comes back.

Framing reuses the binary profile codec: each spool file is exactly one
``ProfileSet.to_bytes()`` payload, which already ends in a CRC-32
trailer over its content.  Draining re-verifies that CRC; a file that
fails (torn write, disk damage) is quarantined with a ``.corrupt``
suffix and counted, never pushed — the spool can delay data, but it can
never silently deliver wrong data.

The directory also persists the client identity (``client-id``) and a
sequence high-water mark (``last-seq``), so a restarted collector keeps
its dedup identity and never reissues a sequence number even after the
spool has fully drained.
"""

from __future__ import annotations

import uuid
from pathlib import Path
from typing import Callable, List, Optional

from ..core import durable
from ..core.profileset import ProfileSet

__all__ = ["Spool"]

_SUFFIX = ".ospb"
_CORRUPT_SUFFIX = ".corrupt"
_ID_FILE = "client-id"
_SEQ_FILE = "last-seq"


class Spool:
    """An ordered, CRC-checked directory of pending binary profiles."""

    def __init__(self, root, client_id: Optional[str] = None):
        self.root = Path(root)
        durable.ensure_dir(self.root)
        self.client_id = self._load_client_id(client_id)
        self._last_seq = self._load_last_seq()
        self.corrupted = 0  #: files quarantined by this instance

    # -- identity & sequencing --------------------------------------------

    def _load_client_id(self, requested: Optional[str]) -> str:
        path = self.root / _ID_FILE
        if requested:
            durable.write_atomic(path, requested.encode("utf-8"))
            return requested
        if path.exists():
            stored = path.read_text(encoding="utf-8").strip()
            if stored:
                return stored
        generated = f"osprof-{uuid.uuid4().hex[:12]}"
        durable.write_atomic(path, generated.encode("utf-8"))
        return generated

    def _load_last_seq(self) -> int:
        last = 0
        path = self.root / _SEQ_FILE
        if path.exists():
            try:
                last = int(path.read_text(encoding="utf-8").strip() or 0)
            except ValueError:
                last = 0
        pending = self.pending()
        if pending:
            last = max(last, pending[-1])
        return last

    def _path(self, seq: int) -> Path:
        return self.root / f"{seq:020d}{_SUFFIX}"

    # -- queue operations --------------------------------------------------

    def append(self, payload: bytes) -> int:
        """Persist one encoded profile; returns its sequence number.

        The payload file lands via the fully-fsynced atomic commit
        (:func:`repro.core.durable.write_atomic`), and the high-water
        mark is advanced — same discipline — first: a crash between
        the two steps wastes a sequence number, never reuses one.
        """
        seq = self._last_seq + 1
        durable.write_atomic(self.root / _SEQ_FILE,
                             str(seq).encode("utf-8"))
        self._last_seq = seq
        durable.write_atomic(self._path(seq), payload)
        return seq

    def pending(self) -> List[int]:
        """Sequence numbers still spooled, oldest first."""
        seqs = []
        for entry in self.root.iterdir():
            if entry.suffix == _SUFFIX and not entry.name.startswith("."):
                try:
                    seqs.append(int(entry.stem))
                except ValueError:
                    continue
        return sorted(seqs)

    def payload(self, seq: int) -> bytes:
        return self._path(seq).read_bytes()

    def remove(self, seq: int) -> None:
        durable.unlink(self._path(seq))

    def quarantine(self, seq: int) -> None:
        """Move a damaged entry aside (kept for forensics, never pushed)."""
        path = self._path(seq)
        try:
            durable.replace(path, path.with_suffix(_CORRUPT_SUFFIX))
        except FileNotFoundError:
            pass
        self.corrupted += 1

    def __len__(self) -> int:
        return len(self.pending())

    # -- draining ----------------------------------------------------------

    def drain(self, push: Callable[[int, bytes], None]) -> int:
        """Deliver every pending payload in sequence order.

        ``push(seq, payload)`` must raise to stop the drain (service
        gone again); delivered entries are removed as they go, so a
        partial drain never re-delivers out of order.  CRC-damaged
        entries are quarantined and skipped.  Returns the number
        delivered.
        """
        delivered = 0
        for seq in self.pending():
            payload = self.payload(seq)
            try:
                ProfileSet.from_bytes(payload)
            except ValueError:
                self.quarantine(seq)
                continue
            push(seq, payload)
            self.remove(seq)
            delivered += 1
        return delivered

    def __repr__(self) -> str:
        return (f"<Spool {str(self.root)!r} client={self.client_id} "
                f"pending={len(self)} last_seq={self._last_seq}>")

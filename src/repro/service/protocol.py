"""Length-prefixed TCP framing for the continuous profiling service.

Profiles cross the wire in the checksummed binary codec
(:meth:`~repro.core.profileset.ProfileSet.to_bytes`), wrapped in a thin
frame so that a stream socket carries discrete messages.  The framing
follows the conventions of the simulated stack in :mod:`repro.net.tcp`:
fixed little-endian headers, explicit sizes, and no silent resync — a
malformed frame kills the connection rather than guessing where the
next message starts (the payload itself is already CRC-protected by the
codec, so the frame layer only needs lengths and types).

Frame layout::

    magic   4s   b"OSPS"
    type    u8   one of :class:`FrameType`
    length  u32  payload byte count
    payload length bytes

Conversations are strict request/response: a client sends ``PUSH``,
``PUSH_SEQ``, ``STATE_PUSH``, ``METRICS``, ``SNAPSHOT``,
``STATE_SNAPSHOT``, ``ALERTS`` or ``SQL`` and reads exactly one frame
back (``OK``/``TEXT``/``PROFILE``/``STATE_PROFILE``/``ALERT_LOG``/
``TABLE``, ``ERROR``
carrying a UTF-8 message, or ``RETRY_AFTER`` asking the client to back
off).  Multiple requests may reuse one connection.

``PUSH_SEQ`` is the idempotent push: its payload prefixes the profile
bytes with a client identity and a monotonic sequence number
(:func:`encode_push_seq`), so a client that lost the reply can resend
the same sequence and the server deduplicates instead of double-merging.

A frame whose declared length exceeds the receiver's limit raises
:class:`FrameTooLarge` from the 9-byte header alone — the oversized
payload is never read, let alone allocated.
"""

from __future__ import annotations

import json
import socket
import struct
from typing import Optional, Tuple

__all__ = [
    "FrameType",
    "ProtocolError",
    "FrameTooLarge",
    "MAGIC",
    "MAX_PAYLOAD",
    "FrameParser",
    "send_frame",
    "recv_frame",
    "encode_json",
    "decode_json",
    "encode_push_seq",
    "decode_push_seq",
    "encode_retry_after",
    "decode_retry_after",
    "encode_state_push",
    "decode_state_push",
]

#: First four bytes of every frame.
MAGIC = b"OSPS"

#: Upper bound on one frame's payload; a complete profile set is ~1 KB
#: per operation, so even a year of segments merges far below this.
MAX_PAYLOAD = 64 << 20

_HEADER = struct.Struct("<4sBI")


class FrameType:
    """Wire frame types (u8).  Requests are client→server, the rest replies."""

    PUSH = 0x01       #: request: payload is ``ProfileSet.to_bytes()``
    OK = 0x02         #: reply: UTF-8 status text (may be empty)
    ERROR = 0x03      #: reply: UTF-8 error message
    METRICS = 0x04    #: request: empty payload
    TEXT = 0x05       #: reply: UTF-8 plaintext (the metrics page)
    SNAPSHOT = 0x06   #: request: empty payload
    PROFILE = 0x07    #: reply: merged rolling profile, binary codec
    ALERTS = 0x08     #: request: JSON ``{"cursor": n}``
    ALERT_LOG = 0x09  #: reply: JSON ``{"cursor": n, "alerts": [...]}``
    PUSH_SEQ = 0x0A   #: request: :func:`encode_push_seq` payload
    RETRY_AFTER = 0x0B  #: reply: f64 seconds the client should back off
    SQL = 0x0C        #: request: JSON ``{"sql": query}`` (needs ``--db``)
    TABLE = 0x0D      #: reply: JSON ``{"columns": [...], "rows": [...]}``
    STATE_PUSH = 0x0E      #: request: :func:`encode_state_push` payload
    STATE_SNAPSHOT = 0x0F  #: request: empty payload
    STATE_PROFILE = 0x10   #: reply: merged StateProfile, binary codec

    _NAMES = {
        0x01: "PUSH", 0x02: "OK", 0x03: "ERROR", 0x04: "METRICS",
        0x05: "TEXT", 0x06: "SNAPSHOT", 0x07: "PROFILE", 0x08: "ALERTS",
        0x09: "ALERT_LOG", 0x0A: "PUSH_SEQ", 0x0B: "RETRY_AFTER",
        0x0C: "SQL", 0x0D: "TABLE", 0x0E: "STATE_PUSH",
        0x0F: "STATE_SNAPSHOT", 0x10: "STATE_PROFILE",
    }

    @classmethod
    def name(cls, ftype: int) -> str:
        return cls._NAMES.get(ftype, f"0x{ftype:02x}")


class ProtocolError(ValueError):
    """The byte stream is not a valid frame sequence (desync: close it)."""


class FrameTooLarge(ProtocolError):
    """A frame's declared payload exceeds the receiver's size limit.

    Raised from the header alone, before any payload byte is read or
    buffered — the guard that keeps a hostile (or corrupt) length field
    from forcing a giant allocation.
    """


def send_frame(sock: socket.socket, ftype: int, payload: bytes = b"",
               max_payload: int = MAX_PAYLOAD) -> None:
    """Write one frame to a connected stream socket."""
    if len(payload) > max_payload:
        raise FrameTooLarge(
            f"frame payload of {len(payload)} bytes exceeds the "
            f"{max_payload}-byte limit")
    sock.sendall(_HEADER.pack(MAGIC, ftype, len(payload)) + payload)


def _recv_exact(sock: socket.socket, n: int) -> Optional[bytes]:
    """Read exactly *n* bytes; None on EOF before the first byte."""
    chunks = []
    remaining = n
    while remaining:
        chunk = sock.recv(min(remaining, 1 << 16))
        if not chunk:
            if remaining == n:
                return None
            raise ProtocolError(
                f"connection closed mid-frame: wanted {n} bytes, "
                f"got {n - remaining}")
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


def recv_frame(sock: socket.socket,
               max_payload: int = MAX_PAYLOAD,
               ) -> Optional[Tuple[int, bytes]]:
    """Read one frame; ``None`` on a clean EOF at a frame boundary.

    Raises :class:`ProtocolError` on a bad magic or a connection that
    dies mid-frame, and :class:`FrameTooLarge` — from the header alone,
    before any payload is read — on a declared length over
    *max_payload*.
    """
    header = _recv_exact(sock, _HEADER.size)
    if header is None:
        return None
    magic, ftype, length = _HEADER.unpack(header)
    if magic != MAGIC:
        raise ProtocolError(f"bad frame magic {magic!r}")
    if length > max_payload:
        raise FrameTooLarge(
            f"declared payload of {length} bytes exceeds the "
            f"{max_payload}-byte limit")
    payload = _recv_exact(sock, length) if length else b""
    if length and payload is None:
        raise ProtocolError("connection closed before frame payload")
    return ftype, payload or b""


class FrameParser:
    """Incremental (sans-IO) frame parser for non-blocking transports.

    The event-loop server cannot block on ``recv_frame``; it hands every
    chunk the socket produces to :meth:`feed` and pulls complete frames
    out with :meth:`next_frame`.  The accept/reject behaviour is
    *identical* to :func:`recv_frame` — same :class:`ProtocolError` on a
    bad magic, same header-only :class:`FrameTooLarge` before a single
    payload byte is buffered (the declared length is judged the moment
    the 9 header bytes are complete, so a hostile length cannot force a
    giant allocation no matter how the bytes are chunked).

    Internally one ``bytearray`` accumulates the stream and a read
    cursor walks it; payloads are sliced out through a ``memoryview``
    (one copy, no intermediate concatenations) and consumed prefix
    bytes are compacted away in bulk, so parsing cost stays linear in
    bytes received even under heavy pipelining.
    """

    #: Consumed-prefix size that triggers a buffer compaction.
    _COMPACT_AT = 1 << 16

    def __init__(self, max_payload: int = MAX_PAYLOAD):
        self.max_payload = max_payload
        self._buf = bytearray()
        self._pos = 0          # read cursor into _buf
        self._ftype: Optional[int] = None  # parsed header awaiting payload
        self._need = 0         # payload bytes the parsed header declared
        self.frames_parsed = 0
        self.max_buffered = 0  #: high-water mark of buffered bytes

    def feed(self, data: bytes) -> None:
        """Append one received chunk (any size, including empty)."""
        self._buf += data
        buffered = len(self._buf) - self._pos
        if buffered > self.max_buffered:
            self.max_buffered = buffered

    def buffered(self) -> int:
        """Bytes received but not yet returned as frames."""
        return len(self._buf) - self._pos

    def at_boundary(self) -> bool:
        """True when the stream sits exactly between frames.

        An EOF here is a clean close; an EOF anywhere else is the
        mid-frame death :func:`recv_frame` reports as
        :class:`ProtocolError` (see :meth:`eof`).
        """
        return self._ftype is None and self.buffered() == 0

    def eof(self) -> None:
        """Declare end of stream; raises if it cuts a frame in half.

        The three EOF cases are classified exactly as
        :func:`recv_frame` classifies them: clean at a boundary, a
        mid-read death names the bytes it got, and a death between a
        header and its first payload byte is "before frame payload".
        """
        if self.at_boundary():
            return
        if self._ftype is None:
            raise ProtocolError(
                f"connection closed mid-frame: wanted {_HEADER.size} "
                f"bytes, got {self.buffered()}")
        if self.buffered() == 0:
            raise ProtocolError("connection closed before frame payload")
        raise ProtocolError(
            f"connection closed mid-frame: wanted {self._need} bytes, "
            f"got {self.buffered()}")

    def _compact(self) -> None:
        if self._pos >= self._COMPACT_AT:
            del self._buf[:self._pos]
            self._pos = 0

    def next_frame(self) -> Optional[Tuple[int, bytes]]:
        """One complete ``(type, payload)`` frame, or ``None`` for more.

        Raises exactly what :func:`recv_frame` would: bad magic and
        oversized declared lengths are judged from the header alone.
        """
        if self._ftype is None:
            if self.buffered() < _HEADER.size:
                return None
            magic, ftype, length = _HEADER.unpack_from(self._buf, self._pos)
            if magic != MAGIC:
                raise ProtocolError(f"bad frame magic {bytes(magic)!r}")
            if length > self.max_payload:
                raise FrameTooLarge(
                    f"declared payload of {length} bytes exceeds the "
                    f"{self.max_payload}-byte limit")
            self._pos += _HEADER.size
            self._ftype = ftype
            self._need = length
            self._compact()
        if self.buffered() < self._need:
            return None
        with memoryview(self._buf) as view:
            payload = bytes(view[self._pos:self._pos + self._need])
        self._pos += self._need
        frame = (self._ftype, payload)
        self._ftype = None
        self._need = 0
        self.frames_parsed += 1
        self._compact()
        return frame


def encode_json(obj) -> bytes:
    """Canonical JSON payload encoding (sorted keys, UTF-8)."""
    return json.dumps(obj, sort_keys=True).encode("utf-8")


def decode_json(payload: bytes):
    try:
        return json.loads(payload.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ProtocolError(f"bad JSON payload: {exc}") from None


# -- idempotent push payloads ------------------------------------------------

_PUSH_SEQ_HEADER = struct.Struct("<QH")


def encode_push_seq(client_id: str, seq: int, payload: bytes) -> bytes:
    """Build a ``PUSH_SEQ`` payload: ``u64 seq, str client_id, profile``.

    The sequence number is per-client and strictly monotonic; resending
    an unacknowledged push reuses its sequence, which is what lets the
    server deduplicate after an ambiguous failure.
    """
    raw_id = client_id.encode("utf-8")
    if not raw_id:
        raise ProtocolError("push client id must not be empty")
    if len(raw_id) > 0xFFFF:
        raise ProtocolError("push client id too long")
    if seq < 1:
        raise ProtocolError("push sequence numbers start at 1")
    return _PUSH_SEQ_HEADER.pack(seq, len(raw_id)) + raw_id + payload


def decode_push_seq(data: bytes) -> Tuple[str, int, bytes]:
    """Split a ``PUSH_SEQ`` payload into ``(client_id, seq, profile)``."""
    if len(data) < _PUSH_SEQ_HEADER.size:
        raise ProtocolError("truncated PUSH_SEQ payload")
    seq, id_len = _PUSH_SEQ_HEADER.unpack_from(data)
    end = _PUSH_SEQ_HEADER.size + id_len
    if len(data) < end:
        raise ProtocolError("truncated PUSH_SEQ client id")
    try:
        client_id = data[_PUSH_SEQ_HEADER.size:end].decode("utf-8")
    except UnicodeDecodeError as exc:
        raise ProtocolError(f"bad PUSH_SEQ client id: {exc}") from None
    if not client_id:
        raise ProtocolError("push client id must not be empty")
    if seq < 1:
        raise ProtocolError("push sequence numbers start at 1")
    return client_id, seq, data[end:]


# -- wait-state sample payloads ----------------------------------------------

_STATE_PUSH_HEADER = struct.Struct("<Q")


def encode_state_push(overhead_ns: int, profile_bytes: bytes) -> bytes:
    """Build a ``STATE_PUSH`` payload: ``u64 overhead_ns, state profile``.

    The sampler's wall-clock overhead counter rides *beside* the
    profile bytes, never inside them — the
    :class:`~repro.sampling.StateProfile` codec stays deterministic
    (digest-pinnable in CI) while the service still accumulates the
    ``osprof_sampler_overhead_ns_total`` health counter from pushes.
    """
    if overhead_ns < 0:
        raise ProtocolError("sampler overhead must be >= 0 ns")
    return _STATE_PUSH_HEADER.pack(overhead_ns) + profile_bytes


def decode_state_push(data: bytes) -> Tuple[int, bytes]:
    """Split a ``STATE_PUSH`` payload into ``(overhead_ns, profile)``."""
    if len(data) < _STATE_PUSH_HEADER.size:
        raise ProtocolError("truncated STATE_PUSH payload")
    (overhead_ns,) = _STATE_PUSH_HEADER.unpack_from(data)
    return overhead_ns, data[_STATE_PUSH_HEADER.size:]


# -- backpressure ------------------------------------------------------------

_RETRY_AFTER = struct.Struct("<d")


def encode_retry_after(seconds: float) -> bytes:
    """Build a ``RETRY_AFTER`` payload (suggested client backoff)."""
    if seconds < 0:
        raise ProtocolError("retry-after seconds must be >= 0")
    return _RETRY_AFTER.pack(seconds)


def decode_retry_after(payload: bytes) -> float:
    """Seconds the server asked the client to back off."""
    if len(payload) != _RETRY_AFTER.size:
        raise ProtocolError(
            f"bad RETRY_AFTER payload of {len(payload)} bytes")
    (seconds,) = _RETRY_AFTER.unpack(payload)
    if not seconds >= 0:
        raise ProtocolError(f"bad retry-after value {seconds!r}")
    return seconds

"""Length-prefixed TCP framing for the continuous profiling service.

Profiles cross the wire in the checksummed binary codec
(:meth:`~repro.core.profileset.ProfileSet.to_bytes`), wrapped in a thin
frame so that a stream socket carries discrete messages.  The framing
follows the conventions of the simulated stack in :mod:`repro.net.tcp`:
fixed little-endian headers, explicit sizes, and no silent resync — a
malformed frame kills the connection rather than guessing where the
next message starts (the payload itself is already CRC-protected by the
codec, so the frame layer only needs lengths and types).

Frame layout::

    magic   4s   b"OSPS"
    type    u8   one of :class:`FrameType`
    length  u32  payload byte count
    payload length bytes

Conversations are strict request/response: a client sends ``PUSH``,
``METRICS``, ``SNAPSHOT`` or ``ALERTS`` and reads exactly one frame
back (``OK``/``TEXT``/``PROFILE``/``ALERT_LOG``, or ``ERROR`` carrying
a UTF-8 message).  Multiple requests may reuse one connection.
"""

from __future__ import annotations

import json
import socket
import struct
from typing import Optional, Tuple

__all__ = [
    "FrameType",
    "ProtocolError",
    "MAGIC",
    "MAX_PAYLOAD",
    "send_frame",
    "recv_frame",
    "encode_json",
    "decode_json",
]

#: First four bytes of every frame.
MAGIC = b"OSPS"

#: Upper bound on one frame's payload; a complete profile set is ~1 KB
#: per operation, so even a year of segments merges far below this.
MAX_PAYLOAD = 64 << 20

_HEADER = struct.Struct("<4sBI")


class FrameType:
    """Wire frame types (u8).  Requests are client→server, the rest replies."""

    PUSH = 0x01       #: request: payload is ``ProfileSet.to_bytes()``
    OK = 0x02         #: reply: UTF-8 status text (may be empty)
    ERROR = 0x03      #: reply: UTF-8 error message
    METRICS = 0x04    #: request: empty payload
    TEXT = 0x05       #: reply: UTF-8 plaintext (the metrics page)
    SNAPSHOT = 0x06   #: request: empty payload
    PROFILE = 0x07    #: reply: merged rolling profile, binary codec
    ALERTS = 0x08     #: request: JSON ``{"cursor": n}``
    ALERT_LOG = 0x09  #: reply: JSON ``{"cursor": n, "alerts": [...]}``

    _NAMES = {
        0x01: "PUSH", 0x02: "OK", 0x03: "ERROR", 0x04: "METRICS",
        0x05: "TEXT", 0x06: "SNAPSHOT", 0x07: "PROFILE", 0x08: "ALERTS",
        0x09: "ALERT_LOG",
    }

    @classmethod
    def name(cls, ftype: int) -> str:
        return cls._NAMES.get(ftype, f"0x{ftype:02x}")


class ProtocolError(ValueError):
    """The byte stream is not a valid frame sequence (desync: close it)."""


def send_frame(sock: socket.socket, ftype: int,
               payload: bytes = b"") -> None:
    """Write one frame to a connected stream socket."""
    if len(payload) > MAX_PAYLOAD:
        raise ProtocolError(
            f"frame payload of {len(payload)} bytes exceeds the "
            f"{MAX_PAYLOAD}-byte limit")
    sock.sendall(_HEADER.pack(MAGIC, ftype, len(payload)) + payload)


def _recv_exact(sock: socket.socket, n: int) -> Optional[bytes]:
    """Read exactly *n* bytes; None on EOF before the first byte."""
    chunks = []
    remaining = n
    while remaining:
        chunk = sock.recv(min(remaining, 1 << 16))
        if not chunk:
            if remaining == n:
                return None
            raise ProtocolError(
                f"connection closed mid-frame: wanted {n} bytes, "
                f"got {n - remaining}")
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


def recv_frame(sock: socket.socket) -> Optional[Tuple[int, bytes]]:
    """Read one frame; ``None`` on a clean EOF at a frame boundary.

    Raises :class:`ProtocolError` on a bad magic, an oversized length,
    or a connection that dies mid-frame.
    """
    header = _recv_exact(sock, _HEADER.size)
    if header is None:
        return None
    magic, ftype, length = _HEADER.unpack(header)
    if magic != MAGIC:
        raise ProtocolError(f"bad frame magic {magic!r}")
    if length > MAX_PAYLOAD:
        raise ProtocolError(
            f"declared payload of {length} bytes exceeds the "
            f"{MAX_PAYLOAD}-byte limit")
    payload = _recv_exact(sock, length) if length else b""
    if length and payload is None:
        raise ProtocolError("connection closed before frame payload")
    return ftype, payload or b""


def encode_json(obj) -> bytes:
    """Canonical JSON payload encoding (sorted keys, UTF-8)."""
    return json.dumps(obj, sort_keys=True).encode("utf-8")


def decode_json(payload: bytes):
    try:
        return json.loads(payload.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ProtocolError(f"bad JSON payload: {exc}") from None

"""The event-loop transport: one thread, thousands of collectors.

:class:`ProfileServer` (``server.py``) spends a whole thread per
connection, which caps a fleet at a few hundred concurrent pushers
before scheduler churn eats the ingest budget.  This module serves the
very same :class:`~repro.service.server.ProfileService` facade from a
single-threaded ``asyncio`` event loop instead: sockets are read
non-blocking in 64 KiB chunks, frames are cut out of the stream by the
sans-IO incremental :class:`~repro.service.protocol.FrameParser`
(header-only size guard, zero-copy ``memoryview`` payload slicing), and
every dispatch is the same microseconds of histogram merging — so one
loop absorbs the fleet the north star asks for while the wire protocol,
the CLI, and every hardening semantic stay bit-for-bit compatible:

* per-connection **read timeouts** (``asyncio.wait_for`` around each
  read; an idle or wedged peer is dropped and counted),
* the **max-frame guard** (judged from the 9 header bytes alone, the
  oversized payload is never buffered; the peer gets an ``ERROR``),
* bounded-slot **RETRY_AFTER backpressure** through the service's own
  ``try_acquire_ingest_slot`` gate, so the two transports shed load
  identically,
* **graceful drain** (stop accepting, wait for in-flight connections,
  cancel stragglers after a timeout — an acked push is always already
  merged, because the ack is written after the synchronous ingest),
* the shared **metrics** page, plus transport gauges of its own.

Memory stays bounded under pipelining by construction: every complete
frame already parsed is dispatched before the next ``read()`` is
issued, so a connection buffers at most one read chunk plus one
partial frame — there is no unbounded pending-frame queue to fill.

The server runs ``serve_forever()`` on the calling thread (the CLI) or
``serve_in_thread()`` on a daemon thread (tests, embedding); either
way the public surface mirrors ``ProfileServer``: ``address``,
``active_connections``, ``drain(timeout)``, ``server_close()``.
"""

from __future__ import annotations

import asyncio
import concurrent.futures
import socket
import threading
from typing import Optional, Tuple

from .protocol import (MAGIC, FrameParser, FrameTooLarge, FrameType,
                       ProtocolError, decode_json, decode_push_seq,
                       decode_state_push, encode_json, encode_retry_after,
                       _HEADER)
from .server import ProfileService

__all__ = ["AsyncProfileServer", "READ_CHUNK"]

#: Bytes asked of the socket per read; with the parser's partial-frame
#: carry this bounds a connection's buffer at READ_CHUNK + header +
#: max_frame_bytes.
READ_CHUNK = 1 << 16


class AsyncProfileServer:
    """Asyncio front end over a :class:`ProfileService` (or relay).

    ``port=0`` picks a free port, published via :attr:`address` once
    the listener is up.  The same instance works embedded (tests call
    :meth:`serve_in_thread`) or foreground (the CLI calls
    :meth:`serve_forever`); :meth:`drain` and :meth:`server_close` are
    thread-safe either way.
    """

    def __init__(self, service: Optional[ProfileService] = None,
                 host: str = "127.0.0.1", port: int = 0):
        self.service = service if service is not None else ProfileService()
        self._host = host
        self._port = port
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._server: Optional[asyncio.base_events.Server] = None
        self._address: Optional[Tuple[str, int]] = None
        self._started = threading.Event()
        self._stop: Optional[asyncio.Event] = None
        self._thread: Optional[threading.Thread] = None
        self._conn_tasks: set = set()
        self._startup_error: Optional[BaseException] = None
        # Transport gauges (loop-thread only; read racily by metrics,
        # which is fine for monotone counters).
        self.connections_total = 0
        self.max_parser_buffered = 0

    # -- lifecycle ---------------------------------------------------------

    async def _main(self) -> None:
        self._loop = asyncio.get_running_loop()
        self._stop = asyncio.Event()
        try:
            self._server = await asyncio.start_server(
                self._handle_connection, self._host, self._port)
        except OSError as exc:
            self._startup_error = exc
            self._started.set()
            return
        sock = self._server.sockets[0]
        self._address = sock.getsockname()[:2]
        self._started.set()
        try:
            await self._stop.wait()
        finally:
            self._server.close()
            await self._server.wait_closed()

    def serve_forever(self) -> None:
        """Run the event loop on the calling thread until closed."""
        asyncio.run(self._main())
        if self._startup_error is not None:
            raise self._startup_error

    def serve_in_thread(self) -> threading.Thread:
        """Start serving on a daemon thread; returns once bound."""
        self._thread = threading.Thread(target=self.serve_forever,
                                        name="osprof-aio-serve",
                                        daemon=True)
        self._thread.start()
        self._started.wait(timeout=10.0)
        if self._startup_error is not None:
            raise self._startup_error
        return self._thread

    @property
    def address(self) -> Tuple[str, int]:
        """The bound (host, port) — real even if port 0 was asked."""
        self._started.wait(timeout=10.0)
        if self._address is None:
            raise RuntimeError("server is not listening")
        return self._address

    @property
    def active_connections(self) -> int:
        return len(self._conn_tasks)

    def _call_threadsafe(self, coro, timeout: float):
        if self._loop is None or not self._loop.is_running():
            return None
        future = asyncio.run_coroutine_threadsafe(coro, self._loop)
        try:
            return future.result(timeout)
        except (TimeoutError, concurrent.futures.TimeoutError):
            future.cancel()
            return None

    def drain(self, timeout: float = 5.0) -> bool:
        """Graceful shutdown: stop accepting, wait for in-flight peers.

        Returns True if every connection finished inside *timeout*;
        stragglers (idle watchers parked on a read) are cancelled —
        every push they were acked for is already merged, so nothing
        acknowledged is ever lost.  Callable from any thread.
        """
        if self._loop is None:
            return True
        if threading.current_thread() is not self._thread \
                and self._loop.is_running():
            result = self._call_threadsafe(self._drain_async(timeout),
                                           timeout + 5.0)
            return bool(result)
        return True

    async def _drain_async(self, timeout: float) -> bool:
        if self._server is not None:
            self._server.close()
        deadline = self._loop.time() + max(timeout, 0.0)
        while self._conn_tasks:
            remaining = deadline - self._loop.time()
            if remaining <= 0:
                for task in list(self._conn_tasks):
                    task.cancel()
                await asyncio.gather(*self._conn_tasks,
                                     return_exceptions=True)
                return False
            await asyncio.wait(list(self._conn_tasks),
                               timeout=remaining,
                               return_when=asyncio.ALL_COMPLETED)
        return True

    def server_close(self) -> None:
        """Stop the loop and join the serving thread (if any)."""
        if self._loop is not None and self._loop.is_running():
            def _stop_now():
                for task in list(self._conn_tasks):
                    task.cancel()
                self._stop.set()
            self._loop.call_soon_threadsafe(_stop_now)
        if self._thread is not None \
                and self._thread is not threading.current_thread():
            self._thread.join(timeout=10.0)

    # -- the per-connection loop -------------------------------------------

    async def _handle_connection(self, reader: asyncio.StreamReader,
                                 writer: asyncio.StreamWriter) -> None:
        task = asyncio.current_task()
        self._conn_tasks.add(task)
        self.connections_total += 1
        sock = writer.get_extra_info("socket")
        if sock is not None and sock.family != socket.AF_UNIX:
            try:
                sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            except OSError:
                pass
        try:
            await self._connection_loop(reader, writer)
        except asyncio.CancelledError:
            pass
        finally:
            self._conn_tasks.discard(task)
            writer.close()
            try:
                await writer.wait_closed()
            except (OSError, asyncio.CancelledError):
                pass

    async def _connection_loop(self, reader: asyncio.StreamReader,
                               writer: asyncio.StreamWriter) -> None:
        service = self.service
        parser = FrameParser(max_payload=service.config.max_frame_bytes)
        read_timeout = service.config.read_timeout
        loop = asyncio.get_running_loop()
        task = asyncio.current_task()
        # The idle guard: a plain timer handle armed only while parked
        # on a read.  ``asyncio.wait_for`` would wrap every read in a
        # fresh Task — at fleet ingest rates that wrapper dominates the
        # loop, so the timeout is a heap entry instead, cancelled for
        # free whenever data arrives in time.
        timed_out = [False]

        def _idle_expired():
            timed_out[0] = True
            task.cancel()

        while True:
            # Dispatch every frame already buffered before reading more:
            # this is the bounded-memory invariant — pipelined requests
            # are answered from the buffer, never queued beside it.
            try:
                frame = parser.next_frame()
            except FrameTooLarge as exc:
                # Reject from the header alone; tell the peer why, then
                # drop the stream (its payload bytes would desync us).
                service.note_oversize_frame()
                try:
                    await self._send(writer, FrameType.ERROR,
                                     str(exc).encode("utf-8"))
                except OSError:
                    pass
                return
            except ProtocolError:
                return  # desynchronized stream: drop the connection
            if frame is not None:
                ftype, payload = frame
                try:
                    await self._dispatch(writer, ftype, payload)
                except ProtocolError:
                    return
                except ValueError as exc:
                    try:
                        await self._send(writer, FrameType.ERROR,
                                         str(exc).encode("utf-8"))
                    except OSError:
                        return
                except OSError:
                    return  # peer went away mid-reply
                continue
            guard = loop.call_later(read_timeout, _idle_expired)
            try:
                chunk = await reader.read(READ_CHUNK)
            except asyncio.CancelledError:
                if timed_out[0]:
                    service.note_read_timeout()
                    return  # idle or wedged peer: reclaim the slot
                raise  # a real cancellation (drain/close), not ours
            except OSError:
                return  # peer vanished between frames
            finally:
                guard.cancel()
            if not chunk:
                return  # EOF (mid-frame or not, the stream is over)
            parser.feed(chunk)
            if parser.max_buffered > self.max_parser_buffered:
                self.max_parser_buffered = parser.max_buffered

    async def _send(self, writer: asyncio.StreamWriter, ftype: int,
                    payload: bytes = b"") -> None:
        writer.write(_HEADER.pack(MAGIC, ftype, len(payload)) + payload)
        await writer.drain()

    # -- dispatch ----------------------------------------------------------

    async def _ingest_gated(self, writer: asyncio.StreamWriter,
                            work) -> bool:
        """Run one ingest under the service's bounded-slot gate.

        The slot is held across the ack's ``drain()`` — a slow reader
        therefore occupies an ingest slot, which is exactly the load
        signal that should trip ``RETRY_AFTER`` for everyone else.
        """
        service = self.service
        if not service.try_acquire_ingest_slot():
            service.note_backpressure()
            await self._send(writer, FrameType.RETRY_AFTER,
                             encode_retry_after(
                                 service.config.retry_after_seconds))
            return False
        try:
            await work()
        finally:
            service.release_ingest_slot()
        return True

    async def _dispatch(self, writer: asyncio.StreamWriter, ftype: int,
                        payload: bytes) -> None:
        service = self.service
        if ftype == FrameType.PUSH:
            async def work():
                pset = service.ingest_payload(payload)
                await self._send(writer, FrameType.OK,
                                 f"merged {pset.total_ops()} ops over "
                                 f"{len(pset)} operations".encode("utf-8"))
            await self._ingest_gated(writer, work)
        elif ftype == FrameType.PUSH_SEQ:
            client_id, seq, profile = decode_push_seq(payload)

            async def work():
                try:
                    status, _ = service.ingest_sequenced(
                        client_id, seq, profile)
                except ValueError as exc:
                    # A payload damaged in transit is safe to resend
                    # under the same sequence; other rejections are not.
                    await self._send(writer, FrameType.ERROR,
                                     f"bad-payload: {exc}".encode("utf-8"))
                    return
                await self._send(writer, FrameType.OK,
                                 status.encode("utf-8"))
            await self._ingest_gated(writer, work)
        elif ftype == FrameType.METRICS:
            service.tick()
            await self._send(writer, FrameType.TEXT,
                             self.metrics_text().encode("utf-8"))
        elif ftype == FrameType.SNAPSHOT:
            await self._send(writer, FrameType.PROFILE,
                             service.snapshot().to_bytes())
        elif ftype == FrameType.ALERTS:
            request = decode_json(payload) if payload else {}
            cursor = int(request.get("cursor", 0))
            service.tick()
            next_cursor, alerts = service.alerts_since(cursor)
            await self._send(writer, FrameType.ALERT_LOG, encode_json(
                {"cursor": next_cursor,
                 "alerts": [a.to_dict() for a in alerts]}))
        elif ftype == FrameType.SQL:
            request = decode_json(payload) if payload else {}
            await self._send(writer, FrameType.TABLE,
                             encode_json(service.sql(
                                 str(request.get("sql", "")))))
        elif ftype == FrameType.STATE_PUSH:
            overhead_ns, profile = decode_state_push(payload)

            async def state_work():
                try:
                    sprof = service.ingest_state(profile,
                                                 overhead_ns=overhead_ns)
                except ValueError as exc:
                    await self._send(writer, FrameType.ERROR,
                                     f"bad-payload: {exc}".encode("utf-8"))
                    return
                await self._send(writer, FrameType.OK,
                                 f"sampled {sprof.total_samples()} samples "
                                 f"over {sprof.intervals} interval(s)"
                                 .encode("utf-8"))
            await self._ingest_gated(writer, state_work)
        elif ftype == FrameType.STATE_SNAPSHOT:
            await self._send(writer, FrameType.STATE_PROFILE,
                             service.state_snapshot().to_bytes())
        else:
            await self._send(writer, FrameType.ERROR,
                             f"unsupported frame type "
                             f"{FrameType.name(ftype)}".encode("utf-8"))

    def metrics_text(self) -> str:
        """The service page plus the event-loop transport's own gauges."""
        return (self.service.metrics_text()
                + f"osprof_aio_connections_active "
                  f"{self.active_connections}\n"
                + f"osprof_aio_connections_total {self.connections_total}\n"
                + f"osprof_aio_parser_buffered_max "
                  f"{self.max_parser_buffered}\n")

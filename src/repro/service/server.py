"""The continuous profiling server: ingest, store, alert, report.

:class:`ProfileService` is the transport-agnostic core — a thread-safe
facade over the rolling :class:`~repro.service.store.SegmentStore` and
the :class:`~repro.service.alerts.DifferentialAlerter` — and
:class:`ProfileServer` exposes it over TCP with the
:mod:`repro.service.protocol` framing.  One thread per connection
(collectors hold connections open and stream ``PUSH`` frames); all
shared state is guarded by a single lock, which is ample because a
profile merge is microseconds of histogram addition.

The service is itself observable: the ``METRICS`` request returns a
plaintext page (Prometheus exposition style) of segment counts, ingest
totals and latencies, and per-operation alert counters.
"""

from __future__ import annotations

import socket
import socketserver
import threading
import time
from collections import deque
from dataclasses import dataclass
from typing import Callable, Deque, List, Optional, Tuple

from ..core.buckets import BucketSpec
from ..core.profileset import ProfileSet
from ..sampling.stateprofile import StateProfile
from .alerts import Alert, DifferentialAlerter
from .protocol import (MAX_PAYLOAD, FrameTooLarge, FrameType, ProtocolError,
                       decode_json, decode_push_seq, decode_state_push,
                       encode_json, encode_retry_after, recv_frame,
                       send_frame)
from .store import PushLedger, SegmentStore

__all__ = ["ServiceConfig", "ProfileService", "ProfileServer"]


@dataclass
class ServiceConfig:
    """Tunables of one service instance.

    ``segment_seconds`` and ``retention`` shape the rolling store;
    ``baseline_segments``/``metric``/``threshold``/``min_ops`` shape the
    online differential analysis (see
    :class:`~repro.service.alerts.DifferentialAlerter`).  The last four
    are the hardening knobs: how long an idle connection may sit on a
    read, the largest frame the server will accept, how many pushes may
    be in flight before new ones are told to back off, and the backoff
    the ``RETRY_AFTER`` reply suggests.
    """

    segment_seconds: float = 10.0
    retention: int = 360
    baseline_segments: int = 4
    metric: str = "emd"
    threshold: float = 0.5
    min_ops: int = 50
    resolution: int = 1
    max_alerts: int = 10_000
    read_timeout: float = 60.0
    max_frame_bytes: int = MAX_PAYLOAD
    max_pending: int = 8
    retry_after_seconds: float = 0.05
    #: Closed segments accumulated before one batched warehouse commit
    #: (single journal fsync via ``Warehouse.ingest_many``).  1 keeps
    #: the flush-per-close behaviour; eviction and :meth:`flush` always
    #: force the batch out regardless.
    flush_batch: int = 1
    #: How many recent ``STATE_PUSH`` profiles the rolling state window
    #: keeps; ``STATE_SNAPSHOT`` merges exactly this window ("last K
    #: intervals" in ``osprof top``).
    state_window: int = 64


class ProfileService:
    """Thread-safe ingestion + rolling store + online alerting.

    With a ``warehouse`` attached, the service is durable: every
    non-empty closed segment is flushed to it as a committed epoch, the
    store's eviction hook re-checks that nothing leaves memory
    unflushed, and the alerter's rolling baseline is seeded from the
    warehouse's most recent history on startup, so a restart resumes
    differential analysis against real history instead of a blind
    window.
    """

    def __init__(self, config: Optional[ServiceConfig] = None,
                 clock: Callable[[], float] = time.monotonic,
                 warehouse=None, warehouse_source: str = "service"):
        self.config = config if config is not None else ServiceConfig()
        spec = BucketSpec(self.config.resolution)
        self.warehouse = warehouse
        self.warehouse_source = warehouse_source
        self.warehouse_flush_errors = 0
        if self.config.flush_batch < 1:
            raise ValueError("flush_batch must be >= 1")
        self._flush_queue: List = []  # (segment index, pset) pairs
        self._flushed_epochs: set = set()
        self._epoch_base = (warehouse.index.next_epoch(warehouse_source)
                            if warehouse is not None else 0)
        self.store = SegmentStore(self.config.segment_seconds,
                                  self.config.retention,
                                  spec=spec, clock=clock,
                                  on_evict=self._segment_evicted)
        self.alerter = DifferentialAlerter(
            baseline_segments=self.config.baseline_segments,
            metric=self.config.metric,
            threshold=self.config.threshold,
            min_ops=self.config.min_ops)
        self.baseline_seeded = 0
        if warehouse is not None:
            self.baseline_seeded = self.alerter.seed(
                warehouse.recent_psets(warehouse_source,
                                       self.config.baseline_segments))
        if self.config.max_pending < 1:
            raise ValueError("max_pending must be >= 1")
        self._lock = threading.Lock()
        self._alerts: List[Alert] = []
        self._alerts_dropped = 0
        self.ledger = PushLedger()
        # Serializes the check-ingest-record window of sequenced pushes
        # so a replayed sequence racing its original cannot double-merge.
        self._seq_lock = threading.Lock()
        self._ingest_slots = threading.BoundedSemaphore(
            self.config.max_pending)
        # Ingest counters (all guarded by the lock).
        self.ingest_requests = 0
        self.ingest_errors = 0
        self.ingest_bytes = 0
        self.ingest_ops = 0
        self.ingest_seconds_sum = 0.0
        self.ingest_seconds_max = 0.0
        # Degradation counters: how often the service had to defend
        # itself (all guarded by the lock).
        self.ingest_duplicates = 0
        self.backpressure_rejections = 0
        self.frames_oversize = 0
        self.read_timeouts = 0
        if self.config.state_window < 1:
            raise ValueError("state_window must be >= 1")
        # Wait-state sampling: a rolling window of recent STATE_PUSH
        # profiles plus fleet-wide sampler health counters (all guarded
        # by the lock).
        self._state_window: Deque[StateProfile] = deque(
            maxlen=self.config.state_window)
        self.state_pushes = 0
        self.state_errors = 0
        self.samples_total = 0
        self.sample_intervals_total = 0
        self.sampler_overhead_ns_total = 0

    # -- ingestion ---------------------------------------------------------

    def ingest_payload(self, payload: bytes) -> ProfileSet:
        """Decode one binary profile payload and fold it into the store.

        Raises :class:`ValueError` (propagated to the client as an
        ``ERROR`` frame) on a corrupt payload or a resolution mismatch;
        the store is untouched in that case.
        """
        started = time.perf_counter()
        try:
            pset = ProfileSet.from_bytes(payload)
        except ValueError:
            with self._lock:
                self.ingest_errors += 1
            raise
        with self._lock:
            try:
                closed = self.store.ingest(pset)
            except ValueError:
                self.ingest_errors += 1
                raise
            self._observe_closed(closed)
            elapsed = time.perf_counter() - started
            self.ingest_requests += 1
            self.ingest_bytes += len(payload)
            self.ingest_ops += pset.total_ops()
            self.ingest_seconds_sum += elapsed
            if elapsed > self.ingest_seconds_max:
                self.ingest_seconds_max = elapsed
        return pset

    def ingest_sequenced(self, client_id: str, seq: int,
                         payload: bytes) -> Tuple[str, bool]:
        """Idempotent ingest: ``(status line, whether anything merged)``.

        A sequence at or below the client's ledger high-water mark is a
        replay of an already-merged push (the client lost the reply) and
        is acknowledged without touching the store.  The ledger records
        a sequence only after its ingest succeeded, so a rejected
        payload may be retried under the same number.
        """
        with self._seq_lock:
            with self._lock:
                if not self.ledger.is_new(client_id, seq):
                    self.ingest_duplicates += 1
                    return (f"duplicate of push seq {seq}; already merged",
                            False)
            pset = self.ingest_payload(payload)
            with self._lock:
                self.ledger.record(client_id, seq)
        return (f"merged {pset.total_ops()} ops over {len(pset)} "
                f"operations (seq {seq})", True)

    def ingest_state(self, payload: bytes,
                     overhead_ns: int = 0) -> StateProfile:
        """Decode one wait-state profile push and absorb it.

        The profile joins the rolling state window (what
        ``STATE_SNAPSHOT`` merges), bumps the fleet-wide sampler health
        counters, and — with a warehouse attached — is committed
        durably as a ``samples`` segment beside the latency history.
        Raises :class:`ValueError` on a corrupt payload; nothing is
        recorded in that case.
        """
        try:
            sprof = StateProfile.from_bytes(payload)
        except ValueError:
            with self._lock:
                self.state_errors += 1
            raise
        with self._lock:
            self._state_window.append(sprof)
            self.state_pushes += 1
            self.samples_total += sprof.total_samples()
            self.sample_intervals_total += sprof.intervals
            self.sampler_overhead_ns_total += max(overhead_ns, 0)
            if self.warehouse is not None:
                ingest_state = getattr(self.warehouse, "ingest_state",
                                       None)
                if ingest_state is not None:
                    try:
                        ingest_state(self.warehouse_source, sprof)
                    except (OSError, ValueError):
                        self.warehouse_flush_errors += 1
        return sprof

    def state_snapshot(self) -> StateProfile:
        """The merge of the rolling state window (canonical encoding)."""
        with self._lock:
            return StateProfile.merged(self._state_window,
                                       name="state-window")

    # -- self-defence accounting ------------------------------------------

    def try_acquire_ingest_slot(self) -> bool:
        """Claim one bounded ingest slot; False means *back off*."""
        return self._ingest_slots.acquire(blocking=False)

    def release_ingest_slot(self) -> None:
        self._ingest_slots.release()

    def note_backpressure(self) -> None:
        with self._lock:
            self.backpressure_rejections += 1

    def note_oversize_frame(self) -> None:
        with self._lock:
            self.frames_oversize += 1

    def note_read_timeout(self) -> None:
        with self._lock:
            self.read_timeouts += 1

    def tick(self, now: Optional[float] = None) -> List[Alert]:
        """Rotate the store on the clock alone (no push needed).

        Lets a quiet service still close segments and alert on e.g. an
        operation's disappearance being followed by a changed profile
        when traffic resumes.  Returns any alerts the rotation raised.
        """
        with self._lock:
            before = len(self._alerts) + self._alerts_dropped
            self._observe_closed(self.store.advance(now))
            return self._alerts[max(before - self._alerts_dropped, 0):]

    def _observe_closed(self, closed) -> None:
        # Lock held.  Empty segments neither alert nor enter the
        # baseline: an idle gap must not dilute the reference.
        for segment in closed:
            if segment.is_empty():
                continue
            self._flush_segment(segment)
            for alert in self.alerter.observe(segment.index, segment.pset):
                self._alerts.append(alert)
            overflow = len(self._alerts) - self.config.max_alerts
            if overflow > 0:
                del self._alerts[:overflow]
                self._alerts_dropped += overflow

    def _flush_segment(self, segment) -> None:
        # Lock held (or eviction during advance, which runs under it).
        # Durability beats alerting: the warehouse commit is queued
        # before the segment is scored, and a failed flush is counted,
        # never allowed to take ingestion down with it.  With
        # ``flush_batch`` > 1 the commit itself is deferred until the
        # batch fills (one journal fsync for the lot) — eviction and
        # :meth:`flush` force it out.
        if self.warehouse is None or segment.is_empty():
            return
        if segment.index in self._flushed_epochs:
            return
        self._flushed_epochs.add(segment.index)
        self._flush_queue.append((segment.index, segment.pset))
        if len(self._flush_queue) >= self.config.flush_batch:
            self._flush_queued()

    def _flush_queued(self) -> None:
        # Lock held.  One Warehouse.ingest_many call commits the whole
        # queue; on failure the queue marks roll back so the eviction
        # re-check retries before anything leaves memory for good.
        if not self._flush_queue or self.warehouse is None:
            return
        batch = [(pset, self._epoch_base + index)
                 for index, pset in self._flush_queue]
        ingest_many = getattr(self.warehouse, "ingest_many", None)
        try:
            if ingest_many is not None:
                ingest_many(self.warehouse_source, batch)
            else:  # duck-typed warehouse double: per-segment commits
                for pset, epoch in batch:
                    self.warehouse.ingest(self.warehouse_source, pset,
                                          epoch=epoch)
        except (OSError, ValueError):
            self.warehouse_flush_errors += 1
            for index, _ in self._flush_queue:
                self._flushed_epochs.discard(index)
        self._flush_queue.clear()

    def flush(self) -> None:
        """Force any batched-but-uncommitted closed segments to disk."""
        with self._lock:
            self._flush_queued()

    def _segment_evicted(self, segment) -> None:
        # The store's on_evict hook: the last exit from memory.  Closed
        # segments were already queued in _observe_closed; this
        # re-check catches any segment that slipped past, and the
        # forced flush guarantees nothing pending outlives the ring
        # (which also keeps the flushed-epoch set from growing).
        self._flush_segment(segment)
        self._flush_queued()
        self._flushed_epochs.discard(segment.index)

    # -- queries -----------------------------------------------------------

    def snapshot(self) -> ProfileSet:
        """The merge of every retained segment (canonical encoding)."""
        with self._lock:
            return self.store.merged()

    def alerts_since(self, cursor: int) -> Tuple[int, List[Alert]]:
        """Alerts with log position >= *cursor*, plus the next cursor.

        Cursors are absolute log positions, monotone across eviction of
        old entries, so a ``watch`` client polls with the cursor the
        previous reply returned and never sees an alert twice.
        """
        with self._lock:
            base = self._alerts_dropped
            start = max(cursor - base, 0)
            fresh = self._alerts[start:]
            return base + len(self._alerts), list(fresh)

    def sql(self, query: str) -> dict:
        """Run one ``osprof db sql`` query against the attached warehouse.

        Batched-but-uncommitted closed segments are flushed first, so
        the query sees everything the service has closed, not just what
        the last batch boundary happened to commit.  Raises
        :class:`ValueError` (a clean ``ERROR`` frame) without a
        warehouse, on a malformed query, or on a missing baseline.
        """
        if self.warehouse is None:
            raise ValueError(
                "sql queries need a warehouse: start the server with "
                "--db DIR")
        from ..warehouse.sql import execute_sql
        self.flush()
        return execute_sql(self.warehouse, query).as_dict()

    def metrics_text(self) -> str:
        """The plaintext metrics page (Prometheus exposition style)."""
        with self._lock:
            lines = [
                "# OSprof continuous profiling service",
                f"osprof_segment_seconds {self.store.segment_length:g}",
                f"osprof_segment_retention {self.store.retention}",
                f"osprof_segments_current {len(self.store)}",
                f"osprof_segments_closed_total {self.store.segments_closed}",
                f"osprof_segments_evicted_total "
                f"{self.store.segments_evicted}",
                f"osprof_ingest_requests_total {self.ingest_requests}",
                f"osprof_ingest_errors_total {self.ingest_errors}",
                f"osprof_ingest_bytes_total {self.ingest_bytes}",
                f"osprof_ingest_ops_total {self.ingest_ops}",
                f"osprof_ingest_seconds_sum {self.ingest_seconds_sum:.9f}",
                f"osprof_ingest_seconds_max {self.ingest_seconds_max:.9f}",
                f"osprof_store_operations {len(self.store.merged())}",
                f"osprof_alerts_total "
                f"{len(self._alerts) + self._alerts_dropped}",
                f"osprof_ingest_duplicates_total {self.ingest_duplicates}",
                f"osprof_backpressure_total {self.backpressure_rejections}",
                f"osprof_frames_oversize_total {self.frames_oversize}",
                f"osprof_read_timeouts_total {self.read_timeouts}",
                f"osprof_push_clients {len(self.ledger)}",
                f"osprof_warehouse_segments_total "
                f"{self.warehouse.segments_total if self.warehouse else 0}",
                f"osprof_warehouse_compactions_total "
                f"{self.warehouse.compactions_total if self.warehouse else 0}",
                f"osprof_warehouse_gc_evictions_total "
                f"{self.warehouse.gc_evictions_total if self.warehouse else 0}",
                f"osprof_warehouse_flush_errors_total "
                f"{self.warehouse_flush_errors}",
                f"osprof_warehouse_flush_pending {len(self._flush_queue)}",
                f"osprof_warehouse_cache_hits_total "
                f"{getattr(self.warehouse, 'cache_hits_total', 0)}",
                f"osprof_warehouse_cache_misses_total "
                f"{getattr(self.warehouse, 'cache_misses_total', 0)}",
                f"osprof_warehouse_scrub_scanned_total "
                f"{getattr(self.warehouse, 'scrub_scanned_total', 0)}",
                f"osprof_warehouse_scrub_corrupt_total "
                f"{getattr(self.warehouse, 'scrub_corrupt_total', 0)}",
                f"osprof_warehouse_scrub_repaired_total "
                f"{getattr(self.warehouse, 'scrub_repaired_total', 0)}",
                f"osprof_state_pushes_total {self.state_pushes}",
                f"osprof_state_errors_total {self.state_errors}",
                f"osprof_state_window {len(self._state_window)}",
                f"osprof_samples_total {self.samples_total}",
                f"osprof_sample_intervals_total "
                f"{self.sample_intervals_total}",
                f"osprof_sampler_overhead_ns_total "
                f"{self.sampler_overhead_ns_total}",
            ]
            per_op: dict = {}
            for alert in self._alerts:
                key = (alert.operation, alert.kind)
                per_op[key] = per_op.get(key, 0) + 1
            for (op, kind), count in sorted(per_op.items()):
                lines.append(
                    f'osprof_alerts{{operation="{op}",kind="{kind}"}} '
                    f"{count}")
            return "\n".join(lines) + "\n"


class _Handler(socketserver.BaseRequestHandler):
    """One collector connection: a loop of request/response frames."""

    def setup(self) -> None:
        service: ProfileService = self.server.service  # type: ignore
        if service.config.read_timeout is not None:
            self.request.settimeout(service.config.read_timeout)
        self.server._connection_opened()  # type: ignore[attr-defined]

    def finish(self) -> None:
        self.server._connection_closed()  # type: ignore[attr-defined]

    def handle(self) -> None:
        service: ProfileService = self.server.service  # type: ignore
        while True:
            try:
                frame = recv_frame(self.request,
                                   max_payload=service.config.max_frame_bytes)
            except FrameTooLarge as exc:
                # Reject from the header alone; tell the peer why, then
                # drop the stream (its payload bytes would desync us).
                service.note_oversize_frame()
                try:
                    send_frame(self.request, FrameType.ERROR,
                               str(exc).encode("utf-8"))
                except OSError:
                    pass
                return
            except socket.timeout:
                service.note_read_timeout()
                return  # idle or wedged peer: reclaim the thread
            except ProtocolError:
                return  # desynchronized stream: drop the connection
            except OSError:
                return  # peer vanished between frames
            if frame is None:
                return
            ftype, payload = frame
            try:
                self._dispatch(service, ftype, payload)
            except ProtocolError:
                return
            except ValueError as exc:
                send_frame(self.request, FrameType.ERROR,
                           str(exc).encode("utf-8"))
            except OSError:
                return  # peer went away mid-reply

    def _ingest_gated(self, service: ProfileService, work) -> bool:
        """Run one ingest under the bounded-slot gate.

        Returns False (after sending ``RETRY_AFTER``) when every slot is
        taken — the bounded queue that sheds load instead of stacking
        unbounded handler threads behind the store lock.
        """
        if not service.try_acquire_ingest_slot():
            service.note_backpressure()
            send_frame(self.request, FrameType.RETRY_AFTER,
                       encode_retry_after(
                           service.config.retry_after_seconds))
            return False
        try:
            work()
        finally:
            service.release_ingest_slot()
        return True

    def _dispatch(self, service: ProfileService, ftype: int,
                  payload: bytes) -> None:
        if ftype == FrameType.PUSH:
            def work():
                pset = service.ingest_payload(payload)
                send_frame(self.request, FrameType.OK,
                           f"merged {pset.total_ops()} ops over "
                           f"{len(pset)} operations".encode("utf-8"))
            self._ingest_gated(service, work)
        elif ftype == FrameType.PUSH_SEQ:
            client_id, seq, profile = decode_push_seq(payload)

            def work():
                try:
                    status, _ = service.ingest_sequenced(
                        client_id, seq, profile)
                except ValueError as exc:
                    # Distinguish a payload damaged in transit (safe to
                    # resend under the same sequence) from a genuine
                    # rejection; the client retries `bad-payload:` only.
                    send_frame(self.request, FrameType.ERROR,
                               f"bad-payload: {exc}".encode("utf-8"))
                    return
                send_frame(self.request, FrameType.OK,
                           status.encode("utf-8"))
            self._ingest_gated(service, work)
        elif ftype == FrameType.METRICS:
            service.tick()
            send_frame(self.request, FrameType.TEXT,
                       service.metrics_text().encode("utf-8"))
        elif ftype == FrameType.SNAPSHOT:
            send_frame(self.request, FrameType.PROFILE,
                       service.snapshot().to_bytes())
        elif ftype == FrameType.ALERTS:
            request = decode_json(payload) if payload else {}
            cursor = int(request.get("cursor", 0))
            service.tick()
            next_cursor, alerts = service.alerts_since(cursor)
            send_frame(self.request, FrameType.ALERT_LOG, encode_json(
                {"cursor": next_cursor,
                 "alerts": [a.to_dict() for a in alerts]}))
        elif ftype == FrameType.SQL:
            request = decode_json(payload) if payload else {}
            send_frame(self.request, FrameType.TABLE,
                       encode_json(service.sql(str(request.get("sql",
                                                               "")))))
        elif ftype == FrameType.STATE_PUSH:
            overhead_ns, profile = decode_state_push(payload)

            def state_work():
                try:
                    sprof = service.ingest_state(profile,
                                                 overhead_ns=overhead_ns)
                except ValueError as exc:
                    send_frame(self.request, FrameType.ERROR,
                               f"bad-payload: {exc}".encode("utf-8"))
                    return
                send_frame(self.request, FrameType.OK,
                           f"sampled {sprof.total_samples()} samples "
                           f"over {sprof.intervals} interval(s)"
                           .encode("utf-8"))
            self._ingest_gated(service, state_work)
        elif ftype == FrameType.STATE_SNAPSHOT:
            send_frame(self.request, FrameType.STATE_PROFILE,
                       service.state_snapshot().to_bytes())
        else:
            send_frame(self.request, FrameType.ERROR,
                       f"unsupported frame type "
                       f"{FrameType.name(ftype)}".encode("utf-8"))


class ProfileServer(socketserver.ThreadingTCPServer):
    """TCP front end; ``port=0`` picks a free port (see ``address``)."""

    allow_reuse_address = True
    daemon_threads = True

    def __init__(self, service: Optional[ProfileService] = None,
                 host: str = "127.0.0.1", port: int = 0):
        self.service = service if service is not None else ProfileService()
        self._conn_lock = threading.Lock()
        self._conn_idle = threading.Condition(self._conn_lock)
        self._conn_active = 0
        super().__init__((host, port), _Handler)

    @property
    def address(self) -> Tuple[str, int]:
        """The bound (host, port) — the port is real even if 0 was asked."""
        return self.socket.getsockname()[:2]

    def serve_in_thread(self) -> threading.Thread:
        """Start serving on a daemon thread (tests and embedded use)."""
        thread = threading.Thread(target=self.serve_forever,
                                  name="osprof-serve", daemon=True)
        thread.start()
        return thread

    # -- connection accounting & graceful drain ----------------------------

    def _connection_opened(self) -> None:
        with self._conn_lock:
            self._conn_active += 1

    def _connection_closed(self) -> None:
        with self._conn_lock:
            self._conn_active -= 1
            if self._conn_active <= 0:
                self._conn_idle.notify_all()

    @property
    def active_connections(self) -> int:
        with self._conn_lock:
            return self._conn_active

    def drain(self, timeout: float = 5.0) -> bool:
        """Graceful shutdown: stop accepting, wait for in-flight peers.

        Returns True if every connection finished inside *timeout*.
        Handlers already parked on an idle read keep their sockets until
        their read timeout expires, so the timeout here caps how long a
        lingering ``watch`` client can hold shutdown hostage; leftovers
        are abandoned to process exit (they are daemon threads).
        """
        self.shutdown()
        deadline = time.monotonic() + max(timeout, 0.0)
        with self._conn_lock:
            while self._conn_active > 0:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    return False
                self._conn_idle.wait(remaining)
        return True

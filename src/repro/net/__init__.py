"""Network substrate: TCP with delayed ACKs, SMB/CIFS, packet sniffer."""

from .cifs_client import FLAVOR_LINUX, FLAVOR_WINDOWS, CifsClient
from .cifs_server import CifsServer
from .mount import CifsMount, build_cifs_mount, build_nfs_mount
from .nfs import ATTR_CACHE_TTL, NFS_MAX_READ, NfsClient, NfsServer
from .smb import (ENTRY_WIRE_SIZE, FIND_BATCH, DirEntryInfo,
                  FindFirstRequest, FindNextRequest, FindReply, ReadReply,
                  ReadRequest)
from .sniffer import CapturedPacket, Sniffer, render_timeline
from .tcp import (DELAYED_ACK_TIMEOUT, MAX_SEGMENT, Packet, TcpConnection,
                  TcpEndpoint)

__all__ = [
    "FLAVOR_LINUX", "FLAVOR_WINDOWS", "CifsClient", "CifsServer",
    "CifsMount", "build_cifs_mount", "build_nfs_mount",
    "ATTR_CACHE_TTL", "NFS_MAX_READ", "NfsClient", "NfsServer",
    "ENTRY_WIRE_SIZE", "FIND_BATCH", "DirEntryInfo", "FindFirstRequest",
    "FindNextRequest", "FindReply", "ReadReply", "ReadRequest",
    "CapturedPacket", "Sniffer", "render_timeline",
    "DELAYED_ACK_TIMEOUT", "MAX_SEGMENT", "Packet", "TcpConnection",
    "TcpEndpoint",
]

"""CIFS/SMB client file systems (Section 6.4, Figure 10).

Two client behaviours, matching the paper's comparison:

* **windows** — standard delayed ACKs.  During a FIND transaction the
  client has nothing to send while the server's reply streams in, so
  the ACK for a lone trailing segment waits 200 ms — and the server
  won't continue without it.  ``FIND_FIRST``/``FIND_NEXT`` latencies
  collect in buckets 26-30.
* **linux** — the smbfs client issues its next request (carrying the
  ACK) immediately; we model it as an immediately-ACKing endpoint, so
  those peaks vanish.

The client is a :class:`~repro.vfs.vfs.FileSystem`: ``readdir`` maps to
FIND transactions with client-side entry buffering (buffered calls are
the local peaks of Figure 10), ``read`` maps to READ transactions
through the client page cache.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

from ..sim.process import Condition, CpuBurst, ProcBody, Process, WaitCondition
from ..sim.scheduler import Kernel
from ..vfs.file import File
from ..vfs.inode import InodeTable
from ..vfs.vfs import FileSystem
from .smb import (FindFirstRequest, FindNextRequest, FindReply, ReadReply,
                  ReadRequest)
from .tcp import TcpEndpoint

__all__ = ["CifsClient", "FLAVOR_WINDOWS", "FLAVOR_LINUX"]

FLAVOR_WINDOWS = "windows"
FLAVOR_LINUX = "linux"

#: Client-side marshalling cost per SMB transaction (cycles).
MARSHAL_COST = 4_000.0

#: Serving one readdir batch from the client's entry buffer.
BUFFERED_DIR_COST = 2_000.0

#: Client page-cache copy cost for a cached read.
CACHED_READ_COST = 1_800.0

#: readdir past end of listing.
EOF_COST = 100.0

#: SMB request class -> network-level probe operation name.
_SMB_OPS = {
    "FindFirstRequest": "smb_find_first",
    "FindNextRequest": "smb_find_next",
    "ReadRequest": "smb_read",
}


class _Listing:
    """Client-side state of one directory enumeration (per open file)."""

    __slots__ = ("entries", "cookie", "exhausted")

    def __init__(self):
        self.entries: List[Any] = []
        self.cookie: Optional[int] = None
        self.exhausted = False


class CifsClient(FileSystem):
    """A network file system backed by a :class:`CifsServer`."""

    name = "cifs"

    def __init__(self, kernel: Kernel, endpoint: TcpEndpoint,
                 inodes: InodeTable, flavor: str = FLAVOR_WINDOWS,
                 readdir_chunk: int = 16,
                 probe=None):
        super().__init__()
        if flavor not in (FLAVOR_WINDOWS, FLAVOR_LINUX):
            raise ValueError(f"unknown client flavor {flavor!r}")
        self.kernel = kernel
        self.endpoint = endpoint
        self.inodes = inodes
        self.flavor = flavor
        self.readdir_chunk = readdir_chunk
        endpoint.on_receive = self._on_packet
        if flavor == FLAVOR_LINUX:
            # smbfs always has a request to piggyback an ACK onto.
            endpoint.ack_immediately = True
        self._next_mid = 1
        self._pending: Dict[int, Dict[str, Any]] = {}
        self.transactions = 0
        #: Network-level ProbePoint measuring each SMB transaction
        #: send->reply under ``smb_<request>`` — the layer whose far
        #: peaks expose the delayed-ACK pathology directly.
        self.probe_point = probe

    def attach_probe(self, probe) -> None:
        """Wire the network-level probe (see ``net.mount``)."""
        self.probe_point = probe

    # -- transport ----------------------------------------------------------

    def _on_packet(self, packet) -> None:
        reply = packet.payload
        if reply is None or not isinstance(reply, (FindReply, ReadReply)):
            return
        pending = self._pending.pop(reply.mid, None)
        if pending is None:
            return
        self.kernel.fire_condition(pending["condition"], reply,
                                   wake_all=True)

    def _transact(self, proc: Process, request) -> ProcBody:
        """Send one request and sleep until its reply is assembled."""
        yield CpuBurst(self.kernel.rng.jitter(MARSHAL_COST, sigma=0.3))
        condition = Condition(f"smb:mid{request.mid}")
        self._pending[request.mid] = {"condition": condition}
        start = self.kernel.now
        self.endpoint.send(request.wire_size(),
                           type(request).__name__ + " request (SMB)",
                           request)
        reply = yield WaitCondition(condition)
        self.transactions += 1
        probe = self.probe_point
        if probe is not None and probe.active:
            name = type(request).__name__
            probe.record(_SMB_OPS.get(name, "smb_" + name.lower()),
                         self.kernel.now - start, start=start,
                         context=proc.request_context,
                         cpu=proc.cpu if proc.cpu is not None else 0)
        return reply

    def _mid(self) -> int:
        mid = self._next_mid
        self._next_mid += 1
        return mid

    # -- FIND operations (instrumented separately, as in Figure 10) ------------

    def _find_first(self, proc: Process, directory_ino: int) -> ProcBody:
        request = FindFirstRequest(mid=self._mid(),
                                   directory_ino=directory_ino)
        reply = yield from self._transact(proc, request)
        return reply

    def _find_next(self, proc: Process, cookie: int) -> ProcBody:
        request = FindNextRequest(mid=self._mid(), cookie=cookie)
        reply = yield from self._transact(proc, request)
        return reply

    def _buffered_batch(self, proc: Process) -> ProcBody:
        """Serve a readdir batch from the client's entry buffer."""
        yield CpuBurst(self.kernel.rng.jitter(BUFFERED_DIR_COST,
                                              sigma=0.5))
        return None

    # -- FileSystem interface -----------------------------------------------------

    def readdir(self, proc: Process, file: File) -> ProcBody:
        """Batch of entries from the listing buffer; FIND when it drains."""
        assert self.vfs is not None, "file system not mounted"
        listing = file.fs_private
        if listing is None:
            listing = _Listing()
            file.fs_private = listing
        if file.pos >= len(listing.entries):
            if listing.exhausted:
                yield CpuBurst(self.kernel.rng.jitter(EOF_COST,
                                                      sigma=0.25))
                return []
            if listing.cookie is None and not listing.entries:
                reply = yield from self.vfs.instrument(
                    proc, "FIND_FIRST",
                    self._find_first(proc, file.inode.ino))
            else:
                reply = yield from self.vfs.instrument(
                    proc, "FIND_NEXT",
                    self._find_next(proc, listing.cookie))
            listing.entries.extend(reply.entries)
            listing.cookie = reply.cookie
            listing.exhausted = reply.end_of_search
            if not reply.entries:
                return []
        else:
            # Served from the client's buffered entries: still a
            # FIND_NEXT IRP at the filter-driver level, but local and
            # fast — Figure 10's left FIND_NEXT peaks.
            yield from self.vfs.instrument(
                proc, "FIND_NEXT", self._buffered_batch(proc))
        batch = listing.entries[file.pos:file.pos + self.readdir_chunk]
        file.pos += len(batch)
        return batch

    def file_read(self, proc: Process, file: File, size: int) -> ProcBody:
        """Read through the client page cache; misses go to the server."""
        assert self.vfs is not None, "file system not mounted"
        inode = file.inode
        if size < 0:
            raise ValueError("size must be non-negative")
        if size == 0 or file.pos >= inode.size:
            yield CpuBurst(self.kernel.rng.jitter(EOF_COST, sigma=0.25))
            return 0
        size = min(size, inode.size - file.pos)
        cache = self.vfs.pagecache
        remaining = size
        while remaining > 0:
            page_index = file.pos // 4096
            in_page = min(remaining, 4096 - file.pos % 4096)
            page = cache.lookup(inode.ino, page_index)
            if page is None or not page.resident:
                request = ReadRequest(mid=self._mid(), ino=inode.ino,
                                      offset=page_index * 4096,
                                      length=4096)
                yield from self._transact(proc, request)
                cache.install_resident(inode.ino, page_index)
            yield CpuBurst(self.kernel.rng.jitter(CACHED_READ_COST,
                                                  sigma=0.3))
            file.pos += in_page
            remaining -= in_page
        return size

    def llseek(self, proc: Process, file: File, offset: int,
               whence: int) -> ProcBody:
        """Purely client-local: Windows leaves position consistency to
        applications (Section 6.1 found no CIFS lock contention)."""
        yield CpuBurst(self.kernel.rng.jitter(120.0, sigma=0.25))
        from ..vfs.file import SEEK_CUR, SEEK_END, SEEK_SET
        if whence == SEEK_SET:
            file.pos = offset
        elif whence == SEEK_CUR:
            file.pos += offset
        elif whence == SEEK_END:
            file.pos = file.inode.size + offset
        else:
            raise ValueError(f"bad whence {whence}")
        return file.pos

"""Assembling a CIFS client/server pair (the Section 6.4 testbed).

"We connected two identical machines ... with a 100Mbps Ethernet link
... The server ran Windows with an NTFS drive shared over CIFS."

:func:`build_cifs_mount` builds the whole testbed: a server-side file
tree, a Windows-like CIFS server, a TCP connection with a sniffer
attached, and a client :class:`~repro.system.System` whose mounted file
system is a :class:`~repro.net.cifs_client.CifsClient` of the requested
flavor.  The client system's inode table is shared with the server so
workloads can resolve the entries FIND transactions return.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..core.pipeline import wire_probe
from ..core.profile import Layer
from ..core.profiler import Profiler
from ..system import System
from ..vfs.inode import Inode
from ..workloads.sourcetree import TreeStats, build_source_tree
from .cifs_client import FLAVOR_WINDOWS, CifsClient
from .cifs_server import CifsServer
from .nfs import NfsClient, NfsServer
from .sniffer import Sniffer
from .tcp import TcpConnection, TcpEndpoint

__all__ = ["CifsMount", "build_cifs_mount"]


@dataclass
class CifsMount:
    """Everything the CIFS experiments need, in one place."""

    client: System
    server: CifsServer
    connection: TcpConnection
    sniffer: Sniffer
    root: Inode
    tree: TreeStats
    #: Network-level profiler fed by the client's ``rpc_*``/``smb_*``
    #: probe; None when the mount is built uninstrumented.
    net_profiler: Optional[Profiler] = None

    def net_profiles(self):
        """The network-level ProfileSet (empty if uninstrumented)."""
        if self.net_profiler is None:
            raise ValueError("mount was built with instrumentation off")
        return self.net_profiler.profile_set()


def _wire_net_probe(client: System, instrumentation: str):
    """A NETWORK-layer probe on the client's machine-wide pipeline."""
    if instrumentation == "off":
        return None, None
    kernel = client.kernel
    profiler = Profiler(name="net", layer=Layer.NETWORK,
                        clock=lambda: kernel.engine.now)
    probe = wire_probe(client.pipeline, Layer.NETWORK,
                       profiler=profiler, name="net")
    client.procfs.register("net", profiler)
    return probe, profiler


def build_cifs_mount(scale: float = 0.02,
                     flavor: str = FLAVOR_WINDOWS,
                     delayed_ack: bool = True,
                     seed: int = 2006,
                     tree_seed: int = 42,
                     instrumentation: str = "full") -> CifsMount:
    """Build client + server + link + shared tree.

    ``delayed_ack=False`` models the paper's registry change that turns
    off delayed ACKs on the Windows client (their ~20% elapsed-time
    approximation of the fix).  For the Linux flavor the endpoint ACKs
    immediately regardless.
    """
    # The server's tree lives in a scratch System (its disk/scheduler
    # are unused; the server is event-driven with modelled service
    # times), built first so the client can share the inode table.
    server_host = System.build(fs_type="ext2", seed=seed + 1,
                               with_timer=False, instrumentation="off")
    root, stats = build_source_tree(server_host, scale=scale,
                                    seed=tree_seed)

    client = System.build(fs_type="ext2", seed=seed, with_timer=False,
                          instrumentation=instrumentation)
    # Replace the default ext2 with a CIFS mount on the same kernel.
    sniffer = Sniffer()
    client_endpoint = TcpEndpoint("client", client.kernel,
                                  ack_immediately=not delayed_ack)
    server_endpoint = TcpEndpoint("server", client.kernel,
                                  ack_immediately=True)
    connection = TcpConnection(client.kernel, client_endpoint,
                               server_endpoint, sniffer=sniffer)
    net_probe, net_profiler = _wire_net_probe(client, instrumentation)
    cifs = CifsClient(client.kernel, client_endpoint,
                      server_host.inodes, flavor=flavor,
                      probe=net_probe)
    client.fs = cifs
    client.vfs.fs = cifs
    cifs.bind(client.vfs)
    server = CifsServer(client.kernel, server_host.inodes,
                        server_endpoint)
    # Workloads resolve entry inos through the client system.
    client.inodes = server_host.inodes
    return CifsMount(client=client, server=server, connection=connection,
                     sniffer=sniffer, root=root, tree=stats,
                     net_profiler=net_profiler)


def build_nfs_mount(scale: float = 0.02,
                    delayed_ack: bool = True,
                    seed: int = 2006,
                    tree_seed: int = 42,
                    instrumentation: str = "full") -> CifsMount:
    """Build the same testbed with an NFS mount instead of CIFS.

    Returns the same :class:`CifsMount` record (the fields are
    protocol-agnostic).  The interesting comparison: even with
    ``delayed_ack=True`` on the client, NFS shows none of Figure 11's
    stalls, because the server streams its reply without waiting for
    acknowledgements.
    """
    server_host = System.build(fs_type="ext2", seed=seed + 1,
                               with_timer=False, instrumentation="off")
    root, stats = build_source_tree(server_host, scale=scale,
                                    seed=tree_seed)
    client = System.build(fs_type="ext2", seed=seed, with_timer=False,
                          instrumentation=instrumentation)
    sniffer = Sniffer()
    client_endpoint = TcpEndpoint("client", client.kernel,
                                  ack_immediately=not delayed_ack)
    server_endpoint = TcpEndpoint("server", client.kernel,
                                  ack_immediately=True)
    connection = TcpConnection(client.kernel, client_endpoint,
                               server_endpoint, sniffer=sniffer)
    net_probe, net_profiler = _wire_net_probe(client, instrumentation)
    nfs = NfsClient(client.kernel, client_endpoint,
                    server_host.inodes, probe=net_probe)
    client.fs = nfs
    client.vfs.fs = nfs
    nfs.bind(client.vfs)
    server = NfsServer(client.kernel, server_host.inodes,
                       server_endpoint)
    client.inodes = server_host.inodes
    return CifsMount(client=client, server=server, connection=connection,
                     sniffer=sniffer, root=root, tree=stats,
                     net_profiler=net_profiler)

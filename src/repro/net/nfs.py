"""An NFSv3-like network file system (Figure 2's NFS/NFSD path).

The paper's layered-profiling infrastructure (Figure 2) shows requests
flowing ``read() -> VFS -> NFS -> NIC driver`` on the client and
``NFSD -> VFS -> Ext2`` on the server.  This module provides that stack
over the same TCP substrate as CIFS — and the contrast matters: the
NFS server *streams* its reply segments without waiting for
acknowledgements, so the delayed-ACK pathology of Section 6.4 cannot
occur, even against a delayed-ACK client.  Profiling both mounts under
the same workload shows CIFS's far-right FIND peaks with no NFS
counterpart.

Protocol subset: LOOKUP, GETATTR, READ (8 KB max per call), READDIR
(cookie-based batches).  The client keeps an attribute cache (3 s TTL,
like the Linux client's ac{min,max}) and caches data pages in the
shared page cache.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from ..sim.engine import seconds
from ..sim.process import Condition, CpuBurst, ProcBody, Process, WaitCondition
from ..sim.rng import SimRandom
from ..sim.scheduler import Kernel
from ..vfs.file import File
from ..vfs.inode import InodeTable
from ..vfs.vfs import FileSystem
from .smb import DirEntryInfo
from .tcp import MAX_SEGMENT, TcpEndpoint

__all__ = ["NfsClient", "NfsServer", "NFS_MAX_READ",
           "ATTR_CACHE_TTL"]

#: Maximum bytes per READ call (NFSv2's 8 KB; v3 negotiates higher).
NFS_MAX_READ = 8192

#: Client attribute-cache lifetime (Linux acmin..acmax is 3-60 s).
ATTR_CACHE_TTL = seconds(3.0)

#: Entries per READDIR reply.
READDIR_BATCH = 64

_ENTRY_WIRE = 96
_REQUEST_WIRE = 140


@dataclass
class _NfsRequest:
    """One RPC: procedure, arguments, and its transaction id."""

    xid: int
    procedure: str  # LOOKUP | GETATTR | READ | READDIR
    args: Tuple

    def wire_size(self) -> int:
        return _REQUEST_WIRE


@dataclass
class _NfsReply:
    """The assembled RPC result."""

    xid: int
    procedure: str
    result: Any = None

    def wire_size(self) -> int:
        if self.procedure == "READ":
            return 120 + self.result  # result = byte count
        if self.procedure == "READDIR":
            entries, _cookie = self.result
            return 120 + _ENTRY_WIRE * len(entries)
        return 160  # LOOKUP/GETATTR: a handle + fattr


class NfsServer:
    """Stateless NFSD: serves a shared inode tree, streams replies."""

    COLD_SERVICE = seconds(5e-3)   # disk on the server side
    WARM_SERVICE = seconds(80e-6)  # server page cache

    def __init__(self, kernel: Kernel, inodes: InodeTable,
                 endpoint: TcpEndpoint,
                 rng: Optional[SimRandom] = None):
        self.kernel = kernel
        self.inodes = inodes
        self.endpoint = endpoint
        self.rng = rng if rng is not None else kernel.rng.fork("nfsd")
        endpoint.on_receive = self._on_packet
        self._warm: set = set()
        self.requests_served = 0

    def _service_time(self, key) -> float:
        if key in self._warm:
            return self.WARM_SERVICE
        self._warm.add(key)
        return self.COLD_SERVICE

    def _on_packet(self, packet) -> None:
        request = packet.payload
        if not isinstance(request, _NfsRequest):
            return
        self.requests_served += 1
        if request.procedure == "LOOKUP":
            dir_ino, name = request.args
            directory = self.inodes.get(dir_ino)
            entry = directory.lookup_entry(name)
            result = None
            if entry is not None:
                child = self.inodes.get(entry.ino)
                result = DirEntryInfo(name=name, ino=child.ino,
                                      is_dir=child.is_dir,
                                      size=child.size)
            service = self._service_time(("meta", dir_ino))
        elif request.procedure == "GETATTR":
            (ino,) = request.args
            inode = self.inodes.get(ino)
            result = DirEntryInfo(name="", ino=ino,
                                  is_dir=inode.is_dir, size=inode.size)
            service = self._service_time(("meta", ino))
        elif request.procedure == "READ":
            ino, offset, length = request.args
            inode = self.inodes.get(ino)
            available = max(0, inode.size - offset)
            result = min(length, available, NFS_MAX_READ)
            service = self._service_time(("data", ino,
                                          offset // NFS_MAX_READ))
        elif request.procedure == "READDIR":
            ino, cookie = request.args
            directory = self.inodes.get(ino)
            batch = directory.entries[cookie:cookie + READDIR_BATCH]
            infos = []
            for entry in batch:
                child = self.inodes.get(entry.ino)
                infos.append(DirEntryInfo(name=entry.name,
                                          ino=child.ino,
                                          is_dir=child.is_dir,
                                          size=child.size))
            next_cookie = cookie + len(batch)
            if next_cookie >= len(directory.entries):
                next_cookie = -1  # end of directory
            result = (infos, next_cookie)
            service = self._service_time(("meta", ino))
        else:
            raise TypeError(f"unknown NFS procedure "
                            f"{request.procedure!r}")
        reply = _NfsReply(xid=request.xid,
                          procedure=request.procedure, result=result)
        delay = self.rng.jitter(service, sigma=0.2)
        self.kernel.engine.schedule(
            delay, lambda r=reply: self._send_reply(r))

    def _send_reply(self, reply: _NfsReply) -> None:
        """Stream all segments immediately: no ACK synchronization.

        This is the structural difference from the CIFS server — and
        why NFS has no Figure 11 pathology.
        """
        remaining = reply.wire_size()
        while remaining > 0:
            size = min(remaining, MAX_SEGMENT)
            remaining -= size
            payload = reply if remaining == 0 else None
            self.endpoint.send(size, f"NFS {reply.procedure} reply",
                               payload)


class NfsClient(FileSystem):
    """The client-side NFS mount."""

    name = "nfs"

    MARSHAL_COST = 3_500.0
    CACHED_READ_COST = 1_700.0
    ATTR_HIT_COST = 600.0
    EOF_COST = 100.0

    def __init__(self, kernel: Kernel, endpoint: TcpEndpoint,
                 inodes: InodeTable,
                 attr_ttl: float = ATTR_CACHE_TTL,
                 readdir_chunk: int = 16,
                 probe=None):
        super().__init__()
        self.kernel = kernel
        self.endpoint = endpoint
        self.inodes = inodes
        self.attr_ttl = attr_ttl
        self.readdir_chunk = readdir_chunk
        endpoint.on_receive = self._on_packet
        self._next_xid = 1
        self._pending: Dict[int, Condition] = {}
        self._attr_cache: Dict[int, Tuple[float, DirEntryInfo]] = {}
        self.rpcs_sent = 0
        self.attr_hits = 0
        #: Network-level ProbePoint measuring each RPC send->reply under
        #: ``rpc_<procedure>`` — Figure 2's NIC-adjacent layer.
        self.probe_point = probe

    def attach_probe(self, probe) -> None:
        """Wire the network-level probe (see ``net.mount``)."""
        self.probe_point = probe

    # -- RPC plumbing --------------------------------------------------------

    def _on_packet(self, packet) -> None:
        reply = packet.payload
        if not isinstance(reply, _NfsReply):
            return
        condition = self._pending.pop(reply.xid, None)
        if condition is not None:
            self.kernel.fire_condition(condition, reply, wake_all=True)

    def _call(self, proc: Process, procedure: str,
              *args) -> ProcBody:
        yield CpuBurst(self.kernel.rng.jitter(self.MARSHAL_COST,
                                              sigma=0.3))
        xid = self._next_xid
        self._next_xid += 1
        request = _NfsRequest(xid=xid, procedure=procedure, args=args)
        condition = Condition(f"nfs:xid{xid}")
        self._pending[xid] = condition
        start = self.kernel.now
        self.endpoint.send(request.wire_size(),
                           f"NFS {procedure} call", request)
        self.rpcs_sent += 1
        reply = yield WaitCondition(condition)
        probe = self.probe_point
        if probe is not None and probe.active:
            probe.record(f"rpc_{procedure.lower()}",
                         self.kernel.now - start, start=start,
                         context=proc.request_context,
                         cpu=proc.cpu if proc.cpu is not None else 0)
        return reply.result

    # -- attribute cache ---------------------------------------------------------

    def getattr(self, proc: Process, ino: int) -> ProcBody:
        """Attributes with a TTL cache, like the Linux client's."""
        cached = self._attr_cache.get(ino)
        if cached is not None and \
                self.kernel.now - cached[0] < self.attr_ttl:
            self.attr_hits += 1
            yield CpuBurst(self.kernel.rng.jitter(self.ATTR_HIT_COST,
                                                  sigma=0.3))
            return cached[1]
        attrs = yield from self._call(proc, "GETATTR", ino)
        self._attr_cache[ino] = (self.kernel.now, attrs)
        return attrs

    def lookup(self, proc: Process, dir_ino: int, name: str) -> ProcBody:
        """LOOKUP one component; fills the attribute cache."""
        info = yield from self._call(proc, "LOOKUP", dir_ino, name)
        if info is not None:
            self._attr_cache[info.ino] = (self.kernel.now, info)
        return info

    # -- FileSystem interface --------------------------------------------------------

    def readdir(self, proc: Process, file: File) -> ProcBody:
        assert self.vfs is not None, "file system not mounted"
        if file.fs_private is None:
            file.fs_private = ([], 0)
        entries, cookie = file.fs_private
        if file.pos >= len(entries):
            if cookie == -1:
                yield CpuBurst(self.kernel.rng.jitter(self.EOF_COST,
                                                      sigma=0.25))
                return []
            batch, next_cookie = yield from self.vfs.instrument(
                proc, "nfs_readdir",
                self._call(proc, "READDIR", file.inode.ino, cookie))
            entries.extend(batch)
            file.fs_private = (entries, next_cookie)
            if not batch:
                return []
        else:
            yield CpuBurst(self.kernel.rng.jitter(1_800.0, sigma=0.4))
        chunk = entries[file.pos:file.pos + self.readdir_chunk]
        file.pos += len(chunk)
        return chunk

    def file_read(self, proc: Process, file: File, size: int) -> ProcBody:
        assert self.vfs is not None, "file system not mounted"
        inode = file.inode
        if size < 0:
            raise ValueError("size must be non-negative")
        if size == 0 or file.pos >= inode.size:
            yield CpuBurst(self.kernel.rng.jitter(self.EOF_COST,
                                                  sigma=0.25))
            return 0
        size = min(size, inode.size - file.pos)
        cache = self.vfs.pagecache
        remaining = size
        while remaining > 0:
            page_index = file.pos // 4096
            in_page = min(remaining, 4096 - file.pos % 4096)
            page = cache.lookup(inode.ino, page_index)
            if page is None or not page.resident:
                yield from self.vfs.instrument(
                    proc, "nfs_read",
                    self._call(proc, "READ", inode.ino,
                               page_index * 4096, 4096))
                cache.install_resident(inode.ino, page_index)
            yield CpuBurst(self.kernel.rng.jitter(
                self.CACHED_READ_COST, sigma=0.3))
            file.pos += in_page
            remaining -= in_page
        return size

    def llseek(self, proc: Process, file: File, offset: int,
               whence: int) -> ProcBody:
        """Client-local, like every network FS position update."""
        from ..vfs.file import SEEK_CUR, SEEK_END, SEEK_SET

        yield CpuBurst(self.kernel.rng.jitter(130.0, sigma=0.25))
        if whence == SEEK_SET:
            file.pos = offset
        elif whence == SEEK_CUR:
            file.pos += offset
        elif whence == SEEK_END:
            file.pos = file.inode.size + offset
        else:
            raise ValueError(f"bad whence {whence}")
        return file.pos

"""Packet capture and Figure 11-style timelines.

"We ran a packet sniffer on the network to investigate this further."
:class:`Sniffer` records every delivered segment; :func:`render_timeline`
prints the two-column client/server exchange with millisecond
timestamps, the form of Figure 11.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional

from ..sim.engine import CYCLES_PER_SECOND
from .tcp import Packet

__all__ = ["CapturedPacket", "Sniffer", "render_timeline"]


@dataclass
class CapturedPacket:
    """One captured segment with both wire timestamps (cycles)."""

    seq: int
    time: float          # delivery time
    sent_at: float
    src: str
    dst: str
    size: int
    describe: str
    is_data: bool

    def time_ms(self, epoch: float = 0.0) -> float:
        return (self.time - epoch) / CYCLES_PER_SECOND * 1e3


class Sniffer:
    """Accumulates captured packets; attach via TcpConnection(sniffer=...)."""

    def __init__(self):
        self.packets: List[CapturedPacket] = []

    def capture(self, packet: Packet) -> None:
        self.packets.append(CapturedPacket(
            seq=packet.seq, time=packet.delivered_at,
            sent_at=packet.sent_at, src=packet.src, dst=packet.dst,
            size=packet.size, describe=packet.describe,
            is_data=packet.is_data))

    def clear(self) -> None:
        self.packets.clear()

    def between(self, start: float, end: float) -> List[CapturedPacket]:
        return [p for p in self.packets if start <= p.time <= end]

    def stalls(self, threshold_seconds: float = 0.1) -> List[float]:
        """Inter-packet gaps longer than the threshold (seconds).

        The delayed-ACK pathology shows up as ~0.2 s gaps; a healthy
        exchange has none.
        """
        gaps = []
        ordered = sorted(self.packets, key=lambda p: p.time)
        for prev, cur in zip(ordered, ordered[1:]):
            gap = (cur.time - prev.time) / CYCLES_PER_SECOND
            if gap >= threshold_seconds:
                gaps.append(gap)
        return gaps


def render_timeline(sniffer: Sniffer, client: str, server: str,
                    limit: Optional[int] = None,
                    epoch: Optional[float] = None) -> str:
    """ASCII two-column packet timeline (Figure 11).

    Client-originated packets point right, server-originated left;
    timestamps in ms relative to the first packet (or ``epoch``).
    """
    packets = sorted(sniffer.packets, key=lambda p: p.time)
    if limit is not None:
        packets = packets[:limit]
    if not packets:
        return "(no packets captured)"
    zero = epoch if epoch is not None else packets[0].sent_at
    width = 46
    lines = [f"Time (ms)  {client:<10}{'':<{width - 20}}{server:>10}"]
    for p in packets:
        t = (p.time - zero) / CYCLES_PER_SECOND * 1e3
        label = f"{p.describe} [{p.size}B]"
        if p.src == client:
            arrow = label.center(width - 2, "-")
            line = f"{t:8.1f}   |{arrow}>|"
        else:
            arrow = label.center(width - 2, "-")
            line = f"{t:8.1f}   |<{arrow}|"
        lines.append(line)
    return "\n".join(lines)

"""A Windows-like CIFS server.

Event-driven (the paper profiles the *client*; the server only needs
realistic service times and the pathological send discipline):

* ``FIND_FIRST``/``FIND_NEXT`` list directories in batches, returning a
  continuation cookie;
* replies are split into MSS-sized TCP segments and sent in **bursts**:
  after each burst the server "does not continue to send data until it
  has received an ACK for everything until that point" — the
  unnecessary synchronous behaviour that interlocks with the client's
  delayed ACK (Figure 11);
* service times distinguish cold (disk) from warm (server cache)
  requests, NTFS-style.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

from ..sim.engine import seconds
from ..sim.rng import SimRandom
from ..sim.scheduler import Kernel
from ..vfs.inode import InodeTable
from .smb import (ENTRY_WIRE_SIZE, FIND_BATCH, DirEntryInfo, FindFirstRequest,
                  FindNextRequest, FindReply, ReadReply, ReadRequest)
from .tcp import MAX_SEGMENT, TcpEndpoint

__all__ = ["CifsServer"]

#: Server burst size in segments between ACK synchronization points.
#: Three matches Figure 11's reply + two continuations.
BURST_SEGMENTS = 3


class CifsServer:
    """Serves a directory tree over a TCP endpoint."""

    COLD_LISTING = seconds(15e-3)   # directory read from disk
    WARM_LISTING = seconds(1.2e-3)  # directory in server cache
    COLD_READ = seconds(4e-3)       # file page from disk
    WARM_READ = seconds(60e-6)      # file page from server cache

    def __init__(self, kernel: Kernel, inodes: InodeTable,
                 endpoint: TcpEndpoint,
                 rng: Optional[SimRandom] = None,
                 burst_segments: int = BURST_SEGMENTS,
                 find_batch: int = FIND_BATCH):
        if burst_segments < 1:
            raise ValueError("burst size must be at least one segment")
        self.kernel = kernel
        self.inodes = inodes
        self.endpoint = endpoint
        self.rng = rng if rng is not None else kernel.rng.fork("cifs-server")
        self.burst_segments = burst_segments
        self.find_batch = find_batch
        endpoint.on_receive = self._on_packet
        self._cookies: Dict[int, Tuple[int, int]] = {}  # cookie -> (ino, pos)
        self._next_cookie = 1
        self._warm_dirs: Set[int] = set()
        self._warm_pages: Set[Tuple[int, int]] = set()
        self.requests_served = 0
        self.bursts_sent = 0

    # -- request handling ------------------------------------------------------

    def _on_packet(self, packet) -> None:
        request = packet.payload
        if request is None:
            return  # bare continuation/ack
        if isinstance(request, FindFirstRequest):
            service = self._listing_service(request.directory_ino)
            reply = self._find_entries(request.mid, request.directory_ino, 0)
        elif isinstance(request, FindNextRequest):
            ino, pos = self._cookies.pop(request.cookie)
            service = self.WARM_LISTING  # continuation data already read
            reply = self._find_entries(request.mid, ino, pos)
        elif isinstance(request, ReadRequest):
            service = self._read_service(request.ino, request.offset)
            reply = ReadReply(mid=request.mid, ino=request.ino,
                              offset=request.offset,
                              length=request.length)
        else:
            raise TypeError(f"server got unknown request {request!r}")
        self.requests_served += 1
        delay = self.rng.jitter(service, sigma=0.2)
        self.kernel.engine.schedule(
            delay, lambda r=reply: self._send_reply(r))

    def _listing_service(self, ino: int) -> float:
        if ino in self._warm_dirs:
            return self.WARM_LISTING
        self._warm_dirs.add(ino)
        return self.COLD_LISTING

    def _read_service(self, ino: int, offset: int) -> float:
        key = (ino, offset // 4096)
        if key in self._warm_pages:
            return self.WARM_READ
        self._warm_pages.add(key)
        return self.COLD_READ

    def _find_entries(self, mid: int, ino: int, pos: int) -> FindReply:
        directory = self.inodes.get(ino)
        batch = directory.entries[pos:pos + self.find_batch]
        infos: List[DirEntryInfo] = []
        for entry in batch:
            child = self.inodes.get(entry.ino)
            infos.append(DirEntryInfo(name=entry.name, ino=child.ino,
                                      is_dir=child.is_dir,
                                      size=child.size))
        next_pos = pos + len(batch)
        exhausted = next_pos >= len(directory.entries)
        cookie = None
        if not exhausted:
            cookie = self._next_cookie
            self._next_cookie += 1
            self._cookies[cookie] = (ino, next_pos)
        return FindReply(mid=mid, entries=infos, cookie=cookie,
                         end_of_search=exhausted)

    # -- reply transmission -------------------------------------------------------

    def _segment_sizes(self, total: int) -> List[int]:
        sizes = []
        remaining = total
        while remaining > 0:
            sizes.append(min(remaining, MAX_SEGMENT))
            remaining -= MAX_SEGMENT
        return sizes or [40]

    def _send_reply(self, reply) -> None:
        """Send in bursts, stalling for a full ACK between bursts."""
        sizes = self._segment_sizes(reply.wire_size())
        kind = "FIND" if isinstance(reply, FindReply) else "READ"

        def describe(i: int) -> str:
            if i == 0:
                return f"{kind} reply (SMB)"
            if i % self.burst_segments == 0:
                return "transact continuation (SMB)"
            return f"reply continuation {i} (TCP)"

        def send_burst(start: int) -> None:
            end = min(start + self.burst_segments, len(sizes))
            for i in range(start, end):
                payload = reply if i == len(sizes) - 1 else None
                self.endpoint.send(sizes[i], describe(i), payload)
            self.bursts_sent += 1
            if end < len(sizes):
                self.endpoint.when_all_acked(
                    lambda s=end: send_burst(s))

        send_burst(0)

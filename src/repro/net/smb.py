"""SMB/CIFS message types.

Just enough of the protocol for the paper's Section 6.4 experiments:
``FIND_FIRST`` (pattern search returning names + metadata and a
continuation cookie), ``FIND_NEXT`` (continue from a cookie), and
``READ`` (fetch file data).  Replies larger than one TCP segment are
split into *continuation* segments; the Windows server additionally
sends large replies as multi-burst *transact continuations*, pausing for
a full ACK between bursts — the delayed-ACK interaction of Figure 11.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

__all__ = ["FindFirstRequest", "FindNextRequest", "ReadRequest",
           "DirEntryInfo", "FindReply", "ReadReply",
           "ENTRY_WIRE_SIZE", "REQUEST_SIZE", "FIND_BATCH"]

#: Wire size of one directory entry with metadata (name + attributes).
ENTRY_WIRE_SIZE = 110

#: Size of a request PDU.
REQUEST_SIZE = 120

#: Directory entries per FIND transaction (server-side batch limit).
FIND_BATCH = 96


@dataclass
class DirEntryInfo:
    """One returned entry: name, inode number, directory flag, size."""

    name: str
    ino: int
    is_dir: bool
    size: int


@dataclass
class FindFirstRequest:
    """Search a directory for names matching a pattern."""

    mid: int             # multiplex id: matches replies to requests
    directory_ino: int
    pattern: str = "*"

    def wire_size(self) -> int:
        return REQUEST_SIZE + len(self.pattern)


@dataclass
class FindNextRequest:
    """Continue a listing from a server-side cookie."""

    mid: int
    cookie: int

    def wire_size(self) -> int:
        return REQUEST_SIZE


@dataclass
class ReadRequest:
    """Read *length* bytes of a file at *offset*."""

    mid: int
    ino: int
    offset: int
    length: int

    def wire_size(self) -> int:
        return REQUEST_SIZE


@dataclass
class FindReply:
    """The assembled result of a FIND transaction."""

    mid: int
    entries: List[DirEntryInfo] = field(default_factory=list)
    cookie: Optional[int] = None  # None: listing exhausted
    end_of_search: bool = True

    def wire_size(self) -> int:
        return 80 + ENTRY_WIRE_SIZE * len(self.entries)


@dataclass
class ReadReply:
    """The result of a READ transaction."""

    mid: int
    ino: int
    offset: int
    length: int

    def wire_size(self) -> int:
        return 60 + self.length

"""A TCP model with delayed acknowledgements (Section 6.4, Figure 11).

Only the mechanisms behind the paper's CIFS pathology are modelled:

* serialization (100 Mbps link) + propagation (~56 us one way, the
  paper's 112 us RTT),
* cumulative ACKs with the standard **delayed-ACK** policy: an ACK for a
  lone data segment is withheld up to 200 ms in the hope of piggybacking
  on outgoing data; a second unacknowledged segment forces an immediate
  ACK,
* piggybacking: any outgoing data segment carries the pending ACK, and
* sender-side "all data acknowledged" notifications — what the Windows
  CIFS server waits on before continuing a transaction.

No reordering or congestion control: the paper's testbed was an idle
switched LAN and the pathology is purely timer-driven.  Optional *loss
injection* (``TcpConnection(loss_rate=...)``) drops data segments and
retransmits them after an RTO, for failure-injection experiments.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional

from ..sim.engine import seconds
from ..sim.process import Condition
from ..sim.rng import SimRandom
from ..sim.scheduler import Kernel

__all__ = ["Packet", "TcpEndpoint", "TcpConnection", "DELAYED_ACK_TIMEOUT",
           "MAX_SEGMENT", "DEFAULT_RTO"]

#: Standard delayed-ACK timer ("Most implementations wait 200ms").
DELAYED_ACK_TIMEOUT = seconds(200e-3)

#: Ethernet MSS.
MAX_SEGMENT = 1460

#: One-way propagation delay (half the paper's 112 us RTT).
DEFAULT_LATENCY = seconds(56e-6)

#: 100 Mbps in cycles per byte at 1.7 GHz: 8 bits / 1e8 bps * 1.7e9.
DEFAULT_CYCLES_PER_BYTE = 8.0 / 1e8 * 1.7e9

#: Retransmission timeout for lost segments (~RFC minimum RTO scale).
DEFAULT_RTO = seconds(0.3)


class Packet:
    """One TCP segment (data and/or ACK)."""

    __slots__ = ("src", "dst", "size", "describe", "payload", "is_data",
                 "ack_through", "sent_at", "delivered_at", "seq")

    def __init__(self, src: str, dst: str, size: int, describe: str,
                 payload: Any = None, is_data: bool = True,
                 ack_through: int = 0):
        self.src = src
        self.dst = dst
        self.size = size
        self.describe = describe
        self.payload = payload
        self.is_data = is_data
        self.ack_through = ack_through
        self.sent_at = 0.0
        self.delivered_at = 0.0
        self.seq = 0

    @property
    def is_pure_ack(self) -> bool:
        return not self.is_data

    def __repr__(self) -> str:
        kind = "data" if self.is_data else "ack"
        return (f"<Packet {self.src}->{self.dst} {kind} "
                f"{self.describe!r} {self.size}B>")


class TcpEndpoint:
    """One side of a connection: receive path, ACK policy, send path."""

    def __init__(self, name: str, kernel: Kernel,
                 ack_immediately: bool = False):
        self.name = name
        self.kernel = kernel
        #: Disabling delayed ACKs (the registry change the paper tried)
        #: or a Linux-style stack that always has data to send.
        self.ack_immediately = ack_immediately
        self.connection: Optional["TcpConnection"] = None
        self.on_receive: Optional[Callable[[Packet], None]] = None
        # Receive-side ACK state.
        self.segments_received = 0
        self.acked_through = 0
        self._delayed_ack_event = None
        # Send-side state.
        self.segments_sent = 0
        self.peer_acked_through = 0
        self._acked_waiters: List[Callable[[], None]] = []
        # Stats.
        self.delayed_acks_sent = 0
        self.immediate_acks_sent = 0
        self.piggybacked_acks = 0

    # -- sending -----------------------------------------------------------

    def send(self, size: int, describe: str, payload: Any = None) -> Packet:
        """Transmit a data segment, piggybacking any pending ACK."""
        assert self.connection is not None, "endpoint not connected"
        packet = Packet(self.name, self._peer().name, size, describe,
                        payload=payload, is_data=True,
                        ack_through=self.segments_received)
        if self._cancel_delayed_ack():
            self.piggybacked_acks += 1
        self.acked_through = self.segments_received
        self.segments_sent += 1
        self.connection.transmit(self, packet)
        return packet

    def when_all_acked(self, fn: Callable[[], None]) -> None:
        """Call *fn* once every sent segment has been acknowledged."""
        if self.peer_acked_through >= self.segments_sent:
            fn()
        else:
            self._acked_waiters.append(fn)

    # -- receiving ------------------------------------------------------------

    def _peer(self) -> "TcpEndpoint":
        assert self.connection is not None
        return self.connection.other(self)

    def deliver(self, packet: Packet) -> None:
        """Called by the connection when a segment arrives."""
        if packet.ack_through > self.peer_acked_through:
            self.peer_acked_through = packet.ack_through
            if self.peer_acked_through >= self.segments_sent:
                waiters, self._acked_waiters = self._acked_waiters, []
                for fn in waiters:
                    fn()
        if packet.is_data:
            self.segments_received += 1
            self._consider_ack()
            if self.on_receive is not None:
                self.on_receive(packet)

    def _consider_ack(self) -> None:
        outstanding = self.segments_received - self.acked_through
        if outstanding <= 0:
            return
        if self.ack_immediately or outstanding >= 2:
            self._send_ack(delayed=False)
            return
        if self._delayed_ack_event is None:
            self._delayed_ack_event = self.kernel.engine.schedule(
                DELAYED_ACK_TIMEOUT, self._delayed_ack_fired)

    def _delayed_ack_fired(self) -> None:
        self._delayed_ack_event = None
        if self.segments_received > self.acked_through:
            self._send_ack(delayed=True)

    def _send_ack(self, delayed: bool) -> None:
        assert self.connection is not None
        self._cancel_delayed_ack()
        self.acked_through = self.segments_received
        if delayed:
            self.delayed_acks_sent += 1
        else:
            self.immediate_acks_sent += 1
        packet = Packet(self.name, self._peer().name, 40,
                        "ACK" + (" (delayed)" if delayed else ""),
                        is_data=False, ack_through=self.acked_through)
        self.connection.transmit(self, packet)

    def _cancel_delayed_ack(self) -> bool:
        if self._delayed_ack_event is not None:
            self.kernel.engine.cancel(self._delayed_ack_event)
            self._delayed_ack_event = None
            return True
        return False


class TcpConnection:
    """A bidirectional link between two endpoints."""

    def __init__(self, kernel: Kernel, a: TcpEndpoint, b: TcpEndpoint,
                 latency: float = DEFAULT_LATENCY,
                 cycles_per_byte: float = DEFAULT_CYCLES_PER_BYTE,
                 sniffer=None,
                 loss_rate: float = 0.0,
                 rto: float = DEFAULT_RTO,
                 rng: Optional[SimRandom] = None):
        if a.name == b.name:
            raise ValueError("endpoints must have distinct names")
        if not 0.0 <= loss_rate < 1.0:
            raise ValueError("loss_rate must be in [0, 1)")
        self.kernel = kernel
        self.a = a
        self.b = b
        self.latency = latency
        self.cycles_per_byte = cycles_per_byte
        self.sniffer = sniffer
        #: Failure injection: each data segment is dropped with this
        #: probability and retransmitted after ``rto``.  The timer and
        #: resend are modelled jointly (the simulator knows the drop),
        #: which preserves exactly what OSprof observes: the latency.
        self.loss_rate = loss_rate
        self.rto = rto
        self.rng = rng if rng is not None else kernel.rng.fork("tcp")
        self.packets_lost = 0
        self.retransmissions = 0
        self.packets_transmitted = 0
        a.connection = self
        b.connection = self
        # Per-direction serialization: the NIC finishes one segment
        # before the next leaves (FIFO per sender).
        self._link_free_at: Dict[str, float] = {a.name: 0.0, b.name: 0.0}

    def other(self, endpoint: TcpEndpoint) -> TcpEndpoint:
        if endpoint is self.a:
            return self.b
        if endpoint is self.b:
            return self.a
        raise ValueError("endpoint not part of this connection")

    def transmit(self, sender: TcpEndpoint, packet: Packet) -> None:
        now = self.kernel.engine.now
        start = max(now, self._link_free_at[sender.name])
        serialization = packet.size * self.cycles_per_byte
        done_sending = start + serialization
        self._link_free_at[sender.name] = done_sending
        packet.sent_at = now
        self.packets_transmitted += 1
        packet.seq = self.packets_transmitted
        receiver = self.other(sender)

        if (self.loss_rate > 0 and packet.is_data
                and self.rng.chance(self.loss_rate)):
            # Dropped on the wire; the sender's RTO fires and the
            # segment is retransmitted (possibly lost again).
            self.packets_lost += 1

            def retransmit() -> None:
                self.retransmissions += 1
                self.transmit(sender, packet)

            self.kernel.engine.schedule(self.rto, retransmit)
            return

        arrival = done_sending + self.latency

        def arrive() -> None:
            packet.delivered_at = self.kernel.engine.now
            if self.sniffer is not None:
                self.sniffer.capture(packet)
            receiver.deliver(packet)

        self.kernel.engine.schedule_at(arrival, arrive)

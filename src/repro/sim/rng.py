"""Deterministic randomness for the simulator.

All stochastic behaviour in the simulated OS — execution-time jitter,
workload choices, disk geometry randomization — flows through one seeded
:class:`SimRandom`, so every experiment replays bit-identically.

Execution times use a log-normal jitter: real code-path latencies are
right-skewed (cache misses, TLB refills), and a log-normal around the
mean reproduces the slightly asymmetric peaks visible in the paper's
figures.
"""

from __future__ import annotations

import math
import random
from typing import List, Optional, Sequence, TypeVar

__all__ = ["SimRandom", "derive_seed"]

T = TypeVar("T")


def derive_seed(base_seed: int, salt: str) -> int:
    """Deterministic child seed for ``(base_seed, salt)``.

    This is the seed-derivation rule behind :meth:`SimRandom.fork`,
    exposed separately so components that ship seeds across process
    boundaries (the shard engine) can derive them without constructing
    a generator.  Stable across interpreters and hash randomization
    (zlib.crc32, not ``hash()``).
    """
    import zlib

    return zlib.crc32(f"{base_seed}:{salt}".encode()) & 0x7FFFFFFF


class SimRandom:
    """Seeded random source with simulation-flavoured helpers."""

    def __init__(self, seed: int = 2006):
        self._rng = random.Random(seed)
        self.seed = seed

    def fork(self, salt: str) -> "SimRandom":
        """A derived, independent stream (e.g. one per subsystem).

        Deterministic: the same (seed, salt) always yields the same
        stream regardless of draw order elsewhere — and regardless of
        the interpreter's hash randomization (zlib.crc32, not hash()).
        """
        return SimRandom(derive_seed(self.seed, salt))

    # -- core draws ----------------------------------------------------------

    def uniform(self, lo: float, hi: float) -> float:
        return self._rng.uniform(lo, hi)

    def randint(self, lo: int, hi: int) -> int:
        return self._rng.randint(lo, hi)

    def random(self) -> float:
        return self._rng.random()

    def choice(self, items: Sequence[T]) -> T:
        return self._rng.choice(items)

    def shuffle(self, items: List[T]) -> None:
        self._rng.shuffle(items)

    def sample(self, items: Sequence[T], k: int) -> List[T]:
        return self._rng.sample(items, k)

    def chance(self, probability: float) -> bool:
        """True with the given probability."""
        if not 0.0 <= probability <= 1.0:
            raise ValueError("probability must be within [0, 1]")
        return self._rng.random() < probability

    # -- latency-shaped draws ---------------------------------------------------

    def jitter(self, mean: float, sigma: float = 0.15) -> float:
        """Log-normal execution time with the given mean.

        ``sigma`` is the standard deviation of the underlying normal in
        log space; 0.15 keeps ~95% of draws within ±30% of the mean,
        which matches how tight the paper's CPU peaks are (about one
        bucket wide).
        """
        if mean <= 0:
            raise ValueError("mean must be positive")
        if sigma < 0:
            raise ValueError("sigma must be non-negative")
        if sigma == 0:
            return mean
        mu = math.log(mean) - sigma * sigma / 2.0
        return self._rng.lognormvariate(mu, sigma)

    def exponential(self, mean: float) -> float:
        """Exponential inter-arrival time with the given mean."""
        if mean <= 0:
            raise ValueError("mean must be positive")
        return self._rng.expovariate(1.0 / mean)

    def pareto_cycles(self, minimum: float, alpha: float = 2.5) -> float:
        """Heavy-tailed latency (rare slow paths), bounded below."""
        if minimum <= 0:
            raise ValueError("minimum must be positive")
        return minimum * self._rng.paretovariate(alpha)

"""The system-call boundary: where requests enter the kernel.

"In an OS, requests arrive via system calls and network requests.  The
latency of these requests contains information about related CPU time,
rescheduling, lock and semaphore contentions, and I/O delays."

:class:`SyscallLayer` wraps operation generators with:

* kernel entry/exit (``proc.in_kernel`` depth, which controls whether a
  non-preemptive kernel may forcibly preempt), and
* optional OSprof instrumentation — the FSPROF_PRE/FSPROF_POST macro
  pair reading the current CPU's TSC.

It also charges the fixed syscall entry/exit CPU cost, so even a
zero-byte read has the small but nonzero latency of Figure 3's bucket-6
peak.
"""

from __future__ import annotations

from typing import Iterable, List, Optional

from ..core.pipeline import Pipeline, ProbePoint, wire_probe
from ..core.profile import Layer
from ..core.profiler import Profiler
from ..core.sampling import SampledProfiler
from .process import CpuBurst, ProcBody, Process
from .scheduler import Kernel

__all__ = ["SyscallLayer", "DEFAULT_SYSCALL_COST", "PROFILER_HOOK_COST"]

#: CPU cost of the syscall trap + return (cycles).  With the ~40-cycle
#: zero-byte read body this puts null reads in bucket 6, as in Figure 3.
DEFAULT_SYSCALL_COST = 45.0

#: The paper's measured per-operation profiling overhead components
#: (Section 5.2): calling the hook functions, reading the TSC, and
#: sorting/storing.  In-profile overhead (between the two TSC reads)
#: was ~40 cycles.
PROFILER_HOOK_COST = {
    "call": 15.0,       # entering/leaving each empty hook body
    "tsc_read": 10.0,   # one TSC read
    "store": 40.0,      # bucket sort + store
}


class SyscallLayer:
    """Dispatches profiled operations into the simulated kernel.

    ``profiler`` (user level) and ``fs_profiler`` (file-system level)
    are both optional; when attached, each profiled request additionally
    pays the instrumentation CPU cost, so the overhead experiment of
    Section 5.2 can be run by toggling instrumentation variants:

    * ``instrumentation="off"``      — no hooks at all,
    * ``instrumentation="empty"``    — hook calls with empty bodies,
    * ``instrumentation="tsc_only"`` — hooks that read the TSC only,
    * ``instrumentation="full"``     — the real profiler (default).
    """

    VARIANTS = ("off", "empty", "tsc_only", "full")

    def __init__(self, kernel: Kernel,
                 profiler: Optional[Profiler] = None,
                 sampled: Optional[SampledProfiler] = None,
                 syscall_cost: float = DEFAULT_SYSCALL_COST,
                 instrumentation: str = "full",
                 pipeline: Optional[Pipeline] = None,
                 probe: Optional[ProbePoint] = None):
        if instrumentation not in self.VARIANTS:
            raise ValueError(f"instrumentation must be one of {self.VARIANTS}")
        self.kernel = kernel
        self.profiler = profiler
        self.sampled = sampled
        self.syscall_cost = syscall_cost
        self.instrumentation = instrumentation
        self.calls = 0
        if probe is None:
            owner = pipeline if pipeline is not None \
                else Pipeline(num_cpus=len(kernel.cpus))
            layer_label = profiler.layer if profiler is not None \
                else Layer.USER
            probe = wire_probe(owner, layer_label, profiler=profiler,
                               sampled=sampled, name="syscall")
        self.probe_point = probe
        self.pipeline = probe.pipeline

    def _hook_cost(self) -> float:
        """CPU cycles one PRE or POST hook burns, per the variant."""
        if self.instrumentation == "off" or (self.profiler is None
                                             and self.sampled is None):
            return 0.0
        cost = PROFILER_HOOK_COST["call"]
        if self.instrumentation in ("tsc_only", "full"):
            cost += PROFILER_HOOK_COST["tsc_read"]
        if self.instrumentation == "full":
            cost += PROFILER_HOOK_COST["store"] / 2.0  # split PRE/POST
        return cost

    def invoke(self, proc: Process, operation: str,
               body: ProcBody) -> ProcBody:
        """Run *body* as a profiled kernel request issued by *proc*.

        Usage from a workload generator::

            result = yield from syscalls.invoke(proc, "read",
                                                fs.read(proc, file, n))
        """
        self.calls += 1
        hook = self._hook_cost()
        probe = self.probe_point
        # Stamp the root request context: this is where a request enters
        # the system, so every probed layer below shares its request id.
        context = probe.push_context(proc, operation) if probe.active \
            else None
        proc.in_kernel += 1
        try:
            # Trap into the kernel, then the PRE hook — all system time.
            entry_cost = self.syscall_cost / 2.0 + hook
            if entry_cost > 0:
                yield CpuBurst(self.kernel.rng.jitter(entry_cost))
            start = self.kernel.read_tsc(proc)
            try:
                result = yield from body
            finally:
                end = self.kernel.read_tsc(proc)
                if self.instrumentation == "full":
                    probe.record(operation, end - start, start=start,
                                 context=context,
                                 cpu=proc.cpu if proc.cpu is not None
                                 else 0)
            # POST hook and return-to-user path.
            exit_cost = self.syscall_cost / 2.0 + hook
            if exit_cost > 0:
                yield CpuBurst(self.kernel.rng.jitter(exit_cost))
        finally:
            proc.in_kernel -= 1
            if context is not None:
                ProbePoint.pop_context(proc, context)
        return result

    def probe(self, proc: Process, operation: str,
              body_cycles: float) -> ProcBody:
        """A syscall whose body is a plain CPU burn of *body_cycles*.

        Models micro-probes like the zero-byte read (~40 cycles of
        kernel work) used throughout Section 3.3.
        """
        def body() -> ProcBody:
            if body_cycles > 0:
                yield CpuBurst(self.kernel.rng.jitter(body_cycles))
            return None

        return self.invoke(proc, operation, body())

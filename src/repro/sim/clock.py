"""Per-CPU time-stamp counters with skew (Section 3.4, "Clock Skew").

"CPU clock counters on different CPUs are usually not precisely
synchronized ... most systems have small counter differences after they
are powered up (~20 ns).  Also, it is possible to synchronize the
counters in software by writing to them concurrently.  For example,
Linux synchronizes CPU clock counters at boot time and achieves timing
synchronization of ~130 ns."

:class:`TscBank` gives each simulated CPU an offset from true simulated
time.  A process migrating between CPUs mid-request observes the offset
difference in its measured latency — the perturbation OSprof's
logarithmic filtering is insensitive to.
"""

from __future__ import annotations

from typing import List, Optional

from .engine import CYCLES_PER_SECOND
from .rng import SimRandom

__all__ = ["TscBank", "POWERUP_SKEW_SECONDS", "SOFTWARE_SYNC_SECONDS"]

#: Typical counter difference right after power-up (~20 ns).
POWERUP_SKEW_SECONDS = 20e-9

#: Skew achieved by boot-time software synchronization (~130 ns).
SOFTWARE_SYNC_SECONDS = 130e-9


class TscBank:
    """One 64-bit cycle counter per CPU, each with a fixed offset."""

    def __init__(self, num_cpus: int, rng: Optional[SimRandom] = None,
                 max_skew_seconds: float = POWERUP_SKEW_SECONDS):
        if num_cpus < 1:
            raise ValueError("need at least one CPU")
        if max_skew_seconds < 0:
            raise ValueError("skew must be non-negative")
        rng = rng if rng is not None else SimRandom()
        max_skew_cycles = max_skew_seconds * CYCLES_PER_SECOND
        # CPU 0 is the reference; others are offset within +/- max skew.
        self._offsets: List[float] = [0.0]
        for _ in range(num_cpus - 1):
            self._offsets.append(rng.uniform(-max_skew_cycles,
                                             max_skew_cycles))

    @property
    def num_cpus(self) -> int:
        return len(self._offsets)

    def read(self, cpu: int, true_time: float) -> float:
        """The TSC value CPU *cpu* reports at true simulated time."""
        return true_time + self._offsets[cpu]

    def offset(self, cpu: int) -> float:
        return self._offsets[cpu]

    def max_pairwise_skew(self) -> float:
        """Largest counter difference between any two CPUs, in cycles."""
        return max(self._offsets) - min(self._offsets)

    def synchronize(self, residual_seconds: float = SOFTWARE_SYNC_SECONDS,
                    rng: Optional[SimRandom] = None) -> None:
        """Software synchronization: shrink offsets to the residual bound."""
        if residual_seconds < 0:
            raise ValueError("residual skew must be non-negative")
        rng = rng if rng is not None else SimRandom(1)
        residual_cycles = residual_seconds * CYCLES_PER_SECOND
        self._offsets = [0.0] + [
            rng.uniform(-residual_cycles, residual_cycles)
            for _ in range(len(self._offsets) - 1)]

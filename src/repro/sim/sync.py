"""Kernel synchronization primitives: semaphores, spinlocks, RW locks.

These produce the latency structure at the heart of the paper's case
studies.  A semaphore acquisition has two paths (Section 3):

* uncontended — ``latency = t_cpu`` (the semaphore bookkeeping), or
* contended — ``latency = t_cpu + t_sem`` (sleep until the holder
  releases), which appears as a separate right-shifted peak.

Spinlock contention instead *burns CPU* (t_spinlock counts into t_cpu),
and on SMP produces peaks like Figure 1's FreeBSD ``clone`` profile.

The paper notes that "all semaphore and lock-related operations impose
relatively high overheads even without contention, because the semaphore
function is called twice and its size is comparable to llseek" — hence
every primitive charges explicit acquire/release CPU costs.
"""

from __future__ import annotations

from typing import Optional

from .process import Condition, CpuBurst, ProcBody, Process, WaitCondition
from .scheduler import Kernel

__all__ = ["Semaphore", "SpinLock", "RWLock", "DEFAULT_SEM_COST",
           "DEFAULT_SPIN_POLL"]

#: CPU cost of one semaphore function call (down() or up()).  The paper
#: notes "the semaphore function is called twice and its size is
#: comparable to llseek" — two ~125-cycle calls around a ~110-cycle
#: llseek body reproduce the 400-vs-120-cycle unpatched/patched split
#: of Section 6.1.
DEFAULT_SEM_COST = 125.0

#: Cycles burned per spin-poll iteration while a spinlock is held.
DEFAULT_SPIN_POLL = 50.0


class Semaphore:
    """A sleeping mutex (Linux ``struct semaphore`` with count=1...n).

    Two fairness disciplines, because they produce different contention
    profiles under load:

    * ``fair=True`` (default, Linux-style): FIFO hand-off — a releaser
      passes ownership directly to the first waiter; waiters cannot
      starve and wait times reflect queue depth.
    * ``fair=False`` (FreeBSD sx-style): barging — release makes the
      semaphore free and wakes a waiter, but a running process can grab
      it first.  Under CPU oversubscription this dissolves the convoy a
      FIFO hand-off builds, so only a fraction of acquisitions contend
      (the two distinct peaks of Figure 1).
    """

    def __init__(self, kernel: Kernel, name: str = "sem", initial: int = 1,
                 op_cost: float = DEFAULT_SEM_COST, fair: bool = True):
        if initial < 0:
            raise ValueError("initial count must be non-negative")
        self.kernel = kernel
        self.name = name
        self.count = initial
        self.op_cost = op_cost
        self.fair = fair
        self._cond = Condition(f"sem:{name}")
        self.acquisitions = 0
        self.contentions = 0
        self.holder: Optional[Process] = None

    def acquire(self, proc: Process) -> ProcBody:
        """Generator effect: ``yield from sem.acquire(proc)``."""
        yield CpuBurst(self.kernel.rng.jitter(self.op_cost))
        self.acquisitions += 1
        if self.count > 0:
            self.count -= 1
            self.holder = proc
            return False  # uncontended
        self.contentions += 1
        if self.fair:
            yield WaitCondition(self._cond)
            # Ownership was handed to us by release(); count already 0.
            self.holder = proc
            return True  # contended
        while self.count <= 0:
            yield WaitCondition(self._cond)
        self.count -= 1
        self.holder = proc
        return True  # contended

    def release(self, proc: Process) -> ProcBody:
        """Generator effect: ``yield from sem.release(proc)``."""
        yield CpuBurst(self.kernel.rng.jitter(self.op_cost))
        self.holder = None
        if self.fair:
            woke = self.kernel.fire_condition(self._cond, wake_all=False)
            if woke == 0:
                self.count += 1
        else:
            self.count += 1
            self.kernel.fire_condition(self._cond, wake_all=False)
        return None

    def held(self, proc: Process, body: ProcBody) -> ProcBody:
        """Run *body* with the semaphore held (acquire/try/release)."""
        yield from self.acquire(proc)
        try:
            result = yield from body
        finally:
            yield from self.release(proc)
        return result

    @property
    def waiters(self) -> int:
        return len(self._cond.waiters)

    def contention_rate(self) -> float:
        """Fraction of acquisitions that had to sleep."""
        if self.acquisitions == 0:
            return 0.0
        return self.contentions / self.acquisitions

    def __repr__(self) -> str:
        return (f"<Semaphore {self.name} count={self.count} "
                f"waiters={self.waiters}>")


class SpinLock:
    """A busy-waiting lock: contention burns CPU time (t_spinlock).

    Polling happens in :data:`DEFAULT_SPIN_POLL`-cycle bursts, so a
    spinning process holds its CPU (and can exhaust its quantum), unlike
    a semaphore waiter.
    """

    def __init__(self, kernel: Kernel, name: str = "lock",
                 op_cost: float = DEFAULT_SEM_COST,
                 poll_cycles: float = DEFAULT_SPIN_POLL):
        self.kernel = kernel
        self.name = name
        self.op_cost = op_cost
        self.poll_cycles = poll_cycles
        self.locked = False
        self.acquisitions = 0
        self.contentions = 0
        self.total_spin_cycles = 0.0
        self.holder: Optional[Process] = None

    def acquire(self, proc: Process) -> ProcBody:
        yield CpuBurst(self.kernel.rng.jitter(self.op_cost))
        self.acquisitions += 1
        contended = False
        while self.locked:
            if not contended:
                contended = True
                self.contentions += 1
            spin = self.kernel.rng.jitter(self.poll_cycles, sigma=0.3)
            self.total_spin_cycles += spin
            yield CpuBurst(spin)
        self.locked = True
        self.holder = proc
        return contended

    def release(self, proc: Process) -> ProcBody:
        if not self.locked:
            raise RuntimeError(f"spinlock {self.name} released when free")
        yield CpuBurst(self.kernel.rng.jitter(self.op_cost))
        self.locked = False
        self.holder = None
        return None

    def held(self, proc: Process, body: ProcBody) -> ProcBody:
        yield from self.acquire(proc)
        try:
            result = yield from body
        finally:
            yield from self.release(proc)
        return result

    def contention_rate(self) -> float:
        if self.acquisitions == 0:
            return 0.0
        return self.contentions / self.acquisitions

    def __repr__(self) -> str:
        state = "locked" if self.locked else "free"
        return f"<SpinLock {self.name} {state}>"


class RWLock:
    """Reader/writer lock with writer preference (like Linux rwsem).

    Many readers may hold it concurrently; a writer excludes everyone.
    Used by the reiserfs substrate where ``write_super`` (the journal
    flush) excludes the read path — the contention of Figure 9.
    """

    def __init__(self, kernel: Kernel, name: str = "rwlock",
                 op_cost: float = DEFAULT_SEM_COST):
        self.kernel = kernel
        self.name = name
        self.op_cost = op_cost
        self.readers = 0
        self.writer: Optional[Process] = None
        self._writer_waiting = 0
        self._read_cond = Condition(f"rw:{name}:read")
        self._write_cond = Condition(f"rw:{name}:write")
        self.read_contentions = 0
        self.write_contentions = 0

    def acquire_read(self, proc: Process) -> ProcBody:
        yield CpuBurst(self.kernel.rng.jitter(self.op_cost))
        contended = False
        while self.writer is not None or self._writer_waiting > 0:
            if not contended:
                contended = True
                self.read_contentions += 1
            yield WaitCondition(self._read_cond)
        self.readers += 1
        return contended

    def release_read(self, proc: Process) -> ProcBody:
        if self.readers <= 0:
            raise RuntimeError(f"rwlock {self.name}: read-release underflow")
        yield CpuBurst(self.kernel.rng.jitter(self.op_cost))
        self.readers -= 1
        if self.readers == 0 and self._writer_waiting > 0:
            self.kernel.fire_condition(self._write_cond, wake_all=False)
        return None

    def acquire_write(self, proc: Process) -> ProcBody:
        yield CpuBurst(self.kernel.rng.jitter(self.op_cost))
        contended = False
        while self.writer is not None or self.readers > 0:
            if not contended:
                contended = True
                self.write_contentions += 1
            self._writer_waiting += 1
            yield WaitCondition(self._write_cond)
            self._writer_waiting -= 1
        self.writer = proc
        return contended

    def release_write(self, proc: Process) -> ProcBody:
        if self.writer is not proc:
            raise RuntimeError(f"rwlock {self.name}: writer-release by "
                               f"non-holder")
        yield CpuBurst(self.kernel.rng.jitter(self.op_cost))
        self.writer = None
        if self._writer_waiting > 0:
            self.kernel.fire_condition(self._write_cond, wake_all=False)
        else:
            self.kernel.fire_condition(self._read_cond, wake_all=True)
        return None

    def read_held(self, proc: Process, body: ProcBody) -> ProcBody:
        yield from self.acquire_read(proc)
        try:
            result = yield from body
        finally:
            yield from self.release_read(proc)
        return result

    def write_held(self, proc: Process, body: ProcBody) -> ProcBody:
        yield from self.acquire_write(proc)
        try:
            result = yield from body
        finally:
            yield from self.release_write(proc)
        return result

    def __repr__(self) -> str:
        return (f"<RWLock {self.name} readers={self.readers} "
                f"writer={'yes' if self.writer else 'no'}>")

"""Timer interrupts and periodic background daemons.

"Profiles that contain a large number of requests also show information
about low-frequency events (e.g., hardware interrupts or background OS
threads) even if these events perform a minimal amount of activity"
(Section 3.3).  Figure 3's small peak in bucket 13 is timer-interrupt
processing: the profiling duration divided by the peak's population is
4 ms — the timer period.

:class:`TimerInterrupt` fires every ``period`` cycles per CPU and steals
``cost`` cycles from whatever request is running there, so a small
fraction of requests (cost/period per CPU) shifts right to the
interrupt-cost bucket.

:class:`PeriodicDaemon` models threads like ``bdflush``, which wakes
every 5 s (metadata) / 30 s (data) and writes dirty buffers — the
source of Figure 9's periodic ``write_super`` activity.
"""

from __future__ import annotations

from typing import Callable, Optional

from .engine import seconds
from .process import CpuBurst, ProcBody, Process, Sleep
from .scheduler import Kernel

__all__ = ["TimerInterrupt", "PeriodicDaemon", "DEFAULT_TIMER_PERIOD",
           "DEFAULT_TIMER_COST"]

#: Figure 3 implies a 4 ms timer period on the paper's Linux 2.6.11.
DEFAULT_TIMER_PERIOD = seconds(4e-3)

#: Interrupt processing cost: ~bucket 13 (8k-16k cycles ~= 5-9 us).
DEFAULT_TIMER_COST = 11_000.0


class TimerInterrupt:
    """A periodic per-CPU interrupt that delays the running request."""

    def __init__(self, kernel: Kernel,
                 period: float = DEFAULT_TIMER_PERIOD,
                 cost: float = DEFAULT_TIMER_COST,
                 jitter_sigma: float = 0.05):
        if period <= 0 or cost < 0:
            raise ValueError("period must be positive, cost non-negative")
        self.kernel = kernel
        self.period = period
        self.cost = cost
        self.jitter_sigma = jitter_sigma
        self.fired = 0
        self.delivered = 0  # interrupts that actually delayed a request
        self._running = False

    def start(self) -> None:
        """Arm the timer on every CPU (staggered so CPUs don't beat)."""
        if self._running:
            return
        self._running = True
        for cpu in range(len(self.kernel.cpus)):
            offset = self.period * (cpu + 1) / (len(self.kernel.cpus) + 1)
            self.kernel.engine.schedule(
                offset, lambda c=cpu: self._tick(c))

    def stop(self) -> None:
        self._running = False

    def _tick(self, cpu: int) -> None:
        if not self._running:
            return
        self.fired += 1
        cost = self.kernel.rng.jitter(self.cost, self.jitter_sigma) \
            if self.cost > 0 else 0.0
        if cost > 0 and self.kernel.delay_current_chunk(cpu, cost):
            self.delivered += 1
        self.kernel.engine.schedule(self.period,
                                    lambda c=cpu: self._tick(c))


class PeriodicDaemon:
    """A kernel thread that wakes on a fixed period and runs a body.

    ``body_factory(proc)`` returns a fresh generator for each wakeup
    (e.g. "flush dirty metadata through the journal lock").  The daemon
    yields the CPU between wakeups, so it only perturbs foreground
    requests while actually working — producing the horizontal stripes
    of Figure 9.
    """

    def __init__(self, kernel: Kernel, name: str, period: float,
                 body_factory: Callable[[Process], ProcBody],
                 initial_delay: Optional[float] = None):
        if period <= 0:
            raise ValueError("period must be positive")
        self.kernel = kernel
        self.name = name
        self.period = period
        self.body_factory = body_factory
        self.initial_delay = (initial_delay if initial_delay is not None
                              else period)
        self.wakeups = 0
        self._stop = False
        self.process: Optional[Process] = None

    def start(self) -> Process:
        """Spawn the daemon process; returns it."""
        if self.process is not None:
            return self.process
        self.process = self.kernel.spawn(self._run_forever(), self.name)
        return self.process

    def stop(self) -> None:
        """Ask the daemon to exit at its next wakeup."""
        self._stop = True

    def _run_forever(self) -> ProcBody:
        yield Sleep(self.initial_delay)
        while not self._stop:
            self.wakeups += 1
            proc = self.process
            assert proc is not None
            yield from self.body_factory(proc)
            yield Sleep(self.period)
        return None

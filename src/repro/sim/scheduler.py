"""The simulated kernel: CPUs, run queue, quantum, preemption.

This is the substrate standing in for the Linux/FreeBSD/Windows kernels
the paper instruments.  It is a round-robin scheduler over N CPUs:

* Each dispatch grants a fresh scheduling **quantum** (default 58 ms,
  the paper's measured value, which lands in bucket 26 at 1.7 GHz).
* A process whose quantum expires mid-:class:`CpuBurst` is **forcibly
  preempted** if the kernel is built with in-kernel preemption or the
  process is in user mode; on a non-preemptive kernel (Linux 2.4,
  FreeBSD 5.2) preemption is deferred to the next user-mode boundary —
  exactly the distinction Figure 3 measures.
* Context switches cost ~5.5 us of latency (a characteristic time the
  paper uses for peak attribution).
* Each CPU has its own TSC with power-up skew (:mod:`repro.sim.clock`).

Processes are generator coroutines (:mod:`repro.sim.process`).  The
scheduler maintains the invariant that a RUNNING process always has
exactly one pending completion event for its current burst chunk.
"""

from __future__ import annotations

import math
from collections import deque
from typing import Any, Callable, Deque, Dict, List, Optional, Sequence

from .clock import POWERUP_SKEW_SECONDS, TscBank
from .engine import Engine, Event, seconds
from .process import (Condition, CpuBurst, Process, ProcessState, ProcBody,
                      Sleep, Spawn, WaitCondition, YieldCpu)
from .rng import SimRandom

__all__ = ["Cpu", "Kernel", "DEFAULT_QUANTUM", "DEFAULT_CONTEXT_SWITCH"]

#: The paper's measured scheduling quantum (~58 ms -> bucket 26).
DEFAULT_QUANTUM = seconds(58e-3)

#: The paper's measured context-switch time (~5.5 us).
DEFAULT_CONTEXT_SWITCH = seconds(5.5e-6)


class Cpu:
    """One simulated CPU: its current process and pending chunk event."""

    __slots__ = ("index", "current", "chunk_event", "chunk_end",
                 "chunk_size", "chunk_started", "last_pid", "busy_cycles")

    def __init__(self, index: int):
        self.index = index
        self.current: Optional[Process] = None
        self.chunk_event: Optional[Event] = None
        self.chunk_end = 0.0
        self.chunk_size = 0.0
        self.chunk_started = 0.0
        self.last_pid: Optional[int] = None
        self.busy_cycles = 0.0

    @property
    def idle(self) -> bool:
        return self.current is None

    def __repr__(self) -> str:
        running = self.current.name if self.current else "idle"
        return f"<Cpu {self.index} {running}>"


class Kernel:
    """Round-robin SMP scheduler driving generator processes."""

    def __init__(self, engine: Optional[Engine] = None, num_cpus: int = 1,
                 quantum: float = DEFAULT_QUANTUM,
                 kernel_preemption: bool = False,
                 context_switch_cost: float = DEFAULT_CONTEXT_SWITCH,
                 rng: Optional[SimRandom] = None,
                 tsc_skew_seconds: float = POWERUP_SKEW_SECONDS):
        if num_cpus < 1:
            raise ValueError("need at least one CPU")
        if quantum <= 0:
            raise ValueError("quantum must be positive")
        self.engine = engine if engine is not None else Engine()
        self.quantum = quantum
        self.kernel_preemption = kernel_preemption
        self.context_switch_cost = context_switch_cost
        self.rng = rng if rng is not None else SimRandom()
        self.cpus = [Cpu(i) for i in range(num_cpus)]
        self.tsc = TscBank(num_cpus, self.rng.fork("tsc"), tsc_skew_seconds)
        self.run_queue: Deque[Process] = deque()
        self._next_pid = 1
        self.processes: List[Process] = []
        self._exit_conditions: Dict[int, Condition] = {}
        self.context_switches = 0
        #: The process whose generator is currently being advanced, so
        #: completion-side code (the disk driver) can attribute submitted
        #: work to the submitting request's pipeline context.
        self.stepping: Optional[Process] = None

    # -- time ----------------------------------------------------------------

    @property
    def now(self) -> float:
        """True simulated time in cycles (the engine clock)."""
        return self.engine.now

    def read_tsc(self, proc: Process) -> float:
        """TSC of the CPU the process is currently running on.

        This is what instrumentation observes: migrating between skewed
        CPUs mid-request perturbs the measured latency (Section 3.4).
        """
        cpu = proc.cpu if proc.cpu is not None else 0
        return self.tsc.read(cpu, self.engine.now)

    def tsc_clock_for(self, proc: Process) -> Callable[[], float]:
        """A profiler-compatible clock bound to one process's view."""
        return lambda: self.read_tsc(proc)

    # -- process lifecycle ------------------------------------------------------

    def spawn(self, body, name: str = "") -> Process:
        """Create a process running *body* and make it runnable.

        *body* is either a generator, or a callable taking the new
        :class:`Process` and returning a generator — the common idiom
        for bodies that need their own process handle (to pass to
        semaphores, the syscall layer, etc.).  The child does not start
        executing until the current event completes, so ``spawn``
        always returns before the child's first instruction.
        """
        proc = Process(self._next_pid, name, None)
        self._next_pid += 1
        proc.gen = body(proc) if callable(body) else body
        proc.started_at = self.engine.now
        proc.quantum_left = self.quantum
        self.processes.append(proc)
        self._exit_conditions[proc.pid] = Condition(f"exit:{proc.name}")
        self.run_queue.append(proc)
        self.engine.schedule(0.0, self._maybe_dispatch)
        return proc

    def join(self, proc: Process) -> ProcBody:
        """Effect generator: block until *proc* exits; value is its result."""
        if proc.done:
            return proc.exit_value
            yield  # pragma: no cover - makes this a generator
        result = yield WaitCondition(self._exit_conditions[proc.pid])
        return result

    def runnable_others(self, proc: Process) -> bool:
        """True when someone else is waiting for this process's CPU."""
        return len(self.run_queue) > 0

    # -- condition plumbing (used by sync primitives and devices) ---------------

    def fire_condition(self, cond: Condition, value: Any = None,
                       wake_all: bool = True) -> int:
        """Wake waiter(s) of a condition; returns how many woke."""
        if not cond.waiters:
            return 0
        if wake_all:
            woken, cond.waiters = cond.waiters, []
        else:
            woken = [cond.waiters.pop(0)]
        for proc in woken:
            proc.send_value = value
            self._wake(proc)
        return len(woken)

    # -- dispatch machinery -------------------------------------------------------

    def _idle_cpu(self) -> Optional[Cpu]:
        for cpu in self.cpus:
            if cpu.idle:
                return cpu
        return None

    def _maybe_dispatch(self) -> None:
        while self.run_queue:
            cpu = self._idle_cpu()
            if cpu is None:
                return
            self._dispatch(cpu)

    def _dispatch(self, cpu: Cpu) -> None:
        proc = self.run_queue.popleft()
        proc.state = ProcessState.RUNNING
        proc.cpu = cpu.index
        proc.quantum_left = self.quantum
        cpu.current = proc
        switch_cost = 0.0
        if cpu.last_pid is not None and cpu.last_pid != proc.pid:
            switch_cost = self.context_switch_cost
            self.context_switches += 1
        cpu.last_pid = proc.pid
        if switch_cost > 0:
            self.engine.schedule(switch_cost,
                                 lambda p=proc: self._continue(p))
        else:
            self._continue(proc)

    def _release_cpu(self, proc: Process) -> None:
        if proc.cpu is not None:
            cpu = self.cpus[proc.cpu]
            if cpu.current is proc:
                cpu.current = None
                cpu.chunk_event = None
        proc.cpu = None

    def _continue(self, proc: Process) -> None:
        """Resume a RUNNING process: finish its burst or step its generator."""
        if proc.state != ProcessState.RUNNING:
            return
        if proc.remaining_burst > 0:
            self._run_chunk(proc)
        else:
            self._step(proc)

    # -- burst execution -----------------------------------------------------------

    def _run_chunk(self, proc: Process) -> None:
        cpu = self.cpus[proc.cpu]
        if proc.quantum_left <= 0:
            self._quantum_expired(proc)
            return
        chunk = min(proc.remaining_burst, proc.quantum_left)
        cpu.chunk_size = chunk
        cpu.chunk_started = self.engine.now
        cpu.chunk_end = self.engine.now + chunk
        cpu.chunk_event = self.engine.schedule(
            chunk, lambda p=proc: self._chunk_done(p))

    def _chunk_done(self, proc: Process) -> None:
        cpu = self.cpus[proc.cpu]
        chunk = cpu.chunk_size
        cpu.chunk_event = None
        proc.cpu_time += chunk
        if proc.in_kernel > 0:
            proc.sys_time += chunk
        else:
            proc.user_time += chunk
        cpu.busy_cycles += chunk
        proc.remaining_burst -= chunk
        proc.quantum_left -= chunk
        if proc.remaining_burst > 1e-9:
            # Quantum expired mid-burst.
            self._quantum_expired(proc)
            return
        proc.remaining_burst = 0.0
        if proc.quantum_left <= 1e-9:
            # Quantum expired exactly at the burst boundary.
            if self.run_queue and self._can_force_preempt(proc):
                proc.preemptions += 1
                self._requeue(proc)
                return
            proc.quantum_left = self.quantum
            if self.run_queue:
                proc.preempt_pending = True
        self._step(proc)

    def _can_force_preempt(self, proc: Process) -> bool:
        return self.kernel_preemption or proc.in_kernel == 0

    def _quantum_expired(self, proc: Process) -> None:
        """The quantum ran out while the process still wants CPU."""
        if not self.run_queue:
            # Nobody to run instead: grant a fresh quantum.
            proc.quantum_left = self.quantum
            self._run_chunk(proc)
            return
        if self._can_force_preempt(proc):
            proc.preemptions += 1
            self._requeue(proc)
            return
        # Non-preemptive kernel: let the request finish; preempt at the
        # next user-mode boundary.
        proc.preempt_pending = True
        proc.quantum_left = self.quantum
        self._run_chunk(proc)

    # -- generator stepping -----------------------------------------------------------

    def _step(self, proc: Process) -> None:
        """Advance the generator until it blocks, burns CPU, or exits."""
        previous = self.stepping
        self.stepping = proc
        try:
            self._step_inner(proc)
        finally:
            self.stepping = previous

    def _step_inner(self, proc: Process) -> None:
        while True:
            try:
                effect = proc.gen.send(proc.send_value)
            except StopIteration as stop:
                self._finish(proc, stop.value)
                return
            proc.send_value = None

            # Deferred (non-preemptive-kernel) preemption happens at the
            # first effect boundary where the process is in user mode.
            boundary_preempt = (proc.preempt_pending
                                and proc.in_kernel == 0
                                and bool(self.run_queue))

            if isinstance(effect, CpuBurst):
                if effect.cycles <= 0:
                    continue
                proc.remaining_burst = effect.cycles
                if boundary_preempt:
                    proc.preempt_pending = False
                    proc.preemptions += 1
                    self._requeue(proc)
                else:
                    self._run_chunk(proc)
                return
            if isinstance(effect, Sleep):
                proc.preempt_pending = False
                proc.wait_site = "sleep"
                self._block(proc)
                self.engine.schedule(effect.cycles,
                                     lambda p=proc: self._wake(p))
                return
            if isinstance(effect, WaitCondition):
                proc.preempt_pending = False
                proc.wait_site = effect.condition.name or "condition"
                effect.condition.waiters.append(proc)
                self._block(proc)
                return
            if isinstance(effect, YieldCpu):
                proc.voluntary_switches += 1
                proc.preempt_pending = False
                if self.run_queue:
                    self._requeue(proc)
                    return
                proc.quantum_left = self.quantum
                continue
            if isinstance(effect, Spawn):
                child = self.spawn(effect.body, effect.name)
                proc.send_value = child
                if proc.state != ProcessState.RUNNING:
                    # spawn() may have dispatched the child onto our CPU?
                    # It cannot: we are RUNNING and hold this CPU.  But a
                    # defensive stop keeps the invariant explicit.
                    return
                continue
            raise TypeError(f"process {proc.name} yielded "
                            f"unknown effect {effect!r}")

    # -- state transitions ---------------------------------------------------------------

    def _schedule_dispatch(self) -> None:
        """Run the dispatcher as its own event, never nested in a _step."""
        self.engine.schedule(0.0, self._maybe_dispatch)

    def _requeue(self, proc: Process) -> None:
        proc.state = ProcessState.RUNNABLE
        self._release_cpu(proc)
        self.run_queue.append(proc)
        self._schedule_dispatch()

    def _block(self, proc: Process) -> None:
        proc.state = ProcessState.BLOCKED
        proc.last_blocked_at = self.engine.now
        self._release_cpu(proc)
        self._schedule_dispatch()

    def _wake(self, proc: Process) -> None:
        if proc.state != ProcessState.BLOCKED:
            return
        proc.wait_time += self.engine.now - proc.last_blocked_at
        proc.wait_site = None
        proc.state = ProcessState.RUNNABLE
        self.run_queue.append(proc)
        self._schedule_dispatch()
        self._wakeup_preempt()

    def _wakeup_preempt(self) -> None:
        """Let an I/O-bound waker displace a user-mode CPU hog.

        Unix schedulers boost processes returning from I/O waits; the
        practical effect is that a process spinning in user space is
        preempted as soon as a blocked process wakes.  Kernel-mode code
        is displaced only on kernels built with in-kernel preemption —
        the same rule as quantum expiry (Section 3.3).
        """
        if self._idle_cpu() is not None:
            return
        for cpu in self.cpus:
            proc = cpu.current
            if proc is None or cpu.chunk_event is None \
                    or cpu.chunk_event.cancelled:
                continue
            if not self._can_force_preempt(proc):
                continue
            self._preempt_running(cpu)
            return

    def _preempt_running(self, cpu: Cpu) -> None:
        """Forcibly preempt the process running on *cpu* mid-chunk."""
        proc = cpu.current
        event = cpu.chunk_event
        if proc is None or event is None:
            return
        self.engine.cancel(event)
        cpu.chunk_event = None
        executed = min(cpu.chunk_size,
                       max(0.0, self.engine.now - cpu.chunk_started))
        proc.cpu_time += executed
        if proc.in_kernel > 0:
            proc.sys_time += executed
        else:
            proc.user_time += executed
        cpu.busy_cycles += executed
        proc.remaining_burst = max(0.0, proc.remaining_burst - executed)
        proc.quantum_left = max(0.0, proc.quantum_left - executed)
        proc.preemptions += 1
        self._requeue(proc)

    def _finish(self, proc: Process, value: Any) -> None:
        proc.state = ProcessState.DONE
        proc.wait_site = None
        proc.exit_value = value
        proc.finished_at = self.engine.now
        self._release_cpu(proc)
        self.fire_condition(self._exit_conditions[proc.pid], value,
                            wake_all=True)
        self._schedule_dispatch()

    # -- interrupt support ------------------------------------------------------------------

    def delay_current_chunk(self, cpu_index: int, cost: float) -> bool:
        """Steal *cost* cycles from whatever runs on a CPU (interrupt).

        The running process's burst completion is pushed back by the
        interrupt handler's cost; its own CPU accounting is unchanged —
        the latency increase is pure interference, which is exactly what
        shows up as the small timer-interrupt peaks of Figure 3.
        Returns True if a process was actually delayed.
        """
        cpu = self.cpus[cpu_index]
        if cpu.chunk_event is None or cpu.chunk_event.cancelled:
            return False
        proc = cpu.current
        if proc is None:
            return False
        self.engine.cancel(cpu.chunk_event)
        cpu.chunk_end += cost
        cpu.chunk_event = self.engine.schedule_at(
            cpu.chunk_end, lambda p=proc: self._chunk_done(p))
        return True

    # -- driving ----------------------------------------------------------------------

    def run(self, until: Optional[float] = None,
            max_events: Optional[int] = None) -> None:
        """Run the event loop (bounded by time and/or event count)."""
        self.engine.run(until=until, max_events=max_events)

    def shutdown(self) -> None:
        """Close the generators of still-live processes.

        Call after a time-bounded run (``run(until=...)``) abandons
        endless workload processes: closing inside arbitrary yield
        points may raise RuntimeError from cleanup code (e.g. lock
        releases in finally blocks), which is expected and suppressed.
        """
        for proc in self.processes:
            if proc.done or proc.gen is None:
                continue
            try:
                proc.gen.close()
            except RuntimeError:
                pass
            proc.state = ProcessState.DONE
            proc.wait_site = None

    def run_until_done(self, procs: Sequence[Process],
                       max_events: int = 50_000_000) -> None:
        """Run until every process in *procs* has exited.

        Stops at the exact event that completes the last process, so
        unrelated periodic events (timer ticks, flush daemons) do not
        run the clock past the workload's end.
        """
        def all_done() -> bool:
            return all(p.done for p in procs)

        consumed = self.engine.run(max_events=max_events, stop=all_done)
        if not all_done():
            stuck = [p.name for p in procs if not p.done]
            if consumed >= max_events:
                raise RuntimeError(
                    f"event budget exhausted with processes pending: "
                    f"{stuck}")
            raise RuntimeError(
                f"deadlock: no events pending but processes not done: "
                f"{stuck}")

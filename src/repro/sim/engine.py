"""Discrete-event simulation engine.

Everything in the simulated OS — CPU bursts, disk seeks, TCP timers,
semaphore waits — is an event on a single priority queue ordered by
simulated time, measured in **CPU cycles** at a nominal 1.7 GHz (the
paper's Pentium 4), so latency bucket numbers line up with the paper's
figures.

The engine is deliberately minimal: it knows nothing about processes or
devices.  Higher layers (:mod:`repro.sim.scheduler`, :mod:`repro.disk`,
:mod:`repro.net`) schedule callbacks; determinism is guaranteed by the
(time, sequence-number) ordering, so two runs with the same seed replay
identically.
"""

from __future__ import annotations

import heapq
from typing import Callable, List, Optional

__all__ = ["Event", "Engine", "CYCLES_PER_SECOND", "seconds", "cycles_to_seconds"]

#: Nominal simulated CPU frequency: 1.7 GHz, the paper's test machine.
CYCLES_PER_SECOND = 1.7e9


def seconds(s: float) -> float:
    """Convert seconds to simulated cycles."""
    return s * CYCLES_PER_SECOND


def cycles_to_seconds(c: float) -> float:
    """Convert simulated cycles to seconds."""
    return c / CYCLES_PER_SECOND


class Event:
    """A scheduled callback; cancellable without queue surgery."""

    __slots__ = ("time", "seq", "fn", "cancelled")

    def __init__(self, time: float, seq: int, fn: Callable[[], None]):
        self.time = time
        self.seq = seq
        self.fn = fn
        self.cancelled = False

    def __lt__(self, other: "Event") -> bool:
        return (self.time, self.seq) < (other.time, other.seq)

    def __repr__(self) -> str:
        state = " cancelled" if self.cancelled else ""
        return f"<Event t={self.time:.0f}{state}>"


class Engine:
    """The event loop: a heap of :class:`Event` plus the simulated clock."""

    def __init__(self):
        self.now: float = 0.0
        self._queue: List[Event] = []
        self._seq = 0
        self.events_processed = 0

    # -- scheduling --------------------------------------------------------

    def schedule(self, delay: float, fn: Callable[[], None]) -> Event:
        """Run *fn* after *delay* cycles; returns a cancellable handle."""
        if delay < 0:
            raise ValueError("cannot schedule into the past")
        return self.schedule_at(self.now + delay, fn)

    def schedule_at(self, time: float, fn: Callable[[], None]) -> Event:
        """Run *fn* at absolute simulated time *time*."""
        if time < self.now:
            raise ValueError("cannot schedule into the past")
        self._seq += 1
        event = Event(time, self._seq, fn)
        heapq.heappush(self._queue, event)
        return event

    @staticmethod
    def cancel(event: Event) -> None:
        """Cancel a pending event (idempotent)."""
        event.cancelled = True

    # -- execution ---------------------------------------------------------

    def pending(self) -> int:
        """Number of live (non-cancelled) events still queued."""
        return sum(1 for e in self._queue if not e.cancelled)

    def step(self) -> bool:
        """Run the next live event; False when the queue is empty."""
        while self._queue:
            event = heapq.heappop(self._queue)
            if event.cancelled:
                continue
            self.now = event.time
            self.events_processed += 1
            event.fn()
            return True
        return False

    def run(self, until: Optional[float] = None,
            max_events: Optional[int] = None,
            stop: Optional[Callable[[], bool]] = None) -> int:
        """Drain the queue, optionally bounded by time/events/predicate.

        With ``until``, the clock is advanced to exactly ``until`` even
        if the queue drains earlier, so periodic observers see a full
        window.  ``stop`` is evaluated after every event; returning True
        halts the loop immediately (used to stop as soon as a workload
        completes, before unrelated periodic events inflate the clock).
        Returns the number of events executed.
        """
        executed = 0
        while self._queue:
            if max_events is not None and executed >= max_events:
                return executed
            head = self._queue[0]
            if head.cancelled:
                heapq.heappop(self._queue)
                continue
            if until is not None and head.time > until:
                break
            if not self.step():
                break
            executed += 1
            if stop is not None and stop():
                return executed
        if until is not None and self.now < until:
            self.now = until
        return executed

"""Simulated processes and the effects they yield.

A simulated process body is a Python generator.  It expresses kernel
activity by yielding *effects* — small declarative objects the scheduler
interprets:

* :class:`CpuBurst` — consume CPU cycles (preemptible at quantum expiry).
* :class:`Sleep` — leave the CPU for a fixed number of cycles (t_wait).
* :class:`WaitCondition` — block until a :class:`Condition` fires
  (semaphores and I/O completion are built on this).
* :class:`YieldCpu` — voluntarily relinquish the CPU but stay runnable.
* :class:`Spawn` — create a child process; the effect's value is the new
  :class:`Process`.

Sub-operations compose with plain ``yield from``, exactly like nested
function calls in a kernel (Ext2's ``readdir`` calling ``readpage``).
"""

from __future__ import annotations

from typing import Any, Generator, List, Optional

__all__ = ["CpuBurst", "Sleep", "WaitCondition", "YieldCpu", "Spawn",
           "Condition", "Process", "ProcessState", "Effect", "ProcBody"]

Effect = object
ProcBody = Generator[Effect, Any, Any]


class CpuBurst:
    """Consume *cycles* of CPU time.

    The burst is interruptible: the scheduler may preempt at quantum
    expiry and resume the remainder later.  Bursts issued while
    ``process.in_kernel`` is nonzero are only forcibly preemptible on
    kernels built with in-kernel preemption (Section 3.3).
    """

    __slots__ = ("cycles",)

    def __init__(self, cycles: float):
        if cycles < 0:
            raise ValueError("burst cycles must be non-negative")
        self.cycles = cycles

    def __repr__(self) -> str:
        return f"CpuBurst({self.cycles:.0f})"


class Sleep:
    """Block off-CPU for a fixed number of cycles (a pure t_wait)."""

    __slots__ = ("cycles",)

    def __init__(self, cycles: float):
        if cycles < 0:
            raise ValueError("sleep cycles must be non-negative")
        self.cycles = cycles

    def __repr__(self) -> str:
        return f"Sleep({self.cycles:.0f})"


class Condition:
    """A waitable pulse used for semaphore queues and I/O completions.

    Processes block on it with :class:`WaitCondition`; producers call
    ``fire(value)`` through the kernel, which wakes either the first
    waiter (``wake_all=False``, semaphore hand-off) or all of them.
    """

    __slots__ = ("name", "waiters")

    def __init__(self, name: str = ""):
        self.name = name
        self.waiters: List["Process"] = []

    def __repr__(self) -> str:
        return f"<Condition {self.name!r} waiters={len(self.waiters)}>"


class WaitCondition:
    """Block the process until *condition* fires; value is the fired payload."""

    __slots__ = ("condition",)

    def __init__(self, condition: Condition):
        self.condition = condition

    def __repr__(self) -> str:
        return f"WaitCondition({self.condition!r})"


class YieldCpu:
    """Voluntarily yield the CPU; the process remains runnable."""

    __slots__ = ()

    def __repr__(self) -> str:
        return "YieldCpu()"


class Spawn:
    """Create a new process running *body*; effect value is the Process."""

    __slots__ = ("body", "name")

    def __init__(self, body: ProcBody, name: str = ""):
        self.body = body
        self.name = name

    def __repr__(self) -> str:
        return f"Spawn({self.name!r})"


class ProcessState:
    """Process lifecycle states."""

    RUNNABLE = "runnable"
    RUNNING = "running"
    BLOCKED = "blocked"
    DONE = "done"


class Process:
    """A simulated thread of control plus its accounting.

    ``in_kernel`` is a depth counter maintained by the syscall layer; a
    nonzero value means the process is inside a kernel request, which on
    non-preemptive kernels defers forcible preemption to the next
    user-mode boundary.
    """

    __slots__ = ("pid", "name", "gen", "state", "cpu", "remaining_burst",
                 "in_kernel", "quantum_left", "send_value", "cpu_time",
                 "sys_time", "user_time", "wait_time", "last_blocked_at",
                 "preempt_pending", "preemptions", "voluntary_switches",
                 "exit_value", "started_at", "finished_at",
                 "request_context", "wait_site")

    def __init__(self, pid: int, name: str, gen: ProcBody):
        self.pid = pid
        self.name = name or f"proc{pid}"
        self.gen = gen
        self.state = ProcessState.RUNNABLE
        self.cpu: Optional[int] = None
        self.remaining_burst = 0.0
        self.in_kernel = 0
        self.quantum_left = 0.0
        self.send_value: Any = None
        self.cpu_time = 0.0
        self.sys_time = 0.0
        self.user_time = 0.0
        self.wait_time = 0.0
        self.last_blocked_at = 0.0
        self.preempt_pending = False
        self.preemptions = 0
        self.voluntary_switches = 0
        self.exit_value: Any = None
        self.started_at = 0.0
        self.finished_at: Optional[float] = None
        #: Innermost pipeline RequestContext frame of the request this
        #: process is currently executing (cross-layer request ids).
        self.request_context: Any = None
        #: While BLOCKED, the name of what the process is waiting on
        #: (a Condition name such as ``sem:i_sem:42``, or ``sleep``);
        #: None whenever the process is not blocked.
        self.wait_site: Optional[str] = None

    @property
    def done(self) -> bool:
        return self.state == ProcessState.DONE

    def __repr__(self) -> str:
        return (f"<Process {self.pid} {self.name!r} {self.state}"
                f"{' cpu=' + str(self.cpu) if self.cpu is not None else ''}>")

"""The simulated-kernel substrate.

A deterministic discrete-event model of the OSs the paper instruments:
an event :class:`Engine` denominated in CPU cycles, generator-coroutine
:class:`Process`\\ es scheduled round-robin over SMP :class:`Cpu`\\ s with
a quantum and optional in-kernel preemption, per-CPU skewed TSCs,
semaphores/spinlocks/RW locks, timer interrupts, periodic daemons, and
a syscall layer carrying OSprof instrumentation.
"""

from .clock import POWERUP_SKEW_SECONDS, SOFTWARE_SYNC_SECONDS, TscBank
from .engine import CYCLES_PER_SECOND, Engine, Event, cycles_to_seconds, seconds
from .interrupts import (DEFAULT_TIMER_COST, DEFAULT_TIMER_PERIOD,
                         PeriodicDaemon, TimerInterrupt)
from .process import (Condition, CpuBurst, Process, ProcessState, Sleep,
                      Spawn, WaitCondition, YieldCpu)
from .rng import SimRandom
from .scheduler import (DEFAULT_CONTEXT_SWITCH, DEFAULT_QUANTUM, Cpu, Kernel)
from .sync import (DEFAULT_SEM_COST, DEFAULT_SPIN_POLL, RWLock, Semaphore,
                   SpinLock)
from .syscalls import DEFAULT_SYSCALL_COST, PROFILER_HOOK_COST, SyscallLayer

__all__ = [
    "POWERUP_SKEW_SECONDS", "SOFTWARE_SYNC_SECONDS", "TscBank",
    "CYCLES_PER_SECOND", "Engine", "Event", "cycles_to_seconds", "seconds",
    "DEFAULT_TIMER_COST", "DEFAULT_TIMER_PERIOD", "PeriodicDaemon",
    "TimerInterrupt",
    "Condition", "CpuBurst", "Process", "ProcessState", "Sleep", "Spawn",
    "WaitCondition", "YieldCpu",
    "SimRandom",
    "DEFAULT_CONTEXT_SWITCH", "DEFAULT_QUANTUM", "Cpu", "Kernel",
    "DEFAULT_SEM_COST", "DEFAULT_SPIN_POLL", "RWLock", "Semaphore",
    "SpinLock",
    "DEFAULT_SYSCALL_COST", "PROFILER_HOOK_COST", "SyscallLayer",
]

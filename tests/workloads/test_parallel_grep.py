"""Tests for the parallel grep workload and differential rendering."""

import pytest

from repro.analysis.compare import count_difference
from repro.analysis.report import render_profile_diff
from repro.core.profile import Profile
from repro.system import System
from repro.workloads import build_source_tree, run_parallel_grep


class TestParallelGrep:
    def test_full_coverage_any_job_count(self):
        for jobs in (1, 2, 5):
            system = System.build(num_cpus=2, with_timer=False)
            root, stats = build_source_tree(system, scale=0.015)
            results = run_parallel_grep(system, root, jobs=jobs)
            assert sum(r.files for r in results) == stats.files
            assert sum(r.bytes_scanned
                       for r in results) == stats.total_bytes

    def test_jobs_validation(self):
        system = System.build(with_timer=False)
        root, _ = build_source_tree(system, scale=0.005)
        with pytest.raises(ValueError):
            run_parallel_grep(system, root, jobs=0)

    def test_work_actually_distributed(self):
        system = System.build(num_cpus=4, with_timer=False)
        root, _ = build_source_tree(system, scale=0.02)
        results = run_parallel_grep(system, root, jobs=4)
        busy = [r for r in results if r.files > 0]
        assert len(busy) >= 2

    def test_more_jobs_not_slower(self):
        def elapsed(jobs):
            system = System.build(num_cpus=4, with_timer=False, seed=5)
            root, _ = build_source_tree(system, scale=0.02)
            run_parallel_grep(system, root, jobs=jobs)
            return system.elapsed_seconds()

        assert elapsed(4) <= elapsed(1) * 1.1

    def test_tiny_tree_without_subdirs(self):
        system = System.build(with_timer=False)
        root = system.root
        system.tree.mkfile(root, "only.c", 5000)
        results = run_parallel_grep(system, root, jobs=3)
        assert sum(r.files for r in results) == 1


class TestDifferentialRendering:
    def test_count_difference_signed(self):
        a = Profile.from_counts("op", {8: 100, 9: 50})
        b = Profile.from_counts("op", {8: 60, 14: 30})
        deltas = count_difference(a, b)
        assert deltas == {8: -40, 9: -50, 14: 30}

    def test_identical_profiles_empty_diff(self):
        a = Profile.from_counts("op", {8: 100})
        assert count_difference(a, a) == {}
        assert "<no change>" in render_profile_diff(a, a)

    def test_render_shows_direction(self):
        a = Profile.from_counts("llseek", {8: 3000})
        b = Profile.from_counts("llseek", {8: 2200, 22: 800})
        text = render_profile_diff(a, b)
        assert "-800" in text or "-  800" in text.replace("+", "")
        assert "+800" in text
        assert text.splitlines()[1].strip().startswith("bucket")

    def test_min_delta_suppresses_noise(self):
        a = Profile.from_counts("op", {8: 100, 9: 100})
        b = Profile.from_counts("op", {8: 101, 9: 200})
        text = render_profile_diff(a, b, min_delta=50)
        assert "+100" in text
        assert "bucket   8" not in text  # the +1 noise is hidden

"""Tests for VFS trace capture and replay."""

import io

import pytest

from repro.system import System
from repro.workloads import (RandomReadConfig, build_source_tree,
                             run_grep, run_random_read)
from repro.workloads.trace import (Trace, TraceRecord, TraceRecorder,
                                   replay_trace)


def record_random_read(iterations=60, **build_kwargs):
    system = System.build(num_cpus=2, with_timer=False, **build_kwargs)
    recorder = TraceRecorder(system)
    run_random_read(system, RandomReadConfig(processes=1,
                                             iterations=iterations))
    return system, recorder.detach()


class TestCapture:
    def test_records_seek_read_pairs(self):
        system, trace = record_random_read(iterations=40)
        ops = [r.operation for r in trace.records]
        assert ops.count("llseek") == 40
        assert ops.count("read") == 40
        # Alternating llseek/read, as the workload issues them.
        assert ops[:4] == ["llseek", "read", "llseek", "read"]

    def test_positions_and_counts_captured(self):
        system, trace = record_random_read(iterations=10)
        reads = [r for r in trace.records if r.operation == "read"]
        assert all(r.count == 512 for r in reads)
        seeks = [r for r in trace.records if r.operation == "llseek"]
        assert all(0 <= r.count for r in seeks)

    def test_think_time_nonnegative(self):
        system, trace = record_random_read(iterations=20)
        assert all(r.think >= 0 for r in trace.records)
        assert any(r.think > 0 for r in trace.records)

    def test_detach_stops_recording(self):
        system = System.build(with_timer=False)
        recorder = TraceRecorder(system)
        inode = system.tree.mkfile(system.root, "f", 0)
        trace = recorder.detach()

        def body(proc):
            f = system.vfs.open_inode(inode)
            yield from system.syscalls.invoke(
                proc, "read", system.vfs.read(proc, f, 10))

        p = system.kernel.spawn(body, "p")
        system.run([p])
        assert len(trace) == 0


class TestSerialization:
    def test_roundtrip(self):
        system, trace = record_random_read(iterations=15)
        trace.tree_seed = 42
        trace.tree_scale = 0.01
        buf = io.StringIO()
        trace.dump(buf)
        buf.seek(0)
        loaded = Trace.load(buf)
        assert len(loaded) == len(trace)
        assert loaded.tree_seed == 42
        assert loaded.records[0] == trace.records[0]

    def test_rejects_garbage(self):
        with pytest.raises(ValueError):
            Trace.load(io.StringIO("not a trace\n"))
        with pytest.raises(ValueError):
            Trace.load(io.StringIO('# {"format": "other"}\n'))

    def test_record_line_roundtrip(self):
        record = TraceRecord("read", 5, 4096, 512, 123.4)
        assert TraceRecord.from_line(record.to_line()) == record


class TestReplay:
    def test_replay_reproduces_request_counts(self):
        system, trace = record_random_read(iterations=50)
        target = System.build(num_cpus=2, with_timer=False)
        target.tree.mkfile(target.root, "shared.dat", 64 << 20)
        proc = replay_trace(target, trace)
        assert proc.exit_value == len(trace)
        pset = target.fs_profiles()
        assert pset["llseek"].total_ops == 50
        assert pset["read"].total_ops == 50

    def test_replay_against_patched_kernel_shows_fix(self):
        # The trace-replay use case: capture once, replay on the
        # patched system, diff the profiles.
        system, trace = record_random_read(iterations=50)
        patched = System.build(num_cpus=2, with_timer=False,
                               patched_llseek=True)
        patched.tree.mkfile(patched.root, "shared.dat", 64 << 20)
        replay_trace(patched, trace)
        assert patched.fs_profiles()["llseek"].mean_latency() < 200

    def test_replay_grep_trace(self):
        source = System.build(with_timer=False)
        root, stats = build_source_tree(source, scale=0.005, seed=9)
        recorder = TraceRecorder(source, tree_seed=9, tree_scale=0.005)
        run_grep(source, root)
        trace = recorder.detach()

        target = System.build(with_timer=False)
        build_source_tree(target, scale=trace.tree_scale,
                          seed=trace.tree_seed)
        proc = replay_trace(target, trace)
        assert proc.exit_value == len(trace)
        # Same request mix on both sides.
        assert (target.fs_profiles()["readdir"].total_ops ==
                source.fs_profiles()["readdir"].total_ops)
        assert (target.fs_profiles()["read"].total_ops ==
                source.fs_profiles()["read"].total_ops)

"""Tests for the compile-like non-monotonic workload."""

import pytest

from repro.analysis.report import gnuplot_sampled_data
from repro.sim.engine import seconds
from repro.system import System
from repro.workloads import (CompileConfig, build_source_tree,
                             run_compile)


@pytest.fixture
def built():
    system = System.build(with_timer=False,
                          sample_interval=seconds(0.25))
    root, stats = build_source_tree(system, scale=0.01)
    result = run_compile(system, root)
    return system, stats, result


class TestCompile:
    def test_compiles_every_c_file(self, built):
        system, stats, result = built
        c_files = sum(
            1 for inode in system.inodes._inodes.values()
            if not inode.is_dir)
        # Objects were created during the build, so count sources by
        # name through the tree walker instead.
        sources = 0
        stack = [system.root]
        while stack:
            d = stack.pop()
            for e in d.entries:
                node = system.inodes.get(e.ino)
                if node.is_dir:
                    stack.append(node)
                elif e.name.endswith(".c"):
                    sources += 1
        assert result.compiled == sources
        assert result.phases >= 1

    def test_reads_and_writes_flow(self, built):
        system, stats, result = built
        assert result.bytes_read > 0
        assert 0 < result.bytes_written < result.bytes_read
        pset = system.user_profiles()
        assert pset["read"].total_ops > 0
        assert pset["write"].total_ops == result.compiled
        assert pset["create"].total_ops == result.compiled

    def test_user_cpu_dominates(self, built):
        # A compiler is CPU-bound: user time >> system time.
        system, _, _ = built
        proc = next(p for p in system.kernel.processes
                    if p.name == "make")
        assert proc.user_time > 3 * proc.sys_time

    def test_sampled_profile_nonmonotonic(self):
        # Reads come and go between compile phases: at a fine sampling
        # interval, some segments have reads and some have none.
        # Segment shorter than one compile phase (batch of 8 at ~2.6 ms
        # of CPU per average file ~= 20 ms), so CPU-only segments exist.
        system = System.build(with_timer=False,
                              sample_interval=seconds(0.01))
        root, _ = build_source_tree(system, scale=0.01)
        run_compile(system, root, CompileConfig(batch=8))
        series = system.sampled.series()
        read_activity = series.periodicity("read", 0, 64)
        assert len(read_activity) > 3
        assert any(c == 0 for c in read_activity[:-1])
        assert any(c > 0 for c in read_activity)

    def test_gnuplot_sampled_export(self, built):
        system, _, _ = built
        series = system.sampled.series()
        data = gnuplot_sampled_data(series, "read",
                                    interval_seconds=0.25)
        lines = [l for l in data.splitlines()
                 if l and not l.startswith("#")]
        assert lines
        assert all(len(l.split()) == 3 for l in lines)

    def test_object_dir_created_per_process(self, built):
        system, _, _ = built
        names = [e.name for e in system.root.entries]
        assert any(name.startswith(".objs") for name in names)

"""Tests for the workload generators."""

import pytest

from repro.sim.engine import seconds
from repro.system import System
from repro.workloads.grep import run_grep
from repro.workloads.microbench import CloneStress, run_zero_byte_reads
from repro.workloads.postmark import PostmarkConfig, run_postmark
from repro.workloads.randomread import RandomReadConfig, run_random_read
from repro.workloads.sourcetree import build_source_tree


class TestSourceTree:
    def test_shape_scales(self):
        s = System.build(with_timer=False)
        root, stats = build_source_tree(s, scale=0.02)
        assert stats.directories >= 3
        assert stats.files > stats.directories
        assert 1000 < stats.mean_file_size() < 40_000

    def test_deterministic(self):
        s1 = System.build(with_timer=False)
        _, stats1 = build_source_tree(s1, scale=0.01, seed=9)
        s2 = System.build(with_timer=False)
        _, stats2 = build_source_tree(s2, scale=0.01, seed=9)
        assert stats1 == stats2

    def test_invalid_scale(self):
        s = System.build(with_timer=False)
        with pytest.raises(ValueError):
            build_source_tree(s, scale=0)


class TestGrep:
    def test_visits_everything(self):
        s = System.build(with_timer=False)
        root, stats = build_source_tree(s, scale=0.01)
        result = run_grep(s, root)
        assert result.directories == stats.directories
        assert result.files == stats.files
        assert result.bytes_scanned == stats.total_bytes

    def test_one_past_eof_readdir_per_directory(self):
        s = System.build(with_timer=False)
        root, stats = build_source_tree(s, scale=0.01)
        result = run_grep(s, root)
        prof = s.fs_profiles()["readdir"]
        eof_calls = sum(c for b, c in prof.counts().items() if b <= 8)
        assert eof_calls == stats.directories

    def test_readpage_count_matches_slow_readdir_peaks(self):
        # Figure 7's cross-check: third + fourth peak populations of
        # readdir equal the readpage op count for directory pages.
        s = System.build(with_timer=False)
        root, _ = build_source_tree(s, scale=0.01)
        run_grep(s, root)
        pset = s.fs_profiles()
        readdir = pset["readdir"].counts()
        io_readdirs = sum(c for b, c in readdir.items() if b >= 15)
        dir_pages = sum(
            max(1, inode.num_pages())
            for inode in s.inodes._inodes.values() if inode.is_dir)
        assert io_readdirs <= pset["readpage"].total_ops
        assert io_readdirs == dir_pages

    def test_profiles_all_layers(self):
        s = System.build(with_timer=False)
        root, _ = build_source_tree(s, scale=0.005)
        run_grep(s, root)
        assert s.user_profiles().total_ops() > 0
        assert s.fs_profiles().total_ops() > 0
        assert s.driver_profiles().total_ops() > 0


class TestRandomRead:
    def test_runs_requested_iterations(self):
        s = System.build(num_cpus=2, with_timer=False)
        procs = run_random_read(
            s, RandomReadConfig(processes=2, iterations=50))
        assert all(p.exit_value == 50 for p in procs)
        pset = s.fs_profiles()
        assert pset["llseek"].total_ops == 100
        assert pset["read"].total_ops == 100

    def test_single_process_no_contention(self):
        s = System.build(num_cpus=2, with_timer=False)
        run_random_read(s, RandomReadConfig(processes=1, iterations=50))
        shared = next(i for i in s.inodes._inodes.values()
                      if not i.is_dir)
        assert shared.i_sem.contentions == 0

    def test_validation(self):
        s = System.build(with_timer=False)
        with pytest.raises(ValueError):
            run_random_read(s, RandomReadConfig(processes=0))


class TestZeroByteReads:
    def test_all_reads_return_zero_fast(self):
        s = System.build(with_timer=False)
        run_zero_byte_reads(s, processes=1, iterations=500)
        prof = s.user_profiles()["read"]
        assert prof.total_ops == 500
        lo, hi = prof.histogram.span()
        assert hi <= 9  # every request is a fast path

    def test_validation(self):
        s = System.build(with_timer=False)
        with pytest.raises(ValueError):
            run_zero_byte_reads(s, processes=0)


class TestCloneStress:
    def test_single_process_unimodal(self):
        s = System.build(num_cpus=2, with_timer=False)
        stress = CloneStress(s)
        stress.run(processes=1, iterations=300)
        assert stress.proc_table_lock.contentions == 0
        assert stress.clones == 300

    def test_four_processes_contend(self):
        s = System.build(num_cpus=2, with_timer=False)
        stress = CloneStress(s)
        stress.run(processes=4, iterations=300)
        assert stress.proc_table_lock.contentions > 0
        assert stress.clones == 1200

    def test_validation(self):
        s = System.build(with_timer=False)
        with pytest.raises(ValueError):
            CloneStress(s).run(processes=0)


class TestPostmark:
    def test_transaction_mix_and_accounting(self):
        s = System.build(with_timer=False)
        report = run_postmark(s, PostmarkConfig(files=30,
                                                transactions=120))
        assert report.transactions == 120
        assert report.creates >= 30
        assert report.reads + report.appends + report.deletes > 0
        assert report.elapsed > 0
        assert report.system > 0
        # elapsed ~= user + system + wait for a single process.
        assert report.elapsed == pytest.approx(
            report.user + report.system + report.wait, rel=0.05)

    def test_system_fraction(self):
        s = System.build(with_timer=False)
        report = run_postmark(s, PostmarkConfig(files=10,
                                                transactions=30))
        assert 0 < report.system_fraction() < 1
